/**
 * @file
 * Workload suite tests, parameterized over all ten benchmarks:
 * construction, termination, determinism, plausible dynamic size and
 * instruction-mix sanity; plus per-archetype characteristic checks
 * (FP content in raytrace, indirect branches in perl, recursion depth
 * in chess, and so on).
 */

#include <array>
#include <gtest/gtest.h>

#include "isa/emulator.hh"
#include "util/error.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using workloads::WorkloadInfo;

struct MixCounts
{
    uint64_t total = 0;
    std::array<uint64_t, isa::NumInstClasses> byClass{};
    uint64_t controlFlow = 0;
    uint64_t taken = 0;

    double
    frac(isa::InstClass c) const
    {
        return total ? static_cast<double>(
            byClass[static_cast<int>(c)]) / total : 0.0;
    }

    double
    loadFrac() const
    {
        return frac(isa::InstClass::Load);
    }
};

MixCounts
runAndCount(const isa::Program &prog, uint64_t maxInsts = 100000000)
{
    isa::Emulator emu(prog);
    MixCounts mix;
    while (!emu.halted() && mix.total < maxInsts) {
        const isa::Instruction &inst = prog.text[emu.pc()];
        const isa::ExecutedInst rec = emu.step();
        ++mix.total;
        ++mix.byClass[static_cast<int>(isa::classOf(inst.op))];
        if (isa::isControlFlow(inst.op)) {
            ++mix.controlFlow;
            mix.taken += rec.taken;
        }
    }
    return mix;
}

class EveryWorkload : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkload, BuildsAndFinalizes)
{
    const isa::Program prog = workloads::build(GetParam(), 1);
    EXPECT_TRUE(prog.finalized());
    EXPECT_GT(prog.numBlocks(), 5u);
    EXPECT_EQ(prog.name, GetParam());
}

TEST_P(EveryWorkload, TerminatesWithPlausibleSize)
{
    const isa::Program prog = workloads::build(GetParam(), 1);
    isa::Emulator emu(prog);
    emu.run(50000000);
    EXPECT_TRUE(emu.halted()) << "did not terminate";
    EXPECT_GT(emu.instCount(), 200000u);
    EXPECT_LT(emu.instCount(), 40000000u);
}

TEST_P(EveryWorkload, DeterministicAcrossBuilds)
{
    const isa::Program a = workloads::build(GetParam(), 1);
    const isa::Program b = workloads::build(GetParam(), 1);
    isa::Emulator ea(a), eb(b);
    ea.run(~0ull);
    eb.run(~0ull);
    EXPECT_EQ(ea.instCount(), eb.instCount());
}

TEST_P(EveryWorkload, ScaleGrowsTheRun)
{
    const isa::Program small = workloads::build(GetParam(), 1);
    const isa::Program big = workloads::build(GetParam(), 2);
    isa::Emulator es(small), eb(big);
    es.run(~0ull);
    eb.run(~0ull);
    EXPECT_GT(eb.instCount(), es.instCount() * 5 / 4);
}

TEST_P(EveryWorkload, HasMemoryAndControlTraffic)
{
    const isa::Program prog = workloads::build(GetParam(), 1);
    const MixCounts mix = runAndCount(prog, 2000000);
    EXPECT_GT(mix.loadFrac(), 0.01) << "no load traffic";
    EXPECT_GT(static_cast<double>(mix.controlFlow) / mix.total, 0.03)
        << "no control flow";
    EXPECT_GT(mix.taken, 0u);
}


TEST_P(EveryWorkload, InputVariantsDiffer)
{
    const isa::Program a = workloads::build(GetParam(), 1, 0);
    const isa::Program b = workloads::build(GetParam(), 1, 1);
    // Same code...
    EXPECT_EQ(a.size(), b.size());
    // ...different execution (data-dependent paths shift the total).
    isa::Emulator ea(a), eb(b);
    ea.run(50000000);
    eb.run(50000000);
    ASSERT_TRUE(ea.halted());
    ASSERT_TRUE(eb.halted());
    EXPECT_NE(ea.instCount(), eb.instCount());
}

TEST_P(EveryWorkload, InputVariantsAreDeterministic)
{
    const isa::Program a = workloads::build(GetParam(), 1, 3);
    const isa::Program b = workloads::build(GetParam(), 1, 3);
    isa::Emulator ea(a), eb(b);
    ea.run(500000);
    eb.run(500000);
    EXPECT_EQ(ea.instCount(), eb.instCount());
    EXPECT_EQ(ea.pc(), eb.pc());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::Values("compress", "chess", "raytrace", "cc", "zip",
                      "parse", "perl", "place", "oodb", "route"));

TEST(WorkloadRegistry, SuiteHasTenEntries)
{
    EXPECT_EQ(workloads::suite().size(), 10u);
    for (const WorkloadInfo &info : workloads::suite())
        EXPECT_FALSE(info.archetype.empty());
}

TEST(WorkloadRegistry, UnknownNameIsTypedError)
{
    try {
        workloads::build("no-such-benchmark");
        FAIL() << "unknown workload was accepted";
    } catch (const ssim::Error &e) {
        EXPECT_EQ(e.category(), ssim::ErrorCategory::UnknownWorkload);
        // The message must be actionable: it lists the valid names.
        EXPECT_NE(std::string(e.what()).find("unknown workload"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("route"),
                  std::string::npos);
    }
}

TEST(WorkloadCharacter, RaytraceIsFloatingPointHeavy)
{
    const MixCounts mix =
        runAndCount(workloads::build("raytrace", 1), 2000000);
    const double fp = mix.frac(isa::InstClass::FpAlu) +
        mix.frac(isa::InstClass::FpMult) +
        mix.frac(isa::InstClass::FpDiv) +
        mix.frac(isa::InstClass::FpSqrt);
    EXPECT_GT(fp, 0.25);
    EXPECT_GT(mix.frac(isa::InstClass::FpSqrt), 0.001);
    EXPECT_GT(mix.frac(isa::InstClass::FpDiv), 0.005);
}

TEST(WorkloadCharacter, IntegerCodesHaveAlmostNoFp)
{
    for (const char *name : {"zip", "parse", "cc", "oodb"}) {
        const MixCounts mix =
            runAndCount(workloads::build(name, 1), 1000000);
        const double fp = mix.frac(isa::InstClass::FpAlu) +
            mix.frac(isa::InstClass::FpMult);
        EXPECT_LT(fp, 0.01) << name;
    }
}

TEST(WorkloadCharacter, PerlIsIndirectBranchHeavy)
{
    const MixCounts mix =
        runAndCount(workloads::build("perl", 1), 2000000);
    EXPECT_GT(mix.frac(isa::InstClass::IndirectBranch), 0.02);
}

TEST(WorkloadCharacter, ChessUsesDeepCallChains)
{
    const isa::Program prog = workloads::build("chess", 1);
    isa::Emulator emu(prog);
    uint64_t depth = 0, maxDepth = 0, steps = 0;
    while (!emu.halted() && steps < 2000000) {
        const isa::Opcode op = prog.text[emu.pc()].op;
        if (isa::isCall(op)) {
            ++depth;
            maxDepth = std::max(maxDepth, depth);
        } else if (isa::isReturn(op) && depth > 0) {
            --depth;
        }
        emu.step();
        ++steps;
    }
    EXPECT_GE(maxDepth, 4u);   // negamax recursion
}

TEST(WorkloadCharacter, CompressIsStoreHeavy)
{
    const MixCounts mix =
        runAndCount(workloads::build("compress", 1), 2000000);
    EXPECT_GT(mix.frac(isa::InstClass::Store), 0.02);
}

TEST(WorkloadCharacter, CcHasManyBasicBlocks)
{
    const isa::Program cc = workloads::build("cc", 1);
    const isa::Program zip = workloads::build("zip", 1);
    EXPECT_GT(cc.numBlocks(), 2 * zip.numBlocks());
}

TEST(WorkloadCharacter, ZipFindsMatches)
{
    // LZ77 over word-repeating text must take the match-emit path:
    // position advances faster than one literal per output byte.
    const isa::Program prog = workloads::build("zip", 1);
    const MixCounts mix = runAndCount(prog, 10000000);
    // Matches shorten the run: far fewer than ~40 dynamic
    // instructions per input byte (the all-literal worst case).
    EXPECT_LT(mix.total, 30ull * 96 * 1024);
}

TEST(WorkloadCharacter, PlaceBranchesAreUnbiased)
{
    // The annealing accept/reject branch should be mixed, not
    // near-always one way: overall taken rate strictly inside (5,95)%.
    const MixCounts mix =
        runAndCount(workloads::build("place", 1), 2000000);
    const double takenRate =
        static_cast<double>(mix.taken) / mix.controlFlow;
    EXPECT_GT(takenRate, 0.05);
    EXPECT_LT(takenRate, 0.95);
}

} // namespace
