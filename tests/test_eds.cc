/**
 * @file
 * Execution-driven simulator tests: architectural equivalence with
 * the functional emulator (committed counts), perfect-structure
 * idealizations, sampling options, and microarchitectural trends.
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "cpu/eds_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "isa/assembler.hh"
#include "isa/emulator.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using core::SimResult;

cpu::CoreConfig
baseline()
{
    return cpu::CoreConfig::baseline();
}

SimResult
runEds(const isa::Program &prog, const cpu::CoreConfig &cfg,
       cpu::EdsOptions opts = {})
{
    return core::runExecutionDriven(prog, cfg, opts);
}

TEST(Eds, CommitsExactlyTheFunctionalStream)
{
    // The timing simulator must retire precisely the instructions the
    // functional emulator executes — the fundamental correctness
    // invariant of execute-at-fetch simulation.
    const isa::Program prog = workloads::build("route", 1);
    isa::Emulator emu(prog);
    emu.run(~0ull);
    const SimResult res = runEds(prog, baseline());
    EXPECT_EQ(res.stats.committed, emu.instCount());
}

TEST(Eds, WrongPathFetchesExceedCommits)
{
    const isa::Program prog = workloads::build("chess", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 100000;
    const SimResult res = runEds(prog, baseline(), opts);
    EXPECT_GT(res.stats.fetched, res.stats.committed);
    EXPECT_GT(res.stats.mispredicts, 0u);
}

TEST(Eds, PerfectBpredRemovesAllMispredicts)
{
    const isa::Program prog = workloads::build("chess", 1);
    cpu::CoreConfig cfg = baseline();
    cfg.perfectBpred = true;
    cpu::EdsOptions opts;
    opts.maxInsts = 100000;
    const SimResult res = runEds(prog, cfg, opts);
    EXPECT_EQ(res.stats.mispredicts, 0u);
    EXPECT_EQ(res.stats.fetchRedirects, 0u);
    EXPECT_EQ(res.stats.fetched, res.stats.committed);
}

TEST(Eds, PerfectBpredNeverSlower)
{
    const isa::Program prog = workloads::build("parse", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 150000;
    cpu::CoreConfig real = baseline();
    cpu::CoreConfig perfect = baseline();
    perfect.perfectBpred = true;
    EXPECT_GE(runEds(prog, perfect, opts).ipc,
              runEds(prog, real, opts).ipc);
}

TEST(Eds, PerfectCachesNeverSlower)
{
    const isa::Program prog = workloads::build("oodb", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 150000;
    cpu::CoreConfig real = baseline();
    cpu::CoreConfig perfect = baseline();
    perfect.perfectCaches = true;
    EXPECT_GE(runEds(prog, perfect, opts).ipc,
              runEds(prog, real, opts).ipc);
}

TEST(Eds, MaxInstsBoundsTheRun)
{
    const isa::Program prog = workloads::build("zip", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 50000;
    const SimResult res = runEds(prog, baseline(), opts);
    EXPECT_EQ(res.stats.committed, 50000u);
}

TEST(Eds, SkipThenMeasureMatchesFunctionalSuffix)
{
    const isa::Program prog = workloads::build("place", 1);
    isa::Emulator emu(prog);
    emu.run(~0ull);
    const uint64_t total = emu.instCount();

    cpu::EdsOptions opts;
    opts.skipInsts = total / 2;
    const SimResult res = runEds(prog, baseline(), opts);
    EXPECT_EQ(res.stats.committed, total - total / 2);
}

TEST(Eds, BiggerWindowNeverHurts)
{
    const isa::Program prog = workloads::build("raytrace", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 150000;
    cpu::CoreConfig small = baseline();
    small.ruuSize = 16;
    small.lsqSize = 8;
    cpu::CoreConfig large = baseline();
    const double ipcSmall = runEds(prog, small, opts).ipc;
    const double ipcLarge = runEds(prog, large, opts).ipc;
    EXPECT_GE(ipcLarge, ipcSmall * 0.99);
    EXPECT_GT(ipcLarge, ipcSmall);   // raytrace has MLP to expose
}

TEST(Eds, WiderMachineNeverSlower)
{
    const isa::Program prog = workloads::build("compress", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 150000;
    cpu::CoreConfig narrow = baseline();
    narrow.decodeWidth = narrow.issueWidth = narrow.commitWidth = 2;
    EXPECT_GT(runEds(prog, baseline(), opts).ipc,
              runEds(prog, narrow, opts).ipc);
}

TEST(Eds, LargerCachesReduceMissLatencyImpact)
{
    const isa::Program prog = workloads::build("oodb", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 200000;
    cpu::CoreConfig tiny = baseline();
    tiny.dl1 = tiny.dl1.scaled(0.25);
    EXPECT_GE(runEds(prog, baseline(), opts).ipc,
              runEds(prog, tiny, opts).ipc);
}

TEST(Eds, StoreLoadForwardingObserved)
{
    // A tight store->load same-address sequence must not pay the
    // memory round trip (the LSQ forwards).
    isa::Assembler as("fwd");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.li(4, 1000);
    as.li(5, 512);
    as.bind(top);
    as.sd(3, 5, 0);
    as.ld(6, 5, 0);    // forwarded from the store
    as.addi(3, 6, 1);
    as.blt(3, 4, top);
    as.halt();
    const isa::Program prog = as.finish();
    const SimResult res = runEds(prog, baseline());
    // Around 6-8 cycles per iteration; far below an L1-miss chain.
    const double perIter =
        static_cast<double>(res.stats.cycles) / 1000.0;
    EXPECT_LT(perIter, 12.0);
}

TEST(Eds, IpcWithinMachineBounds)
{
    for (const char *name : {"zip", "cc", "perl"}) {
        const isa::Program prog = workloads::build(name, 1);
        cpu::EdsOptions opts;
        opts.maxInsts = 100000;
        const SimResult res = runEds(prog, baseline(), opts);
        EXPECT_GT(res.ipc, 0.05) << name;
        EXPECT_LE(res.ipc, 8.0) << name;
    }
}

TEST(Eds, DeterministicAcrossRuns)
{
    const isa::Program prog = workloads::build("parse", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 80000;
    const SimResult a = runEds(prog, baseline(), opts);
    const SimResult b = runEds(prog, baseline(), opts);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_DOUBLE_EQ(a.epc, b.epc);
}

TEST(Eds, BranchStatsConsistent)
{
    const isa::Program prog = workloads::build("cc", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 100000;
    const SimResult res = runEds(prog, baseline(), opts);
    EXPECT_LE(res.stats.mispredicts + res.stats.fetchRedirects,
              res.stats.branches);
    EXPECT_LE(res.stats.takenBranches, res.stats.branches);
    EXPECT_GT(res.stats.branches, 0u);
}

} // namespace
