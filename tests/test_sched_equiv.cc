/**
 * @file
 * Equivalence battery for the event-driven OoO scheduler.
 *
 * The core keeps the pre-event-driven cycle-by-cycle behaviour alive
 * behind the SSIM_SCHED_REFERENCE environment switch (sorted ready
 * vector, linear store->load disambiguation scan, no idle-cycle
 * fast-forward). Every test here runs the same simulation through the
 * reference path and through the event-driven path and byte-compares
 * the full SimStats structs: cycles, committed/issued/dispatched/
 * fetched, stall-cause attribution, occupancy accumulators, and every
 * power-unit touch counter must match exactly — across all tier-1
 * workloads x {streamed, materialized} x {out-of-order, in-order
 * issue} x a mispredict-heavy config, plus the execution-driven
 * frontend.
 *
 * SimStats holds only uint64_t scalars and arrays (no padding), so
 * memcmp is a sound equality; named-field checks run first so a
 * mismatch names the diverging counter instead of a raw byte offset.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using core::SynthInst;
using core::SyntheticTrace;

/** The whole ten-workload suite (raytrace covers the non-pipelined
 *  FP units; perl and cc are the mispredict-heaviest archetypes). */
std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const workloads::WorkloadInfo &w : workloads::suite())
        names.push_back(w.name);
    return names;
}

/** Run @p sim with SSIM_SCHED_REFERENCE set/cleared around it. */
template <typename Fn>
cpu::SimStats
runWithMode(bool reference, Fn &&sim)
{
    if (reference)
        setenv("SSIM_SCHED_REFERENCE", "1", 1);
    else
        unsetenv("SSIM_SCHED_REFERENCE");
    cpu::SimStats stats = sim();
    unsetenv("SSIM_SCHED_REFERENCE");
    return stats;
}

void
expectIdentical(const cpu::SimStats &ref, const cpu::SimStats &evt,
                const std::string &what)
{
    // Named checks first so a divergence reports the counter.
    EXPECT_EQ(ref.cycles, evt.cycles) << what;
    EXPECT_EQ(ref.committed, evt.committed) << what;
    EXPECT_EQ(ref.fetched, evt.fetched) << what;
    EXPECT_EQ(ref.dispatched, evt.dispatched) << what;
    EXPECT_EQ(ref.issued, evt.issued) << what;
    EXPECT_EQ(ref.ruuOccAccum, evt.ruuOccAccum) << what;
    EXPECT_EQ(ref.lsqOccAccum, evt.lsqOccAccum) << what;
    EXPECT_EQ(ref.ifqOccAccum, evt.ifqOccAccum) << what;
    EXPECT_EQ(ref.ruuSquashed, evt.ruuSquashed) << what;
    EXPECT_EQ(ref.ifqSquashed, evt.ifqSquashed) << what;
    for (int i = 0; i < cpu::NumStallCauses; ++i) {
        EXPECT_EQ(ref.stallCycles[i], evt.stallCycles[i])
            << what << " stall "
            << cpu::stallCauseName(static_cast<cpu::StallCause>(i));
    }
    for (int i = 0; i < cpu::NumPowerUnits; ++i) {
        const char *unit =
            cpu::powerUnitName(static_cast<cpu::PowerUnit>(i));
        EXPECT_EQ(ref.unitAccesses[i], evt.unitAccesses[i])
            << what << " accesses " << unit;
        EXPECT_EQ(ref.unitActiveCycles[i], evt.unitActiveCycles[i])
            << what << " active-cycles " << unit;
    }
    EXPECT_EQ(std::memcmp(&ref, &evt, sizeof(cpu::SimStats)), 0)
        << what;
}

core::StatisticalProfile
profileFor(const std::string &workload, const cpu::CoreConfig &cfg)
{
    const isa::Program prog = workloads::build(workload, 1);
    core::ProfileOptions popts;
    popts.maxInsts = 60000;
    return core::buildProfile(prog, cfg, popts);
}

core::GenerationOptions
genOpts()
{
    core::GenerationOptions gopts;
    gopts.reductionFactor = 4;
    gopts.seed = 42;
    return gopts;
}

cpu::SimStats
simStreamed(const core::StatisticalProfile &prof,
            const cpu::CoreConfig &cfg)
{
    core::StreamingGenerator gen(prof, genOpts(),
                                 core::requiredStreamLookback(cfg));
    return core::simulateSyntheticStream(gen, cfg).stats;
}

/** Battery over one config: streamed and materialized, ref vs new. */
void
checkWorkloads(const cpu::CoreConfig &cfg, const std::string &tag)
{
    for (const std::string &wl : allWorkloads()) {
        const core::StatisticalProfile prof = profileFor(wl, cfg);

        const cpu::SimStats refS = runWithMode(
            true, [&] { return simStreamed(prof, cfg); });
        const cpu::SimStats evtS = runWithMode(
            false, [&] { return simStreamed(prof, cfg); });
        expectIdentical(refS, evtS, tag + "/streamed/" + wl);

        const SyntheticTrace trace =
            core::generateSyntheticTrace(prof, genOpts());
        const cpu::SimStats refM = runWithMode(true, [&] {
            return core::simulateSyntheticTrace(trace, cfg).stats;
        });
        const cpu::SimStats evtM = runWithMode(false, [&] {
            return core::simulateSyntheticTrace(trace, cfg).stats;
        });
        expectIdentical(refM, evtM, tag + "/materialized/" + wl);
    }
}

TEST(SchedEquiv, OutOfOrderAllWorkloads)
{
    checkWorkloads(cpu::CoreConfig::baseline(), "ooo");
}

TEST(SchedEquiv, InOrderIssueAllWorkloads)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cfg.inOrderIssue = true;
    checkWorkloads(cfg, "inorder");
}

/**
 * Mispredict-heavy: long recovery penalties exercise the fast-forward
 * cap at fetchStallUntil(), and non-power-of-two ring sizes exercise
 * the modulo slot-index fallback.
 */
TEST(SchedEquiv, MispredictHeavyConfig)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cfg.name = "mispredict-heavy";
    cfg.mispredictPenalty = 40;
    cfg.redirectPenalty = 8;
    cfg.ruuSize = 48;
    cfg.lsqSize = 24;
    cfg.ifqSize = 12;
    checkWorkloads(cfg, "mp-heavy");

    cfg.inOrderIssue = true;
    checkWorkloads(cfg, "mp-heavy-inorder");
}

TEST(SchedEquiv, ExecutionDrivenFrontend)
{
    cpu::EdsOptions opts;
    opts.maxInsts = 30000;
    for (const char *wl : {"zip", "perl"}) {
        const isa::Program prog = workloads::build(wl, 1);
        const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
        const cpu::SimStats ref = runWithMode(true, [&] {
            return core::runExecutionDriven(prog, cfg, opts).stats;
        });
        const cpu::SimStats evt = runWithMode(false, [&] {
            return core::runExecutionDriven(prog, cfg, opts).stats;
        });
        expectIdentical(ref, evt, std::string("eds/") + wl);
    }
}

/**
 * Same-cycle multi-completion tie-break regression. The completions_
 * comparator orders by time only: entries completing in the same
 * cycle pop in whatever order the binary heap yields, and that order
 * is observable — a completion processed before a same-cycle
 * mispredict recovery touches the ResultBus and wakes consumers,
 * while one squashed first becomes a stale pop. Both scheduler paths
 * share the event heap, so ref-vs-new comparison alone cannot catch a
 * comparator change (say, a well-meaning seq tie-break); the golden
 * values below pin today's pop order. The trace is fixed and
 * RNG-free, so the numbers are exact.
 */
TEST(SchedEquiv, SameCycleCompletionTieBreak)
{
    // Mixed latencies + mispredicted branches: loads that miss to L2
    // complete in the same cycle as short ALU ops issued later, and
    // wrong-path work is in flight whenever a branch resolves.
    SyntheticTrace trace;
    for (int i = 0; i < 60; ++i) {
        SynthInst ld;
        ld.cls = isa::InstClass::Load;
        ld.isLoad = true;
        ld.hasDest = true;
        ld.dl1Miss = (i % 2) == 0;
        trace.insts.push_back(ld);

        SynthInst mul;
        mul.cls = isa::InstClass::IntMult;
        mul.hasDest = true;
        trace.insts.push_back(mul);

        for (int j = 0; j < 3; ++j) {
            SynthInst alu;
            alu.cls = isa::InstClass::IntAlu;
            alu.hasDest = true;
            alu.numSrcs = 1;
            alu.depDist[0] = static_cast<uint16_t>(j + 1);
            trace.insts.push_back(alu);
        }

        SynthInst br;
        br.cls = isa::InstClass::IntAlu;
        br.isCtrl = true;
        br.outcome = (i % 3 == 0) ? cpu::BranchOutcome::Mispredict
                                  : cpu::BranchOutcome::Correct;
        trace.insts.push_back(br);
    }

    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const cpu::SimStats ref = runWithMode(true, [&] {
        return core::simulateSyntheticTrace(trace, cfg).stats;
    });
    const cpu::SimStats evt = runWithMode(false, [&] {
        return core::simulateSyntheticTrace(trace, cfg).stats;
    });
    expectIdentical(ref, evt, "tie-break");

    // The scenario really does exercise the contested orderings...
    EXPECT_GT(evt.mispredicts, 0u);
    EXPECT_GT(evt.issued, evt.committed);  // wrong-path issues
    // ...and these goldens pin the heap's same-cycle pop order.
    EXPECT_EQ(evt.committed, 360u);
    EXPECT_EQ(evt.cycles, 406u);
    EXPECT_EQ(evt.issued, 476u);
    EXPECT_EQ(evt.ruuSquashed, 274u);
    EXPECT_EQ(
        evt.unitAccesses[static_cast<int>(cpu::PowerUnit::ResultBus)],
        436u);
}

/**
 * The no-progress watchdog counts *executed* cycles: a fast-forward
 * across a memory latency far longer than the 200k-cycle panic
 * threshold must complete, while the skip accounting still reports
 * every cycle. (The reference path would legitimately execute all
 * 250k+ cycles one by one, so this test only runs the event path.)
 */
TEST(SchedEquiv, WatchdogSurvivesL2MissDominatedSkip)
{
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cfg.name = "l2-miss-dominated";
    cfg.memLatency = 250000;

    SyntheticTrace trace;
    SynthInst ld;
    ld.cls = isa::InstClass::Load;
    ld.isLoad = true;
    ld.hasDest = true;
    ld.dl1Miss = true;
    ld.dl2Miss = true;  // main-memory latency dominates
    trace.insts.push_back(ld);
    SynthInst use;
    use.cls = isa::InstClass::IntAlu;
    use.hasDest = true;
    use.numSrcs = 1;
    use.depDist[0] = 1;
    trace.insts.push_back(use);

    unsetenv("SSIM_SCHED_REFERENCE");
    core::StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    const cpu::SimStats &stats = core.run();

    EXPECT_EQ(stats.committed, 2u);
    EXPECT_GT(stats.cycles, 250000u);
    EXPECT_GT(core.sched().skippedCycles, 200000u);
    EXPECT_GE(core.sched().ffSpans, 1u);
}

} // namespace
