/**
 * @file
 * Unit and integration tests for the `ssim serve` engine
 * (serve/server.hh) and its wire protocol (serve/protocol.hh):
 * request parsing, response rendering, bounded admission with load
 * shedding, per-request deadlines with worker recycling, crash
 * isolation with backed-off restarts, graceful drain semantics, and
 * deterministic replay through the real predict function.
 *
 * The process-level behaviors — SIGTERM mid-request, exit codes, the
 * chaos mix — live in cli_serve.cmake; these tests drive the engine
 * in-process where every intermediate state is observable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/predict.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace
{

using namespace ssim;
using namespace ssim::serve;

/** Collects responses; lets tests wait for a count. */
class ResponseSink
{
  public:
    Respond
    responder()
    {
        return [this](const std::string &line) {
            std::lock_guard<std::mutex> lk(mu_);
            lines_.push_back(line);
            cv_.notify_all();
        };
    }

    bool
    waitFor(size_t count, double seconds = 5.0)
    {
        std::unique_lock<std::mutex> lk(mu_);
        return cv_.wait_for(
            lk, std::chrono::duration<double>(seconds),
            [&] { return lines_.size() >= count; });
    }

    std::vector<std::string>
    lines()
    {
        std::lock_guard<std::mutex> lk(mu_);
        return lines_;
    }

    size_t
    countContaining(const std::string &needle)
    {
        std::lock_guard<std::mutex> lk(mu_);
        size_t n = 0;
        for (const auto &line : lines_)
            n += line.find(needle) != std::string::npos;
        return n;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::string> lines_;
};

/** A predict fn that sleeps briefly and returns seed-derived data. */
PredictFn
stubPredict(double sleepSeconds = 0.0)
{
    return [sleepSeconds](const PredictRequest &req) -> Metrics {
        if (sleepSeconds > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(sleepSeconds));
        }
        if (req.workload == "explode")
            throw Error(ErrorCategory::UnknownWorkload,
                        "no such workload");
        return {{"value", static_cast<double>(req.seed) * 2.0}};
    };
}

std::string
predictLine(const std::string &id, double stallMs = 0.0,
            double deadlineMs = 0.0)
{
    std::string line = "{\"id\":\"" + id +
                       "\",\"workload\":\"stub\"";
    if (stallMs > 0)
        line += ",\"stall_ms\":" + std::to_string(stallMs);
    if (deadlineMs > 0)
        line += ",\"deadline_ms\":" + std::to_string(deadlineMs);
    line += "}";
    return line;
}

TEST(ServeProtocol, ParsesFullPredictRequest)
{
    const Expected<Request> req = parseRequestLine(
        "{\"id\":\"r1\",\"type\":\"predict\",\"workload\":\"route\","
        "\"config\":{\"ruu\":32,\"width\":4},\"seed\":7,"
        "\"reduction\":50,\"max_insts\":120000,"
        "\"workload_scale\":2,\"perfect_caches\":true,"
        "\"perfect_bpred\":false,\"deadline_ms\":1500,"
        "\"stall_ms\":10}");
    ASSERT_TRUE(req.ok()) << req.error().what();
    const Request &r = req.value();
    EXPECT_EQ(r.id, "r1");
    EXPECT_EQ(r.type, RequestType::Predict);
    EXPECT_EQ(r.predict.workload, "route");
    ASSERT_EQ(r.predict.config.size(), 2u);
    EXPECT_EQ(r.predict.config[0].first, "ruu");
    EXPECT_EQ(r.predict.config[0].second, 32.0);
    EXPECT_EQ(r.predict.seed, 7u);
    EXPECT_EQ(r.predict.reduction, 50u);
    EXPECT_EQ(r.predict.maxInsts, 120000u);
    EXPECT_EQ(r.predict.workloadScale, 2u);
    EXPECT_TRUE(r.predict.perfectCaches);
    EXPECT_FALSE(r.predict.perfectBpred);
    EXPECT_DOUBLE_EQ(r.deadlineSeconds, 1.5);
    EXPECT_DOUBLE_EQ(r.predict.stallSeconds, 0.01);
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    for (const char *bad : {
             "",
             "not json",
             "{\"id\":\"x\"}",            // predict without workload
             "{\"workload\":\"route\"}",  // missing id
             "{\"id\":\"x\",\"type\":\"nonsense\"}",
             "{\"id\":\"x\",\"bogus\":1}",
             "{\"id\":\"x\",\"workload\":\"w\",\"deadline_ms\":-5}",
         }) {
        const Expected<Request> req = parseRequestLine(bad);
        EXPECT_FALSE(req.ok()) << "accepted: " << bad;
        if (!req.ok()) {
            EXPECT_EQ(req.error().category(),
                      ErrorCategory::ParseError);
        }
    }
}

TEST(ServeProtocol, ResponsesCarryTypedCategoriesAndHints)
{
    const std::string ok =
        renderOkResponse("r1", 7, {{"ipc", 1.5}}, 12.5);
    EXPECT_NE(ok.find("\"id\":\"r1\""), std::string::npos);
    EXPECT_NE(ok.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(ok.find("\"metrics\":{\"ipc\":1.5}"),
              std::string::npos);

    const std::string shed = renderErrorResponse(
        "r2", ErrorCategory::Overloaded, "queue full", 40);
    EXPECT_NE(shed.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(shed.find("\"error\":\"overloaded\""),
              std::string::npos);
    EXPECT_NE(shed.find("\"retry_after_ms\":40"), std::string::npos);

    const std::string dead = renderErrorResponse(
        "r3", ErrorCategory::DeadlineExceeded, "late");
    EXPECT_NE(dead.find("\"error\":\"deadline-exceeded\""),
              std::string::npos);
    EXPECT_EQ(dead.find("retry_after_ms"), std::string::npos);
}

TEST(ServeServer, AnswersPredictHealthAndMetrics)
{
    Server server(stubPredict(), ServeOptions{});
    server.start();
    ResponseSink sink;
    server.submitLine("{\"id\":\"p1\",\"workload\":\"stub\","
                      "\"seed\":21}",
                      sink.responder());
    server.submitLine("{\"id\":\"h1\",\"type\":\"health\"}",
                      sink.responder());
    server.submitLine("{\"id\":\"m1\",\"type\":\"metrics\"}",
                      sink.responder());
    ASSERT_TRUE(sink.waitFor(3));
    EXPECT_EQ(sink.countContaining("\"value\":42"), 1u);
    EXPECT_EQ(sink.countContaining("\"status\":\"serving\""), 1u);
    EXPECT_EQ(sink.countContaining("\"format\":\"ssim-stats\""), 1u);
    server.beginDrain();
    EXPECT_TRUE(server.awaitDrain());
    server.stop();
}

TEST(ServeServer, TypedPredictErrorsReachTheClient)
{
    Server server(stubPredict(), ServeOptions{});
    server.start();
    ResponseSink sink;
    server.submitLine("{\"id\":\"e1\",\"workload\":\"explode\"}",
                      sink.responder());
    server.submitLine("garbage", sink.responder());
    ASSERT_TRUE(sink.waitFor(2));
    EXPECT_EQ(sink.countContaining("\"error\":\"unknown-workload\""),
              1u);
    EXPECT_EQ(sink.countContaining("\"error\":\"parse-error\""), 1u);
    server.stop();
}

TEST(ServeServer, ShedsBeyondQueueCapacityWithRetryHint)
{
    ServeOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 2;
    Server server(stubPredict(0.05), opts);
    server.start();
    ResponseSink sink;
    // One in flight (after dispatch), two queued, the rest shed.
    const size_t total = 8;
    for (size_t i = 0; i < total; ++i)
        server.submitLine(predictLine("q" + std::to_string(i)),
                          sink.responder());
    ASSERT_TRUE(sink.waitFor(total));
    const size_t shed = sink.countContaining("\"error\":\"overloaded\"");
    const size_t ok = sink.countContaining("\"ok\":true");
    EXPECT_GE(shed, total - 3);
    EXPECT_GE(ok, 1u);
    EXPECT_EQ(ok + shed, total);
    EXPECT_EQ(sink.countContaining("\"retry_after_ms\":"), shed);
    server.beginDrain();
    EXPECT_TRUE(server.awaitDrain());
    server.stop();
}

TEST(ServeServer, DeadlineExpiryRecyclesWorkerAndPoolSurvives)
{
    ServeOptions opts;
    opts.workers = 1;
    Server server(stubPredict(), opts);
    server.start();
    ResponseSink sink;
    // Stalls far past its deadline: the watchdog answers and
    // replaces the worker while the stall is still sleeping.
    server.submitLine(predictLine("slow", 400.0, 50.0),
                      sink.responder());
    ASSERT_TRUE(sink.waitFor(1));
    EXPECT_EQ(
        sink.countContaining("\"error\":\"deadline-exceeded\""), 1u);
    // The recycled pool still serves: a fresh request completes
    // even though the stalled thread has ~300ms left to sleep.
    server.submitLine(predictLine("after"), sink.responder());
    ASSERT_TRUE(sink.waitFor(2));
    EXPECT_EQ(sink.countContaining("\"id\":\"after\",\"ok\":true"),
              1u);
    server.beginDrain();
    EXPECT_TRUE(server.awaitDrain());
    server.stop();
}

TEST(ServeServer, CrashedWorkerIsRestartedAndServiceContinues)
{
    ::setenv("SSIM_SERVE_CRASH_ON", "die-1,die-2", 1);
    ServeOptions opts;
    opts.workers = 2;
    opts.restartBackoffSeconds = 0.01;
    opts.restartBackoffCapSeconds = 0.05;
    Server server(stubPredict(), opts);
    server.start();
    ::unsetenv("SSIM_SERVE_CRASH_ON");
    ResponseSink sink;
    server.submitLine(predictLine("die-1"), sink.responder());
    server.submitLine(predictLine("die-2"), sink.responder());
    server.submitLine(predictLine("ok-1"), sink.responder());
    server.submitLine(predictLine("ok-2"), sink.responder());
    ASSERT_TRUE(sink.waitFor(4));
    EXPECT_EQ(sink.countContaining("\"error\":\"worker-crashed\""),
              2u);
    EXPECT_EQ(sink.countContaining("\"ok\":true"), 2u);
    // Both crashes were answered, both restarts happened, and the
    // health view shows a full pool again.
    HealthInfo info;
    for (int i = 0; i < 100 && info.workers < 2; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        info = server.health();
    }
    EXPECT_EQ(info.workers, 2u);
    EXPECT_EQ(info.crashed, 2u);
    server.stop();
}

TEST(ServeServer, DrainRejectsNewWorkAndFinishesAdmittedWork)
{
    ServeOptions opts;
    opts.workers = 1;
    Server server(stubPredict(0.1), opts);
    server.start();
    ResponseSink sink;
    server.submitLine(predictLine("admitted"), sink.responder());
    server.beginDrain();
    server.submitLine(predictLine("rejected"), sink.responder());
    EXPECT_TRUE(server.awaitDrain());
    ASSERT_TRUE(sink.waitFor(2));
    EXPECT_EQ(sink.countContaining("\"id\":\"admitted\",\"ok\":true"),
              1u);
    EXPECT_EQ(sink.countContaining("\"error\":\"shutting-down\""),
              1u);
    EXPECT_TRUE(server.drainComplete());
    server.stop();
}

TEST(ServeServer, DrainBudgetForceFailsStragglers)
{
    ServeOptions opts;
    opts.workers = 1;
    opts.drainBudgetSeconds = 0.05;
    Server server(stubPredict(0.5), opts);
    server.start();
    ResponseSink sink;
    server.submitLine(predictLine("stuck"), sink.responder());
    server.submitLine(predictLine("queued"), sink.responder());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(server.awaitDrain());
    ASSERT_TRUE(sink.waitFor(2));
    // The running request hit the drain deadline; the queued one
    // never started and is told the service shut down.
    EXPECT_EQ(
        sink.countContaining("\"error\":\"deadline-exceeded\""), 1u);
    EXPECT_EQ(sink.countContaining("\"error\":\"shutting-down\""),
              1u);
    server.stop();
}

TEST(ServeServer, RealPredictFnReplaysByteIdenticalMetrics)
{
    // The acceptance property end to end: the same seeded request
    // through the real statistical-simulation predict fn renders a
    // byte-identical metrics object, across two daemon instances.
    const std::string line =
        "{\"id\":\"rep\",\"workload\":\"route\",\"seed\":9,"
        "\"reduction\":50,\"max_insts\":60000,"
        "\"config\":{\"ruu\":32}}";
    auto metricsOf = [&](Server &server) {
        server.start();
        ResponseSink sink;
        server.submitLine(line, sink.responder());
        EXPECT_TRUE(sink.waitFor(1, 30.0));
        const std::string resp = sink.lines().at(0);
        const size_t begin = resp.find("\"metrics\":");
        const size_t end = resp.find(",\"wall_ms\"");
        EXPECT_NE(begin, std::string::npos);
        EXPECT_NE(end, std::string::npos);
        server.stop();
        return resp.substr(begin, end - begin);
    };
    Server first(makeStatSimPredictFn(), ServeOptions{});
    const std::string a = metricsOf(first);
    Server second(makeStatSimPredictFn(), ServeOptions{});
    const std::string b = metricsOf(second);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"ipc\":"), std::string::npos);
}

TEST(ServeProtocol, ParsesBatchRequest)
{
    const Expected<Request> req = parseRequestLine(
        "{\"id\":\"b1\",\"type\":\"batch\",\"jobs\":4,"
        "\"deadline_ms\":2000,\"requests\":["
        "{\"workload\":\"route\",\"seed\":1,\"reduction\":50},"
        "{\"workload\":\"route\",\"seed\":2,"
        "\"config\":{\"ruu\":32}}]}");
    ASSERT_TRUE(req.ok()) << req.error().what();
    const Request &r = req.value();
    EXPECT_EQ(r.type, RequestType::Batch);
    EXPECT_EQ(r.batchJobs, 4u);
    EXPECT_DOUBLE_EQ(r.deadlineSeconds, 2.0);
    ASSERT_EQ(r.batch.size(), 2u);
    EXPECT_EQ(r.batch[0].workload, "route");
    EXPECT_EQ(r.batch[0].seed, 1u);
    EXPECT_EQ(r.batch[0].reduction, 50u);
    EXPECT_EQ(r.batch[1].seed, 2u);
    ASSERT_EQ(r.batch[1].config.size(), 1u);
    EXPECT_EQ(r.batch[1].config[0].first, "ruu");
}

TEST(ServeProtocol, RejectsBadBatchRequests)
{
    for (const char *bad : {
             // empty / missing requests array
             "{\"id\":\"b\",\"type\":\"batch\"}",
             "{\"id\":\"b\",\"type\":\"batch\",\"requests\":[]}",
             // items are predict payloads only: no per-item
             // id/type/deadline
             "{\"id\":\"b\",\"type\":\"batch\",\"requests\":"
             "[{\"id\":\"x\",\"workload\":\"w\"}]}",
             "{\"id\":\"b\",\"type\":\"batch\",\"requests\":"
             "[{\"workload\":\"w\",\"deadline_ms\":5}]}",
             // an item without a workload
             "{\"id\":\"b\",\"type\":\"batch\",\"requests\":"
             "[{\"seed\":3}]}",
             // jobs out of range
             "{\"id\":\"b\",\"type\":\"batch\",\"jobs\":0,"
             "\"requests\":[{\"workload\":\"w\"}]}",
             "{\"id\":\"b\",\"type\":\"batch\",\"jobs\":65,"
             "\"requests\":[{\"workload\":\"w\"}]}",
         }) {
        const Expected<Request> req = parseRequestLine(bad);
        EXPECT_FALSE(req.ok()) << "accepted: " << bad;
        if (!req.ok()) {
            EXPECT_EQ(req.error().category(),
                      ErrorCategory::ParseError);
        }
    }

    // The item cap: MaxBatchItems parse, one more is refused.
    std::string big = "{\"id\":\"b\",\"type\":\"batch\","
                      "\"requests\":[";
    for (size_t i = 0; i <= MaxBatchItems; ++i) {
        if (i)
            big += ',';
        big += "{\"workload\":\"w\"}";
    }
    big += "]}";
    const Expected<Request> req = parseRequestLine(big);
    ASSERT_FALSE(req.ok());
    EXPECT_NE(req.error().message().find("exceeds"),
              std::string::npos);
}

TEST(ServeProtocol, RendersBatchResponsesPerItem)
{
    BatchItemResult ok;
    ok.ok = true;
    ok.seed = 7;
    ok.metrics = {{"ipc", 1.25}};
    BatchItemResult bad;
    bad.ok = false;
    bad.category = ErrorCategory::UnknownWorkload;
    bad.message = "no such workload";
    const std::string out =
        renderBatchResponse("b1", {ok, bad}, 3.5);
    EXPECT_NE(out.find("\"id\":\"b1\""), std::string::npos);
    EXPECT_NE(out.find("\"results\":[{\"ok\":true,\"seed\":7,"
                       "\"metrics\":{\"ipc\":1.25}},"
                       "{\"ok\":false,"
                       "\"error\":\"unknown-workload\","
                       "\"message\":\"no such workload\"}]"),
              std::string::npos);
    EXPECT_NE(out.find("\"wall_ms\":3.5"), std::string::npos);
}

TEST(ServeServer, BatchWithoutBatchFnLoopsThePredictFn)
{
    // No setBatchFn: the dispatching worker answers the batch by
    // looping the PredictFn, with per-item outcomes — a bad item
    // fails alone, the batch itself still succeeds.
    Server server(stubPredict(), ServeOptions{});
    server.start();
    ResponseSink sink;
    server.submitLine(
        "{\"id\":\"b1\",\"type\":\"batch\",\"requests\":["
        "{\"workload\":\"stub\",\"seed\":3},"
        "{\"workload\":\"explode\"},"
        "{\"workload\":\"stub\",\"seed\":5}]}",
        sink.responder());
    ASSERT_TRUE(sink.waitFor(1));
    const std::string resp = sink.lines().at(0);
    EXPECT_NE(resp.find("\"id\":\"b1\",\"ok\":true"),
              std::string::npos);
    EXPECT_NE(resp.find("{\"ok\":true,\"seed\":3,"
                        "\"metrics\":{\"value\":6}}"),
              std::string::npos);
    EXPECT_NE(resp.find("\"error\":\"unknown-workload\""),
              std::string::npos);
    EXPECT_NE(resp.find("{\"ok\":true,\"seed\":5,"
                        "\"metrics\":{\"value\":10}}"),
              std::string::npos);
    server.stop();
}

TEST(ServeServer, BatchFnReceivesItemsAndRequestedJobs)
{
    Server server(stubPredict(), ServeOptions{});
    std::atomic<unsigned> seenJobs{0};
    std::atomic<size_t> seenItems{0};
    server.setBatchFn(
        [&](const std::vector<PredictRequest> &items,
            unsigned jobs) -> std::vector<BatchItemResult> {
            seenJobs = jobs;
            seenItems = items.size();
            std::vector<BatchItemResult> out(items.size());
            for (size_t i = 0; i < items.size(); ++i) {
                out[i].ok = true;
                out[i].seed = items[i].seed;
                out[i].metrics = {
                    {"value", static_cast<double>(items[i].seed)}};
            }
            return out;
        });
    server.start();
    ResponseSink sink;
    server.submitLine(
        "{\"id\":\"b2\",\"type\":\"batch\",\"jobs\":3,"
        "\"requests\":[{\"workload\":\"stub\",\"seed\":11},"
        "{\"workload\":\"stub\",\"seed\":12}]}",
        sink.responder());
    ASSERT_TRUE(sink.waitFor(1));
    EXPECT_EQ(seenJobs.load(), 3u);
    EXPECT_EQ(seenItems.load(), 2u);
    // Item order is preserved: seed 11 before seed 12.
    const std::string resp = sink.lines().at(0);
    EXPECT_LT(resp.find("\"seed\":11"), resp.find("\"seed\":12"));
    server.stop();
}

TEST(ServeServer, RealBatchMatchesIndividualPredicts)
{
    // The ensemble batch path must be bit-identical to the same
    // items sent as individual predict requests: shared generation
    // models and parallel scheduling change wall-clock, never bytes.
    const char *items[2] = {
        "\"workload\":\"route\",\"seed\":9,\"reduction\":50,"
        "\"max_insts\":60000,\"config\":{\"ruu\":32}",
        "\"workload\":\"route\",\"seed\":10,\"reduction\":50,"
        "\"max_insts\":60000,\"config\":{\"ruu\":32}",
    };

    Server single(makeStatSimPredictFn(), ServeOptions{});
    single.start();
    ResponseSink singleSink;
    for (int i = 0; i < 2; ++i) {
        single.submitLine("{\"id\":\"s" + std::to_string(i) + "\"," +
                              items[i] + "}",
                          singleSink.responder());
    }
    ASSERT_TRUE(singleSink.waitFor(2, 60.0));
    single.stop();
    std::string expect[2];
    for (const std::string &resp : singleSink.lines()) {
        const size_t begin = resp.find("\"metrics\":");
        const size_t end = resp.find(",\"wall_ms\"");
        ASSERT_NE(begin, std::string::npos);
        const int slot =
            resp.find("\"seed\":9") != std::string::npos ? 0 : 1;
        expect[slot] = resp.substr(begin, end - begin);
    }

    Server batch(makeStatSimPredictFn(), ServeOptions{});
    batch.setBatchFn(makeStatSimBatchFn());
    batch.start();
    ResponseSink batchSink;
    batch.submitLine(std::string("{\"id\":\"b\",\"type\":\"batch\","
                                 "\"jobs\":2,\"requests\":[{") +
                         items[0] + "},{" + items[1] + "}]}",
                     batchSink.responder());
    ASSERT_TRUE(batchSink.waitFor(1, 60.0));
    batch.stop();
    const std::string resp = batchSink.lines().at(0);
    EXPECT_NE(resp.find("\"ok\":true"), std::string::npos);
    for (int i = 0; i < 2; ++i) {
        ASSERT_FALSE(expect[i].empty());
        EXPECT_NE(resp.find(expect[i]), std::string::npos)
            << "batch item " << i
            << " diverged from its individual predict:\n"
            << resp << "\nexpected to contain:\n"
            << expect[i];
    }
}

TEST(ServeOptionsTest, ValidateRejectsBadKnobs)
{
    ServeOptions opts;
    opts.queueCapacity = 0;
    EXPECT_THROW(opts.validate(), Error);
    opts = ServeOptions{};
    opts.drainBudgetSeconds = 0;
    EXPECT_THROW(opts.validate(), Error);
    opts = ServeOptions{};
    opts.restartBackoffSeconds = 0.5;
    opts.restartBackoffCapSeconds = 0.1;
    EXPECT_THROW(opts.validate(), Error);
    EXPECT_NO_THROW(ServeOptions{}.validate());
}

} // namespace
