/**
 * @file
 * Shared generation models + parallel ensemble simulation.
 *
 * The load-bearing properties:
 *  - util::KeyedOnceCache builds once per key, shares in-flight
 *    builds, lets *distinct* keys build concurrently (the bug the
 *    type exists to fix), retries failed builds, and evicts LRU;
 *  - a GenModel cursor is bit-identical whether the model was built
 *    fresh, came from the cache, or is shared across threads;
 *  - core::runEnsemble is bit-identical (memcmp on each SimStats) to
 *    the serial loop, for OoO and in-order cores, streamed and
 *    materialized alike;
 *  - typed per-job failures come back as failed Expecteds in job
 *    order; SSIM_GEN_MODEL_CACHE=0 changes performance, never bytes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/ensemble.hh"
#include "core/gen_model.hh"
#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "experiments/harness.hh"
#include "util/keyed_once.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

// ---------------------------------------------------------------
// KeyedOnceCache
// ---------------------------------------------------------------

TEST(KeyedOnce, SameKeyBuildsOnceAndShares)
{
    util::KeyedOnceCache<int, int> cache;
    std::atomic<int> builds{0};
    std::vector<std::shared_ptr<const int>> values(8);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < values.size(); ++t) {
        threads.emplace_back([&, t] {
            values[t] = cache.get(7, [&] {
                ++builds;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return std::make_shared<const int>(42);
            });
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(builds.load(), 1);
    for (const auto &v : values) {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v, values[0]) << "waiters must share one object";
    }
    // A wait on an in-flight build counts as a hit: the work was
    // shared even though nothing was cached yet when the wait began.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), values.size() - 1);
}

TEST(KeyedOnce, DistinctKeysBuildConcurrently)
{
    util::KeyedOnceCache<int, int> cache;
    std::promise<void> aStarted, bStarted;
    std::shared_future<void> aFut = aStarted.get_future().share();
    std::shared_future<void> bFut = bStarted.get_future().share();
    // Each build waits for the *other* build to have started. Under
    // the old one-mutex-held-across-build cache the second build
    // cannot start until the first finishes, so this choreography
    // times out; with per-key latches both run at once.
    std::thread ta([&] {
        cache.get(1, [&] {
            aStarted.set_value();
            EXPECT_EQ(bFut.wait_for(std::chrono::seconds(20)),
                      std::future_status::ready)
                << "key 2's build never started while key 1's was "
                   "in flight: builds are serialized";
            return std::make_shared<const int>(1);
        });
    });
    std::thread tb([&] {
        cache.get(2, [&] {
            bStarted.set_value();
            EXPECT_EQ(aFut.wait_for(std::chrono::seconds(20)),
                      std::future_status::ready);
            return std::make_shared<const int>(2);
        });
    });
    ta.join();
    tb.join();
    EXPECT_EQ(cache.size(), 2u);
}

TEST(KeyedOnce, ThrowingBuildIsRetried)
{
    util::KeyedOnceCache<int, int> cache;
    int calls = 0;
    auto boom = [&]() -> std::shared_ptr<const int> {
        ++calls;
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(cache.get(1, boom), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u) << "failed builds must not linger";
    const auto v = cache.get(1, [&] {
        ++calls;
        return std::make_shared<const int>(9);
    });
    EXPECT_EQ(*v, 9);
    EXPECT_EQ(calls, 2);
}

TEST(KeyedOnce, EvictsLeastRecentlyUsedBeyondCapacity)
{
    util::KeyedOnceCache<int, int> cache(2);
    auto build = [](int x) {
        return [x] { return std::make_shared<const int>(x); };
    };
    (void)cache.get(1, build(1));
    (void)cache.get(2, build(2));
    (void)cache.get(1, build(1));   // 1 now more recent than 2
    (void)cache.get(3, build(3));   // evicts 2
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    bool hit = true;
    (void)cache.get(2, build(2), &hit);
    EXPECT_FALSE(hit) << "2 should have been the LRU victim";
    // Re-inserting 2 pushed the cache over capacity again; 1 (the
    // oldest touch by now) is the next victim, 3 survives.
    EXPECT_EQ(cache.evictions(), 2u);
    (void)cache.get(3, build(3), &hit);
    EXPECT_TRUE(hit) << "3 was recent and must have survived";
}

// ---------------------------------------------------------------
// Harness profile cache (the per-key-latch regression surface)
// ---------------------------------------------------------------

TEST(ProfileCache, ConcurrentSameKeyRequestsShareOneProfile)
{
    namespace exp = ssim::experiments;
    const exp::Benchmark bench{
        "cc", "", workloads::build("cc", 1)};
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    exp::StatSimKnobs knobs;
    knobs.maxInsts = 40000;

    std::vector<std::shared_ptr<const core::StatisticalProfile>>
        profiles(4);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < profiles.size(); ++t) {
        threads.emplace_back([&, t] {
            profiles[t] = exp::profileFor(bench, cfg, knobs);
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (const auto &p : profiles) {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p.get(), profiles[0].get())
            << "same key must resolve to one shared profile object";
    }
}

// ---------------------------------------------------------------
// GenModel / GenModelCache determinism
// ---------------------------------------------------------------

class EnsembleFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        const isa::Program prog = workloads::build("zip", 1);
        core::ProfileOptions popts;
        popts.maxInsts = 80000;
        profile_ =
            std::make_shared<const core::StatisticalProfile>(
                core::buildProfile(prog,
                                   cpu::CoreConfig::baseline(),
                                   popts));
    }

    static core::GenerationOptions genOpts(uint64_t seed)
    {
        core::GenerationOptions gopts;
        gopts.reductionFactor = 8;
        gopts.seed = seed;
        return gopts;
    }

    static core::SimResult
    simulateStreamed(const std::shared_ptr<const core::GenModel> &m,
                     uint64_t seed, const cpu::CoreConfig &cfg)
    {
        core::StreamingGenerator gen(
            m, seed, core::requiredStreamLookback(cfg));
        return core::simulateSyntheticStream(gen, cfg, nullptr);
    }

    static void
    expectSameStats(const core::SimResult &a, const core::SimResult &b,
                    const char *what)
    {
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
        EXPECT_EQ(a.stats.committed, b.stats.committed) << what;
        EXPECT_EQ(std::memcmp(&a.stats, &b.stats,
                              sizeof(cpu::SimStats)),
                  0)
            << what;
    }

    static std::shared_ptr<const core::StatisticalProfile> profile_;
};

std::shared_ptr<const core::StatisticalProfile>
    EnsembleFixture::profile_;

TEST_F(EnsembleFixture, FreshCachedAndCrossThreadModelsAgree)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const core::GenerationOptions gopts = genOpts(3);

    // Fresh build: the profile-taking constructor builds a private
    // model internally (the pre-split code path, byte for byte).
    core::StreamingGenerator fresh(
        *profile_, gopts, core::requiredStreamLookback(cfg));
    const core::SimResult a =
        core::simulateSyntheticStream(fresh, cfg, nullptr);

    core::GenModelCache::instance().clear();
    const auto m1 =
        core::GenModelCache::instance().get(profile_, gopts);
    const auto m2 =
        core::GenModelCache::instance().get(profile_, gopts);
    EXPECT_EQ(m1.get(), m2.get()) << "second get must be a cache hit";

    const core::SimResult b = simulateStreamed(m1, 3, cfg);
    const core::SimResult c = simulateStreamed(m2, 3, cfg);

    core::SimResult d;
    std::thread worker(
        [&] { d = simulateStreamed(m1, 3, cfg); });
    worker.join();

    expectSameStats(a, b, "fresh build vs cache miss");
    expectSameStats(b, c, "cache miss vs cache hit");
    expectSameStats(b, d, "same model across threads");

    // The generator metrics feeding core.gen.* registry counters
    // must be byte-stable too: a cache-hit cursor reports the
    // model's deterministic alias-table count, not zero.
    core::StreamingGenerator g1(m1, 3);
    core::StreamingGenerator g2(m2, 3);
    EXPECT_EQ(g1.metrics().aliasTables, g2.metrics().aliasTables);
    EXPECT_GT(g1.metrics().aliasTables, 0u);
}

TEST_F(EnsembleFixture, CacheCountersTrackHitsMissesEvictions)
{
    auto &cache = core::GenModelCache::instance();
    cache.clear();
    const core::GenModelCacheStats before = cache.stats();
    (void)cache.get(profile_, genOpts(1));        // miss (R=8)
    (void)cache.get(profile_, genOpts(5));        // hit: seed ignored
    core::GenerationOptions other = genOpts(1);
    other.reductionFactor = 16;
    (void)cache.get(profile_, other);             // miss (R=16)
    const core::GenModelCacheStats after = cache.stats();
    EXPECT_EQ(after.misses - before.misses, 2u);
    EXPECT_EQ(after.hits - before.hits, 1u);
}

TEST_F(EnsembleFixture, DisabledCacheIsByteIdentical)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const core::GenerationOptions gopts = genOpts(7);

    core::GenModelCache::instance().clear();
    const auto cached =
        core::GenModelCache::instance().get(profile_, gopts);
    const core::SimResult a = simulateStreamed(cached, 7, cfg);

    ::setenv("SSIM_GEN_MODEL_CACHE", "0", 1);
    const auto unshared =
        core::GenModelCache::instance().get(profile_, gopts);
    ::unsetenv("SSIM_GEN_MODEL_CACHE");
    EXPECT_NE(unshared.get(), cached.get())
        << "disabled cache must build privately";
    const core::SimResult b = simulateStreamed(unshared, 7, cfg);
    expectSameStats(a, b, "SSIM_GEN_MODEL_CACHE=0");
}

// ---------------------------------------------------------------
// runEnsemble vs the serial loop
// ---------------------------------------------------------------

TEST_F(EnsembleFixture, MatchesSerialLoopStreamedAndMaterialized)
{
    cpu::CoreConfig ooo = cpu::CoreConfig::baseline();
    cpu::CoreConfig inorder = cpu::CoreConfig::baseline();
    inorder.inOrderIssue = true;

    const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
    for (const cpu::CoreConfig &cfg : {ooo, inorder}) {
        const auto model = core::GenModelCache::instance().get(
            profile_, genOpts(1));

        core::EnsembleOptions eopts;
        eopts.jobs = 4;
        core::EnsembleStats estats;
        const std::vector<core::SimResult> parallelResults =
            core::runSeedEnsemble(model, cfg, seeds, eopts, &estats);
        ASSERT_EQ(parallelResults.size(), seeds.size());
        EXPECT_EQ(estats.tasks, seeds.size());
        EXPECT_EQ(estats.queuePeak, seeds.size());
        EXPECT_GE(estats.threads, 1u);

        // Single-thread ensemble must agree with the multi-thread
        // one (same code path, no pool) ...
        core::EnsembleOptions serialOpts;
        serialOpts.jobs = 1;
        const std::vector<core::SimResult> singleResults =
            core::runSeedEnsemble(model, cfg, seeds, serialOpts);

        for (size_t s = 0; s < seeds.size(); ++s) {
            // ... and both must agree with the plain serial loop,
            // streamed and materialized alike.
            const core::SimResult streamed =
                simulateStreamed(model, seeds[s], cfg);
            const core::SyntheticTrace trace =
                core::generateSyntheticTrace(*profile_,
                                             genOpts(seeds[s]));
            const core::SimResult materialized =
                core::simulateSyntheticTrace(trace, cfg);

            expectSameStats(parallelResults[s], singleResults[s],
                            "jobs=4 vs jobs=1");
            expectSameStats(parallelResults[s], streamed,
                            "ensemble vs serial streamed loop");
            expectSameStats(parallelResults[s], materialized,
                            "ensemble vs materialized loop");
        }
    }
}

TEST_F(EnsembleFixture, MixedConfigJobsKeepJobOrder)
{
    const auto model =
        core::GenModelCache::instance().get(profile_, genOpts(1));
    cpu::CoreConfig small = cpu::CoreConfig::baseline();
    small.ruuSize = 8;
    small.lsqSize = 4;
    std::vector<core::EnsembleJob> jobs = {
        {model, cpu::CoreConfig::baseline(), 2},
        {model, small, 2},
        {model, cpu::CoreConfig::baseline(), 9},
    };
    core::EnsembleOptions eopts;
    eopts.jobs = 3;
    const std::vector<core::SimResult> results =
        core::runEnsemble(jobs, eopts);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        core::StreamingGenerator gen(
            jobs[j].model, jobs[j].seed,
            core::requiredStreamLookback(jobs[j].cfg));
        const core::SimResult serial =
            core::simulateSyntheticStream(gen, jobs[j].cfg, nullptr);
        expectSameStats(results[j], serial, "mixed-config job");
    }
    // Different configs genuinely produced different machines.
    EXPECT_NE(results[0].stats.cycles, results[1].stats.cycles);
}

TEST_F(EnsembleFixture, TypedJobFailuresComeBackInJobOrder)
{
    const auto model =
        core::GenModelCache::instance().get(profile_, genOpts(1));
    std::vector<core::EnsembleJob> jobs = {
        {model, cpu::CoreConfig::baseline(), 1},
        {nullptr, cpu::CoreConfig::baseline(), 2},   // typed failure
        {model, cpu::CoreConfig::baseline(), 3},
    };
    core::EnsembleOptions eopts;
    eopts.jobs = 2;
    const std::vector<Expected<core::SimResult>> results =
        core::runEnsembleExpected(jobs, eopts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].error().category(),
              ErrorCategory::InvalidConfig);
    EXPECT_TRUE(results[2].ok())
        << "a bad job must not poison its neighbours";

    // The strict variant rethrows the first failure in *job* order.
    try {
        (void)core::runEnsemble(jobs, eopts);
        FAIL() << "runEnsemble must rethrow the job-1 failure";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidConfig);
    }
}

TEST_F(EnsembleFixture, EmptyEnsembleIsANoOp)
{
    core::EnsembleStats estats;
    const std::vector<core::SimResult> results =
        core::runEnsemble({}, {}, &estats);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(estats.tasks, 0u);
}

} // namespace
