/**
 * @file
 * Streaming generation contract tests: the streamed path (bounded
 * ring, instructions produced on demand) must be observationally
 * identical to the materialized path — bit-identical instruction
 * streams for the same seed, identical simulation results, correct
 * lookback/eviction behavior, and loud failure on window underrun.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/generator.hh"
#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "util/error.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

cpu::CoreConfig
baseline()
{
    return cpu::CoreConfig::baseline();
}

StatisticalProfile
profileOf(const char *name, uint64_t maxInsts = 400000)
{
    const isa::Program prog = workloads::build(name, 1);
    ProfileOptions popts;
    popts.maxInsts = maxInsts;
    return buildProfile(prog, baseline(), popts);
}

/**
 * The central equivalence claim: for the same profile + options, the
 * incremental source emits exactly the instructions the materialized
 * trace holds, position by position, across the tier-1 workload set.
 */
TEST(Streaming, BitIdenticalToMaterializedAcrossWorkloads)
{
    for (const char *name : {"zip", "route", "cc"}) {
        const StatisticalProfile profile = profileOf(name);
        GenerationOptions gopts;
        gopts.reductionFactor = 10;
        gopts.seed = 7;

        const SyntheticTrace trace =
            generateSyntheticTrace(profile, gopts);
        StreamingGenerator gen(profile, gopts);

        for (uint64_t pos = 0; pos < trace.size(); ++pos) {
            const SynthInst *si = gen.at(pos);
            ASSERT_NE(si, nullptr)
                << name << ": stream ended early at " << pos;
            ASSERT_TRUE(*si == trace.insts[pos])
                << name << ": divergence at position " << pos;
        }
        EXPECT_EQ(gen.at(trace.size()), nullptr)
            << name << ": stream longer than materialized trace";
        EXPECT_TRUE(gen.finished());
        EXPECT_EQ(gen.generated(), trace.size());
    }
}

/** Same claim one level up: identical SimResult from both paths. */
TEST(Streaming, SimResultMatchesMaterializedPath)
{
    for (const char *name : {"zip", "route", "cc"}) {
        const StatisticalProfile profile = profileOf(name);
        GenerationOptions gopts;
        gopts.reductionFactor = 10;
        gopts.seed = 3;

        const SyntheticTrace trace =
            generateSyntheticTrace(profile, gopts);
        const SimResult mat =
            simulateSyntheticTrace(trace, baseline());

        StreamingGenerator gen(
            profile, gopts, requiredStreamLookback(baseline()));
        const SimResult str =
            simulateSyntheticStream(gen, baseline());

        EXPECT_EQ(str.stats.cycles, mat.stats.cycles) << name;
        EXPECT_EQ(str.stats.committed, mat.stats.committed) << name;
        EXPECT_EQ(str.stats.fetched, mat.stats.fetched) << name;
        EXPECT_DOUBLE_EQ(str.ipc, mat.ipc) << name;
        EXPECT_DOUBLE_EQ(str.epc, mat.epc) << name;
        EXPECT_DOUBLE_EQ(str.edp, mat.edp) << name;
    }
}

TEST(Streaming, RevisitWithinLookbackIsStable)
{
    const StatisticalProfile profile = profileOf("zip");
    GenerationOptions gopts;
    gopts.reductionFactor = 20;
    StreamingGenerator gen(profile, gopts);
    ASSERT_GE(gen.lookback(), 512u);

    // Drive forward, then re-read a window behind the frontier the
    // way wrong-path replay does; values must not change.
    const uint64_t frontier = 5000;
    ASSERT_NE(gen.at(frontier), nullptr);
    std::vector<SynthInst> snapshot;
    const uint64_t lo = frontier - 512;
    for (uint64_t p = lo; p <= frontier; ++p)
        snapshot.push_back(*gen.at(p));
    for (uint64_t p = frontier; p >= lo; --p)
        EXPECT_TRUE(*gen.at(p) == snapshot[p - lo]);
}

TEST(Streaming, UnderrunThrowsInternal)
{
    const StatisticalProfile profile = profileOf("zip");
    GenerationOptions gopts;
    gopts.reductionFactor = 20;
    StreamingGenerator gen(profile, gopts);

    // Push the frontier far past the ring, then ask for position 0:
    // the window is gone and the source must refuse loudly.
    ASSERT_NE(gen.at(gen.lookback() + 4096), nullptr);
    try {
        (void)gen.at(0);
        FAIL() << "expected Error(Internal) on lookback underrun";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Internal);
    }
}

TEST(Streaming, FrontendRejectsTooSmallLookback)
{
    const StatisticalProfile profile = profileOf("zip");
    GenerationOptions gopts;
    gopts.reductionFactor = 20;

    cpu::CoreConfig cfg = baseline();
    StreamingGenerator tiny(profile, gopts, 1);
    if (tiny.lookback() >= requiredStreamLookback(cfg)) {
        // The default ring floor already covers this config; grow the
        // required window until it does not.
        cfg.ruuSize = 4096;
        cfg.lsqSize = 2048;
    }
    ASSERT_LT(tiny.lookback(), requiredStreamLookback(cfg));
    EXPECT_THROW(StsFrontend(tiny, cfg), Error);
}

TEST(Streaming, GeneratorMetricsAreConsistent)
{
    const StatisticalProfile profile = profileOf("route");
    GenerationOptions gopts;
    gopts.reductionFactor = 10;
    StreamingGenerator gen(profile, gopts);
    uint64_t pos = 0;
    while (gen.at(pos) != nullptr)
        ++pos;

    const GeneratorMetrics &m = gen.metrics();
    EXPECT_EQ(m.emitted, pos);
    EXPECT_GT(m.blocks, 0u);
    EXPECT_GE(m.startPicks, 1u);
    EXPECT_GT(m.aliasTables, 0u);
    EXPECT_GE(m.buildSeconds, 0.0);
    EXPECT_GE(m.depRetries, m.depSquashes);
}

/** The empty stream must report done() through the frontend path. */
TEST(Streaming, EmptyProfileStreamsEmpty)
{
    StatisticalProfile profile;
    GenerationOptions gopts;
    StreamingGenerator gen(profile, gopts);
    EXPECT_EQ(gen.at(0), nullptr);
    EXPECT_TRUE(gen.finished());
    const SimResult res =
        simulateSyntheticStream(gen, baseline());
    EXPECT_EQ(res.stats.committed, 0u);
}

} // namespace
