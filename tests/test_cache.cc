/**
 * @file
 * Cache, TLB and hierarchy tests: mapping, LRU replacement, miss
 * classification and the serial latency model.
 */

#include <gtest/gtest.h>

#include "cpu/cache/cache.hh"
#include "cpu/cache/hierarchy.hh"
#include "isa/isa.hh"

namespace
{

using namespace ssim::cpu;

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 2, 32, 1});
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x11F));   // same 32B line
    EXPECT_FALSE(cache.access(0x120));  // next line
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, MissRateAccounting)
{
    Cache cache({1024, 2, 32, 1});
    cache.access(0);
    cache.access(0);
    cache.access(0);
    cache.access(32);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways x 32B = 128B cache: lines 0, 2, 4 map to set 0.
    Cache cache({128, 2, 32, 1});
    cache.access(0 * 32);
    cache.access(2 * 32);
    cache.access(0 * 32);        // line 0 is MRU
    cache.access(4 * 32);        // evicts line 2
    EXPECT_TRUE(cache.probe(0 * 32));
    EXPECT_FALSE(cache.probe(2 * 32));
    EXPECT_TRUE(cache.probe(4 * 32));
}

TEST(Cache, ProbeDoesNotAllocateOrCount)
{
    Cache cache({1024, 2, 32, 1});
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.probe(0x40));
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache({1024, 2, 32, 1});
    cache.access(0x40);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x40));
}

TEST(Cache, FullyUsesCapacity)
{
    // 4KB direct-ish cache: 64 distinct lines all fit in a 2-way
    // 128-set... here 4KB/2/32 = 64 sets; access 128 distinct lines
    // (2 per set) and verify all resident.
    Cache cache({4096, 2, 32, 1});
    for (uint64_t line = 0; line < 128; ++line)
        cache.access(line * 32);
    int resident = 0;
    for (uint64_t line = 0; line < 128; ++line)
        resident += cache.probe(line * 32) ? 1 : 0;
    EXPECT_EQ(resident, 128);
}

TEST(Tlb, PageGranularity)
{
    Tlb tlb({32, 8, 4096, 30});
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1FFF));    // same page
    EXPECT_FALSE(tlb.access(0x2000));   // next page
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb({4, 4, 4096, 30});
    for (uint64_t p = 0; p < 5; ++p)
        tlb.access(p * 4096);
    // 5 pages through a 4-entry fully-associative TLB: one evicted.
    uint64_t missesBefore = tlb.misses();
    tlb.access(0);
    EXPECT_EQ(tlb.misses(), missesBefore + 1);
}

TEST(Hierarchy, L1HitLatency)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    mem.dataAccess(0x100, false);
    const MemAccessResult res = mem.dataAccess(0x100, false);
    EXPECT_FALSE(res.l1Miss);
    EXPECT_EQ(res.latency, cfg.dl1.latency);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    const MemAccessResult res = mem.dataAccess(0x100, false);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_TRUE(res.l2Miss);
    EXPECT_TRUE(res.tlbMiss);
    EXPECT_EQ(res.latency, cfg.dl1.latency + cfg.l2.latency +
              cfg.memLatency + cfg.dtlb.missPenalty);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    // Touch a line, then flood L1 (16KB, 4-way) with a 64KB sweep;
    // the original line stays in the 1MB L2.
    mem.dataAccess(0, false);
    for (uint64_t a = 0x10000; a < 0x20000; a += 32)
        mem.dataAccess(a, false);
    const MemAccessResult res = mem.dataAccess(0, false);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_FALSE(res.l2Miss);
}

TEST(Hierarchy, SplitsL2StatisticsByInstAndData)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    mem.instAccess(ssim::isa::TextBase);
    mem.dataAccess(ssim::isa::DataBase, false);
    EXPECT_EQ(mem.l2InstAccesses(), 1u);
    EXPECT_EQ(mem.l2DataAccesses(), 1u);
    EXPECT_EQ(mem.l2InstMisses(), 1u);
    EXPECT_EQ(mem.l2DataMisses(), 1u);
}

TEST(Hierarchy, InstAndDataTlbsAreSeparate)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    mem.instAccess(ssim::isa::TextBase);
    EXPECT_EQ(mem.itlb().misses(), 1u);
    EXPECT_EQ(mem.dtlb().misses(), 0u);
}

TEST(Hierarchy, UnifiedL2SharedBetweenSides)
{
    CoreConfig cfg = CoreConfig::baseline();
    MemoryHierarchy mem(cfg);
    // Instruction access warms the unified L2 for the same address.
    mem.instAccess(0x5000);
    // Evict nothing: a data access to the same line hits L2 (after an
    // L1D miss).
    const MemAccessResult res = mem.dataAccess(0x5000, false);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_FALSE(res.l2Miss);
}

TEST(CacheConfig, ScalingKeepsGeometryValid)
{
    CacheConfig base{16 * 1024, 4, 32, 2};
    const CacheConfig doubled = base.scaled(2.0);
    EXPECT_EQ(doubled.sizeBytes, 32u * 1024);
    const CacheConfig tiny = base.scaled(1.0 / 1024.0);
    EXPECT_GE(tiny.sizeBytes, tiny.assoc * tiny.lineBytes);
    Cache c(tiny);   // must not panic
    c.access(0);
}

} // namespace
