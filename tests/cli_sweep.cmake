# CTest script: end-to-end contract of `ssim sweep` — journaled runs,
# crash-resume determinism, and watchdog timeouts.
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>
#              -DMODE=<smoke|crash|timeout>.

set(dir "${WORK_DIR}/cli_sweep_${MODE}")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

# A small 4-point sweep used by every mode. `--lsq 16` keeps every
# grid point a valid configuration. The mode appends its own
# --reduction: heavy reduction for speed where wall time does not
# matter, light reduction where points must run long enough for the
# watchdog to catch them.
set(sweep_args sweep route --grid ruu=32,64 --grid width=2,4
    --lsq 16 --max 120000 --jobs 2)

function(run_sweep rc_var out_var err_var)
    execute_process(COMMAND "${SSIM_CLI}" ${sweep_args} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    set(${rc_var} "${rc}" PARENT_SCOPE)
    set(${out_var} "${out}" PARENT_SCOPE)
    set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# Extract "point -> metrics" pairs from the journal's ok records as a
# sorted list, ignoring attempt counts and record order so that a
# resumed run can be compared byte-for-byte against a clean one.
function(ok_metrics journal result_var)
    file(STRINGS "${journal}" lines)
    set(pairs "")
    foreach(line IN LISTS lines)
        if(line MATCHES "\"event\":\"done\"" AND
           line MATCHES "\"status\":\"ok\"")
            string(REGEX MATCH "\"point\":([0-9]+)" _ "${line}")
            set(point "${CMAKE_MATCH_1}")
            string(REGEX MATCH "\"metrics\":{[^}]*}" metrics "${line}")
            list(APPEND pairs "${point} ${metrics}")
        endif()
    endforeach()
    list(SORT pairs)
    set(${result_var} "${pairs}" PARENT_SCOPE)
endfunction()

function(count_status journal status result_var)
    file(STRINGS "${journal}" lines)
    set(n 0)
    foreach(line IN LISTS lines)
        if(line MATCHES "\"event\":\"done\"" AND
           line MATCHES "\"status\":\"${status}\"")
            math(EXPR n "${n} + 1")
        endif()
    endforeach()
    set(${result_var} "${n}" PARENT_SCOPE)
endfunction()

if(MODE STREQUAL "smoke")
    # Fresh 4-point sweep: everything runs, everything is journaled.
    set(journal "${dir}/smoke.jsonl")
    run_sweep(rc out err --reduction 50 --journal "${journal}")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "sweep: 4 ok, 0 error, 0 timeout, 0 crashed")
        message(FATAL_ERROR "unexpected summary:\n${out}")
    endif()
    if(NOT out MATCHES "re-ran 4 points, reused 0 from journal")
        message(FATAL_ERROR "expected a fully fresh run:\n${out}")
    endif()
    count_status("${journal}" ok n_ok)
    if(NOT n_ok EQUAL 4)
        message(FATAL_ERROR "journal has ${n_ok} ok records, want 4")
    endif()
    ok_metrics("${journal}" before)

    # Resume: nothing re-runs, the journal's metrics are untouched.
    run_sweep(rc out err --reduction 50 --journal "${journal}" --resume)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "resume failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "re-ran 0 points, reused 4 from journal")
        message(FATAL_ERROR "resume re-ran points:\n${out}")
    endif()
    ok_metrics("${journal}" after)
    if(NOT before STREQUAL after)
        message(FATAL_ERROR
            "resume changed journal metrics\nbefore: ${before}\n"
            "after: ${after}")
    endif()

elseif(MODE STREQUAL "crash")
    # Reference: an uninterrupted run of the same sweep.
    set(ref "${dir}/ref.jsonl")
    run_sweep(rc out err --reduction 50 --journal "${ref}")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "reference sweep failed (rc=${rc})\n${err}")
    endif()

    # Kill the process (SIGKILL, no cleanup) after the 2nd completed
    # point, then resume from the journal it left behind.
    set(journal "${dir}/crash.jsonl")
    set(ENV{SSIM_SWEEP_CRASH_AFTER} "2")
    run_sweep(rc out err --reduction 50 --journal "${journal}")
    unset(ENV{SSIM_SWEEP_CRASH_AFTER})
    if(rc EQUAL 0)
        message(FATAL_ERROR "crash injection did not fire")
    endif()
    count_status("${journal}" ok n_ok)
    if(NOT n_ok EQUAL 2)
        message(FATAL_ERROR
            "expected exactly 2 ok records after the crash, "
            "got ${n_ok}")
    endif()

    run_sweep(rc out err --reduction 50 --journal "${journal}" --resume)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "resume failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "4 ok")
        message(FATAL_ERROR "resume did not complete the sweep:\n${out}")
    endif()

    # The acceptance bar: per-point metrics after crash+resume are
    # byte-identical to the uninterrupted run.
    ok_metrics("${ref}" expected)
    ok_metrics("${journal}" resumed)
    if(NOT expected STREQUAL resumed)
        message(FATAL_ERROR
            "crash+resume metrics differ from clean run\n"
            "clean:   ${expected}\nresumed: ${resumed}")
    endif()

elseif(MODE STREQUAL "timeout")
    # A budget no simulation can meet (0.1 ms) on points made slow
    # enough (--reduction 2) that the watchdog always catches them:
    # the points are journaled as `timeout` and the sweep still
    # terminates cleanly with exit 0.
    set(journal "${dir}/timeout.jsonl")
    run_sweep(rc out err --reduction 2 --journal "${journal}"
        --point-timeout 0.0001 --retries 0)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep should survive timeouts "
            "(rc=${rc})\n${err}")
    endif()
    count_status("${journal}" timeout n_timeout)
    if(n_timeout LESS 1)
        message(FATAL_ERROR "no timeout records in journal:\n${out}")
    endif()
    if(NOT err MATCHES "timeout")
        message(FATAL_ERROR "timed-out points not reported on "
            "stderr:\n${err}")
    endif()

else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
