# CTest script: the ssim CLI must turn typed library errors into the
# documented exit codes with a diagnostic on stderr (never a crash).
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>.

set(dir "${WORK_DIR}/cli_exit_codes")
file(MAKE_DIRECTORY "${dir}")

function(expect_exit code stderr_substr)
    # Remaining arguments form the ssim command line.
    execute_process(COMMAND "${SSIM_CLI}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc STREQUAL "${code}")
        message(FATAL_ERROR
            "ssim ${ARGN}: expected exit ${code}, got '${rc}'\n"
            "stderr: ${err}")
    endif()
    if(stderr_substr AND NOT err MATCHES "${stderr_substr}")
        message(FATAL_ERROR
            "ssim ${ARGN}: stderr lacks '${stderr_substr}'\n"
            "stderr: ${err}")
    endif()
endfunction()

# A healthy profile simulates cleanly (exit 0).
set(good "${dir}/route.prof")
expect_exit(0 "" profile route -o "${good}" --max 150000)
expect_exit(0 "" simulate "${good}" --reduction 50)

# Usage errors: unknown flag, missing value, bad number -> 2.
expect_exit(2 "unknown option" eds route --bogus-flag)
expect_exit(2 "requires a value" simulate "${good}" --reduction)
expect_exit(2 "got 'banana'" simulate "${good}" --reduction banana)

# Invalid configuration -> 3.
expect_exit(3 "ruuSize" simulate "${good}" --ruu 0)

# Foreign file -> parse error 4.
file(WRITE "${dir}/foreign.prof" "not-a-profile 1\n")
expect_exit(4 "not a ssim profile" simulate "${dir}/foreign.prof")

# Damaged payload (appended bytes break the declared length) -> 5.
file(READ "${good}" text)
file(WRITE "${dir}/damaged.prof" "${text}999999\n")
expect_exit(5 "" simulate "${dir}/damaged.prof")

# Truncated payload -> 5.
file(READ "${good}" half LIMIT 2048)
file(WRITE "${dir}/truncated.prof" "${half}")
expect_exit(5 "truncated" simulate "${dir}/truncated.prof")

# Future format version -> 6.
file(WRITE "${dir}/future.prof"
    "ssim-profile 999 0000000000000000 0\n")
expect_exit(6 "version" simulate "${dir}/future.prof")

# Missing file -> I/O error 7.
expect_exit(7 "" simulate "${dir}/does-not-exist.prof")

# Unknown workload -> 8.
expect_exit(8 "unknown workload" eds no-such-benchmark)
