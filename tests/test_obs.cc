/**
 * @file
 * Observability subsystem tests: registry registration rules (name
 * validation, kind collisions, re-opening), histogram bucket-edge
 * semantics, the exporters' rendered formats, the shared fetch-stall
 * gate, and the contract that attaching telemetry does not change
 * simulation results (only observes them).
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "cpu/config.hh"
#include "cpu/pipeline/telemetry.hh"
#include "obs/export_json.hh"
#include "obs/export_trace.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;

ErrorCategory
categoryOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const Error &e) {
        return e.category();
    }
    ADD_FAILURE() << "expected ssim::Error, none thrown";
    return ErrorCategory::Internal;
}

// --- Registry ------------------------------------------------------

TEST(ObsRegistry, CounterRoundTrip)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("core.commit.insts");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(reg.size(), 1u);

    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    EXPECT_EQ(snap.entries[0].name, "core.commit.insts");
    EXPECT_EQ(snap.entries[0].kind, obs::InstrumentKind::Counter);
    EXPECT_EQ(snap.entries[0].counterValue, 42u);
}

TEST(ObsRegistry, ReopenSameKindReturnsSameInstrument)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("sweep.points.ok");
    obs::Counter &b = reg.counter("sweep.points.ok");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);

    obs::Histogram &h1 = reg.histogram("core.occ", {1.0, 2.0});
    obs::Histogram &h2 = reg.histogram("core.occ", {1.0, 2.0});
    EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, KindCollisionThrowsInvalidArgument)
{
    obs::Registry reg;
    reg.counter("core.cycles");
    EXPECT_EQ(categoryOf([&] { reg.gauge("core.cycles"); }),
              ErrorCategory::InvalidArgument);
    EXPECT_EQ(
        categoryOf([&] { reg.histogram("core.cycles", {1.0}); }),
        ErrorCategory::InvalidArgument);
    // A histogram reopened with different bounds is also a collision:
    // same name, different meaning.
    reg.histogram("core.occ", {1.0, 2.0});
    EXPECT_EQ(
        categoryOf([&] { reg.histogram("core.occ", {1.0, 4.0}); }),
        ErrorCategory::InvalidArgument);
    // The registry is still usable after rejected registrations.
    EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, RejectsInvalidNames)
{
    obs::Registry reg;
    for (const char *bad :
         {"", ".", "a..b", ".a", "a.", "A.b", "a b", "core.IPC",
          "core/ipc"}) {
        EXPECT_FALSE(obs::Registry::validName(bad)) << bad;
        EXPECT_EQ(categoryOf([&] { reg.counter(bad); }),
                  ErrorCategory::InvalidArgument)
            << bad;
    }
    for (const char *good :
         {"a", "core.commit.ipc", "sweep.points.ok", "l2.inst-misses",
          "stall.ruu_full", "x0.y1"}) {
        EXPECT_TRUE(obs::Registry::validName(good)) << good;
    }
}

TEST(ObsRegistry, SnapshotIsNameSorted)
{
    obs::Registry reg;
    reg.counter("zeta");
    reg.gauge("alpha");
    reg.counter("mid.point");
    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    EXPECT_EQ(snap.entries[0].name, "alpha");
    EXPECT_EQ(snap.entries[1].name, "mid.point");
    EXPECT_EQ(snap.entries[2].name, "zeta");
}

TEST(ObsRegistry, ComputedGaugeEvaluatedAtSnapshot)
{
    obs::Registry reg;
    double live = 1.0;
    reg.gaugeFn("sweep.eta-seconds", [&] { return live; });
    live = 7.5;
    const obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    EXPECT_EQ(snap.entries[0].gaugeValue, 7.5);
    // A computed gauge cannot be re-opened as a plain one.
    EXPECT_EQ(categoryOf([&] { reg.gauge("sweep.eta-seconds"); }),
              ErrorCategory::InvalidArgument);
}

// --- Histogram -----------------------------------------------------

TEST(ObsHistogram, BucketEdgesAreClosedAbove)
{
    obs::Histogram h({1.0, 2.0, 4.0});
    h.observe(0.0);    // bucket 0
    h.observe(1.0);    // bucket 0: bound is a closed upper edge
    h.observe(1.5);    // bucket 1
    h.observe(2.0);    // bucket 1
    h.observe(4.0);    // bucket 2
    h.observe(4.001);  // overflow
    h.observe(100.0);  // overflow

    ASSERT_EQ(h.bucketCounts().size(), 4u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 2u);
    EXPECT_EQ(h.bucketCounts()[2], 1u);
    EXPECT_EQ(h.bucketCounts()[3], 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 2.0 + 4.0 + 4.001 +
                                  100.0);
}

TEST(ObsHistogram, RejectsDegenerateBounds)
{
    EXPECT_EQ(categoryOf([] { obs::Histogram h({}); }),
              ErrorCategory::InvalidArgument);
    EXPECT_EQ(categoryOf([] { obs::Histogram h({1.0, 1.0}); }),
              ErrorCategory::InvalidArgument);
    EXPECT_EQ(categoryOf([] { obs::Histogram h({2.0, 1.0}); }),
              ErrorCategory::InvalidArgument);
}

TEST(ObsHistogram, AddToBucketAndMerge)
{
    obs::Histogram a({10.0, 20.0});
    a.addToBucket(0, 5, 25.0);
    a.addToBucket(2, 1, 30.0);

    obs::Histogram b({10.0, 20.0});
    b.observe(15.0);
    a.merge(b);

    EXPECT_EQ(a.count(), 7u);
    EXPECT_DOUBLE_EQ(a.sum(), 70.0);
    EXPECT_EQ(a.bucketCounts()[0], 5u);
    EXPECT_EQ(a.bucketCounts()[1], 1u);
    EXPECT_EQ(a.bucketCounts()[2], 1u);

    obs::Histogram c({1.0});
    EXPECT_EQ(categoryOf([&] { a.merge(c); }),
              ErrorCategory::InvalidArgument);
}

TEST(ObsHistogram, OccupancyBoundsCoverCapacity)
{
    const std::vector<double> b64 = obs::occupancyBounds(64, 8);
    ASSERT_EQ(b64.size(), 8u);
    for (size_t i = 1; i < b64.size(); ++i)
        EXPECT_LT(b64[i - 1], b64[i]);
    EXPECT_EQ(b64.back(), 64.0);

    // Structures smaller than the bucket budget get one bucket per
    // occupancy value.
    const std::vector<double> b3 = obs::occupancyBounds(3, 8);
    ASSERT_EQ(b3.size(), 3u);
    EXPECT_EQ(b3.back(), 3.0);
}

// --- Exporters -----------------------------------------------------

obs::RunManifest
testManifest()
{
    obs::RunManifest m = obs::makeManifest("test");
    m.workload = "zip";
    m.configHash = 0xdeadbeefull;
    m.seed = 7;
    return m;
}

TEST(ObsExport, StatsJsonFormatAndDeterminism)
{
    obs::Registry reg;
    reg.counter("core.cycles").set(123);
    reg.gauge("core.commit.ipc").set(1.5);
    reg.histogram("core.occ", {1.0, 2.0}).observe(1.5);

    const std::string a = obs::renderStatsJson(reg.snapshot(),
                                               testManifest());
    const std::string b = obs::renderStatsJson(reg.snapshot(),
                                               testManifest());
    EXPECT_EQ(a, b);   // rendering is pure

    EXPECT_NE(a.find("\"format\":\"ssim-stats\""), std::string::npos);
    EXPECT_NE(a.find("\"version\":1"), std::string::npos);
    EXPECT_NE(a.find("\"command\":\"test\""), std::string::npos);
    EXPECT_NE(a.find("\"workload\":\"zip\""), std::string::npos);
    EXPECT_NE(a.find("\"seed\":7"), std::string::npos);
    EXPECT_NE(a.find("\"core.cycles\":123"), std::string::npos);
    EXPECT_NE(a.find("\"core.commit.ipc\":1.5"), std::string::npos);
    EXPECT_NE(a.find("\"bounds\":[1,2]"), std::string::npos);
    EXPECT_NE(a.find("\"counts\":[0,1,0]"), std::string::npos);
    // No profile checksum was declared, so the key must be absent.
    EXPECT_EQ(a.find("profile_checksum"), std::string::npos);
}

TEST(ObsExport, TraceEventsRenderWithTracksAndMarkers)
{
    obs::TraceLog log;
    log.processName(0, "ssim sweep");
    log.threadName(1, "worker 0");
    log.complete("pointA", "point", 10.0, 5.0, 1,
                 {obs::TraceArg::u64("attempt", 1),
                  obs::TraceArg::str("status", "ok")});
    log.instant("timeout pointB", "watchdog", 20.0, 1);
    log.counter("core.ipc", 30.0, 0,
                {obs::TraceArg::num("ipc", 1.25)});
    EXPECT_EQ(log.size(), 5u);

    const std::string doc = log.render(testManifest());
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ssim-trace\""), std::string::npos);
    // Metadata events carry no timestamp; instants are thread-scoped.
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":5"), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"status\":\"ok\""), std::string::npos);
}

// --- FetchTelemetry (the shared frontend stall gate) ---------------

TEST(ObsFetchTelemetry, ChargesStallCyclesToTheRightCause)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cpu::FetchTelemetry ft(cfg);
    cpu::SimStats stats;

    EXPECT_FALSE(ft.stalled(0, stats));

    ft.icacheStall(0, 3);
    EXPECT_TRUE(ft.stalled(0, stats));
    EXPECT_TRUE(ft.stalled(1, stats));
    EXPECT_TRUE(ft.stalled(2, stats));
    EXPECT_FALSE(ft.stalled(3, stats));
    EXPECT_EQ(stats.stallCycles[static_cast<size_t>(
                  cpu::StallCause::IcacheMiss)],
              3u);

    ft.mispredictRecovery(10);
    for (uint64_t c = 10; c < 10 + cfg.mispredictPenalty; ++c)
        EXPECT_TRUE(ft.stalled(c, stats));
    EXPECT_FALSE(ft.stalled(10 + cfg.mispredictPenalty, stats));
    EXPECT_EQ(stats.stallCycles[static_cast<size_t>(
                  cpu::StallCause::MispredictRecovery)],
              cfg.mispredictPenalty);

    // A redirect never shortens an existing stall window (the
    // original frontends used max()), but it does take over the
    // cause attribution.
    ft.icacheStall(100, 50);
    ft.redirect(100);
    EXPECT_TRUE(ft.stalled(100 + cfg.redirectPenalty, stats));
    EXPECT_FALSE(ft.stalled(150, stats));
    EXPECT_GT(stats.stallCycles[static_cast<size_t>(
                  cpu::StallCause::FetchRedirect)],
              0u);
}

TEST(ObsFetchTelemetry, BudgetIsCappedByFetchBurst)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const cpu::FetchTelemetry ft(cfg);
    const uint32_t burst = cfg.decodeWidth * cfg.fetchSpeed;
    EXPECT_EQ(ft.budget(burst + 10), burst);
    EXPECT_EQ(ft.budget(1), 1u);
}

// --- End to end: telemetry observes, never perturbs ----------------

TEST(ObsIntegration, AttachedTelemetryDoesNotChangeResults)
{
    const isa::Program prog = workloads::build("zip", 1);
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    core::ProfileOptions popts;
    popts.maxInsts = 20000;
    const core::StatisticalProfile profile =
        core::buildProfile(prog, cfg, popts);
    core::GenerationOptions gopts;
    gopts.reductionFactor = 10;
    const core::SyntheticTrace trace =
        core::generateSyntheticTrace(profile, gopts);

    const core::SimResult plain =
        core::simulateSyntheticTrace(trace, cfg);

    obs::Registry reg;
    obs::TraceLog traceLog;
    core::ObsSink sink;
    sink.registry = &reg;
    sink.trace = &traceLog;
    sink.windowCycles = 1000;
    const core::SimResult observed =
        core::simulateSyntheticTrace(trace, cfg, &sink);

    // Identical timing: the sink only observes the run.
    EXPECT_EQ(observed.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(observed.stats.committed, plain.stats.committed);
    EXPECT_DOUBLE_EQ(observed.ipc, plain.ipc);
    EXPECT_DOUBLE_EQ(observed.epc, plain.epc);

    // The published registry re-derives the same SimStats the report
    // path prints.
    uint64_t cycles = 0, insts = 0, stalls = 0, occCycles = 0;
    double ipc = -1.0;
    for (const obs::SnapshotEntry &e : reg.snapshot().entries) {
        if (e.name == "core.cycles")
            cycles = e.counterValue;
        else if (e.name == "core.commit.insts")
            insts = e.counterValue;
        else if (e.name == "core.commit.ipc")
            ipc = e.gaugeValue;
        else if (e.name.rfind("core.stall.", 0) == 0)
            stalls += e.counterValue;
        else if (e.name == "core.ruu.occupancy")
            occCycles = e.histCount;
    }
    EXPECT_EQ(cycles, plain.stats.cycles);
    EXPECT_EQ(insts, plain.stats.committed);
    EXPECT_DOUBLE_EQ(ipc, plain.ipc);
    // Every simulated cycle was occupancy-sampled exactly once.
    EXPECT_EQ(occCycles, plain.stats.cycles);
    // Stall cycles are a subset of all cycles.
    EXPECT_LE(stalls, 3 * cycles);
    EXPECT_GT(stalls, 0u);

    // The trace sink saw the windowed IPC counter track.
    EXPECT_GT(traceLog.size(), 1u);
}

} // namespace
