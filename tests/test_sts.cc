/**
 * @file
 * Synthetic-trace frontend specifics (section 2.3): wrong-path fill
 * and re-fetch semantics, dependency resolution across squashes,
 * fetch-redirect handling, and power accounting parity.
 */

#include <gtest/gtest.h>

#include "core/sts_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"

namespace
{

using namespace ssim;
using core::StsFrontend;
using core::SynthInst;
using core::SyntheticTrace;
using cpu::BranchOutcome;
using cpu::CoreConfig;
using cpu::DynInst;
using cpu::SimStats;

SynthInst
alu()
{
    SynthInst si;
    si.hasDest = true;
    return si;
}

SynthInst
branch(BranchOutcome outcome, bool taken = true)
{
    SynthInst si;
    si.cls = isa::InstClass::IntCondBranch;
    si.isCtrl = true;
    si.taken = taken;
    si.outcome = outcome;
    return si;
}

SimStats
run(const SyntheticTrace &trace, const CoreConfig &cfg)
{
    StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    return core.run();
}

TEST(StsFrontend, WrongPathFillReusesUpcomingInstructions)
{
    // One mispredicted branch followed by 100 instructions: the
    // trace instructions after the branch are fetched twice (once as
    // wrong-path fill, once for real) but committed once.
    SyntheticTrace trace;
    trace.insts.push_back(branch(BranchOutcome::Mispredict));
    for (int i = 0; i < 100; ++i)
        trace.insts.push_back(alu());
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 101u);
    EXPECT_GT(stats.fetched, 110u);   // wrong-path fill happened
    EXPECT_EQ(stats.mispredicts, 1u);
}

TEST(StsFrontend, ConsecutiveMispredictsResolveInOrder)
{
    SyntheticTrace trace;
    for (int i = 0; i < 20; ++i) {
        trace.insts.push_back(branch(BranchOutcome::Mispredict));
        for (int j = 0; j < 5; ++j)
            trace.insts.push_back(alu());
    }
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_EQ(stats.committed, trace.size());
    EXPECT_EQ(stats.mispredicts, 20u);
}

TEST(StsFrontend, RedirectSquashesOnlyTheIfq)
{
    // Redirects cost far less than mispredicts and never squash the
    // window; the committed count is exact either way.
    SyntheticTrace trace;
    for (int i = 0; i < 30; ++i) {
        trace.insts.push_back(branch(BranchOutcome::FetchRedirect));
        for (int j = 0; j < 4; ++j)
            trace.insts.push_back(alu());
    }
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_EQ(stats.committed, trace.size());
    EXPECT_EQ(stats.fetchRedirects, 30u);
    EXPECT_EQ(stats.mispredicts, 0u);
}

TEST(StsFrontend, DependenciesSurviveWrongPathReplay)
{
    // A dependent chain crossing a mispredicted branch must still
    // serialize after the squash-and-refetch.
    SyntheticTrace trace;
    for (int i = 0; i < 200; ++i) {
        if (i == 100) {
            trace.insts.push_back(branch(BranchOutcome::Mispredict));
            continue;
        }
        SynthInst si = alu();
        si.numSrcs = 1;
        // Skip over the (destination-less) branch at position 100 so
        // the chain stays unbroken, as the generator guarantees.
        si.depDist[0] = i == 0 ? 0 : (i == 101 ? 2 : 1);
        trace.insts.push_back(si);
    }
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 200u);
    // Chain of ~200 single-cycle ops plus one recovery.
    EXPECT_GT(stats.cycles, 180u);
}

TEST(StsFrontend, MispredictDirectlyBeforeTraceEnd)
{
    SyntheticTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.insts.push_back(alu());
    trace.insts.push_back(branch(BranchOutcome::Mispredict));
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 11u);
}

TEST(StsFrontend, NotTakenBranchesDoNotThrottleFetch)
{
    SyntheticTrace taken, notTaken;
    for (int i = 0; i < 2000; ++i) {
        taken.insts.push_back(branch(BranchOutcome::Correct, true));
        notTaken.insts.push_back(
            branch(BranchOutcome::Correct, false));
    }
    const CoreConfig cfg = CoreConfig::baseline();
    EXPECT_LT(run(notTaken, cfg).cycles, run(taken, cfg).cycles);
}

TEST(StsFrontend, BpredPowerChargedWithoutBpredModel)
{
    // The synthetic simulator models no predictor, but the machine
    // being projected has one: activity must still be charged.
    SyntheticTrace trace;
    for (int i = 0; i < 100; ++i)
        trace.insts.push_back(branch(BranchOutcome::Correct, false));
    const SimStats stats = run(trace, CoreConfig::baseline());
    EXPECT_GT(stats.unitAccesses[static_cast<int>(
                  cpu::PowerUnit::Bpred)], 100u);
}

TEST(StsFrontend, ICacheAccessFlagGatesPowerAccounting)
{
    SyntheticTrace noAccess, withAccess;
    for (int i = 0; i < 100; ++i) {
        noAccess.insts.push_back(alu());
        SynthInst si = alu();
        si.il1Access = true;
        withAccess.insts.push_back(si);
    }
    const CoreConfig cfg = CoreConfig::baseline();
    const auto icache = static_cast<int>(cpu::PowerUnit::ICache);
    EXPECT_EQ(run(noAccess, cfg).unitAccesses[icache], 0u);
    EXPECT_EQ(run(withAccess, cfg).unitAccesses[icache], 100u);
}

TEST(StsFrontend, WrongPathLoadsUseBaseLatency)
{
    // Loads on the wrong path (between a flagged mispredict and its
    // resolution) must not charge their miss flags.
    SyntheticTrace trace;
    trace.insts.push_back(branch(BranchOutcome::Mispredict));
    for (int i = 0; i < 50; ++i) {
        SynthInst si;
        si.cls = isa::InstClass::Load;
        si.isLoad = true;
        si.hasDest = true;
        si.dl1Miss = true;
        si.dl2Miss = true;   // would be catastrophic if charged twice
        trace.insts.push_back(si);
    }
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = run(trace, cfg);
    EXPECT_EQ(stats.committed, 51u);
    // Cost: one mispredict + 50 L2-missing loads (pipelined through
    // 4 ports), far below 50 serial memory round trips.
    EXPECT_LT(stats.cycles, 50u * cfg.memLatency);
}

} // namespace
