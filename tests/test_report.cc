/**
 * @file
 * Report rendering tests: the text reports must include every
 * section, every power unit and internally consistent numbers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/report.hh"
#include "core/statsim.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

const SimResult &
result()
{
    static const SimResult res = [] {
        cpu::EdsOptions opts;
        opts.maxInsts = 50000;
        return runExecutionDriven(workloads::build("route", 1),
                                  cpu::CoreConfig::baseline(), opts);
    }();
    return res;
}

TEST(Report, SummaryContainsHeadlineMetrics)
{
    std::ostringstream os;
    printSummary(os, "test", result());
    const std::string out = os.str();
    EXPECT_NE(out.find("IPC"), std::string::npos);
    EXPECT_NE(out.find("EPC"), std::string::npos);
    EXPECT_NE(out.find("EDP"), std::string::npos);
    EXPECT_NE(out.find("mispredicts"), std::string::npos);
    EXPECT_NE(out.find("test: summary"), std::string::npos);
}

TEST(Report, PipelineSectionsListEveryStage)
{
    std::ostringstream os;
    printPipelineReport(os, result(), cpu::CoreConfig::baseline());
    const std::string out = os.str();
    for (const char *stage : {"fetch", "dispatch", "issue", "commit",
                              "IFQ", "RUU", "LSQ"}) {
        EXPECT_NE(out.find(stage), std::string::npos) << stage;
    }
}

TEST(Report, PowerBreakdownListsEveryUnit)
{
    std::ostringstream os;
    printPowerReport(os, result(), cpu::CoreConfig::baseline());
    const std::string out = os.str();
    for (int u = 0; u < cpu::NumPowerUnits; ++u) {
        EXPECT_NE(out.find(cpu::powerUnitName(
                      static_cast<cpu::PowerUnit>(u))),
                  std::string::npos);
    }
    EXPECT_NE(out.find("clock"), std::string::npos);
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST(Report, FullReportConcatenatesSections)
{
    std::ostringstream os;
    printFullReport(os, "full", result(),
                    cpu::CoreConfig::baseline());
    const std::string out = os.str();
    EXPECT_NE(out.find("summary"), std::string::npos);
    EXPECT_NE(out.find("pipeline activity"), std::string::npos);
    EXPECT_NE(out.find("power breakdown"), std::string::npos);
}

TEST(Report, ComparisonShowsErrors)
{
    std::ostringstream os;
    printComparison(os, result(), result());
    const std::string out = os.str();
    EXPECT_NE(out.find("abs error"), std::string::npos);
    // Self-comparison: all errors are 0.0%.
    EXPECT_NE(out.find("0.0%"), std::string::npos);
}

} // namespace
