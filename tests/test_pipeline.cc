/**
 * @file
 * Out-of-order core tests. The core is driven through hand-crafted
 * synthetic traces (the StsFrontend), which makes every pipeline
 * behaviour — width limits, dependency serialization, functional unit
 * contention, flag-driven memory latencies, misprediction recovery —
 * directly observable and assertable.
 */

#include <gtest/gtest.h>

#include "core/sts_frontend.hh"
#include "core/synth_trace.hh"
#include "cpu/pipeline/ooo_core.hh"

namespace
{

using namespace ssim;
using core::SynthInst;
using core::SyntheticTrace;
using cpu::BranchOutcome;
using cpu::CoreConfig;
using cpu::OoOCore;
using cpu::SimStats;

SynthInst
alu(uint16_t dep = 0, isa::InstClass cls = isa::InstClass::IntAlu)
{
    SynthInst si;
    si.cls = cls;
    si.hasDest = true;
    si.numSrcs = dep ? 1 : 0;
    si.depDist[0] = dep;
    return si;
}

SynthInst
load(bool l1Miss = false, bool l2Miss = false, bool tlbMiss = false,
     uint16_t dep = 0)
{
    SynthInst si;
    si.cls = isa::InstClass::Load;
    si.isLoad = true;
    si.hasDest = true;
    si.numSrcs = dep ? 1 : 0;
    si.depDist[0] = dep;
    si.dl1Miss = l1Miss;
    si.dl2Miss = l2Miss;
    si.dtlbMiss = tlbMiss;
    return si;
}

SynthInst
branch(bool taken, BranchOutcome outcome = BranchOutcome::Correct)
{
    SynthInst si;
    si.cls = isa::InstClass::IntCondBranch;
    si.isCtrl = true;
    si.numSrcs = 0;
    si.taken = taken;
    si.outcome = outcome;
    return si;
}

SyntheticTrace
traceOf(std::vector<SynthInst> insts)
{
    SyntheticTrace trace;
    trace.benchmark = "unit";
    trace.insts = std::move(insts);
    return trace;
}

SimStats
runTrace(const SyntheticTrace &trace, const CoreConfig &cfg)
{
    core::StsFrontend frontend(trace, cfg);
    OoOCore core(cfg, frontend);
    return core.run();
}

TEST(Pipeline, CommitsEveryCorrectPathInstruction)
{
    std::vector<SynthInst> insts(500, alu());
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 500u);
}

TEST(Pipeline, IndependentOpsReachMachineWidth)
{
    std::vector<SynthInst> insts(4000, alu());
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_GT(stats.ipc(), 7.0);
    EXPECT_LE(stats.ipc(), 8.0 + 1e-9);
}

TEST(Pipeline, DependentChainSerializes)
{
    std::vector<SynthInst> insts(2000, alu(1));
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_NEAR(stats.ipc(), 1.0, 0.05);
}

TEST(Pipeline, DependenceDistanceTwoDoublesThroughput)
{
    // Two interleaved chains: IPC ~ 2.
    std::vector<SynthInst> insts(2000, alu(2));
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_NEAR(stats.ipc(), 2.0, 0.1);
}

TEST(Pipeline, NonPipelinedDividerSerializesAtItsLatency)
{
    // A dependent chain of integer divides: one result every
    // intDivLat cycles.
    std::vector<SynthInst> insts(
        200, alu(1, isa::InstClass::IntDiv));
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_NEAR(stats.ipc(), 1.0 / cfg.fu.intDivLat, 0.01);
}

TEST(Pipeline, PipelinedMultiplierOverlapsIndependentOps)
{
    // Independent multiplies: 2 units, pipelined -> 2/cycle.
    std::vector<SynthInst> insts(
        2000, alu(0, isa::InstClass::IntMult));
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_NEAR(stats.ipc(), 2.0, 0.1);
}

TEST(Pipeline, NonPipelinedFpDivideBlocksItsUnit)
{
    // Independent FP divides on 2 non-pipelined units:
    // 2 per fpDivLat cycles.
    std::vector<SynthInst> insts(
        400, alu(0, isa::InstClass::FpDiv));
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_NEAR(stats.ipc(), 2.0 / cfg.fu.fpDivLat, 0.02);
}

TEST(Pipeline, LoadThroughputBoundedByPorts)
{
    std::vector<SynthInst> insts(2000, load());
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_NEAR(stats.ipc(), cfg.fu.ldStCount, 0.3);
}

TEST(Pipeline, L1MissLatencyOnDependentLoads)
{
    // load -> consumer chains; every load misses L1 and hits L2.
    std::vector<SynthInst> insts;
    for (int i = 0; i < 200; ++i) {
        insts.push_back(load(true, false, false, i ? 2 : 0));
        insts.push_back(alu(1));
    }
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    // Each pair costs about agen + dl1 + l2 latency cycles.
    const double perPair = static_cast<double>(stats.cycles) / 200.0;
    const double expected = cfg.fu.agenLat + cfg.dl1.latency +
        cfg.l2.latency + cfg.fu.intAluLat;
    EXPECT_NEAR(perPair, expected, 3.0);
}

TEST(Pipeline, TlbMissAddsPenalty)
{
    std::vector<SynthInst> chainHit, chainTlb;
    for (int i = 0; i < 100; ++i) {
        chainHit.push_back(load(false, false, false, i ? 1 : 0));
        chainTlb.push_back(load(false, false, true, i ? 1 : 0));
    }
    const CoreConfig cfg = CoreConfig::baseline();
    const uint64_t cyclesHit =
        runTrace(traceOf(chainHit), cfg).cycles;
    const uint64_t cyclesTlb =
        runTrace(traceOf(chainTlb), cfg).cycles;
    EXPECT_GT(cyclesTlb, cyclesHit + 100 * (cfg.dtlb.missPenalty - 1));
}

TEST(Pipeline, SmallWindowLimitsIlp)
{
    std::vector<SynthInst> insts(2000, alu());
    CoreConfig cfg = CoreConfig::baseline();
    cfg.ruuSize = 4;
    cfg.lsqSize = 4;
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_LE(stats.ipc(), 4.2);
    EXPECT_LE(stats.avgRuuOccupancy(), 4.0);
}

TEST(Pipeline, MispredictionCostsPenalty)
{
    // One mispredicted branch per 20 instructions vs none.
    std::vector<SynthInst> clean, noisy;
    for (int i = 0; i < 2000; ++i) {
        if (i % 20 == 19) {
            clean.push_back(branch(true, BranchOutcome::Correct));
            noisy.push_back(branch(true, BranchOutcome::Mispredict));
        } else {
            clean.push_back(alu());
            noisy.push_back(alu());
        }
    }
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats sClean = runTrace(traceOf(clean), cfg);
    const SimStats sNoisy = runTrace(traceOf(noisy), cfg);
    EXPECT_EQ(sNoisy.committed, 2000u);
    EXPECT_EQ(sNoisy.mispredicts, 100u);
    // Each mispredict costs at least the configured restart penalty.
    EXPECT_GT(sNoisy.cycles,
              sClean.cycles + 100 * cfg.mispredictPenalty);
}

TEST(Pipeline, FetchRedirectCheaperThanMispredict)
{
    auto make = [](BranchOutcome outcome) {
        std::vector<SynthInst> insts;
        for (int i = 0; i < 2000; ++i) {
            insts.push_back(i % 10 == 9 ? branch(true, outcome)
                                        : alu());
        }
        return traceOf(insts);
    };
    const CoreConfig cfg = CoreConfig::baseline();
    const uint64_t redirect =
        runTrace(make(BranchOutcome::FetchRedirect), cfg).cycles;
    const uint64_t mispredict =
        runTrace(make(BranchOutcome::Mispredict), cfg).cycles;
    const uint64_t correct =
        runTrace(make(BranchOutcome::Correct), cfg).cycles;
    EXPECT_LT(correct, redirect);
    EXPECT_LT(redirect, mispredict);
}

TEST(Pipeline, TakenBranchesThrottleFetch)
{
    // All-taken branches: at most fetchSpeed taken branches per
    // fetch cycle.
    std::vector<SynthInst> insts(2000, branch(true));
    CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_LE(stats.ipc(), static_cast<double>(cfg.fetchSpeed) + 0.1);
}

TEST(Pipeline, ICacheMissFlagsStallFetch)
{
    std::vector<SynthInst> hits(1000, alu());
    for (auto &si : hits)
        si.il1Access = true;
    std::vector<SynthInst> misses = hits;
    for (size_t i = 0; i < misses.size(); i += 50)
        misses[i].il1Miss = true;
    const CoreConfig cfg = CoreConfig::baseline();
    const uint64_t cyclesHits = runTrace(traceOf(hits), cfg).cycles;
    const uint64_t cyclesMisses =
        runTrace(traceOf(misses), cfg).cycles;
    // Part of each stall is hidden by the IFQ; most of it must show.
    EXPECT_GT(cyclesMisses,
              cyclesHits + 20 * (cfg.l2.latency - 5));
}

TEST(Pipeline, WrongPathInstructionsNeverCommit)
{
    std::vector<SynthInst> insts;
    for (int i = 0; i < 500; ++i) {
        insts.push_back(i % 25 == 24
            ? branch(true, BranchOutcome::Mispredict) : alu(1));
    }
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    // Every trace instruction commits exactly once even though many
    // were also fetched as wrong-path fill.
    EXPECT_EQ(stats.committed, 500u);
    EXPECT_GT(stats.fetched, stats.committed);
}

TEST(Pipeline, OccupancyStatisticsAreBounded)
{
    std::vector<SynthInst> insts(3000, alu(3));
    const CoreConfig cfg = CoreConfig::baseline();
    const SimStats stats = runTrace(traceOf(insts), cfg);
    EXPECT_GT(stats.avgRuuOccupancy(), 0.0);
    EXPECT_LE(stats.avgRuuOccupancy(), cfg.ruuSize);
    EXPECT_LE(stats.avgIfqOccupancy(), cfg.ifqSize);
    EXPECT_LE(stats.avgLsqOccupancy(), cfg.lsqSize);
}

TEST(Pipeline, PowerActivityIsRecorded)
{
    std::vector<SynthInst> insts(200, load());
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    using cpu::PowerUnit;
    EXPECT_GT(stats.unitAccesses[static_cast<int>(PowerUnit::Rename)],
              0u);
    EXPECT_GT(stats.unitAccesses[static_cast<int>(PowerUnit::DCache)],
              0u);
    EXPECT_GT(stats.unitAccesses[static_cast<int>(PowerUnit::Lsq)],
              0u);
    EXPECT_LE(stats.unitActiveCycles[static_cast<int>(
                  PowerUnit::DCache)],
              stats.cycles);
}

TEST(Pipeline, NarrowMachineIsSlower)
{
    std::vector<SynthInst> insts(3000, alu());
    CoreConfig wide = CoreConfig::baseline();
    CoreConfig narrow = CoreConfig::baseline();
    narrow.decodeWidth = narrow.issueWidth = narrow.commitWidth = 2;
    const double ipcWide = runTrace(traceOf(insts), wide).ipc();
    const double ipcNarrow = runTrace(traceOf(insts), narrow).ipc();
    EXPECT_GT(ipcWide, 3.0 * ipcNarrow / 2.0);
    EXPECT_LE(ipcNarrow, 2.0 + 1e-9);
}

TEST(Pipeline, EmptyTraceDrainsImmediately)
{
    const SimStats stats = runTrace(traceOf({}),
                                    CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 0u);
}

TEST(Pipeline, MispredictAtTraceEndStillRecovers)
{
    std::vector<SynthInst> insts(50, alu());
    insts.push_back(branch(true, BranchOutcome::Mispredict));
    const SimStats stats = runTrace(traceOf(insts),
                                    CoreConfig::baseline());
    EXPECT_EQ(stats.committed, 51u);
    EXPECT_EQ(stats.mispredicts, 1u);
}

} // namespace
