/**
 * @file
 * Branch predictor component tests: saturating counters, bimodal,
 * two-level local, hybrid chooser, BTB, RAS, and the branch-outcome
 * classification the paper's three probabilities are built from.
 */

#include <gtest/gtest.h>

#include "cpu/bpred/branch_unit.hh"
#include "cpu/bpred/direction.hh"

namespace
{

using namespace ssim::cpu;
using ssim::isa::Instruction;
using ssim::isa::Opcode;

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter2 c(1);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(true);
    c.update(true);
    EXPECT_EQ(c.raw(), 3);
    c.update(false);
    EXPECT_TRUE(c.taken());   // hysteresis: 3 -> 2 still taken
    c.update(false);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.raw(), 0);
}

TEST(Bimodal, LearnsBiasPerPc)
{
    BimodalPredictor pred(1024);
    for (int i = 0; i < 8; ++i) {
        pred.update(100, true);
        pred.update(200, false);
    }
    EXPECT_TRUE(pred.predict(100));
    EXPECT_FALSE(pred.predict(200));
}

TEST(Bimodal, AliasesBeyondTableSize)
{
    BimodalPredictor pred(16);
    for (int i = 0; i < 8; ++i)
        pred.update(5, true);
    // PC 5 + 16 maps to the same counter.
    EXPECT_TRUE(pred.predict(5 + 16));
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    // A local predictor must learn T,N,T,N... perfectly; bimodal
    // cannot (it hovers around the hysteresis point).
    TwoLevelPredictor pred(256, 4096, 10, false);
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        pred.update(77, outcome);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        outcome = !outcome;
        if (pred.predict(77) == outcome)
            ++correct;
        pred.update(77, outcome);
    }
    EXPECT_GE(correct, 98);
}

TEST(TwoLevel, LearnsShortLoopPattern)
{
    // Pattern of a 4-iteration loop: T T T N repeated.
    TwoLevelPredictor pred(256, 4096, 10, false);
    auto next = [i = 0]() mutable { return (i++ % 4) != 3; };
    for (int i = 0; i < 400; ++i)
        pred.update(33, next());
    auto check = [i = 0]() mutable { return (i++ % 4) != 3; };
    // Re-align the phase: the history already encodes it.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool outcome = check();
        if (pred.predict(33) == outcome)
            ++correct;
        pred.update(33, outcome);
    }
    EXPECT_GE(correct, 95);
}

TEST(Hybrid, ChooserPicksBetterComponent)
{
    // Alternating pattern: the two-level component wins; the chooser
    // must route to it.
    HybridPredictor pred(
        std::make_unique<TwoLevelPredictor>(256, 4096, 10, false),
        std::make_unique<BimodalPredictor>(1024), 1024);
    bool outcome = false;
    for (int i = 0; i < 300; ++i) {
        outcome = !outcome;
        pred.update(55, outcome);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        outcome = !outcome;
        if (pred.predict(55) == outcome)
            ++correct;
        pred.update(55, outcome);
    }
    EXPECT_GE(correct, 95);
}

TEST(Factory, BuildsEveryKind)
{
    BpredConfig cfg;
    for (BpredKind kind : {BpredKind::Hybrid, BpredKind::Bimodal,
                           BpredKind::TwoLevel, BpredKind::Taken,
                           BpredKind::Perfect}) {
        cfg.kind = kind;
        auto pred = makeDirectionPredictor(cfg);
        ASSERT_NE(pred, nullptr);
        pred->update(1, true);
        (void)pred->predict(1);
    }
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(64, 4);
    uint32_t target = 0;
    EXPECT_FALSE(btb.lookup(42, target));
    btb.update(42, 1000);
    ASSERT_TRUE(btb.lookup(42, target));
    EXPECT_EQ(target, 1000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(42, 1000);
    btb.update(42, 2000);
    uint32_t target = 0;
    ASSERT_TRUE(btb.lookup(42, target));
    EXPECT_EQ(target, 2000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    // Direct-mapped-per-set conflict: 2-way set, fill with 3 branches
    // mapping to set 0 of a 4-set BTB (8 entries / 2-way).
    Btb btb(8, 2);
    btb.update(0, 10);     // set 0
    btb.update(4, 20);     // set 0
    uint32_t t;
    ASSERT_TRUE(btb.lookup(0, t));  // touch 0: 4 becomes LRU
    btb.update(8, 30);     // set 0: evicts 4
    EXPECT_TRUE(btb.lookup(0, t));
    EXPECT_FALSE(btb.lookup(4, t));
    EXPECT_TRUE(btb.lookup(8, t));
}

TEST(Ras, PushPopOrder)
{
    Ras ras(8);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, UnderflowReturnsZero)
{
    Ras ras(8);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);   // overwrites the oldest
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    // Depth saturated at 2, so the stack is now empty.
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, SaveRestoreRepairsTop)
{
    Ras ras(8);
    ras.push(10);
    const Ras::State saved = ras.save();
    ras.push(99);   // wrong-path corruption
    ras.pop();
    ras.pop();
    ras.restore(saved);
    EXPECT_EQ(ras.pop(), 10u);
}

// ---- outcome classification (section 2.1.2 semantics) ----

Instruction
makeInst(Opcode op, uint32_t target = 0)
{
    Instruction inst;
    inst.op = op;
    inst.target = target;
    return inst;
}

TEST(Classify, CorrectPredictionIsCorrect)
{
    BranchPrediction pred;
    pred.predTaken = true;
    pred.targetValid = true;
    pred.predTarget = 50;
    pred.fetchNext = 50;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::BEQ, 50), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::Correct);
}

TEST(Classify, WrongDirectionIsMispredict)
{
    BranchPrediction pred;
    pred.predTaken = false;
    pred.fetchNext = 11;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::BEQ, 50), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::Mispredict);
}

TEST(Classify, TakenWithBtbMissIsRedirect)
{
    // Correct taken prediction but no target: fetch redirection
    // (BTB miss with a correct direction, per the paper).
    BranchPrediction pred;
    pred.predTaken = true;
    pred.targetValid = false;
    pred.fetchNext = 11;  // fell through for lack of a target
    const auto out = BranchUnit::classify(
        makeInst(Opcode::BEQ, 50), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::FetchRedirect);
}

TEST(Classify, DirectJumpBtbMissIsRedirect)
{
    BranchPrediction pred;
    pred.predTaken = true;
    pred.targetValid = false;
    pred.fetchNext = 11;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::JMP, 50), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::FetchRedirect);
}

TEST(Classify, IndirectBtbMissIsMispredict)
{
    // Indirect branches: a BTB miss counts as a full misprediction.
    BranchPrediction pred;
    pred.predTaken = true;
    pred.targetValid = false;
    pred.fetchNext = 11;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::JR), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::Mispredict);
}

TEST(Classify, IndirectWrongTargetIsMispredict)
{
    BranchPrediction pred;
    pred.predTaken = true;
    pred.targetValid = true;
    pred.predTarget = 60;
    pred.fetchNext = 60;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::RET), pred, true, 50, 11);
    EXPECT_EQ(out, BranchOutcome::Mispredict);
}

TEST(Classify, NotTakenCorrectlyPredictedNoBtbNeeded)
{
    BranchPrediction pred;
    pred.predTaken = false;
    pred.fetchNext = 11;
    const auto out = BranchUnit::classify(
        makeInst(Opcode::BNE, 50), pred, false, 11, 11);
    EXPECT_EQ(out, BranchOutcome::Correct);
}

// ---- integrated branch unit ----

TEST(BranchUnit, LearnsLoopBranch)
{
    BpredConfig cfg;
    BranchUnit bu(cfg);
    const Instruction br = makeInst(Opcode::BNE, 5);

    int mispredicts = 0;
    for (int i = 0; i < 500; ++i) {
        const bool taken = (i % 10) != 9;  // 10-iteration loop
        const uint32_t next = taken ? 5 : 21;
        const BranchPrediction pred = bu.predict(20, br);
        if (BranchUnit::classify(br, pred, taken, next, 21) !=
            BranchOutcome::Correct) {
            ++mispredicts;
        }
        bu.update(20, br, taken, next);
    }
    // The local history predictor should capture the period-10
    // pattern after warmup.
    EXPECT_LT(mispredicts, 40);
}

TEST(BranchUnit, RasPredictsMatchedCallReturn)
{
    BpredConfig cfg;
    BranchUnit bu(cfg);
    const Instruction call = makeInst(Opcode::CALL, 100);
    const Instruction ret = makeInst(Opcode::RET);

    // Prime the BTB for the call.
    bu.update(10, call, true, 100);
    for (int i = 0; i < 10; ++i) {
        const BranchPrediction cp = bu.predict(10, call);
        EXPECT_EQ(cp.fetchNext, 100u);
        const BranchPrediction rp = bu.predict(110, ret);
        EXPECT_TRUE(rp.targetValid);
        EXPECT_EQ(rp.predTarget, 11u);   // return to call + 1
        bu.update(110, ret, true, 11);
    }
}

} // namespace
