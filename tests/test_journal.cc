/**
 * @file
 * Unit tests for the run journal (util/journal.hh): record round
 * trips for every status kind, tolerance of the partial final line a
 * crash leaves behind, skip-and-count recovery from corrupt interior
 * lines, checkpoint compaction, and the atomic file-replacement
 * helper the profile save path relies on — including its fsync
 * durability contract under the SSIM_FSYNC_FAIL fault hook.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/journal.hh"

namespace
{

using namespace ssim;
using util::Journal;
using util::JournalRecord;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

JournalRecord
doneRecord(const std::string &status)
{
    JournalRecord rec;
    rec.event = "done";
    rec.point = 7;
    rec.attempt = 2;
    rec.configHash = 0xdeadbeefcafef00dULL;
    rec.seed = 0xffffffffffffff01ULL;   // needs full 64-bit fidelity
    rec.status = status;
    rec.wallSeconds = 0.125;
    rec.metrics = {{"ipc", 1.234567890123456789},
                   {"edp", 42.0}};
    if (status == "error") {
        rec.category = "invalid-config";
        rec.message = "ruuSize = 0";
    }
    return rec;
}

TEST(Fnv1a64, StabilityVectors)
{
    // Pinned outputs of the repo's checksum hash. These are NOT the
    // standard FNV-1a vectors (the offset basis is the repo's
    // historical constant); they exist so that any change to the
    // hash — which would silently invalidate every profile file on
    // disk — trips a test instead.
    EXPECT_EQ(util::fnv1a64(""), 1469598103934665603ULL);
    EXPECT_EQ(util::fnv1a64("a"), 4953267810257967366ULL);
    EXPECT_NE(util::fnv1a64("ab"), util::fnv1a64("ba"));
}

TEST(JournalRecord, RoundTripEveryStatus)
{
    for (const char *status : {"ok", "error", "timeout", "crashed"}) {
        const JournalRecord rec = doneRecord(status);
        const std::string json = rec.toJson();
        Expected<JournalRecord> back =
            JournalRecord::parseJson(json, "<test>", 1);
        ASSERT_TRUE(back.ok()) << json << ": "
                               << back.error().what();
        const JournalRecord &r = back.value();
        EXPECT_EQ(r.event, "done");
        EXPECT_EQ(r.point, rec.point);
        EXPECT_EQ(r.attempt, rec.attempt);
        EXPECT_EQ(r.configHash, rec.configHash);
        EXPECT_EQ(r.seed, rec.seed);
        EXPECT_EQ(r.status, status);
        EXPECT_EQ(r.category, rec.category);
        EXPECT_EQ(r.message, rec.message);
        EXPECT_DOUBLE_EQ(r.wallSeconds, rec.wallSeconds);
        ASSERT_EQ(r.metrics.size(), 2u);
        EXPECT_EQ(r.metrics[0].name, "ipc");
        // %.17g makes the round trip bit-exact, not merely close.
        EXPECT_EQ(r.metrics[0].value, rec.metrics[0].value);
        EXPECT_EQ(r.metrics[1].value, rec.metrics[1].value);
        // Re-rendering is deterministic (resume depends on it).
        EXPECT_EQ(back.value().toJson(), json);
    }
}

TEST(JournalRecord, RoundTripHeaderAndStart)
{
    JournalRecord header;
    header.event = "sweep";
    header.sweepHash = 0x0123456789abcdefULL;
    header.pointCount = 1024;
    header.sweepSeed = 99;
    Expected<JournalRecord> back =
        JournalRecord::parseJson(header.toJson(), "<test>", 1);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().sweepHash, header.sweepHash);
    EXPECT_EQ(back.value().pointCount, 1024u);
    EXPECT_EQ(back.value().sweepSeed, 99u);

    JournalRecord start;
    start.event = "start";
    start.point = 3;
    start.attempt = 1;
    start.configHash = 42;
    start.seed = 1;
    back = JournalRecord::parseJson(start.toJson(), "<test>", 2);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().event, "start");
    EXPECT_EQ(back.value().point, 3u);
}

TEST(JournalRecord, EscapedMessageRoundTrips)
{
    JournalRecord rec = doneRecord("error");
    rec.message = "a \"quoted\" path\\with\nnewline\tand tab";
    Expected<JournalRecord> back =
        JournalRecord::parseJson(rec.toJson(), "<test>", 1);
    ASSERT_TRUE(back.ok()) << back.error().what();
    EXPECT_EQ(back.value().message, rec.message);
}

TEST(JournalRecord, MalformedInputsFail)
{
    for (const char *bad : {
             "",
             "not json",
             "{\"event\":\"done\"",                 // unterminated
             "{\"event\":\"nonsense\"}",            // unknown event
             "{\"event\":\"done\",\"bogus\":1}",    // unknown field
             "{\"event\":\"done\",\"point\":-3}",   // negative index
         }) {
        Expected<JournalRecord> r =
            JournalRecord::parseJson(bad, "<test>", 1);
        EXPECT_FALSE(r.ok()) << "accepted: " << bad;
        if (!r.ok()) {
            EXPECT_EQ(r.error().category(),
                      ErrorCategory::ParseError);
        }
    }
}

TEST(Journal, AppendLoadRoundTrip)
{
    const std::string path = tempPath("journal_roundtrip.jsonl");
    std::remove(path.c_str());
    {
        Journal journal;
        ASSERT_TRUE(journal.open(path, true).ok());
        for (const char *status :
             {"ok", "error", "timeout", "crashed"})
            ASSERT_TRUE(journal.append(doneRecord(status)).ok());
        ASSERT_TRUE(journal.sync().ok());
    }
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    ASSERT_EQ(loaded.value().size(), 4u);
    EXPECT_EQ(loaded.value()[2].status, "timeout");
}

TEST(Journal, PartialFinalLineIsDiscardedNotFatal)
{
    const std::string path = tempPath("journal_truncated.jsonl");
    {
        Journal journal;
        ASSERT_TRUE(journal.open(path, true).ok());
        ASSERT_TRUE(journal.append(doneRecord("ok")).ok());
        ASSERT_TRUE(journal.append(doneRecord("timeout")).ok());
    }
    // Simulate a crash mid-append: keep the first record whole and
    // truncate the second mid-record, with no trailing newline.
    {
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << doneRecord("ok").toJson() << "\n"
           << doneRecord("timeout").toJson().substr(0, 25);
    }
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    EXPECT_EQ(loaded.value().size(), 1u);
    EXPECT_EQ(loaded.value()[0].status, "ok");
}

TEST(Journal, CorruptMiddleLinesAreSkippedAndCounted)
{
    const std::string path = tempPath("journal_corrupt.jsonl");
    {
        Journal journal;
        ASSERT_TRUE(journal.open(path, true).ok());
        ASSERT_TRUE(journal.append(doneRecord("ok")).ok());
    }
    // Two torn lines with intact records after them: both must be
    // skipped (and counted), the surrounding records must survive.
    std::ofstream(path, std::ios::app)
        << "garbage in the middle\n"
        << doneRecord("timeout").toJson() << "\n"
        << "{\"event\":\"done\",\"poi\n"
        << doneRecord("crashed").toJson() << "\n";
    uint64_t skipped = 0;
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(path, &skipped);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    EXPECT_EQ(skipped, 2u);
    ASSERT_EQ(loaded.value().size(), 3u);
    EXPECT_EQ(loaded.value()[0].status, "ok");
    EXPECT_EQ(loaded.value()[1].status, "timeout");
    EXPECT_EQ(loaded.value()[2].status, "crashed");
}

TEST(Journal, FinalCorruptLineIsNotCountedAsInterior)
{
    const std::string path = tempPath("journal_tail_corrupt.jsonl");
    {
        Journal journal;
        ASSERT_TRUE(journal.open(path, true).ok());
        ASSERT_TRUE(journal.append(doneRecord("ok")).ok());
    }
    // The crash signature — a torn *final* line — stays a silent
    // drop; only interior corruption is reported.
    std::ofstream(path, std::ios::app) << "{\"event\":\"don";
    uint64_t skipped = 77;
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(path, &skipped);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(loaded.value().size(), 1u);
}

TEST(Journal, MissingFileIsIoError)
{
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(tempPath("no_such_journal.jsonl"));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category(), ErrorCategory::IoError);
}

TEST(Journal, CheckpointCompactsAtomically)
{
    const std::string path = tempPath("journal_checkpoint.jsonl");
    {
        Journal journal;
        ASSERT_TRUE(journal.open(path, true).ok());
        ASSERT_TRUE(journal.append(doneRecord("ok")).ok());
    }
    // Leave a partial line, checkpoint over it, verify it is gone.
    std::ofstream(path, std::ios::app) << "{\"event\":\"sta";
    std::vector<JournalRecord> records = {doneRecord("ok"),
                                          doneRecord("crashed")};
    ASSERT_TRUE(Journal::checkpoint(path, records).ok());
    Expected<std::vector<JournalRecord>> loaded =
        Journal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    ASSERT_EQ(loaded.value().size(), 2u);
    EXPECT_EQ(loaded.value()[1].status, "crashed");
    // The temporary is renamed away, never left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(AtomicWriteFile, ReplacesWholeFileOrNothing)
{
    const std::string path = tempPath("atomic_write.txt");
    ASSERT_TRUE(util::atomicWriteFile(path, [](std::ostream &os) {
                     os << "first version\n";
                 }).ok());
    EXPECT_EQ(slurp(path), "first version\n");
    ASSERT_TRUE(util::atomicWriteFile(path, [](std::ostream &os) {
                     os << "second version\n";
                 }).ok());
    EXPECT_EQ(slurp(path), "second version\n");
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(AtomicWriteFile, FsyncFailureAbortsWithOldContentIntact)
{
    const std::string path = tempPath("atomic_fsync_fail.txt");
    ASSERT_TRUE(util::atomicWriteFile(path, [](std::ostream &os) {
                     os << "durable version\n";
                 }).ok());
    ::setenv("SSIM_FSYNC_FAIL", "1", 1);
    Expected<void> r = util::atomicWriteFile(
        path, [](std::ostream &os) { os << "lost version\n"; });
    ::unsetenv("SSIM_FSYNC_FAIL");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category(), ErrorCategory::IoError);
    // The destination still holds the previous bytes and the
    // temporary was cleaned up — a failed sync must not publish.
    EXPECT_EQ(slurp(path), "durable version\n");
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST(AtomicWriteFile, UnwritableDirectoryFailsTyped)
{
    Expected<void> r = util::atomicWriteFile(
        "/no/such/dir/file.txt",
        [](std::ostream &os) { os << "x"; });
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category(), ErrorCategory::IoError);
}

} // namespace
