/**
 * @file
 * Statistical profiler tests: dependency distances, cache/branch
 * event recording, immediate vs delayed branch profiling, the perfect
 * structure idealizations, and sampling windows.
 */

#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "core/statsim.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

/** Simple counted loop: ~6 instructions per iteration. */
isa::Program
loopProgram(int iterations)
{
    isa::Assembler as("loop");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.li(4, iterations);
    as.bind(top);
    as.addi(3, 3, 1);          // RAW on r3, distance = loop body
    as.slti(5, 3, 1 << 30);
    as.add(6, 5, 3);           // RAW distances 1 and 2
    as.blt(3, 4, top);
    as.halt();
    return as.finish();
}

cpu::CoreConfig
cfg()
{
    return cpu::CoreConfig::baseline();
}

TEST(Profiler, CountsInstructionsAndBlocks)
{
    const isa::Program prog = loopProgram(1000);
    const StatisticalProfile p = buildProfile(prog, cfg());
    // 2 setup + 1000 x 4 body + final halt block of 1.
    EXPECT_EQ(p.instructions, 2u + 4000u + 1u);
    EXPECT_GT(p.dynamicBlocks, 1000u);
}

TEST(Profiler, ShapesMatchProgramBlocks)
{
    const isa::Program prog = loopProgram(10);
    const StatisticalProfile p = buildProfile(prog, cfg());
    ASSERT_EQ(p.shapes.size(), prog.numBlocks());
    for (size_t b = 0; b < prog.numBlocks(); ++b)
        EXPECT_EQ(p.shapes[b].size(), prog.blocks()[b].size());
}

TEST(Profiler, DependencyDistancesInLoop)
{
    const isa::Program prog = loopProgram(500);
    const StatisticalProfile p = buildProfile(prog, cfg());

    // Find the loop body block's stats (the node with the highest
    // occurrence count).
    const QBlockStats *body = nullptr;
    for (const auto &[gram, node] : p.nodes) {
        if (!body ||
            node.entryStats.occurrences > body->occurrences) {
            body = &node.entryStats;
        }
    }
    ASSERT_NE(body, nullptr);
    ASSERT_EQ(body->slots.size(), 4u);

    // Slot 1 (slti) depends on the addi right before it: distance 1.
    EXPECT_GT(body->slots[1].depDist[0].probabilityOf(1), 0.9);
    // Slot 2 (add) reads r5 (distance 1) and r3 (distance 2).
    EXPECT_GT(body->slots[2].depDist[0].probabilityOf(1), 0.9);
    EXPECT_GT(body->slots[2].depDist[1].probabilityOf(2), 0.9);
    // Slot 0 (addi r3) depends on the previous iteration: distance 4.
    EXPECT_GT(body->slots[0].depDist[0].probabilityOf(4), 0.9);
}

TEST(Profiler, DistancesAreCapped)
{
    // A value produced once and consumed after a very long loop must
    // be recorded as the cap, not dropped.
    isa::Assembler as("cap");
    isa::Label top = as.newLabel();
    as.li(7, 99);              // produced once
    as.li(3, 0);
    as.li(4, 2000);
    as.bind(top);
    as.addi(3, 3, 1);
    as.blt(3, 4, top);
    as.add(8, 7, 7);           // distance way beyond 512
    as.halt();
    const isa::Program prog = as.finish();
    const StatisticalProfile p = buildProfile(prog, cfg());

    bool sawCap = false;
    for (const auto &[gram, node] : p.nodes) {
        for (const auto &slot : node.entryStats.slots) {
            for (const auto &d : slot.depDist) {
                if (d.countOf(MaxDependencyDistance) > 0)
                    sawCap = true;
                for (const auto &[v, c] : d.entries())
                    EXPECT_LE(v, MaxDependencyDistance);
            }
        }
    }
    EXPECT_TRUE(sawCap);
}

TEST(Profiler, TakenProbabilityOfLoopBranch)
{
    const isa::Program prog = loopProgram(200);
    const StatisticalProfile p = buildProfile(prog, cfg());
    const BranchStats total = p.totalBranchStats();
    // 200 branch executions, 199 taken.
    EXPECT_EQ(total.count, 200u);
    EXPECT_EQ(total.taken, 199u);
}

TEST(Profiler, PerfectBpredRecordsNoMispredicts)
{
    const isa::Program prog = loopProgram(300);
    ProfileOptions opts;
    opts.perfectBpred = true;
    const StatisticalProfile p = buildProfile(prog, cfg(), opts);
    const BranchStats total = p.totalBranchStats();
    EXPECT_EQ(total.mispredict, 0u);
    EXPECT_EQ(total.redirect, 0u);
    EXPECT_EQ(total.taken, 299u);   // taken still recorded
}

TEST(Profiler, PerfectCachesRecordNoMisses)
{
    const isa::Program prog = loopProgram(300);
    ProfileOptions opts;
    opts.perfectCaches = true;
    const StatisticalProfile p = buildProfile(prog, cfg(), opts);
    for (const auto &[gram, node] : p.nodes) {
        for (const auto &slot : node.entryStats.slots) {
            EXPECT_EQ(slot.il1Miss, 0u);
            EXPECT_EQ(slot.dl1Miss, 0u);
            EXPECT_EQ(slot.il1Access, 0u);
        }
    }
}

TEST(Profiler, MaxInstsStopsAtBlockBoundary)
{
    const isa::Program prog = loopProgram(100000);
    ProfileOptions opts;
    opts.maxInsts = 5000;
    const StatisticalProfile p = buildProfile(prog, cfg(), opts);
    EXPECT_GE(p.instructions, 5000u);
    EXPECT_LT(p.instructions, 5010u);
}

TEST(Profiler, SkipInstsFastForwards)
{
    const isa::Program prog = loopProgram(1000);
    ProfileOptions opts;
    opts.skipInsts = 2000;
    const StatisticalProfile p = buildProfile(prog, cfg(), opts);
    EXPECT_LT(p.instructions, 2500u);
    EXPECT_GT(p.instructions, 1000u);
}

TEST(Profiler, ColdLoopHasICacheMissThenHits)
{
    const isa::Program prog = loopProgram(1000);
    const StatisticalProfile p = buildProfile(prog, cfg());
    uint64_t acc = 0, miss = 0;
    for (const auto &[gram, node] : p.nodes) {
        for (const auto &slot : node.entryStats.slots) {
            acc += slot.il1Access;
            miss += slot.il1Miss;
        }
    }
    EXPECT_GT(acc, 0u);
    // A tiny loop misses only on the cold start.
    EXPECT_LE(miss, 4u);
}

TEST(Profiler, DelayedWorseOrEqualToImmediateOnLoopPhases)
{
    // The delayed FIFO can only see staler state, so for
    // history-sensitive codes it should never report substantially
    // fewer mispredictions than immediate update does.
    const auto &bench = workloads::build("chess", 1);
    ProfileOptions imm;
    imm.branchMode = BranchProfilingMode::ImmediateUpdate;
    imm.maxInsts = 300000;
    ProfileOptions del;
    del.branchMode = BranchProfilingMode::DelayedUpdate;
    del.maxInsts = 300000;
    const double immRate =
        buildProfile(bench, cfg(), imm).mispredictsPerKilo();
    const double delRate =
        buildProfile(bench, cfg(), del).mispredictsPerKilo();
    EXPECT_GE(delRate, immRate * 0.95);
}

TEST(Profiler, DelayedMatchesExecutionDrivenRate)
{
    // The headline claim of section 2.1.3 (Figure 3): delayed-update
    // profiling reproduces the execution-driven misprediction rate.
    const auto &bench = workloads::build("zip", 1);
    ProfileOptions opts;
    opts.maxInsts = 400000;
    const double profiled =
        buildProfile(bench, cfg(), opts).mispredictsPerKilo();

    cpu::EdsOptions eopts;
    eopts.maxInsts = 400000;
    const SimResult eds = runExecutionDriven(bench, cfg(), eopts);
    EXPECT_NEAR(profiled, eds.stats.mispredictsPerKilo(),
                0.15 * eds.stats.mispredictsPerKilo() + 0.5);
}

TEST(Profiler, HigherOrderRefinesStatistics)
{
    const auto &bench = workloads::build("route", 1);
    ProfileOptions o1, o2;
    o1.order = 1;
    o1.maxInsts = 200000;
    o2.order = 2;
    o2.maxInsts = 200000;
    const StatisticalProfile p1 = buildProfile(bench, cfg(), o1);
    const StatisticalProfile p2 = buildProfile(bench, cfg(), o2);
    EXPECT_GE(p2.nodeCount(), p1.nodeCount());
    EXPECT_GE(p2.qualifiedBlockCount(), p1.qualifiedBlockCount());
    // Both see the same dynamic stream.
    EXPECT_EQ(p1.instructions, p2.instructions);
}

} // namespace
