/**
 * @file
 * Property sweeps over the timing model (parameterized gtest):
 * microarchitectural monotonicity laws that must hold for every
 * point of a parameter sweep, checked on synthetic traces so the
 * suite stays fast.
 */

#include <gtest/gtest.h>

#include "core/sts_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "util/random.hh"

namespace
{

using namespace ssim;
using core::SynthInst;
using core::SyntheticTrace;
using cpu::CoreConfig;

/** A mixed trace with tunable dependency tightness and event rates. */
SyntheticTrace
mixedTrace(size_t n, double depProb, double missProb,
           double mispredictProb, uint64_t seed)
{
    Rng rng(seed);
    SyntheticTrace trace;
    for (size_t i = 0; i < n; ++i) {
        SynthInst si;
        const double u = rng.uniform();
        if (u < 0.15) {
            si.cls = isa::InstClass::Load;
            si.isLoad = true;
            si.hasDest = true;
            si.dl1Miss = rng.chance(missProb);
        } else if (u < 0.22) {
            si.cls = isa::InstClass::Store;
            si.isStore = true;
        } else if (u < 0.40) {
            si.cls = isa::InstClass::IntCondBranch;
            si.isCtrl = true;
            si.taken = rng.chance(0.4);
            if (rng.chance(mispredictProb))
                si.outcome = cpu::BranchOutcome::Mispredict;
        } else {
            si.cls = isa::InstClass::IntAlu;
            si.hasDest = true;
        }
        if (!si.isCtrl && rng.chance(depProb) && i > 0) {
            si.numSrcs = 1;
            for (int attempt = 0; attempt < 8; ++attempt) {
                const uint16_t d = static_cast<uint16_t>(
                    1 + rng.below(std::min<size_t>(i, 24)));
                if (trace.insts[i - d].hasDest) {
                    si.depDist[0] = d;
                    break;
                }
            }
            if (si.depDist[0] == 0)
                si.numSrcs = 0;
        }
        trace.insts.push_back(si);
    }
    return trace;
}

double
ipcOf(const SyntheticTrace &trace, const CoreConfig &cfg)
{
    core::StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    return core.run().ipc();
}

class SeededProperty : public ::testing::TestWithParam<uint64_t>
{
  protected:
    SyntheticTrace trace_ =
        mixedTrace(6000, 0.5, 0.1, 0.03, GetParam());
};

TEST_P(SeededProperty, IpcMonotoneInWindowSize)
{
    double prev = 0.0;
    for (uint32_t ruu : {8u, 16u, 32u, 64u, 128u}) {
        CoreConfig cfg = CoreConfig::baseline();
        cfg.ruuSize = ruu;
        cfg.lsqSize = std::max(4u, ruu / 2);
        const double ipc = ipcOf(trace_, cfg);
        EXPECT_GE(ipc, prev * 0.995) << "ruu=" << ruu;
        prev = ipc;
    }
}

TEST_P(SeededProperty, IpcMonotoneInWidth)
{
    double prev = 0.0;
    for (uint32_t w : {1u, 2u, 4u, 8u}) {
        CoreConfig cfg = CoreConfig::baseline();
        cfg.decodeWidth = cfg.issueWidth = cfg.commitWidth = w;
        const double ipc = ipcOf(trace_, cfg);
        EXPECT_GE(ipc, prev * 0.995) << "width=" << w;
        EXPECT_LE(ipc, w + 1e-9);
        prev = ipc;
    }
}

TEST_P(SeededProperty, IpcFallsWithMispredictPenalty)
{
    double prev = 1e9;
    for (uint32_t penalty : {2u, 8u, 14u, 28u}) {
        CoreConfig cfg = CoreConfig::baseline();
        cfg.mispredictPenalty = penalty;
        const double ipc = ipcOf(trace_, cfg);
        EXPECT_LE(ipc, prev * 1.005) << "penalty=" << penalty;
        prev = ipc;
    }
}

TEST_P(SeededProperty, IpcFallsWithMemoryLatency)
{
    double prev = 1e9;
    for (uint32_t lat : {40u, 150u, 400u}) {
        CoreConfig cfg = CoreConfig::baseline();
        cfg.memLatency = lat;
        // Make some L1 misses reach memory.
        SyntheticTrace t = trace_;
        for (auto &si : t.insts)
            si.dl2Miss = si.dl1Miss;
        const double ipc = ipcOf(t, cfg);
        EXPECT_LE(ipc, prev * 1.005) << "mem=" << lat;
        prev = ipc;
    }
}

TEST_P(SeededProperty, InOrderNeverBeatsOutOfOrder)
{
    CoreConfig ooo = CoreConfig::baseline();
    CoreConfig ino = ooo;
    ino.inOrderIssue = true;
    EXPECT_LE(ipcOf(trace_, ino), ipcOf(trace_, ooo) * 1.005);
}

TEST_P(SeededProperty, MoreMispredictsNeverHelp)
{
    const SyntheticTrace clean =
        mixedTrace(6000, 0.5, 0.1, 0.0, GetParam());
    const SyntheticTrace noisy =
        mixedTrace(6000, 0.5, 0.1, 0.10, GetParam());
    const CoreConfig cfg = CoreConfig::baseline();
    EXPECT_GE(ipcOf(clean, cfg), ipcOf(noisy, cfg));
}

TEST_P(SeededProperty, TighterDependenciesNeverHelp)
{
    const SyntheticTrace loose =
        mixedTrace(6000, 0.1, 0.05, 0.02, GetParam());
    const SyntheticTrace tight =
        mixedTrace(6000, 0.9, 0.05, 0.02, GetParam());
    const CoreConfig cfg = CoreConfig::baseline();
    EXPECT_GE(ipcOf(loose, cfg), ipcOf(tight, cfg));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeededProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
