/**
 * @file
 * SimPoint substrate tests: BBV collection, k-means (with synthetic
 * ground-truth clusters), BIC model selection, representative
 * selection and weighted sampled simulation.
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "sampling/simpoint.hh"
#include "util/random.hh"
#include "util/statistics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::sampling;

std::vector<FeatureVector>
gaussianClusters(int perCluster, const std::vector<FeatureVector>
                 &centers, double spread, uint64_t seed)
{
    Rng rng(seed);
    std::vector<FeatureVector> data;
    for (const auto &c : centers) {
        for (int i = 0; i < perCluster; ++i) {
            FeatureVector v(c.size());
            for (size_t d = 0; d < c.size(); ++d)
                v[d] = c[d] + rng.gaussian(0.0, spread);
            data.push_back(std::move(v));
        }
    }
    return data;
}

TEST(Kmeans, RecoversSeparatedClusters)
{
    const std::vector<FeatureVector> centers = {
        {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    const auto data = gaussianClusters(40, centers, 0.3, 5);
    const Clustering c = kmeans(data, 3, 7);
    // All points from one generator cluster share an assignment.
    for (int g = 0; g < 3; ++g) {
        const uint32_t label = c.assignment[g * 40];
        for (int i = 1; i < 40; ++i)
            EXPECT_EQ(c.assignment[g * 40 + i], label);
    }
}

TEST(Kmeans, MoreClustersNeverIncreaseDistortion)
{
    const std::vector<FeatureVector> centers = {
        {0.0, 0.0}, {5.0, 5.0}};
    const auto data = gaussianClusters(50, centers, 1.0, 9);
    auto distortion = [&](const Clustering &c) {
        double acc = 0.0;
        for (size_t i = 0; i < data.size(); ++i) {
            double d = 0.0;
            for (size_t j = 0; j < data[i].size(); ++j) {
                const double diff =
                    data[i][j] - c.centroids[c.assignment[i]][j];
                d += diff * diff;
            }
            acc += d;
        }
        return acc;
    };
    const double d1 = distortion(kmeans(data, 1, 3));
    const double d4 = distortion(kmeans(data, 4, 3));
    EXPECT_LE(d4, d1 + 1e-9);
}

TEST(Kmeans, DeterministicForSeed)
{
    const auto data = gaussianClusters(
        30, {{0.0, 0.0}, {4.0, 4.0}}, 0.5, 11);
    const Clustering a = kmeans(data, 2, 42);
    const Clustering b = kmeans(data, 2, 42);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Kmeans, HandlesKLargerThanData)
{
    const std::vector<FeatureVector> data = {{0.0}, {1.0}};
    const Clustering c = kmeans(data, 10, 1);
    EXPECT_LE(c.k, 2u);
}

TEST(Bic, PrefersTrueClusterCount)
{
    const std::vector<FeatureVector> centers = {
        {0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}};
    const auto data = gaussianClusters(60, centers, 0.4, 13);
    double bestBic = -1e300;
    uint32_t bestK = 0;
    for (uint32_t k = 1; k <= 6; ++k) {
        const Clustering c = kmeans(data, k, 100 + k);
        if (c.bic > bestBic) {
            bestBic = c.bic;
            bestK = c.k;
        }
    }
    EXPECT_EQ(bestK, 3u);
}

TEST(Bbv, IntervalsCoverTheRun)
{
    const isa::Program prog = workloads::build("route", 1);
    isa::Emulator emu(prog);
    emu.run(~0ull);
    const BbvData bbvs = collectBbvs(prog, 100000);
    const uint64_t expected =
        (emu.instCount() + 99999) / 100000;
    EXPECT_EQ(bbvs.vectors.size(), expected);
    for (const auto &v : bbvs.vectors)
        EXPECT_EQ(v.size(), 15u);
}

TEST(Bbv, VectorsAreNormalizedFrequencies)
{
    const isa::Program prog = workloads::build("zip", 1);
    const BbvData bbvs = collectBbvs(prog, 200000);
    for (const auto &v : bbvs.vectors) {
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            // Projected sums of frequencies stay bounded by the
            // projection range.
            EXPECT_LE(x, 16.0);
        }
    }
}

TEST(SimPoints, WeightsSumToOne)
{
    const isa::Program prog = workloads::build("compress", 1);
    const BbvData bbvs = collectBbvs(prog, 200000);
    const auto points = pickSimPoints(bbvs, 8);
    ASSERT_FALSE(points.empty());
    double total = 0.0;
    for (const auto &p : points) {
        total += p.weight;
        EXPECT_LT(p.interval, bbvs.vectors.size());
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoints, PhasedProgramGetsMultiplePoints)
{
    // compress has distinct phases (RLE, MTF, histogram): SimPoint
    // should pick more than one representative.
    const isa::Program prog = workloads::build("compress", 1);
    const BbvData bbvs = collectBbvs(prog, 100000);
    const auto points = pickSimPoints(bbvs, 8);
    EXPECT_GE(points.size(), 2u);
}

TEST(SimPoints, SampledIpcApproximatesFullRun)
{
    const isa::Program prog = workloads::build("place", 1);
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const core::SimResult full =
        core::runExecutionDriven(prog, cfg);
    const BbvData bbvs = collectBbvs(prog, 100000);
    const auto points = pickSimPoints(bbvs, 6);
    const SampledResult sampled =
        simulateSimPoints(prog, cfg, points, 100000);
    EXPECT_LT(absoluteError(sampled.ipc, full.ipc), 0.10);
    EXPECT_LT(sampled.simulatedInstructions, full.stats.committed);
}

} // namespace
