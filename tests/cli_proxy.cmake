# CTest script: end-to-end contract of the surrogate predictor CLI —
# `ssim train` (byte-identical retrains, schema-valid model files,
# provenance refusal), `ssim rank` (prediction without simulation,
# corrupted-model rejection), surrogate-pruned sweeps, and the sweep
# --dry-run planner.
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>
#              -DSCHEMA_DIR=<tests/schemas>
#              -DMODE=<train|prune|dryrun>.

cmake_minimum_required(VERSION 3.19)  # string(JSON)

set(dir "${WORK_DIR}/cli_proxy_${MODE}")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

function(run_ssim rc_var out_var err_var)
    execute_process(COMMAND "${SSIM_CLI}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    set(${rc_var} "${rc}" PARENT_SCOPE)
    set(${out_var} "${out}" PARENT_SCOPE)
    set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# --- Minimal JSON Schema checker (same subset as cli_obs.cmake) ----

function(schema_type_name json_type out_var)
    string(TOUPPER "${json_type}" upper)
    if(upper STREQUAL "INTEGER")
        set(upper "NUMBER")
    endif()
    set(${out_var} "${upper}" PARENT_SCOPE)
endfunction()

function(validate_node doc schema path what)
    string(JSON nreq ERROR_VARIABLE no_req LENGTH "${schema}" required)
    if(NOT no_req STREQUAL "NOTFOUND")
        return()   # no required list at this level
    endif()
    math(EXPR last "${nreq} - 1")
    foreach(i RANGE ${last})
        string(JSON key GET "${schema}" required ${i})
        string(JSON have ERROR_VARIABLE missing TYPE "${doc}" ${key})
        if(NOT missing STREQUAL "NOTFOUND")
            message(FATAL_ERROR
                "${what}: required member '${path}.${key}' is "
                "missing")
        endif()
        string(JSON subschema ERROR_VARIABLE no_prop
            GET "${schema}" properties ${key})
        if(no_prop STREQUAL "NOTFOUND")
            string(JSON want ERROR_VARIABLE no_type
                GET "${subschema}" type)
            if(no_type STREQUAL "NOTFOUND")
                schema_type_name("${want}" want)
                if(NOT have STREQUAL want)
                    message(FATAL_ERROR
                        "${what}: ${path}.${key} has type ${have}, "
                        "schema wants ${want}")
                endif()
            endif()
            if(have STREQUAL "OBJECT")
                string(JSON sub GET "${doc}" ${key})
                validate_node("${sub}" "${subschema}"
                    "${path}.${key}" "${what}")
            endif()
        endif()
    endforeach()
endfunction()

function(validate_file doc_file schema_file what)
    file(READ "${doc_file}" doc)
    file(READ "${schema_file}" schema)
    string(JSON roottype ERROR_VARIABLE bad TYPE "${doc}")
    if(NOT bad STREQUAL "NOTFOUND" OR NOT roottype STREQUAL "OBJECT")
        message(FATAL_ERROR
            "${what}: ${doc_file} is not a JSON object (${bad})")
    endif()
    validate_node("${doc}" "${schema}" "$" "${what}")
endfunction()

# -------------------------------------------------------------------

# Shared fixture: a small journaled sweep whose `ok` records carry
# config features and whose header carries profile provenance.
function(make_journal journal workload)
    run_ssim(rc out err sweep ${workload}
        --grid ruu=32,64,128 --grid width=2,4,8
        --max 50000 --reduction 50 --jobs 2
        --journal "${journal}" --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "fixture sweep failed (rc=${rc})\n${err}")
    endif()
endfunction()

if(MODE STREQUAL "train")
    set(journal "${dir}/zip.jsonl")
    make_journal("${journal}" zip)

    # Two identical trains must produce byte-identical model files
    # (the determinism contract), and the file must satisfy the model
    # schema.
    run_ssim(rc out err train "${journal}" -o "${dir}/m1.json"
        --seed 7 --stats-json "${dir}/cv.json" --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "train 1 failed (rc=${rc})\n${err}")
    endif()
    run_ssim(rc out err train "${journal}" -o "${dir}/m2.json"
        --seed 7 --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "train 2 failed (rc=${rc})\n${err}")
    endif()
    file(READ "${dir}/m1.json" m1)
    file(READ "${dir}/m2.json" m2)
    if(NOT m1 STREQUAL m2)
        message(FATAL_ERROR
            "identical seeded trains produced different model files")
    endif()
    validate_file("${dir}/m1.json"
        "${SCHEMA_DIR}/model.schema.json" "model")
    validate_file("${dir}/cv.json"
        "${SCHEMA_DIR}/stats.schema.json" "cv report")
    file(READ "${dir}/cv.json" cv)
    if(NOT cv MATCHES "proxy\\.cv\\.ipc\\.mape")
        message(FATAL_ERROR "CV report lacks proxy.cv.ipc.mape")
    endif()

    # The gbm variant trains and is deterministic too.
    run_ssim(rc out err train "${journal}" -o "${dir}/g1.json"
        --model-kind gbm --rounds 40 --seed 7 --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "gbm train failed (rc=${rc})\n${err}")
    endif()
    run_ssim(rc out err train "${journal}" -o "${dir}/g2.json"
        --model-kind gbm --rounds 40 --seed 7 --quiet)
    file(READ "${dir}/g1.json" g1)
    file(READ "${dir}/g2.json" g2)
    if(NOT g1 STREQUAL g2)
        message(FATAL_ERROR "gbm retrain is not byte-identical")
    endif()

    # A journal whose header lost its provenance is refused with the
    # typed invalid-argument error (exit 2), naming the fix.
    file(READ "${journal}" jdoc)
    string(REGEX REPLACE
        ",\"profile_checksum\":\"[0-9a-f]+\",\"base_config\":\"[0-9a-f]+\""
        "" jstripped "${jdoc}")
    file(WRITE "${dir}/stripped.jsonl" "${jstripped}")
    run_ssim(rc out err train "${dir}/stripped.jsonl"
        -o "${dir}/bad.json" --quiet)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "train accepted a journal without provenance "
            "(rc=${rc})\n${err}")
    endif()
    if(NOT err MATCHES "profile_checksum")
        message(FATAL_ERROR
            "provenance refusal does not name profile_checksum:\n"
            "${err}")
    endif()

    # Journals from two different programs must not mix (exit 2,
    # naming both files).
    set(journal2 "${dir}/cc.jsonl")
    make_journal("${journal2}" cc)
    run_ssim(rc out err train "${journal}" --journal "${journal2}"
        -o "${dir}/mix.json" --quiet)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "train mixed journals from two programs (rc=${rc})")
    endif()
    if(NOT err MATCHES "refusing to mix")
        message(FATAL_ERROR
            "mixing refusal lacks the diagnostic:\n${err}")
    endif()

elseif(MODE STREQUAL "prune")
    set(journal "${dir}/zip.jsonl")
    make_journal("${journal}" zip)
    run_ssim(rc out err train "${journal}" -o "${dir}/model.json"
        --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "train failed (rc=${rc})\n${err}")
    endif()

    # Rank the grid without simulating: every point predicted, the
    # Pareto column marked.
    run_ssim(rc out err rank "${dir}/model.json"
        --grid ruu=32,64,128 --grid width=2,4,8 --top 0)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "rank failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "9 points by predicted edp")
        message(FATAL_ERROR "rank did not cover the grid:\n${out}")
    endif()
    if(NOT out MATCHES "\\*")
        message(FATAL_ERROR "rank marked no Pareto point:\n${out}")
    endif()
    run_ssim(rc out err rank "${dir}/model.json"
        --grid ruu=32,64 --by nonsense)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "rank --by nonsense not rejected (rc=${rc})")
    endif()

    # A corrupted model file is rejected with corrupt-data (exit 5):
    # flip payload bytes but keep the header intact.
    file(READ "${dir}/model.json" mdoc)
    string(REPLACE "\"kind\":\"ridge\"" "\"kind\":\"RIDGE\""
        mbad "${mdoc}")
    file(WRITE "${dir}/corrupt.json" "${mbad}")
    run_ssim(rc out err rank "${dir}/corrupt.json" --grid ruu=32,64)
    if(NOT rc EQUAL 5)
        message(FATAL_ERROR
            "corrupted model not rejected with exit 5 (rc=${rc})\n"
            "${err}")
    endif()
    # Truncation is also corrupt-data.
    string(LENGTH "${mdoc}" mlen)
    math(EXPR half "${mlen} / 2")
    string(SUBSTRING "${mdoc}" 0 ${half} mtrunc)
    file(WRITE "${dir}/trunc.json" "${mtrunc}")
    run_ssim(rc out err rank "${dir}/trunc.json" --grid ruu=32,64)
    if(NOT rc EQUAL 5)
        message(FATAL_ERROR
            "truncated model not rejected with exit 5 (rc=${rc})")
    endif()

    # Surrogate-pruned sweep into a fresh journal: points off the
    # predicted frontier settle as pruned (journaled, resumable), and
    # only the kept points are simulated.
    run_ssim(rc out err sweep zip
        --grid ruu=32,64,128 --grid width=2,4,8
        --max 50000 --reduction 50 --jobs 2
        --journal "${dir}/pruned.jsonl"
        --surrogate "${dir}/model.json" --frontier-margin 0 --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "pruned sweep failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "surrogate: keeping ([0-9]+) of 9 points")
        message(FATAL_ERROR "no surrogate banner:\n${out}")
    endif()
    set(kept ${CMAKE_MATCH_1})
    if(kept GREATER_EQUAL 9)
        message(FATAL_ERROR
            "frontier margin 0 pruned nothing (${kept} of 9)")
    endif()
    if(NOT out MATCHES "([0-9]+) pruned")
        message(FATAL_ERROR "summary lacks the pruned count:\n${out}")
    endif()
    file(READ "${dir}/pruned.jsonl" pj)
    if(NOT pj MATCHES "\"status\":\"pruned\"")
        message(FATAL_ERROR "journal has no pruned done records")
    endif()

    # A surrogate from a different program is refused (exit 2).
    run_ssim(rc out err sweep cc
        --grid ruu=32,64 --max 50000 --reduction 50
        --surrogate "${dir}/model.json" --quiet)
    if(NOT rc EQUAL 2)
        message(FATAL_ERROR
            "surrogate from another program accepted (rc=${rc})")
    endif()
    if(NOT err MATCHES "different profile")
        message(FATAL_ERROR
            "profile-mismatch refusal lacks diagnostic:\n${err}")
    endif()

    # Resuming the pruned journal *without* the surrogate re-queues
    # the pruned points: the dry-run plan must show them as `run`.
    run_ssim(rc out err sweep zip
        --grid ruu=32,64,128 --grid width=2,4,8
        --max 50000 --reduction 50
        --journal "${dir}/pruned.jsonl" --resume --dry-run --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "dry-run over pruned journal failed (rc=${rc})\n${err}")
    endif()
    math(EXPR pruned_count "9 - ${kept}")
    if(NOT out MATCHES "${pruned_count} to run")
        message(FATAL_ERROR
            "pruned points did not re-queue on maskless resume "
            "(want ${pruned_count} to run):\n${out}")
    endif()

elseif(MODE STREQUAL "dryrun")
    # Fresh dry-run: every point plans as `run`, nothing is written.
    run_ssim(rc out err sweep zip
        --grid ruu=32,64 --grid width=2,4
        --max 50000 --reduction 50
        --journal "${dir}/never.jsonl" --dry-run --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fresh dry-run failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "4 points -> 4 to run")
        message(FATAL_ERROR "fresh dry-run plan wrong:\n${out}")
    endif()
    if(NOT out MATCHES "nothing was simulated")
        message(FATAL_ERROR "dry-run banner missing:\n${out}")
    endif()
    if(EXISTS "${dir}/never.jsonl")
        message(FATAL_ERROR "dry-run wrote a journal")
    endif()

    # After a real sweep, a resumed dry-run reports the journal delta:
    # everything reused, nothing to run.
    run_ssim(rc out err sweep zip
        --grid ruu=32,64 --grid width=2,4
        --max 50000 --reduction 50 --jobs 2
        --journal "${dir}/done.jsonl" --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep failed (rc=${rc})\n${err}")
    endif()
    run_ssim(rc out err sweep zip
        --grid ruu=32,64 --grid width=2,4
        --max 50000 --reduction 50
        --journal "${dir}/done.jsonl" --resume --dry-run --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "resumed dry-run failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "0 to run, 0 to retry, 4 reused")
        message(FATAL_ERROR "resumed dry-run delta wrong:\n${out}")
    endif()

else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
