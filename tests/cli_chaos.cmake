# CTest script: the `ssim chaos` invariant harness end to end.
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>.
#
# Runs 100 seeded fault schedules (alternating sweep and serve) from
# a fixed base seed and requires:
#  - exit 0 with zero invariant violations;
#  - the summary to account for every schedule and to have verified
#    its replay subset (same seed -> identical digest);
#  - a second identical invocation to succeed too (the harness itself
#    is deterministic).

set(dir "${WORK_DIR}/cli_chaos")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

foreach(run 1 2)
    execute_process(
        COMMAND "${SSIM_CLI}" chaos --schedules 100 --seed 7
                --replay-verify 3 --dir "${dir}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "chaos run ${run} failed (rc=${rc})\n${out}\n${err}")
    endif()
    if(NOT out MATCHES "chaos: 100 schedules \\(50 sweep, 50 serve\\)")
        message(FATAL_ERROR
            "chaos run ${run}: summary does not account for all "
            "schedules\n${out}")
    endif()
    if(NOT out MATCHES "3 replays verified")
        message(FATAL_ERROR
            "chaos run ${run}: replay verification did not run"
            "\n${out}")
    endif()
    if(NOT out MATCHES "all invariants held")
        message(FATAL_ERROR
            "chaos run ${run}: invariants not confirmed\n${out}")
    endif()
endforeach()

# A single re-run of one seed must reproduce (spot check through the
# CLI rather than the built-in replay pass: different process, same
# digests mean the fault sequence is truly derived from the seed).
execute_process(
    COMMAND "${SSIM_CLI}" chaos --schedules 2 --seed 7
            --replay-verify 2 --dir "${dir}" --verbose
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "chaos single-seed re-run failed (rc=${rc})\n${out}\n${err}")
endif()

message(STATUS "cli_chaos: PASS")
