# CTest script: end-to-end contract of the observability exports —
# `--stats-json` golden byte-stability across identical seeded runs,
# schema validation of both export formats (via cmake's string(JSON)
# against tests/schemas/*.schema.json), and the sweep trace with a
# deterministically injected timeout/retry.
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>
#              -DSCHEMA_DIR=<tests/schemas> -DMODE=<run|sweep>.

cmake_minimum_required(VERSION 3.19)  # string(JSON)

set(dir "${WORK_DIR}/cli_obs_${MODE}")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

function(run_ssim rc_var out_var err_var)
    execute_process(COMMAND "${SSIM_CLI}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    set(${rc_var} "${rc}" PARENT_SCOPE)
    set(${out_var} "${out}" PARENT_SCOPE)
    set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# --- Minimal JSON Schema checker -----------------------------------
#
# Validates the subset the schemas in tests/schemas/ use: "type" on a
# node, and for objects "required" member lists with recursion into
# the matching "properties" subschema. `doc` and `schema` are JSON
# text; `path` is a human-readable location for error messages.

function(schema_type_name json_type out_var)
    # Map JSON Schema type names onto cmake string(JSON ... TYPE)
    # results. "integer" is a NUMBER to cmake.
    string(TOUPPER "${json_type}" upper)
    if(upper STREQUAL "INTEGER")
        set(upper "NUMBER")
    endif()
    set(${out_var} "${upper}" PARENT_SCOPE)
endfunction()

# `doc` must be JSON object text (string(JSON GET) on scalar members
# returns the bare value, so recursion only descends into objects,
# where the extracted text is itself valid JSON).
function(validate_node doc schema path what)
    string(JSON nreq ERROR_VARIABLE no_req LENGTH "${schema}" required)
    if(NOT no_req STREQUAL "NOTFOUND")
        return()   # no required list at this level
    endif()
    math(EXPR last "${nreq} - 1")
    foreach(i RANGE ${last})
        string(JSON key GET "${schema}" required ${i})
        string(JSON have ERROR_VARIABLE missing TYPE "${doc}" ${key})
        if(NOT missing STREQUAL "NOTFOUND")
            message(FATAL_ERROR
                "${what}: required member '${path}.${key}' is "
                "missing")
        endif()
        string(JSON subschema ERROR_VARIABLE no_prop
            GET "${schema}" properties ${key})
        if(no_prop STREQUAL "NOTFOUND")
            string(JSON want ERROR_VARIABLE no_type
                GET "${subschema}" type)
            if(no_type STREQUAL "NOTFOUND")
                schema_type_name("${want}" want)
                if(NOT have STREQUAL want)
                    message(FATAL_ERROR
                        "${what}: ${path}.${key} has type ${have}, "
                        "schema wants ${want}")
                endif()
            endif()
            if(have STREQUAL "OBJECT")
                string(JSON sub GET "${doc}" ${key})
                validate_node("${sub}" "${subschema}"
                    "${path}.${key}" "${what}")
            endif()
        endif()
    endforeach()
endfunction()

function(validate_file doc_file schema_file what)
    file(READ "${doc_file}" doc)
    file(READ "${schema_file}" schema)
    string(JSON roottype ERROR_VARIABLE bad TYPE "${doc}")
    if(NOT bad STREQUAL "NOTFOUND" OR NOT roottype STREQUAL "OBJECT")
        message(FATAL_ERROR
            "${what}: ${doc_file} is not a JSON object (${bad})")
    endif()
    validate_node("${doc}" "${schema}" "$" "${what}")
endfunction()

# -------------------------------------------------------------------

if(MODE STREQUAL "run")
    # Profile once, then two identical seeded statistical runs: the
    # --stats-json documents must be byte-identical (the golden
    # stability contract) and both exports must satisfy their schemas.
    set(profile "${dir}/zip.prof")
    run_ssim(rc out err profile zip -o "${profile}" --max 60000)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "profile failed (rc=${rc})\n${err}")
    endif()

    set(run_args simulate "${profile}" --reduction 50 --seed 42)
    run_ssim(rc out err ${run_args}
        --stats-json "${dir}/stats1.json" --trace "${dir}/trace1.json")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "run 1 failed (rc=${rc})\n${err}")
    endif()
    run_ssim(rc out err ${run_args}
        --stats-json "${dir}/stats2.json" --trace "${dir}/trace2.json")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "run 2 failed (rc=${rc})\n${err}")
    endif()

    file(READ "${dir}/stats1.json" stats1)
    file(READ "${dir}/stats2.json" stats2)
    if(NOT stats1 STREQUAL stats2)
        message(FATAL_ERROR
            "identical seeded runs produced different --stats-json "
            "documents")
    endif()

    validate_file("${dir}/stats1.json"
        "${SCHEMA_DIR}/stats.schema.json" "stats-json")
    validate_file("${dir}/trace1.json"
        "${SCHEMA_DIR}/trace.schema.json" "trace")

    # Spot-check semantics the schema cannot express: the stats carry
    # the profile checksum and core metrics; the trace carries the
    # windowed IPC counter series.
    if(NOT stats1 MATCHES "\"profile_checksum\":\"[0-9a-f]+\"")
        message(FATAL_ERROR "stats-json lacks the profile checksum")
    endif()
    if(NOT stats1 MATCHES "\"core\\.cycles\":[0-9]+")
        message(FATAL_ERROR "stats-json lacks core.cycles")
    endif()
    file(READ "${dir}/trace1.json" trace1)
    if(NOT trace1 MATCHES "\"ph\":\"C\"")
        message(FATAL_ERROR "trace lacks counter events")
    endif()

    # --quiet run: warn/info chatter is suppressed, stdout intact.
    run_ssim(rc out err ${run_args} --quiet)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "--quiet run failed (rc=${rc})\n${err}")
    endif()
    if(NOT out MATCHES "IPC")
        message(FATAL_ERROR "--quiet suppressed the result table")
    endif()

elseif(MODE STREQUAL "sweep")
    # A 64-point grid with one deterministically stalled point: the
    # first attempt of point 3 sleeps past the watchdog budget, so the
    # trace must show one timeout marker, one retry marker, and a
    # successful second attempt — plus one track per worker. The
    # heartbeat (--stats-json) is the live progress export; its final
    # rewrite reflects the finished sweep and must satisfy the stats
    # schema.
    set(trace "${dir}/sweep_trace.json")
    set(heartbeat "${dir}/heartbeat.json")
    set(ENV{SSIM_SWEEP_STALL_POINT} "3:2")
    run_ssim(rc out err sweep zip
        --grid ruu=16,32,64,128 --grid width=2,4,8,16
        --grid ifq=4,8,16,32 --lsq 8
        --max 50000 --reduction 50 --jobs 2
        --point-timeout 0.5 --retries 1
        --stats-json "${heartbeat}" --trace "${trace}")
    unset(ENV{SSIM_SWEEP_STALL_POINT})
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sweep failed (rc=${rc})\n${err}")
    endif()

    validate_file("${trace}" "${SCHEMA_DIR}/trace.schema.json"
        "sweep trace")
    validate_file("${heartbeat}" "${SCHEMA_DIR}/stats.schema.json"
        "heartbeat")

    file(READ "${trace}" tdoc)
    if(NOT tdoc MATCHES "\"name\":\"timeout ")
        message(FATAL_ERROR "trace lacks the watchdog timeout marker")
    endif()
    if(NOT tdoc MATCHES "\"name\":\"retry ")
        message(FATAL_ERROR "trace lacks the retry marker")
    endif()
    if(NOT tdoc MATCHES "discarded-after-timeout")
        message(FATAL_ERROR
            "trace lacks the discarded late-attempt slice")
    endif()
    # One named track per worker plus the process row.
    if(NOT tdoc MATCHES "\"name\":\"worker 0\"" OR
       NOT tdoc MATCHES "\"name\":\"worker 1\"")
        message(FATAL_ERROR "trace lacks per-worker track names")
    endif()

    file(READ "${heartbeat}" hdoc)
    string(JSON total GET "${hdoc}" metrics sweep.points.total)
    string(JSON settled GET "${hdoc}" metrics sweep.points.settled)
    string(JSON retried GET "${hdoc}" metrics sweep.points.retried)
    if(NOT total EQUAL 64)
        message(FATAL_ERROR "heartbeat total=${total}, want 64")
    endif()
    if(NOT settled EQUAL 64)
        message(FATAL_ERROR "heartbeat settled=${settled}, want 64")
    endif()
    if(retried LESS 1)
        message(FATAL_ERROR "heartbeat shows no retried points")
    endif()

else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
