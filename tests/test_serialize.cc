/**
 * @file
 * Profile serialization tests: full round trips, format sanity and
 * failure handling — a saved profile must generate byte-identical
 * synthetic traces.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/generator.hh"
#include "core/profiler.hh"
#include "core/serialize.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

const StatisticalProfile &
original()
{
    static const StatisticalProfile p = [] {
        ProfileOptions opts;
        opts.maxInsts = 200000;
        return buildProfile(workloads::build("route", 1),
                            cpu::CoreConfig::baseline(), opts);
    }();
    return p;
}

StatisticalProfile
roundTrip(const StatisticalProfile &p)
{
    std::stringstream ss;
    saveProfile(p, ss);
    return loadProfile(ss);
}

TEST(Serialize, PreservesHeaderFields)
{
    const StatisticalProfile copy = roundTrip(original());
    EXPECT_EQ(copy.order, original().order);
    EXPECT_EQ(copy.benchmark, original().benchmark);
    EXPECT_EQ(copy.instructions, original().instructions);
    EXPECT_EQ(copy.dynamicBlocks, original().dynamicBlocks);
}

TEST(Serialize, PreservesGraphStructure)
{
    const StatisticalProfile copy = roundTrip(original());
    EXPECT_EQ(copy.nodeCount(), original().nodeCount());
    EXPECT_EQ(copy.qualifiedBlockCount(),
              original().qualifiedBlockCount());
    for (const auto &[gram, node] : original().nodes) {
        const auto it = copy.nodes.find(gram);
        ASSERT_NE(it, copy.nodes.end());
        EXPECT_EQ(it->second.occurrences, node.occurrences);
        EXPECT_EQ(it->second.edges.size(), node.edges.size());
    }
}

TEST(Serialize, PreservesShapes)
{
    const StatisticalProfile copy = roundTrip(original());
    ASSERT_EQ(copy.shapes.size(), original().shapes.size());
    for (size_t b = 0; b < copy.shapes.size(); ++b) {
        ASSERT_EQ(copy.shapes[b].size(), original().shapes[b].size());
        for (size_t i = 0; i < copy.shapes[b].size(); ++i) {
            EXPECT_EQ(copy.shapes[b][i].cls,
                      original().shapes[b][i].cls);
            EXPECT_EQ(copy.shapes[b][i].numSrcs,
                      original().shapes[b][i].numSrcs);
            EXPECT_EQ(copy.shapes[b][i].isLoad,
                      original().shapes[b][i].isLoad);
        }
    }
}

TEST(Serialize, PreservesBranchStats)
{
    const StatisticalProfile copy = roundTrip(original());
    const BranchStats a = original().totalBranchStats();
    const BranchStats b = copy.totalBranchStats();
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.redirect, b.redirect);
    EXPECT_EQ(a.mispredict, b.mispredict);
}

TEST(Serialize, GeneratesIdenticalTraces)
{
    // The decisive invariant: a loaded profile drives the generator
    // to exactly the same synthetic trace.
    const StatisticalProfile copy = roundTrip(original());
    GenerationOptions opts;
    opts.reductionFactor = 20;
    opts.seed = 9;
    const SyntheticTrace a = generateSyntheticTrace(original(), opts);
    const SyntheticTrace b = generateSyntheticTrace(copy, opts);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.insts[i].blockId, b.insts[i].blockId);
        EXPECT_EQ(a.insts[i].cls, b.insts[i].cls);
        EXPECT_EQ(a.insts[i].depDist[0], b.insts[i].depDist[0]);
        EXPECT_EQ(a.insts[i].taken, b.insts[i].taken);
        EXPECT_EQ(a.insts[i].dl1Miss, b.insts[i].dl1Miss);
    }
}

TEST(Serialize, DoubleRoundTripIsStable)
{
    const StatisticalProfile once = roundTrip(original());
    const StatisticalProfile twice = roundTrip(once);
    std::stringstream sa, sb;
    saveProfile(once, sa);
    saveProfile(twice, sb);
    // Map iteration order may vary between objects, so compare the
    // semantic content via counts.
    EXPECT_EQ(once.qualifiedBlockCount(),
              twice.qualifiedBlockCount());
    EXPECT_EQ(sa.str().size(), sb.str().size());
}

TEST(Serialize, RejectsForeignData)
{
    std::stringstream ss;
    ss << "not-a-profile 1\n";
    try {
        loadProfile(ss);
        FAIL() << "foreign data was accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::ParseError);
        EXPECT_NE(std::string(e.what()).find("not a ssim profile"),
                  std::string::npos);
    }
}

TEST(Serialize, RejectsFutureVersion)
{
    std::stringstream ss;
    ss << "ssim-profile 999 0000000000000000 0\n";
    try {
        loadProfile(ss);
        FAIL() << "future version was accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::VersionMismatch);
        EXPECT_NE(std::string(e.what())
                      .find("unsupported profile version"),
                  std::string::npos);
    }
}

TEST(Serialize, RejectsVersion1Profiles)
{
    // Version-1 files carried no checksum; they are rejected rather
    // than trusted.
    std::stringstream ss;
    ss << "ssim-profile 1\n1 1000 10\nbench\n0\n0\n";
    EXPECT_THROW(loadProfile(ss), Error);
}

TEST(Serialize, RejectsTruncatedInput)
{
    std::stringstream full;
    saveProfile(original(), full);
    const std::string text = full.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    try {
        loadProfile(truncated);
        FAIL() << "truncated profile was accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::CorruptData);
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(Serialize, RejectsBitFlippedPayload)
{
    std::stringstream full;
    saveProfile(original(), full);
    std::string text = full.str();
    // Flip one digit deep inside the payload without changing the
    // length; the checksum must catch it.
    const size_t pos = text.size() / 2;
    ASSERT_GT(pos, 64u);
    text[pos] = text[pos] == '1' ? '2' : '1';
    std::stringstream flipped(text);
    try {
        loadProfile(flipped);
        FAIL() << "bit-flipped profile was accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::CorruptData);
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(Serialize, ErrorsCarryFileAndLineContext)
{
    std::stringstream ss;
    ss << "not-a-profile 1\n";
    try {
        loadProfile(ss, "profiles/zip.prof");
        FAIL() << "foreign data was accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.context().file, "profiles/zip.prof");
        EXPECT_EQ(e.context().line, 1u);
        EXPECT_NE(std::string(e.what()).find("profiles/zip.prof:1"),
                  std::string::npos);
    }
}

TEST(Serialize, TryLoadReturnsExpectedInsteadOfThrowing)
{
    std::stringstream ss;
    ss << "not-a-profile 1\n";
    const Expected<StatisticalProfile> result = tryLoadProfile(ss);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(),
              ErrorCategory::ParseError);

    std::stringstream good;
    saveProfile(original(), good);
    const Expected<StatisticalProfile> loaded = tryLoadProfile(good);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().nodeCount(), original().nodeCount());
}

TEST(Serialize, MissingFileIsIoError)
{
    const Expected<StatisticalProfile> result =
        tryLoadProfileFile("/nonexistent/dir/zip.prof");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::IoError);
    EXPECT_EQ(result.error().context().file,
              "/nonexistent/dir/zip.prof");
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path = "/tmp/ssim_profile_test.txt";
    saveProfileFile(original(), path);
    const StatisticalProfile copy = loadProfileFile(path);
    EXPECT_EQ(copy.nodeCount(), original().nodeCount());
    std::remove(path.c_str());
}

} // namespace
