/**
 * @file
 * Unit tests for the fault-injection registry (src/fault): rule
 * validation, hit/fire semantics (keys, on_hit, max fires, seeded
 * probability streams), plan-spec parsing and its round trip, the
 * process-wide install/clear lifecycle, the legacy SSIM_* env shims,
 * and the journal sites end to end.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "fault/fault.hh"
#include "util/journal.hh"

namespace
{

using namespace ssim;
using fault::Action;
using fault::FaultPlan;
using fault::Outcome;
using fault::Rule;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

Rule
failRule(const std::string &site, uint64_t onHit = 0)
{
    Rule rule;
    rule.site = site;
    rule.action = Action::FailErrno;
    rule.err = EIO;
    rule.onHit = onHit;
    return rule;
}

/** Clears the installed plan even when an assertion bails out. */
struct RegistryGuard
{
    ~RegistryGuard() { fault::clearPlan(); }
};

TEST(FaultPlan, RejectsUnusableRules)
{
    FaultPlan plan;
    EXPECT_THROW(plan.addRule(Rule{}), Error);   // no site, no action
    Rule noAction;
    noAction.site = "x";
    EXPECT_THROW(plan.addRule(noAction), Error);
    Rule badProb = failRule("x");
    badProb.probability = 1.5;
    EXPECT_THROW(plan.addRule(badProb), Error);
}

TEST(FaultPlan, UnkeyedRuleFiresOnEveryHit)
{
    FaultPlan plan;
    plan.addRule(failRule("journal.fsync"));
    for (int i = 0; i < 3; ++i) {
        const Outcome out = plan.hit("journal.fsync", "");
        EXPECT_EQ(out.action, Action::FailErrno);
        EXPECT_EQ(out.err, EIO);
    }
    EXPECT_FALSE(plan.hit("journal.append", ""));
    EXPECT_EQ(plan.totalFires(), 3u);
}

TEST(FaultPlan, OnHitFiresExactlyTheNth)
{
    FaultPlan plan;
    plan.addRule(failRule("s", 3));
    EXPECT_FALSE(plan.hit("s", ""));
    EXPECT_FALSE(plan.hit("s", ""));
    EXPECT_TRUE(static_cast<bool>(plan.hit("s", "")));
    EXPECT_FALSE(plan.hit("s", ""));
}

TEST(FaultPlan, KeyedRuleCountsOnlyMatchingHits)
{
    FaultPlan plan;
    Rule rule = failRule("serve.request", 2);
    rule.key = "q1";
    plan.addRule(rule);
    EXPECT_FALSE(plan.hit("serve.request", "q0"));
    EXPECT_FALSE(plan.hit("serve.request", "q1"));   // hit 1 of q1
    EXPECT_FALSE(plan.hit("serve.request", "q2"));
    EXPECT_TRUE(
        static_cast<bool>(plan.hit("serve.request", "q1")));   // hit 2
}

TEST(FaultPlan, MaxFiresCapsFirings)
{
    FaultPlan plan;
    Rule rule = failRule("s");
    rule.maxFires = 2;
    plan.addRule(rule);
    EXPECT_TRUE(static_cast<bool>(plan.hit("s", "")));
    EXPECT_TRUE(static_cast<bool>(plan.hit("s", "")));
    EXPECT_FALSE(plan.hit("s", ""));
    EXPECT_EQ(plan.totalFires(), 2u);
}

TEST(FaultPlan, FirstMatchWinsButAllCountersAdvance)
{
    FaultPlan plan;
    Rule first = failRule("s");
    first.maxFires = 1;
    plan.addRule(first);
    Rule second = failRule("s", 2);   // counts hits behind the winner
    second.err = ENOSPC;
    plan.addRule(second);
    EXPECT_EQ(plan.hit("s", "").err, EIO);     // first rule fires
    EXPECT_EQ(plan.hit("s", "").err, ENOSPC);  // second saw hit 2
}

TEST(FaultPlan, ProbabilityIsDeterministicInTheSeed)
{
    auto firings = [](uint64_t seed) {
        FaultPlan plan(seed);
        Rule rule = failRule("s");
        rule.probability = 0.5;
        plan.addRule(rule);
        std::string pattern;
        for (int i = 0; i < 64; ++i)
            pattern += plan.hit("s", "") ? '1' : '0';
        return pattern;
    };
    const std::string a = firings(42);
    EXPECT_EQ(a, firings(42));
    EXPECT_NE(a, firings(43));
    EXPECT_NE(a.find('1'), std::string::npos);
    EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultPlan, CloneFreshResetsState)
{
    FaultPlan plan(7);
    plan.addRule(failRule("s", 1));
    EXPECT_TRUE(static_cast<bool>(plan.hit("s", "")));
    const FaultPlan clone = plan.cloneFresh();
    FaultPlan fresh = clone;
    EXPECT_EQ(fresh.totalFires(), 0u);
    EXPECT_TRUE(static_cast<bool>(fresh.hit("s", "")));
}

TEST(FaultPlan, ParsesSpecAndRoundTrips)
{
    const std::string spec =
        "{\"seed\":42,\"rules\":["
        "{\"site\":\"journal.append\",\"action\":\"torn\","
        "\"bytes\":7,\"on_hit\":3},"
        "{\"site\":\"serve.request\",\"key\":\"q1\","
        "\"action\":\"crash\",\"count\":1},"
        "{\"site\":\"journal.fsync\",\"action\":\"fail\","
        "\"errno\":\"ENOSPC\",\"probability\":0.25},"
        "{\"site\":\"transport.write\",\"action\":\"stall\","
        "\"ms\":5}]}";
    Expected<FaultPlan> parsed = FaultPlan::parseJson(spec, "<test>");
    ASSERT_TRUE(parsed) << parsed.error().what();
    EXPECT_EQ(parsed.value().ruleCount(), 4u);

    // The torn rule: fires on append hit 3 with the byte budget.
    FaultPlan plan = parsed.value();
    plan.hit("journal.append", "");
    plan.hit("journal.append", "");
    const Outcome torn = plan.hit("journal.append", "");
    EXPECT_EQ(torn.action, Action::TornIo);
    EXPECT_EQ(torn.bytes, 7u);

    // Round trip: the re-parsed serialization behaves identically.
    Expected<FaultPlan> again =
        FaultPlan::parseJson(parsed.value().toJson(), "<round-trip>");
    ASSERT_TRUE(again) << again.error().what();
    EXPECT_EQ(again.value().ruleCount(), 4u);
    EXPECT_EQ(again.value().toJson(), parsed.value().toJson());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultPlan::parseJson("{\"rules\":[{}]}", "<t>"));
    EXPECT_FALSE(FaultPlan::parseJson(
        "{\"rules\":[{\"site\":\"s\",\"action\":\"nope\"}]}", "<t>"));
    EXPECT_FALSE(FaultPlan::parseJson(
        "{\"rules\":[{\"site\":\"s\",\"action\":\"fail\","
        "\"errno\":\"EWHAT\"}]}",
        "<t>"));
    EXPECT_FALSE(FaultPlan::parseJson("not json", "<t>"));
}

TEST(FaultPlan, LoadSpecTakesInlineJsonOrAPath)
{
    const std::string inlineSpec =
        "{\"rules\":[{\"site\":\"s\",\"action\":\"fail\"}]}";
    Expected<FaultPlan> inlinePlan = FaultPlan::loadSpec(inlineSpec);
    ASSERT_TRUE(inlinePlan) << inlinePlan.error().what();
    EXPECT_EQ(inlinePlan.value().ruleCount(), 1u);

    const std::string path = tempPath("fault_plan_spec.json");
    {
        std::ofstream os(path);
        // Multi-line specs are legal in files.
        os << "{\n  \"seed\": 9,\n  \"rules\": [\n"
           << "    {\"site\": \"s\", \"action\": \"fail\"}\n  ]\n}\n";
    }
    Expected<FaultPlan> filePlan = FaultPlan::loadSpec(path);
    ASSERT_TRUE(filePlan) << filePlan.error().what();
    EXPECT_EQ(filePlan.value().ruleCount(), 1u);
    std::remove(path.c_str());

    EXPECT_FALSE(FaultPlan::loadSpec("/no/such/spec.json"));
}

TEST(FaultRegistry, InstalledPlanOwnsEverySite)
{
    RegistryGuard guard;
    auto plan = std::make_shared<FaultPlan>();
    plan->addRule(failRule("journal.fsync"));
    fault::installPlan(plan);
    EXPECT_TRUE(static_cast<bool>(fault::point("journal.fsync")));
    // An installed plan also owns sites it has no rule for: the
    // local/legacy fallbacks must not fire behind its back.
    FaultPlan local;
    local.addRule(failRule("serve.request"));
    EXPECT_FALSE(fault::point("serve.request", "q1", &local));
    fault::clearPlan();
    EXPECT_FALSE(fault::point("journal.fsync"));
    EXPECT_TRUE(
        static_cast<bool>(fault::point("serve.request", "q1", &local)));
}

TEST(FaultRegistry, ScopedPlanRestoresOnExit)
{
    {
        FaultPlan plan;
        plan.addRule(failRule("s"));
        fault::ScopedPlan scoped(std::move(plan));
        EXPECT_TRUE(static_cast<bool>(fault::point("s")));
    }
    EXPECT_FALSE(fault::point("s"));
}

TEST(FaultRegistry, EnvPlanInstalls)
{
    RegistryGuard guard;
    ::setenv("SSIM_FAULT_PLAN",
             "{\"rules\":[{\"site\":\"s\",\"action\":\"fail\"}]}", 1);
    EXPECT_TRUE(fault::installPlanFromEnv());
    ::unsetenv("SSIM_FAULT_PLAN");
    EXPECT_TRUE(static_cast<bool>(fault::point("s")));
    fault::clearPlan();
    EXPECT_FALSE(fault::installPlanFromEnv());

    ::setenv("SSIM_FAULT_PLAN", "not json", 1);
    EXPECT_THROW(fault::installPlanFromEnv(), Error);
    ::unsetenv("SSIM_FAULT_PLAN");
}

TEST(FaultLegacyShims, SweepEnvBecomesAPlan)
{
    ::setenv("SSIM_SWEEP_CRASH_AFTER", "3", 1);
    ::setenv("SSIM_SWEEP_STALL_POINT", "2:0.5", 1);
    std::shared_ptr<FaultPlan> plan = FaultPlan::fromSweepEnv();
    ::unsetenv("SSIM_SWEEP_CRASH_AFTER");
    ::unsetenv("SSIM_SWEEP_STALL_POINT");
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->ruleCount(), 2u);
    plan->hit("sweep.journal.done", "");
    plan->hit("sweep.journal.done", "");
    EXPECT_EQ(plan->hit("sweep.journal.done", "").action,
              Action::Crash);
    const Outcome stall = plan->hit("sweep.point.start", "2");
    EXPECT_EQ(stall.action, Action::Stall);
    EXPECT_EQ(stall.ms, 500u);
    // Legacy semantics: only the first attempt of the point stalls.
    EXPECT_FALSE(plan->hit("sweep.point.start", "2"));

    EXPECT_EQ(FaultPlan::fromSweepEnv(), nullptr);
    ::setenv("SSIM_SWEEP_CRASH_AFTER", "junk", 1);
    EXPECT_EQ(FaultPlan::fromSweepEnv(), nullptr);   // silent ignore
    ::unsetenv("SSIM_SWEEP_CRASH_AFTER");
}

TEST(FaultLegacyShims, ServeEnvBecomesAPlan)
{
    ::setenv("SSIM_SERVE_CRASH_ON", "a,b", 1);
    std::shared_ptr<FaultPlan> plan = FaultPlan::fromServeEnv();
    ::unsetenv("SSIM_SERVE_CRASH_ON");
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->hit("serve.request", "a").action, Action::Crash);
    EXPECT_EQ(plan->hit("serve.request", "b").action, Action::Crash);
    EXPECT_FALSE(plan->hit("serve.request", "c"));
    // Unlimited fires, matching the old set-membership hook.
    EXPECT_EQ(plan->hit("serve.request", "a").action, Action::Crash);

    EXPECT_EQ(FaultPlan::fromServeEnv(), nullptr);
}

TEST(FaultLegacyShims, FsyncEnvHookStillWorksDynamically)
{
    // The pre-registry hook was consulted per call; the site keeps
    // that contract when no plan covers it.
    const std::string path = tempPath("fault_fsync_hook.txt");
    ::setenv("SSIM_FSYNC_FAIL", "1", 1);
    const Expected<void> failed = util::atomicWriteFile(
        path, [](std::ostream &os) { os << "x\n"; });
    ::unsetenv("SSIM_FSYNC_FAIL");
    EXPECT_FALSE(failed);
    const Expected<void> ok = util::atomicWriteFile(
        path, [](std::ostream &os) { os << "x\n"; });
    EXPECT_TRUE(ok) << ok.error().what();
    std::remove(path.c_str());
}

TEST(FaultSites, JournalAppendFailAndTorn)
{
    RegistryGuard guard;
    const std::string path = tempPath("fault_journal_sites.journal");
    std::remove(path.c_str());

    util::JournalRecord rec;
    rec.event = "done";
    rec.point = 1;
    rec.attempt = 1;
    rec.status = "ok";

    auto plan = std::make_shared<FaultPlan>();
    Rule enospc = failRule("journal.append", 2);
    enospc.err = ENOSPC;
    enospc.maxFires = 1;
    plan->addRule(enospc);
    Rule torn;
    torn.site = "journal.append";
    torn.action = Action::TornIo;
    torn.err = EIO;
    torn.bytes = 5;
    torn.onHit = 4;
    plan->addRule(torn);
    fault::installPlan(plan);

    util::Journal journal;
    ASSERT_TRUE(journal.open(path, true));
    EXPECT_TRUE(journal.append(rec));    // hit 1: clean
    EXPECT_FALSE(journal.append(rec));   // hit 2: ENOSPC, no bytes
    EXPECT_TRUE(journal.append(rec));    // hit 3: clean
    EXPECT_FALSE(journal.append(rec));   // hit 4: torn after 5 bytes
    EXPECT_TRUE(journal.append(rec));    // hit 5: merges with the tear
    EXPECT_TRUE(journal.append(rec));    // hit 6: clean final line
    journal.close();
    fault::clearPlan();

    // The torn record merges with its successor into one corrupt
    // *interior* line (hit 6 keeps it off the tolerated final-line
    // position); load skips and counts it, keeping the intact
    // records.
    uint64_t skipped = 0;
    Expected<std::vector<util::JournalRecord>> loaded =
        util::Journal::load(path, &skipped);
    ASSERT_TRUE(loaded) << loaded.error().what();
    EXPECT_EQ(loaded.value().size(), 3u);
    EXPECT_EQ(skipped, 1u);
    std::remove(path.c_str());
}

} // namespace
