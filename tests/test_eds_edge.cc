/**
 * @file
 * Execution-driven frontend edge cases, exercised with hand-crafted
 * programs: BTB-driven fetch redirects, indirect-branch target
 * mispredictions, RAS behaviour under recursion, and recovery paths.
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "isa/assembler.hh"

namespace
{

using namespace ssim;
using core::SimResult;

cpu::CoreConfig
baseline()
{
    return cpu::CoreConfig::baseline();
}

SimResult
runEds(const isa::Program &prog,
       const cpu::CoreConfig &cfg = baseline())
{
    return core::runExecutionDriven(prog, cfg);
}

TEST(EdsEdge, ColdDirectJumpIsRedirectNotMispredict)
{
    // A direct jump misses the BTB only on first sight: the first
    // encounter is a fetch redirection, later ones are free.
    isa::Assembler as("jmp");
    isa::Label top = as.newLabel(), body = as.newLabel();
    as.li(3, 0);
    as.bind(top);
    as.jmp(body);
    as.nop();           // skipped
    as.bind(body);
    as.addi(3, 3, 1);
    as.slti(4, 3, 100);
    as.bne(4, isa::RegZero, top);
    as.halt();
    const SimResult res = runEds(as.finish());
    EXPECT_GE(res.stats.fetchRedirects, 1u);
    EXPECT_LT(res.stats.fetchRedirects, 5u);
}

TEST(EdsEdge, AlternatingIndirectTargetMispredicts)
{
    // A jr alternating between two targets defeats a single-target
    // BTB entry: roughly half the executions mispredict.
    isa::Assembler as("jr2");
    isa::Label top = as.newLabel(), t1 = as.newLabel();
    isa::Label t2 = as.newLabel(), join = as.newLabel();
    isa::Label pick2 = as.newLabel(), doJump = as.newLabel();
    as.li(3, 0);                 // counter
    as.bind(top);
    as.andi(6, 3, 1);
    as.bne(6, isa::RegZero, pick2);
    as.la(7, t1);
    as.jmp(doJump);
    as.bind(pick2);
    as.la(7, t2);
    as.bind(doJump);
    as.jr(7);
    as.bind(t1);
    as.addi(4, 4, 1);
    as.jmp(join);
    as.bind(t2);
    as.addi(5, 5, 1);
    as.bind(join);
    as.addi(3, 3, 1);
    as.slti(6, 3, 400);
    as.bne(6, isa::RegZero, top);
    as.halt();
    const SimResult res = runEds(as.finish());
    // ~400 jr executions; at least a third mispredict.
    EXPECT_GT(res.stats.mispredicts, 130u);
}

TEST(EdsEdge, RasMakesRecursiveReturnsCheap)
{
    // Deep self-recursion: every ret target comes off the RAS; with
    // a 64-entry RAS and depth 32, returns predict perfectly after
    // warmup.
    isa::Assembler as("rec");
    isa::Label fn = as.newLabel(), down = as.newLabel();
    isa::Label main = as.newLabel();
    as.jmp(main);
    as.bind(fn);
    as.beq(3, isa::RegZero, down);
    as.addi(isa::RegSp, isa::RegSp, -8);
    as.sd(isa::RegRa, isa::RegSp, 0);
    as.addi(3, 3, -1);
    as.call(fn);
    as.ld(isa::RegRa, isa::RegSp, 0);
    as.addi(isa::RegSp, isa::RegSp, 8);
    as.bind(down);
    as.ret();
    as.bind(main);
    as.li(5, 0);
    isa::Label loop = as.newLabel();
    as.bind(loop);
    as.li(3, 32);
    as.call(fn);
    as.addi(5, 5, 1);
    as.slti(6, 5, 50);
    as.bne(6, isa::RegZero, loop);
    as.halt();
    const SimResult res = runEds(as.finish());
    // ~1650 rets + calls; very few mispredicts once warm.
    EXPECT_LT(res.stats.mispredictsPerKilo(), 25.0);
}

TEST(EdsEdge, TinyIfqStillDrains)
{
    isa::Assembler as("tiny");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.bind(top);
    as.addi(3, 3, 1);
    as.slti(4, 3, 2000);
    as.bne(4, isa::RegZero, top);
    as.halt();
    const isa::Program prog = as.finish();
    cpu::CoreConfig cfg = baseline();
    cfg.ifqSize = 1;
    const SimResult res = runEds(prog, cfg);
    EXPECT_EQ(res.stats.committed, 2 + 3 * 2000ull);
    EXPECT_LE(res.ipc, 1.01);   // one instruction per fetch cycle
}

TEST(EdsEdge, SingleEntryWindow)
{
    isa::Assembler as("ruu1");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.bind(top);
    as.addi(3, 3, 1);
    as.slti(4, 3, 500);
    as.bne(4, isa::RegZero, top);
    as.halt();
    const isa::Program prog = as.finish();
    cpu::CoreConfig cfg = baseline();
    cfg.ruuSize = 1;
    cfg.lsqSize = 1;
    const SimResult res = runEds(prog, cfg);
    EXPECT_EQ(res.stats.committed, 2 + 3 * 500ull);
    EXPECT_LE(res.stats.avgRuuOccupancy(), 1.0);
}

TEST(EdsEdge, LsqPressureBoundsInFlightMemOps)
{
    // A burst of independent stores through a 4-entry LSQ.
    isa::Assembler as("lsq");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.li(5, 4096);
    as.bind(top);
    as.sd(3, 5, 0);
    as.sd(3, 5, 8);
    as.sd(3, 5, 16);
    as.sd(3, 5, 24);
    as.addi(3, 3, 1);
    as.slti(4, 3, 500);
    as.bne(4, isa::RegZero, top);
    as.halt();
    const isa::Program prog = as.finish();
    cpu::CoreConfig cfg = baseline();
    cfg.lsqSize = 4;
    const SimResult res = runEds(prog, cfg);
    EXPECT_EQ(res.stats.stores, 2000u);
    EXPECT_LE(res.stats.avgLsqOccupancy(), 4.0);
}

TEST(EdsEdge, BackToBackMispredictsRecoverCleanly)
{
    // A data-dependent branch flipping pseudo-randomly every
    // iteration: constant mispredict pressure with immediate
    // re-mispredicts after recovery.
    isa::Assembler as("flip");
    isa::Label top = as.newLabel(), odd = as.newLabel();
    isa::Label join = as.newLabel();
    as.li(3, 0);
    as.li(7, 0x51ab5);
    as.bind(top);
    as.li(8, 1103515245);
    as.mul(7, 7, 8);
    as.addi(7, 7, 12345);
    as.srli(8, 7, 17);
    as.andi(8, 8, 1);
    as.bne(8, isa::RegZero, odd);
    as.addi(4, 4, 1);
    as.jmp(join);
    as.bind(odd);
    as.addi(5, 5, 1);
    as.bind(join);
    as.addi(3, 3, 1);
    as.slti(8, 3, 3000);
    as.bne(8, isa::RegZero, top);
    as.halt();
    const SimResult res = runEds(as.finish());
    EXPECT_EQ(res.stats.committed, res.stats.committed);
    EXPECT_GT(res.stats.mispredicts, 800u);   // ~50% of 3000
    // IPC collapses under the mispredict penalty but stays sane.
    EXPECT_GT(res.ipc, 0.2);
    EXPECT_LT(res.ipc, 4.0);
}

} // namespace
