/**
 * @file
 * Synthetic trace generation tests: reduction factor semantics,
 * trace-length targeting, instruction-mix preservation, dependency
 * validity (step 4's producer rule), flag probabilities and
 * seed-to-seed variation.
 */

#include <array>
#include <gtest/gtest.h>

#include "core/generator.hh"
#include "core/profiler.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

const isa::Program &
zipProgram()
{
    static const isa::Program prog = workloads::build("zip", 1);
    return prog;
}

const StatisticalProfile &
zipProfile()
{
    static const StatisticalProfile profile = [] {
        ProfileOptions opts;
        opts.maxInsts = 400000;
        return buildProfile(zipProgram(),
                            cpu::CoreConfig::baseline(), opts);
    }();
    return profile;
}

TEST(Generator, TraceLengthMatchesReductionFactor)
{
    for (uint64_t r : {10ull, 50ull, 200ull}) {
        GenerationOptions opts;
        opts.reductionFactor = r;
        const SyntheticTrace trace =
            generateSyntheticTrace(zipProfile(), opts);
        const double expected =
            static_cast<double>(zipProfile().instructions) / r;
        EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                    0.1 * expected + 50)
            << "R=" << r;
    }
}

TEST(Generator, MixMatchesProfile)
{
    // Aggregate instruction class frequencies of the synthetic trace
    // must match the profiled program's mix.
    GenerationOptions opts;
    opts.reductionFactor = 10;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);

    std::array<double, isa::NumInstClasses> synthMix{};
    for (const SynthInst &si : trace.insts)
        synthMix[static_cast<int>(si.cls)] += 1.0;
    for (double &v : synthMix)
        v /= static_cast<double>(trace.size());

    std::array<double, isa::NumInstClasses> profMix{};
    double total = 0.0;
    for (const auto &[gram, node] : zipProfile().nodes) {
        const auto &shape = zipProfile().shapes[
            StatisticalProfile::blockOf(gram)];
        for (const auto &slot : shape) {
            profMix[static_cast<int>(slot.cls)] +=
                static_cast<double>(node.entryStats.occurrences);
            total += static_cast<double>(node.entryStats.occurrences);
        }
    }
    for (double &v : profMix)
        v /= total;

    for (int c = 0; c < isa::NumInstClasses; ++c)
        EXPECT_NEAR(synthMix[c], profMix[c], 0.03)
            << isa::instClassName(static_cast<isa::InstClass>(c));
}

TEST(Generator, DependenciesNeverPointAtStoresOrBranches)
{
    // Step 4 of the algorithm: a dependency must come from an
    // instruction that produces a register value.
    GenerationOptions opts;
    opts.reductionFactor = 20;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);
    for (size_t i = 0; i < trace.size(); ++i) {
        const SynthInst &si = trace.insts[i];
        for (int p = 0; p < si.numSrcs; ++p) {
            const uint16_t d = si.depDist[p];
            if (d == 0)
                continue;
            ASSERT_LE(d, i);
            EXPECT_TRUE(trace.insts[i - d].hasDest)
                << "at " << i << " dist " << d;
        }
    }
}

TEST(Generator, DependencyDistancesBounded)
{
    GenerationOptions opts;
    opts.reductionFactor = 20;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);
    for (const SynthInst &si : trace.insts)
        for (int p = 0; p < si.numSrcs; ++p)
            EXPECT_LE(si.depDist[p], MaxDependencyDistance);
}

TEST(Generator, BranchFlagRatesTrackProfile)
{
    GenerationOptions opts;
    opts.reductionFactor = 10;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);

    uint64_t branches = 0, taken = 0, mispredicted = 0;
    for (const SynthInst &si : trace.insts) {
        if (!si.isCtrl)
            continue;
        ++branches;
        taken += si.taken;
        mispredicted +=
            si.outcome == cpu::BranchOutcome::Mispredict;
    }
    ASSERT_GT(branches, 100u);

    const BranchStats prof = zipProfile().totalBranchStats();
    const double profTaken = static_cast<double>(prof.taken) /
        prof.count;
    const double profMis = static_cast<double>(prof.mispredict) /
        prof.count;
    EXPECT_NEAR(static_cast<double>(taken) / branches, profTaken,
                0.05);
    EXPECT_NEAR(static_cast<double>(mispredicted) / branches, profMis,
                0.02);
}

TEST(Generator, CacheFlagRatesTrackProfile)
{
    GenerationOptions opts;
    opts.reductionFactor = 10;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);

    uint64_t loads = 0, dl1 = 0;
    for (const SynthInst &si : trace.insts) {
        if (si.isLoad) {
            ++loads;
            dl1 += si.dl1Miss;
        }
    }
    ASSERT_GT(loads, 100u);

    uint64_t profLoads = 0, profDl1 = 0;
    for (const auto &[gram, node] : zipProfile().nodes) {
        const auto &shape = zipProfile().shapes[
            StatisticalProfile::blockOf(gram)];
        const auto &qb = node.entryStats;
        for (size_t i = 0; i < shape.size() && i < qb.slots.size();
             ++i) {
            if (shape[i].isLoad) {
                profLoads += qb.occurrences;
                profDl1 += qb.slots[i].dl1Miss;
            }
        }
    }
    const double profRate = static_cast<double>(profDl1) / profLoads;
    EXPECT_NEAR(static_cast<double>(dl1) / loads, profRate,
                0.02 + profRate * 0.25);
}

TEST(Generator, SeedsProduceDifferentTraces)
{
    GenerationOptions a, b;
    a.reductionFactor = b.reductionFactor = 50;
    a.seed = 1;
    b.seed = 2;
    const SyntheticTrace ta = generateSyntheticTrace(zipProfile(), a);
    const SyntheticTrace tb = generateSyntheticTrace(zipProfile(), b);
    // Same statistical target, different realizations.
    bool differ = ta.size() != tb.size();
    for (size_t i = 0; !differ && i < ta.size() && i < tb.size(); ++i)
        differ = ta.insts[i].blockId != tb.insts[i].blockId;
    EXPECT_TRUE(differ);
}

TEST(Generator, SameSeedIsDeterministic)
{
    GenerationOptions opts;
    opts.reductionFactor = 50;
    opts.seed = 7;
    const SyntheticTrace ta =
        generateSyntheticTrace(zipProfile(), opts);
    const SyntheticTrace tb =
        generateSyntheticTrace(zipProfile(), opts);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta.insts[i].blockId, tb.insts[i].blockId);
        EXPECT_EQ(ta.insts[i].taken, tb.insts[i].taken);
    }
}

TEST(Generator, ReductionRemovesRareNodes)
{
    // With a huge R, only the hottest blocks survive into the trace.
    GenerationOptions opts;
    opts.reductionFactor = zipProfile().instructions / 100;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);
    EXPECT_LE(trace.size(), 200u);
}

TEST(Generator, ZeroOrderProfileStillGenerates)
{
    ProfileOptions popts;
    popts.order = 0;
    popts.maxInsts = 100000;
    const StatisticalProfile p0 = buildProfile(
        zipProgram(), cpu::CoreConfig::baseline(), popts);
    GenerationOptions gopts;
    gopts.reductionFactor = 10;
    const SyntheticTrace trace = generateSyntheticTrace(p0, gopts);
    EXPECT_GT(trace.size(), 1000u);
}

TEST(Generator, EmptyProfileYieldsEmptyTrace)
{
    StatisticalProfile empty;
    empty.order = 1;
    const SyntheticTrace trace = generateSyntheticTrace(empty);
    EXPECT_EQ(trace.size(), 0u);
}

TEST(Generator, BlocksAreEmittedWhole)
{
    // Every emitted block instance must appear as a contiguous run
    // with the static block's instruction classes.
    GenerationOptions opts;
    opts.reductionFactor = 40;
    const SyntheticTrace trace =
        generateSyntheticTrace(zipProfile(), opts);
    size_t i = 0;
    while (i < trace.size()) {
        const uint32_t blockId = trace.insts[i].blockId;
        const auto &shape = zipProfile().shapes[blockId];
        ASSERT_LE(i + shape.size(), trace.size() + shape.size());
        for (size_t j = 0; j < shape.size() && i + j < trace.size();
             ++j) {
            ASSERT_EQ(trace.insts[i + j].blockId, blockId);
            ASSERT_EQ(trace.insts[i + j].cls, shape[j].cls);
        }
        i += shape.size();
    }
}

} // namespace
