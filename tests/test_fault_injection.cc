/**
 * @file
 * Fault-injection suite for profile loading: a corruptor
 * systematically mutates a saved profile — truncations, header
 * damage, bit-flips, out-of-range fields, probability violations,
 * NaN/negative injection — and every mutation must surface as a typed
 * ssim::Error with file/line context. Never a crash, never an abort,
 * never silent acceptance of data that violates the format's
 * invariants.
 *
 * The paper's amortization argument (profile once, sweep many
 * configurations) assumes saved profiles survive real-world storage;
 * this suite is the executable contract that a damaged profile is
 * *detected*, not fed into the generator.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/generator.hh"
#include "core/profiler.hh"
#include "core/serialize.hh"
#include "util/error.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

// ---------------------------------------------------------------------
// Corruptor toolkit
// ---------------------------------------------------------------------

const StatisticalProfile &
baseProfile()
{
    static const StatisticalProfile p = [] {
        ProfileOptions opts;
        opts.maxInsts = 150000;
        return buildProfile(workloads::build("route", 1),
                            cpu::CoreConfig::baseline(), opts);
    }();
    return p;
}

/** The pristine serialized profile (header line + payload). */
const std::string &
baseText()
{
    static const std::string text = [] {
        std::stringstream ss;
        saveProfile(baseProfile(), ss);
        return ss.str();
    }();
    return text;
}

/** Payload only (everything after the header line). */
const std::string &
basePayload()
{
    static const std::string payload = [] {
        const std::string &text = baseText();
        return text.substr(text.find('\n') + 1);
    }();
    return payload;
}

/**
 * Re-wrap a (mutated) payload with a *consistent* header: correct
 * checksum and byte count. This is the crucial trick of the suite —
 * without it every semantic mutation would be caught by the checksum
 * alone and the validating parser would never be exercised.
 */
std::string
reheader(const std::string &payload)
{
    char sum[17];
    std::snprintf(sum, sizeof(sum), "%016llx",
                  static_cast<unsigned long long>(
                      profileChecksum(payload)));
    return "ssim-profile " + std::to_string(ProfileFormatVersion) +
        " " + std::string(sum) + " " + std::to_string(payload.size()) +
        "\n" + payload;
}

std::vector<std::string>
splitLines(const std::string &payload)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < payload.size()) {
        const size_t nl = payload.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(payload.substr(pos));
            break;
        }
        lines.push_back(payload.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &l : lines)
        out += l + '\n';
    return out;
}

std::vector<std::string>
tokensOf(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t)
        toks.push_back(t);
    return toks;
}

std::string
joinTokens(const std::vector<std::string> &toks)
{
    std::string out;
    for (size_t i = 0; i < toks.size(); ++i)
        out += (i ? " " : "") + toks[i];
    return out;
}

uint64_t
tokenValue(const std::vector<std::string> &lines, size_t line,
           size_t tok)
{
    return std::stoull(tokensOf(lines[line])[tok]);
}

/** Replace token @p tok of payload line @p line with @p value. */
std::string
mutateToken(size_t line, size_t tok, const std::string &value)
{
    std::vector<std::string> lines = splitLines(basePayload());
    std::vector<std::string> toks = tokensOf(lines[line]);
    EXPECT_LT(tok, toks.size());
    toks[tok] = value;
    lines[line] = joinTokens(toks);
    return reheader(joinLines(lines));
}

/**
 * Structural map of the payload, recovered by walking the format the
 * same way the parser does (line roles are positional).
 */
struct Layout
{
    size_t orderLine = 0;       ///< "order instructions dynamicBlocks"
    size_t nshapesLine = 2;
    size_t firstShapeLine = 3;
    size_t nnodesLine = 0;
    size_t firstNodeLine = 0;   ///< "gramLen g... occurrences nedges"
    size_t firstQBlockLine = 0; ///< entry stats of the first node
    size_t firstSlotLine = 0;   ///< first slot counter line
    size_t firstDistLine = 0;   ///< first dependency distribution
    size_t edgeNodeLine = 0;    ///< first node that has >= 1 edge
    size_t firstEdgeLine = 0;   ///< its first "next count" line
};

/** Lines occupied by one qualified-block record starting at @p at. */
size_t
qblockLines(const std::vector<std::string> &lines, size_t at)
{
    const uint64_t nslots = tokenValue(lines, at, 5);
    return 1 + static_cast<size_t>(nslots) * 3;
}

Layout
layoutOf(const std::vector<std::string> &lines)
{
    Layout lo;
    const uint64_t nshapes = tokenValue(lines, lo.nshapesLine, 0);
    lo.nnodesLine = lo.firstShapeLine + static_cast<size_t>(nshapes);
    lo.firstNodeLine = lo.nnodesLine + 1;
    lo.firstQBlockLine = lo.firstNodeLine + 1;
    lo.firstSlotLine = lo.firstQBlockLine + 1;
    lo.firstDistLine = lo.firstSlotLine + 1;

    // Find the first node with at least one edge and at least one
    // occupied slot (route at this scale always has both).
    const uint64_t nnodes = tokenValue(lines, lo.nnodesLine, 0);
    size_t at = lo.firstNodeLine;
    for (uint64_t n = 0; n < nnodes; ++n) {
        const std::vector<std::string> toks = tokensOf(lines[at]);
        const uint64_t gramLen = std::stoull(toks[0]);
        const uint64_t nedges = std::stoull(toks[gramLen + 2]);
        size_t cursor = at + 1;
        cursor += qblockLines(lines, cursor);
        if (nedges > 0 && lo.firstEdgeLine == 0) {
            lo.edgeNodeLine = at;
            lo.firstEdgeLine = cursor;
            break;
        }
        for (uint64_t e = 0; e < nedges; ++e) {
            ++cursor;  // the "next count" line
            cursor += qblockLines(lines, cursor);
        }
        at = cursor;
    }
    return lo;
}

const Layout &
layout()
{
    static const Layout lo = layoutOf(splitLines(basePayload()));
    return lo;
}

/**
 * The core assertion: loading @p text raises a typed ssim::Error of
 * @p category with populated context — no crash, no exit, no silent
 * acceptance.
 */
void
expectTypedError(const std::string &text, ErrorCategory category,
                 const char *what, uint64_t expectLine = 0)
{
    std::stringstream ss(text);
    try {
        loadProfile(ss, "corrupt.prof");
        FAIL() << "corruption silently accepted: " << what;
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), category) << what << " -> " << e.what();
        EXPECT_EQ(e.context().file, "corrupt.prof") << what;
        EXPECT_GE(e.context().line, 1u) << what;
        if (expectLine > 0) {
            EXPECT_EQ(e.context().line, expectLine) << what;
        }
    } catch (const std::exception &e) {
        FAIL() << "non-typed exception escaped for " << what << ": "
               << e.what();
    }
}

/** Payload line index -> file line number (header is file line 1). */
uint64_t
fileLine(size_t payloadLine)
{
    return static_cast<uint64_t>(payloadLine) + 2;
}

// ---------------------------------------------------------------------
// Header corruptions (cases 1-9)
// ---------------------------------------------------------------------

TEST(FaultInjection, HeaderDamage)
{
    const std::string &payload = basePayload();
    // 1: wrong magic
    expectTypedError("ssim-prof1le 2 0000000000000000 0\n",
                     ErrorCategory::ParseError, "bad magic", 1);
    // 2: future version
    expectTypedError("ssim-profile 999 0000000000000000 0\n",
                     ErrorCategory::VersionMismatch, "future version",
                     1);
    // 3: the checksum-less version-1 header
    expectTypedError("ssim-profile 1\n1 1000 10\nroute\n0\n0\n",
                     ErrorCategory::VersionMismatch, "v1 header", 1);
    // 4: non-numeric version
    expectTypedError("ssim-profile two 0000000000000000 0\n",
                     ErrorCategory::ParseError, "nan version", 1);
    // 5: checksum of the wrong width
    expectTypedError("ssim-profile 2 abc 0\n",
                     ErrorCategory::ParseError, "short checksum", 1);
    // 6: checksum with non-hex digits
    expectTypedError("ssim-profile 2 zzzzzzzzzzzzzzzz 0\n",
                     ErrorCategory::ParseError, "non-hex checksum", 1);
    // 7: negative payload byte count
    expectTypedError("ssim-profile 2 0000000000000000 -5\n",
                     ErrorCategory::ParseError, "negative bytes", 1);
    // 8: trailing garbage in the header
    expectTypedError("ssim-profile 2 0000000000000000 0 extra\n",
                     ErrorCategory::ParseError, "header trailer", 1);
    // 9: empty input
    expectTypedError("", ErrorCategory::IoError, "empty file", 1);

    // Sanity: the pristine text still loads.
    std::stringstream ok(reheader(payload));
    EXPECT_NO_THROW(loadProfile(ok));
}

// ---------------------------------------------------------------------
// Truncation and length damage (cases 10-16)
// ---------------------------------------------------------------------

TEST(FaultInjection, TruncationIsAlwaysDetected)
{
    const std::string &text = baseText();
    // 10-13: physical truncation at several depths — the declared
    // byte count catches all of them before parsing starts.
    for (const double frac : {0.25, 0.5, 0.75, 0.98}) {
        const auto cut = static_cast<size_t>(
            static_cast<double>(text.size()) * frac);
        expectTypedError(text.substr(0, cut),
                         ErrorCategory::CorruptData,
                         "physical truncation", 1);
    }
    // 14: padded profile (appended bytes) is equally corrupt.
    expectTypedError(text + "0 0 0\n", ErrorCategory::CorruptData,
                     "appended data", 1);
}

TEST(FaultInjection, ConsistentlyReheaderedTruncationStillFails)
{
    // 15-16: an adversarial truncation that *recomputes* the header
    // must instead be caught by the structural parse (unexpected end
    // of profile).
    std::vector<std::string> lines = splitLines(basePayload());
    for (const size_t keep : {lines.size() / 2, lines.size() - 1}) {
        const std::vector<std::string> cut(lines.begin(),
                                           lines.begin() +
                                           static_cast<long>(keep));
        expectTypedError(reheader(joinLines(cut)),
                         ErrorCategory::CorruptData,
                         "reheadered truncation");
    }
}

TEST(FaultInjection, BitFlipsAreCaughtByChecksum)
{
    // 17: every single-character flip in the payload is detected —
    // sample positions spread across the whole file.
    const std::string &text = baseText();
    const size_t headerLen = text.find('\n') + 1;
    for (int i = 1; i <= 8; ++i) {
        std::string flipped = text;
        const size_t pos = headerLen +
            (text.size() - headerLen) * i / 9;
        flipped[pos] = flipped[pos] == '7' ? '8' : '7';
        if (flipped == text)
            continue;
        expectTypedError(flipped, ErrorCategory::CorruptData,
                         "payload bit flip", 1);
    }
}

// ---------------------------------------------------------------------
// Field-level corruption: the profile header line (cases 18-21)
// ---------------------------------------------------------------------

TEST(FaultInjection, ProfileHeaderFields)
{
    const Layout &lo = layout();
    // 18: SFG order beyond the supported range
    expectTypedError(mutateToken(lo.orderLine, 0, "9"),
                     ErrorCategory::CorruptData, "order 9",
                     fileLine(lo.orderLine));
    // 19: negative order
    expectTypedError(mutateToken(lo.orderLine, 0, "-1"),
                     ErrorCategory::ParseError, "order -1",
                     fileLine(lo.orderLine));
    // 20: NaN instruction count
    expectTypedError(mutateToken(lo.orderLine, 1, "nan"),
                     ErrorCategory::ParseError, "nan instructions",
                     fileLine(lo.orderLine));
    // 21: float-typed block count
    expectTypedError(mutateToken(lo.orderLine, 2, "1e9"),
                     ErrorCategory::ParseError, "1e9 blocks",
                     fileLine(lo.orderLine));
}

// ---------------------------------------------------------------------
// Shape-table corruption (cases 22-26)
// ---------------------------------------------------------------------

TEST(FaultInjection, ShapeTable)
{
    const Layout &lo = layout();
    // 22: a shape count that would drive an unbounded allocation
    expectTypedError(mutateToken(lo.nshapesLine, 0, "99999999999"),
                     ErrorCategory::CorruptData, "huge shape count",
                     fileLine(lo.nshapesLine));
    // 23: instruction class beyond NumClasses
    expectTypedError(mutateToken(lo.firstShapeLine, 1, "99"),
                     ErrorCategory::CorruptData, "bad inst class",
                     fileLine(lo.firstShapeLine));
    // 24: three source operands (depDist only covers two)
    expectTypedError(mutateToken(lo.firstShapeLine, 2, "3"),
                     ErrorCategory::CorruptData, "numSrcs 3",
                     fileLine(lo.firstShapeLine));
    // 25: non-boolean flag
    expectTypedError(mutateToken(lo.firstShapeLine, 3, "2"),
                     ErrorCategory::CorruptData, "hasDest 2",
                     fileLine(lo.firstShapeLine));
    // 26: negative operand count
    expectTypedError(mutateToken(lo.firstShapeLine, 2, "-1"),
                     ErrorCategory::ParseError, "numSrcs -1",
                     fileLine(lo.firstShapeLine));
}

// ---------------------------------------------------------------------
// SFG node and edge corruption (cases 27-33)
// ---------------------------------------------------------------------

TEST(FaultInjection, SfgStructure)
{
    const Layout &lo = layout();
    const std::vector<std::string> lines = splitLines(basePayload());
    const std::vector<std::string> nodeToks =
        tokensOf(lines[lo.firstNodeLine]);
    const uint64_t gramLen = std::stoull(nodeToks[0]);
    const size_t occTok = static_cast<size_t>(gramLen) + 1;
    const uint64_t occurrences = std::stoull(nodeToks[occTok]);

    // 27: gram references a block past the shape table
    expectTypedError(mutateToken(lo.firstNodeLine, 1, "12345678"),
                     ErrorCategory::CorruptData, "gram block range",
                     fileLine(lo.firstNodeLine));
    // 28: gram length disagrees with the SFG order
    expectTypedError(mutateToken(lo.firstNodeLine, 0, "7"),
                     ErrorCategory::CorruptData, "gram length",
                     fileLine(lo.firstNodeLine));
    // 29: a node that claims zero occurrences
    expectTypedError(mutateToken(lo.firstNodeLine, occTok, "0"),
                     ErrorCategory::CorruptData, "zero occurrences",
                     fileLine(lo.firstNodeLine));
    // 30: more edges than occurrences
    expectTypedError(
        mutateToken(lo.firstNodeLine, occTok + 1,
                    std::to_string(occurrences + 1)),
        ErrorCategory::CorruptData, "edges exceed occurrences");

    const std::vector<std::string> edgeToks =
        tokensOf(lines[lo.firstEdgeLine]);
    // 31: edge target beyond the shape table
    expectTypedError(mutateToken(lo.firstEdgeLine, 0, "12345678"),
                     ErrorCategory::CorruptData, "edge target range",
                     fileLine(lo.firstEdgeLine));
    // 32: an edge with zero traversals
    expectTypedError(mutateToken(lo.firstEdgeLine, 1, "0"),
                     ErrorCategory::CorruptData, "zero edge count",
                     fileLine(lo.firstEdgeLine));
    // 33: edge counts scaled up so probabilities exceed 1
    const uint64_t edgeCount = std::stoull(edgeToks[1]);
    expectTypedError(
        mutateToken(lo.firstEdgeLine, 1,
                    std::to_string(edgeCount * 1000000 + 1)),
        ErrorCategory::CorruptData, "edge count scale");
}

// ---------------------------------------------------------------------
// Probability and distribution corruption (cases 34-41)
// ---------------------------------------------------------------------

TEST(FaultInjection, BranchProbabilities)
{
    const Layout &lo = layout();
    const std::vector<std::string> lines = splitLines(basePayload());
    const std::vector<std::string> qbToks =
        tokensOf(lines[lo.firstQBlockLine]);
    const uint64_t occurrences = std::stoull(qbToks[0]);
    const uint64_t count = std::stoull(qbToks[1]);

    // 34: branch count above the block occurrences
    expectTypedError(
        mutateToken(lo.firstQBlockLine, 1,
                    std::to_string(occurrences + 1)),
        ErrorCategory::CorruptData, "branch count > occurrences",
        fileLine(lo.firstQBlockLine));
    // 35: taken probability above 1
    expectTypedError(
        mutateToken(lo.firstQBlockLine, 2,
                    std::to_string(count * 2 + 1)),
        ErrorCategory::CorruptData, "taken > count",
        fileLine(lo.firstQBlockLine));
    // 36: mispredict probability above 1
    expectTypedError(
        mutateToken(lo.firstQBlockLine, 4,
                    std::to_string(count * 2 + 1)),
        ErrorCategory::CorruptData, "mispredict > count",
        fileLine(lo.firstQBlockLine));
    // 37: NaN branch statistic
    expectTypedError(mutateToken(lo.firstQBlockLine, 2, "nan"),
                     ErrorCategory::ParseError, "nan taken",
                     fileLine(lo.firstQBlockLine));
    // 38: slot list longer than the block's shape
    expectTypedError(mutateToken(lo.firstQBlockLine, 5, "9999"),
                     ErrorCategory::CorruptData, "slot overflow",
                     fileLine(lo.firstQBlockLine));
}

TEST(FaultInjection, CacheEventProbabilities)
{
    const Layout &lo = layout();
    const std::vector<std::string> lines = splitLines(basePayload());
    const std::vector<std::string> qbToks =
        tokensOf(lines[lo.firstQBlockLine]);
    const uint64_t occurrences = std::stoull(qbToks[0]);

    // 39: an I-L1 access probability above 1
    expectTypedError(
        mutateToken(lo.firstSlotLine, 0,
                    std::to_string(occurrences * 3 + 1)),
        ErrorCategory::CorruptData, "il1Access > occurrences",
        fileLine(lo.firstSlotLine));
    // 40: a D-L1 miss probability above 1
    expectTypedError(
        mutateToken(lo.firstSlotLine, 4,
                    std::to_string(occurrences * 3 + 1)),
        ErrorCategory::CorruptData, "dl1Miss > occurrences",
        fileLine(lo.firstSlotLine));
    // 41: negative miss counter
    expectTypedError(mutateToken(lo.firstSlotLine, 1, "-3"),
                     ErrorCategory::ParseError, "negative il1Miss",
                     fileLine(lo.firstSlotLine));
}

TEST(FaultInjection, DependencyDistributions)
{
    const Layout &lo = layout();
    // 42: dependency distance beyond the architectural cap — inject a
    // fresh entry with distance 600 in place of the length header.
    const std::vector<std::string> lines = splitLines(basePayload());
    {
        std::vector<std::string> mut = lines;
        mut[lo.firstDistLine] = "1 600 1";
        expectTypedError(reheader(joinLines(mut)),
                         ErrorCategory::CorruptData,
                         "dependency distance 600",
                         fileLine(lo.firstDistLine));
    }
    // 43: a zero-count distribution entry
    {
        std::vector<std::string> mut = lines;
        mut[lo.firstDistLine] = "1 1 0";
        expectTypedError(reheader(joinLines(mut)),
                         ErrorCategory::CorruptData,
                         "zero-count entry",
                         fileLine(lo.firstDistLine));
    }
    // 44: values out of order (duplicate values)
    {
        std::vector<std::string> mut = lines;
        mut[lo.firstDistLine] = "2 4 1 4 1";
        expectTypedError(reheader(joinLines(mut)),
                         ErrorCategory::CorruptData,
                         "non-ascending values",
                         fileLine(lo.firstDistLine));
    }
    // 45: distribution total above the block occurrences
    {
        std::vector<std::string> mut = lines;
        mut[lo.firstDistLine] = "1 1 99999999999";
        expectTypedError(reheader(joinLines(mut)),
                         ErrorCategory::CorruptData,
                         "distribution total overflow",
                         fileLine(lo.firstDistLine));
    }
    // 46: trailing tokens after the declared entries
    {
        std::vector<std::string> mut = lines;
        mut[lo.firstDistLine] += " 7";
        expectTypedError(reheader(joinLines(mut)),
                         ErrorCategory::ParseError,
                         "trailing distribution data",
                         fileLine(lo.firstDistLine));
    }
}

// ---------------------------------------------------------------------
// Randomized sweep: no mutation anywhere may crash or hang
// ---------------------------------------------------------------------

/**
 * Blind token sweep: scale or poison numeric tokens across the whole
 * payload. A mutation may legitimately survive validation (e.g.
 * scaling a node's occurrence count *up* keeps every invariant), but
 * it must either load cleanly — and then drive the generator without
 * crashing — or fail with a typed error. Nothing else.
 */
TEST(FaultInjection, BlindTokenSweepNeverCrashes)
{
    const std::vector<std::string> lines = splitLines(basePayload());
    const size_t stride = std::max<size_t>(1, lines.size() / 40);
    int loaded = 0, rejected = 0;
    for (size_t li = 0; li < lines.size(); li += stride) {
        for (const char *poison : {"340282366920938463463", "-1",
                                   "nan", "0"}) {
            std::vector<std::string> mut = lines;
            std::vector<std::string> toks = tokensOf(mut[li]);
            if (toks.empty())
                continue;
            toks[toks.size() / 2] = poison;
            mut[li] = joinTokens(toks);
            std::stringstream ss(reheader(joinLines(mut)));
            try {
                const StatisticalProfile p = loadProfile(ss);
                // Survived validation: it must behave downstream.
                GenerationOptions gopts;
                gopts.reductionFactor = 50;
                const SyntheticTrace t = generateSyntheticTrace(p,
                                                                gopts);
                (void)t;
                ++loaded;
            } catch (const Error &) {
                ++rejected;
            } catch (const std::exception &e) {
                FAIL() << "line " << li << " poison '" << poison
                       << "': non-typed exception " << e.what();
            }
        }
    }
    // The sweep must actually have exercised both paths.
    EXPECT_GT(rejected, 20);
    EXPECT_GT(loaded + rejected, 80);
}

/** Corrupted profiles also surface as Expected errors, not throws. */
TEST(FaultInjection, TryLoadNeverThrows)
{
    const Layout &lo = layout();
    std::stringstream ss(mutateToken(lo.orderLine, 0, "9"));
    const Expected<StatisticalProfile> result = tryLoadProfile(ss);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().category(), ErrorCategory::CorruptData);
    EXPECT_EQ(result.error().context().line, fileLine(lo.orderLine));
}

} // namespace
