/**
 * @file
 * Functional emulator tests: per-opcode semantics, memory access
 * records, control flow, calls/returns, and the zero register.
 */

#include <deque>

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/emulator.hh"

namespace
{

using namespace ssim::isa;

/** Run a tiny program to completion and return the emulator. */
Emulator
runProgram(Assembler &as, uint64_t maxInsts = 10000)
{
    // Deque: stable addresses keep every emulator's Program valid.
    static std::deque<Program> keep;
    keep.push_back(as.finish());
    Emulator emu(keep.back());
    emu.run(maxInsts);
    return emu;
}

/** Binary integer ALU semantics, parameterized. */
struct AluCase
{
    Opcode op;
    int64_t a, b, expect;
};

class IntAluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(IntAluSemantics, ComputesExpected)
{
    const AluCase c = GetParam();
    Assembler as("alu");
    as.li(3, c.a);
    as.li(4, c.b);
    // Emit through the public API by matching the opcode.
    switch (c.op) {
      case Opcode::ADD: as.add(5, 3, 4); break;
      case Opcode::SUB: as.sub(5, 3, 4); break;
      case Opcode::AND: as.and_(5, 3, 4); break;
      case Opcode::OR: as.or_(5, 3, 4); break;
      case Opcode::XOR: as.xor_(5, 3, 4); break;
      case Opcode::SLL: as.sll(5, 3, 4); break;
      case Opcode::SRL: as.srl(5, 3, 4); break;
      case Opcode::SRA: as.sra(5, 3, 4); break;
      case Opcode::SLT: as.slt(5, 3, 4); break;
      case Opcode::SLTU: as.sltu(5, 3, 4); break;
      case Opcode::MUL: as.mul(5, 3, 4); break;
      case Opcode::DIV: as.div(5, 3, 4); break;
      case Opcode::REM: as.rem(5, 3, 4); break;
      default: FAIL() << "unsupported case";
    }
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), c.expect)
        << opcodeName(c.op) << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Emulator, IntAluSemantics,
    ::testing::Values(
        AluCase{Opcode::ADD, 7, 5, 12},
        AluCase{Opcode::ADD, -7, 5, -2},
        AluCase{Opcode::SUB, 7, 5, 2},
        AluCase{Opcode::SUB, 5, 7, -2},
        AluCase{Opcode::AND, 0b1100, 0b1010, 0b1000},
        AluCase{Opcode::OR, 0b1100, 0b1010, 0b1110},
        AluCase{Opcode::XOR, 0b1100, 0b1010, 0b0110},
        AluCase{Opcode::SLL, 3, 4, 48},
        AluCase{Opcode::SRL, 48, 4, 3},
        AluCase{Opcode::SRA, -16, 2, -4},
        AluCase{Opcode::SLT, 3, 4, 1},
        AluCase{Opcode::SLT, 4, 3, 0},
        AluCase{Opcode::SLT, -1, 0, 1},
        AluCase{Opcode::SLTU, -1, 0, 0},  // unsigned: huge >= 0
        AluCase{Opcode::MUL, 7, 6, 42},
        AluCase{Opcode::MUL, -7, 6, -42},
        AluCase{Opcode::DIV, 42, 6, 7},
        AluCase{Opcode::DIV, -42, 6, -7},
        AluCase{Opcode::DIV, 42, 0, -1},   // defined: no trap
        AluCase{Opcode::REM, 43, 6, 1},
        AluCase{Opcode::REM, 43, 0, 43}));

TEST(Emulator, ImmediateForms)
{
    Assembler as("imm");
    as.li(3, 100);
    as.addi(4, 3, -1);
    as.andi(5, 3, 0x6);
    as.ori(6, 3, 0x3);
    as.xori(7, 3, 0xFF);
    as.slli(8, 3, 2);
    as.srli(9, 3, 2);
    as.srai(10, 3, 1);
    as.slti(11, 3, 101);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(4), 99);
    EXPECT_EQ(emu.intReg(5), 100 & 6);
    EXPECT_EQ(emu.intReg(6), 100 | 3);
    EXPECT_EQ(emu.intReg(7), 100 ^ 255);
    EXPECT_EQ(emu.intReg(8), 400);
    EXPECT_EQ(emu.intReg(9), 25);
    EXPECT_EQ(emu.intReg(10), 50);
    EXPECT_EQ(emu.intReg(11), 1);
}

TEST(Emulator, ZeroRegisterIsImmutable)
{
    Assembler as("zero");
    as.li(RegZero, 42);
    as.addi(3, RegZero, 1);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(RegZero), 0);
    EXPECT_EQ(emu.intReg(3), 1);
}

TEST(Emulator, LoadStoreRoundTrip)
{
    Assembler as("mem");
    as.li(3, 0x1122334455667788LL);
    as.li(4, 128);
    as.sd(3, 4, 0);
    as.ld(5, 4, 0);
    as.lw(6, 4, 0);
    as.lb(7, 4, 0);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), 0x1122334455667788LL);
    EXPECT_EQ(emu.intReg(6), 0x55667788);
    EXPECT_EQ(emu.intReg(7), static_cast<int8_t>(0x88));
}

TEST(Emulator, ByteLoadSignExtends)
{
    Assembler as("sext");
    as.li(3, 0xFF);
    as.li(4, 64);
    as.sb(3, 4, 0);
    as.lb(5, 4, 0);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), -1);
}

TEST(Emulator, MemRecordHasDataAddress)
{
    Assembler as("addr");
    as.li(3, 200);
    as.ld(4, 3, 16);
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    emu.step();  // li
    const ExecutedInst rec = emu.step();
    EXPECT_TRUE(rec.isMem);
    EXPECT_EQ(rec.memAddr, DataBase + 216);
    EXPECT_EQ(rec.memBytes, 8);
}

TEST(Emulator, FloatingPointPipeline)
{
    Assembler as("fp");
    as.fli(1, 2.0);
    as.fli(2, 8.0);
    as.fadd(3, 1, 2);    // 10
    as.fsub(4, 2, 1);    // 6
    as.fmul(5, 1, 2);    // 16
    as.fdiv(6, 2, 1);    // 4
    as.fsqrt(7, 2);      // ~2.828
    as.fneg(8, 1);       // -2
    as.fabs_(9, 8);      // 2
    as.fcvtfi(3, 3);     // int 10 (int r3)
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_DOUBLE_EQ(emu.fpReg(3), 10.0);
    EXPECT_DOUBLE_EQ(emu.fpReg(4), 6.0);
    EXPECT_DOUBLE_EQ(emu.fpReg(5), 16.0);
    EXPECT_DOUBLE_EQ(emu.fpReg(6), 4.0);
    EXPECT_NEAR(emu.fpReg(7), 2.8284271, 1e-6);
    EXPECT_DOUBLE_EQ(emu.fpReg(9), 2.0);
    EXPECT_EQ(emu.intReg(3), 10);
}

TEST(Emulator, FpCompareAndBranch)
{
    Assembler as("fcmp");
    Label less = as.newLabel();
    as.fli(1, 1.0);
    as.fli(2, 2.0);
    as.fcmplt(3, 1, 2);
    as.fblt(1, 2, less);
    as.li(4, 99);        // skipped
    as.bind(less);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(3), 1);
    EXPECT_EQ(emu.intReg(4), 0);
}

TEST(Emulator, ConditionalBranchTakenAndNotTaken)
{
    Assembler as("br");
    Label skip = as.newLabel();
    as.li(3, 5);
    as.li(4, 5);
    as.beq(3, 4, skip);  // taken
    as.li(5, 1);         // skipped
    as.bind(skip);
    as.bne(3, 4, skip);  // not taken
    as.li(6, 2);         // executed
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), 0);
    EXPECT_EQ(emu.intReg(6), 2);
}

TEST(Emulator, BranchRecordsTakenFlag)
{
    Assembler as("takerec");
    Label skip = as.newLabel();
    as.beq(RegZero, RegZero, skip);
    as.nop();
    as.bind(skip);
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    const ExecutedInst rec = emu.step();
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.nextPc, 2u);
}

TEST(Emulator, CallPushesReturnAddressAndRetReturns)
{
    Assembler as("call");
    Label fn = as.newLabel();
    Label main = as.newLabel();
    as.jmp(main);
    as.bind(fn);
    as.li(5, 7);
    as.ret();
    as.bind(main);
    as.call(fn);
    as.addi(5, 5, 1);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), 8);
}

TEST(Emulator, IndirectCallViaRegister)
{
    Assembler as("icall");
    Label fn = as.newLabel();
    Label main = as.newLabel();
    as.jmp(main);
    as.bind(fn);
    as.li(5, 11);
    as.ret();
    as.bind(main);
    as.la(6, fn);
    as.icall(6);
    as.addi(5, 5, 2);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(5), 13);
}

TEST(Emulator, NestedCallsWithStack)
{
    // f(x) = x + 1; g(x) = f(x) * 2 with a saved return address.
    Assembler as("nest");
    Label f = as.newLabel(), g = as.newLabel(), main = as.newLabel();
    as.jmp(main);
    as.bind(f);
    as.addi(3, 3, 1);
    as.ret();
    as.bind(g);
    as.addi(RegSp, RegSp, -8);
    as.sd(RegRa, RegSp, 0);
    as.call(f);
    as.slli(3, 3, 1);
    as.ld(RegRa, RegSp, 0);
    as.addi(RegSp, RegSp, 8);
    as.ret();
    as.bind(main);
    as.li(3, 20);
    as.call(g);
    as.halt();
    Emulator emu = runProgram(as);
    EXPECT_EQ(emu.intReg(3), 42);
}

TEST(Emulator, HaltStopsExecution)
{
    Assembler as("halt");
    as.li(3, 1);
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    emu.run(100);
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.instCount(), 2u);
    // Stepping after HALT is a no-op that reports halted.
    const ExecutedInst rec = emu.step();
    EXPECT_TRUE(rec.halted);
    EXPECT_EQ(emu.instCount(), 2u);
}

TEST(Emulator, ResetRestoresInitialState)
{
    Assembler as("reset");
    as.li(3, 9);
    as.li(4, 100);
    as.sd(3, 4, 0);
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    emu.run(100);
    EXPECT_EQ(emu.peek64(100), 9u);
    emu.reset();
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.pc(), 0u);
    EXPECT_EQ(emu.intReg(3), 0);
    EXPECT_EQ(emu.peek64(100), 0u);
}

TEST(Emulator, StackPointerInitialized)
{
    Assembler as("sp");
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    EXPECT_EQ(emu.intReg(RegSp),
              static_cast<int64_t>(prog.dataSize - 64));
}

TEST(Emulator, CountingLoopRunsExactIterations)
{
    Assembler as("loop");
    Label top = as.newLabel();
    as.li(3, 0);
    as.bind(top);
    as.addi(3, 3, 1);
    as.slti(4, 3, 1000);
    as.bne(4, RegZero, top);
    as.halt();
    Emulator emu = runProgram(as, 100000);
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.intReg(3), 1000);
}

} // namespace
