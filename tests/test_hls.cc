/**
 * @file
 * HLS baseline tests: aggregate profile collapse, block-size
 * distribution, mix preservation, and the Figure 7 expectation that
 * the SFG-based model beats HLS on sequence-sensitive workloads.
 */

#include <array>
#include <gtest/gtest.h>

#include "baselines/hls.hh"
#include "core/statsim.hh"
#include "util/statistics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::baselines;
using core::StatisticalProfile;
using core::SyntheticTrace;

const isa::Program &
program()
{
    static const isa::Program prog = workloads::build("cc", 1);
    return prog;
}

const StatisticalProfile &
profile()
{
    static const StatisticalProfile p = [] {
        core::ProfileOptions opts;
        opts.maxInsts = 400000;
        return core::buildProfile(program(),
                                  cpu::CoreConfig::baseline(), opts);
    }();
    return p;
}

TEST(Hls, MixSumsToOne)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    double sum = 0.0;
    for (double m : hls.mix)
        sum += m;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Hls, AggregatesArePlausible)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    EXPECT_GT(hls.meanBlockSize, 1.0);
    EXPECT_LT(hls.meanBlockSize, 50.0);
    EXPECT_GT(hls.takenProb, 0.0);
    EXPECT_LT(hls.takenProb, 1.0);
    EXPECT_GE(hls.mispredictProb, 0.0);
    EXPECT_LT(hls.mispredictProb, 0.5);
    EXPECT_FALSE(hls.depDist.empty());
}

TEST(Hls, TraceHitsLengthTarget)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    HlsOptions opts;
    opts.reductionFactor = 20;
    const SyntheticTrace trace = generateHlsTrace(hls, opts);
    const double expected =
        static_cast<double>(hls.instructions) / 20.0;
    EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                0.1 * expected + 64);
}

TEST(Hls, TraceUsesHundredBlocks)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    HlsOptions opts;
    opts.reductionFactor = 20;
    const SyntheticTrace trace = generateHlsTrace(hls, opts);
    uint32_t maxBlock = 0;
    for (const auto &si : trace.insts)
        maxBlock = std::max(maxBlock, si.blockId);
    EXPECT_LT(maxBlock, opts.numBlocks);
}

TEST(Hls, MixRoughlyPreserved)
{
    // HLS materializes only 100 randomly-filled blocks and revisits
    // them with a skewed stationary distribution, so its realized mix
    // carries sampling noise — one of the model's intrinsic accuracy
    // limits the SFG avoids. Assert rough, not tight, agreement.
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    HlsOptions opts;
    opts.reductionFactor = 10;
    const SyntheticTrace trace = generateHlsTrace(hls, opts);
    std::array<double, isa::NumInstClasses> mix{};
    for (const auto &si : trace.insts)
        mix[static_cast<int>(si.cls)] += 1.0;
    for (double &v : mix)
        v /= static_cast<double>(trace.size());
    for (int c = 0; c < isa::NumInstClasses; ++c)
        EXPECT_NEAR(mix[c], hls.mix[c], 0.10);
}

TEST(Hls, DependenciesValid)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    const SyntheticTrace trace = generateHlsTrace(hls, {});
    for (size_t i = 0; i < trace.size(); ++i) {
        for (int p = 0; p < trace.insts[i].numSrcs; ++p) {
            const uint16_t d = trace.insts[i].depDist[p];
            if (d == 0)
                continue;
            ASSERT_LE(d, i);
            EXPECT_TRUE(trace.insts[i - d].hasDest);
        }
    }
}

TEST(Hls, RunsOnTheSyntheticSimulator)
{
    const HlsProfile hls = HlsProfile::fromProfile(profile());
    HlsOptions opts;
    opts.reductionFactor = 20;
    const SyntheticTrace trace = generateHlsTrace(hls, opts);
    const core::SimResult res = core::simulateSyntheticTrace(
        trace, cpu::CoreConfig::baseline());
    EXPECT_EQ(res.stats.committed, trace.size());
    EXPECT_GT(res.ipc, 0.05);
}

TEST(Hls, SfgModelIsMoreAccurate)
{
    // Figure 7's claim on one sequence-sensitive workload: the
    // SMART-HLS (SFG) trace predicts IPC better than the HLS trace.
    const cpu::CoreConfig cfg = cpu::CoreConfig::simpleScalarDefault();
    const isa::Program &prog = program();

    core::ProfileOptions popts;
    popts.maxInsts = 400000;
    const StatisticalProfile prof =
        core::buildProfile(prog, cfg, popts);

    cpu::EdsOptions eopts;
    eopts.maxInsts = 400000;
    const double edsIpc =
        core::runExecutionDriven(prog, cfg, eopts).ipc;

    core::GenerationOptions gopts;
    gopts.reductionFactor = 10;
    const double sfgIpc = core::simulateSyntheticTrace(
        core::generateSyntheticTrace(prof, gopts), cfg).ipc;

    HlsOptions hopts;
    hopts.reductionFactor = 10;
    const double hlsIpc = core::simulateSyntheticTrace(
        generateHlsTrace(HlsProfile::fromProfile(prof), hopts),
        cfg).ipc;

    EXPECT_LE(absoluteError(sfgIpc, edsIpc),
              absoluteError(hlsIpc, edsIpc) + 0.02);
}

} // namespace
