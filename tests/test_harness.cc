/**
 * @file
 * Experiment harness tests: suite construction, profile caching
 * semantics (reuse across core-shape changes, invalidation on
 * predictor/cache changes) and run wrappers.
 */

#include <gtest/gtest.h>

#include "experiments/harness.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

TEST(Harness, SuiteHasAllTenBenchmarks)
{
    const auto &suite = suitePrograms();
    ASSERT_EQ(suite.size(), 10u);
    for (const Benchmark &bench : suite) {
        EXPECT_TRUE(bench.program.finalized());
        EXPECT_FALSE(bench.archetype.empty());
    }
}

TEST(Harness, ProfileCacheReusesAcrossCoreShape)
{
    // Window/width changes do not affect the profile: the cache must
    // hand back the same object (the paper's amortization argument).
    const Benchmark &bench = suitePrograms().front();
    StatSimKnobs knobs;
    cpu::CoreConfig a = cpu::CoreConfig::baseline();
    cpu::CoreConfig b = a;
    b.ruuSize = 32;
    b.issueWidth = 4;
    const auto pa = profileFor(bench, a, knobs);
    const auto pb = profileFor(bench, b, knobs);
    EXPECT_EQ(pa.get(), pb.get());
}

TEST(Harness, ProfileCacheInvalidatesOnPredictorChange)
{
    const Benchmark &bench = suitePrograms().front();
    StatSimKnobs knobs;
    cpu::CoreConfig a = cpu::CoreConfig::baseline();
    cpu::CoreConfig b = a;
    b.bpred = b.bpred.scaled(1);
    EXPECT_NE(profileFor(bench, a, knobs).get(),
              profileFor(bench, b, knobs).get());
}

TEST(Harness, ProfileCacheInvalidatesOnCacheChange)
{
    const Benchmark &bench = suitePrograms().front();
    StatSimKnobs knobs;
    cpu::CoreConfig a = cpu::CoreConfig::baseline();
    cpu::CoreConfig b = a;
    b.dl1 = b.dl1.scaled(2.0);
    EXPECT_NE(profileFor(bench, a, knobs).get(),
              profileFor(bench, b, knobs).get());
}

TEST(Harness, ProfileCacheInvalidatesOnIfqChange)
{
    // The delayed-update FIFO depth follows the IFQ, so the branch
    // characteristics change with it.
    const Benchmark &bench = suitePrograms().front();
    StatSimKnobs knobs;
    cpu::CoreConfig a = cpu::CoreConfig::baseline();
    cpu::CoreConfig b = a;
    b.ifqSize = 8;
    EXPECT_NE(profileFor(bench, a, knobs).get(),
              profileFor(bench, b, knobs).get());
}

TEST(Harness, KnobsDistinguishProfiles)
{
    const Benchmark &bench = suitePrograms().front();
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    StatSimKnobs k1;
    StatSimKnobs k2;
    k2.order = 2;
    StatSimKnobs k3;
    k3.branchMode = core::BranchProfilingMode::ImmediateUpdate;
    EXPECT_NE(profileFor(bench, cfg, k1).get(),
              profileFor(bench, cfg, k2).get());
    EXPECT_NE(profileFor(bench, cfg, k1).get(),
              profileFor(bench, cfg, k3).get());
}

TEST(Harness, RunnersProduceConsistentResults)
{
    const Benchmark &bench = suitePrograms()[9];  // route (small)
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const core::SimResult eds = runEds(bench, cfg);
    const core::SimResult ss = runStatSim(bench, cfg);
    EXPECT_GT(eds.ipc, 0.0);
    EXPECT_GT(ss.ipc, 0.0);
    EXPECT_GT(eds.epc, 0.0);
    EXPECT_GT(ss.epc, 0.0);
}

TEST(Harness, SweepContinuesPastFailingConfiguration)
{
    // A design-space sweep must not be killed by one bad point: the
    // try* runners turn a validation failure into a failed Expected
    // and the remaining configurations still produce results.
    const Benchmark &bench = suitePrograms()[9];  // route (small)
    cpu::CoreConfig good = cpu::CoreConfig::baseline();
    cpu::CoreConfig bad = good;
    bad.lsqSize = bad.ruuSize + 8;  // LSQ cannot outsize the RUU
    const cpu::CoreConfig sweep[] = {good, bad, good};

    int succeeded = 0, failed = 0;
    for (const cpu::CoreConfig &cfg : sweep) {
        const Expected<core::SimResult> r = tryRunStatSim(bench, cfg);
        if (r.ok()) {
            ++succeeded;
            EXPECT_GT(r.value().ipc, 0.0);
        } else {
            ++failed;
            EXPECT_EQ(r.error().category(),
                      ErrorCategory::InvalidConfig);
        }
    }
    EXPECT_EQ(succeeded, 2);
    EXPECT_EQ(failed, 1);
}

TEST(Harness, TryRunEdsReportsInvalidConfig)
{
    const Benchmark &bench = suitePrograms()[9];
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cfg.issueWidth = 0;
    const Expected<core::SimResult> r = tryRunEds(bench, cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category(), ErrorCategory::InvalidConfig);
    EXPECT_NE(std::string(r.error().what()).find("issueWidth"),
              std::string::npos);
}

TEST(Harness, WallSecondsMeasuresSomething)
{
    volatile uint64_t acc = 0;
    const double sec = wallSeconds([&] {
        for (int i = 0; i < 1000000; ++i)
            acc += i;
    });
    EXPECT_GE(sec, 0.0);
    EXPECT_LT(sec, 10.0);
}

} // namespace
