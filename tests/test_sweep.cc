/**
 * @file
 * Integration tests for the crash-tolerant sweep engine
 * (experiments/sweep.hh): deterministic per-point seeding, journal
 * contents, resume-after-crash semantics, watchdog timeouts, bounded
 * retry, graceful drain, and grid expansion.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "experiments/sweep.hh"
#include "util/journal.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<SweepPoint>
makePoints(size_t n)
{
    std::vector<SweepPoint> points;
    for (size_t i = 0; i < n; ++i)
        points.push_back({"p" + std::to_string(i), 1000 + i});
    return points;
}

/** Deterministic "simulation": metrics depend only on the seed. */
PointMetrics
seedMetrics(size_t index, uint64_t seed)
{
    return {{"value", static_cast<double>(seed >> 16)},
            {"index", static_cast<double>(index)}};
}

size_t
countDone(const std::vector<util::JournalRecord> &records,
          const std::string &status)
{
    size_t n = 0;
    for (const auto &rec : records)
        n += rec.event == "done" && rec.status == status;
    return n;
}

TEST(PointSeed, DeterministicDistinctAndOrderFree)
{
    // A pure function of (sweep seed, index): same inputs, same seed.
    EXPECT_EQ(pointSeed(1, 0), pointSeed(1, 0));
    EXPECT_NE(pointSeed(1, 0), pointSeed(1, 1));
    EXPECT_NE(pointSeed(1, 0), pointSeed(2, 0));
    // No sequential RNG state: asking for index 5 first, last, or
    // alone always yields the same value.
    const uint64_t direct = pointSeed(42, 5);
    for (uint64_t i = 0; i < 5; ++i)
        (void)pointSeed(42, i);
    EXPECT_EQ(pointSeed(42, 5), direct);
}

TEST(Sweep, AllPointsOkAndJournaled)
{
    const std::string path = tempPath("sweep_all_ok.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.jobs = 3;
    opts.seed = 7;
    opts.journalPath = path;
    const SweepSummary summary =
        runSweep(makePoints(8), seedMetrics, opts);
    EXPECT_EQ(summary.okCount, 8u);
    EXPECT_EQ(summary.executedCount, 8u);
    EXPECT_EQ(summary.reusedCount, 0u);
    EXPECT_FALSE(summary.interrupted);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(summary.outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(summary.outcomes[i].seed, pointSeed(7, i));
        EXPECT_EQ(summary.outcomes[i].attempts, 1u);
    }

    auto loaded = util::Journal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    ASSERT_FALSE(loaded.value().empty());
    EXPECT_EQ(loaded.value().front().event, "sweep");
    EXPECT_EQ(loaded.value().front().pointCount, 8u);
    EXPECT_EQ(countDone(loaded.value(), "ok"), 8u);
}

TEST(Sweep, ResumeSkipsCompletedPoints)
{
    const std::string path = tempPath("sweep_resume.jsonl");
    std::remove(path.c_str());
    std::atomic<size_t> calls{0};
    const PointFn fn = [&](size_t index, uint64_t seed) {
        ++calls;
        return seedMetrics(index, seed);
    };
    SweepOptions opts;
    opts.jobs = 2;
    opts.journalPath = path;
    runSweep(makePoints(5), fn, opts);
    EXPECT_EQ(calls.load(), 5u);

    opts.resume = true;
    const SweepSummary resumed = runSweep(makePoints(5), fn, opts);
    EXPECT_EQ(calls.load(), 5u) << "resume must not re-run points";
    EXPECT_EQ(resumed.okCount, 5u);
    EXPECT_EQ(resumed.reusedCount, 5u);
    EXPECT_EQ(resumed.executedCount, 0u);
}

TEST(Sweep, ResumedPointIdenticalWhetherPredecessorsRanOrNot)
{
    // Run the full sweep once...
    SweepOptions opts;
    opts.seed = 1234;
    const auto points = makePoints(6);
    const SweepSummary full = runSweep(points, seedMetrics, opts);

    // ...then build a journal in which points 0..4 are already done
    // and resume: point 5 runs alone, and must see the same seed and
    // produce the same metrics as in the uninterrupted run.
    const std::string path = tempPath("sweep_det.jsonl");
    std::remove(path.c_str());
    {
        SweepOptions firstFive = opts;
        firstFive.journalPath = path;
        // A sweep over the same point list whose function refuses to
        // run point 5 would be artificial; instead, journal the
        // full run and strip point 5's records.
        const SweepSummary again =
            runSweep(points, seedMetrics, firstFive);
        ASSERT_EQ(again.okCount, 6u);
        auto records = util::Journal::load(path);
        ASSERT_TRUE(records.ok());
        std::vector<util::JournalRecord> kept;
        for (const auto &rec : records.value())
            if (rec.event == "sweep" || rec.point != 5)
                kept.push_back(rec);
        ASSERT_TRUE(util::Journal::checkpoint(path, kept).ok());
    }

    std::atomic<size_t> calls{0};
    std::atomic<uint64_t> seenSeed{0};
    SweepOptions resumeOpts = opts;
    resumeOpts.journalPath = path;
    resumeOpts.resume = true;
    const SweepSummary resumed = runSweep(
        points,
        [&](size_t index, uint64_t seed) {
            ++calls;
            seenSeed = seed;
            return seedMetrics(index, seed);
        },
        resumeOpts);
    EXPECT_EQ(calls.load(), 1u);
    EXPECT_EQ(seenSeed.load(), pointSeed(1234, 5));
    ASSERT_EQ(resumed.outcomes[5].metrics.size(),
              full.outcomes[5].metrics.size());
    for (size_t m = 0; m < full.outcomes[5].metrics.size(); ++m) {
        EXPECT_EQ(resumed.outcomes[5].metrics[m].second,
                  full.outcomes[5].metrics[m].second);
    }
}

TEST(Sweep, CrashedPointIsRerunOnResume)
{
    const std::string path = tempPath("sweep_crashed.jsonl");
    std::remove(path.c_str());
    const auto points = makePoints(3);
    SweepOptions opts;
    opts.journalPath = path;
    runSweep(points, seedMetrics, opts);

    // Forge a SIGKILL mid-point: replace point 1's records with a
    // bare start record (the exact shape a dead process leaves).
    auto records = util::Journal::load(path);
    ASSERT_TRUE(records.ok());
    std::vector<util::JournalRecord> kept;
    for (const auto &rec : records.value())
        if (rec.event == "sweep" || rec.point != 1)
            kept.push_back(rec);
    util::JournalRecord dangling;
    dangling.event = "start";
    dangling.point = 1;
    dangling.attempt = 1;
    dangling.configHash = points[1].configHash;
    dangling.seed = pointSeed(opts.seed, 1);
    kept.push_back(dangling);
    ASSERT_TRUE(util::Journal::checkpoint(path, kept).ok());

    std::atomic<size_t> calls{0};
    SweepOptions resumeOpts = opts;
    resumeOpts.resume = true;
    resumeOpts.maxRetries = 1;
    const SweepSummary resumed = runSweep(
        points,
        [&](size_t index, uint64_t seed) {
            ++calls;
            return seedMetrics(index, seed);
        },
        resumeOpts);
    EXPECT_EQ(calls.load(), 1u);
    EXPECT_EQ(resumed.okCount, 3u);
    EXPECT_EQ(resumed.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(resumed.outcomes[1].attempts, 2u);

    // The journal now holds the synthesized crash record and the
    // successful second attempt.
    auto after = util::Journal::load(path);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(countDone(after.value(), "crashed"), 1u);
    EXPECT_EQ(countDone(after.value(), "ok"), 3u);

    // With retries exhausted the point stays crashed instead.
    std::vector<util::JournalRecord> again;
    for (const auto &rec : after.value())
        if (rec.event == "sweep" || rec.point != 1)
            again.push_back(rec);
    dangling.attempt = 1;
    again.push_back(dangling);
    ASSERT_TRUE(util::Journal::checkpoint(path, again).ok());
    resumeOpts.maxRetries = 0;
    const SweepSummary exhausted =
        runSweep(points, seedMetrics, resumeOpts);
    EXPECT_EQ(exhausted.outcomes[1].status, PointStatus::Crashed);
    EXPECT_EQ(exhausted.executedCount, 0u);
}

TEST(Sweep, WatchdogTimesOutSlowPointOthersComplete)
{
    const std::string path = tempPath("sweep_timeout.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 0;
    opts.pointTimeoutSeconds = 0.05;
    opts.journalPath = path;
    const SweepSummary summary = runSweep(
        makePoints(4),
        [](size_t index, uint64_t seed) {
            if (index == 1)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(400));
            return seedMetrics(index, seed);
        },
        opts);
    EXPECT_EQ(summary.outcomes[1].status, PointStatus::Timeout);
    EXPECT_EQ(summary.okCount, 3u);
    EXPECT_EQ(summary.timeoutCount, 1u);
    auto loaded = util::Journal::load(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(countDone(loaded.value(), "timeout"), 1u);
    EXPECT_EQ(countDone(loaded.value(), "ok"), 3u);
}

TEST(Sweep, ZeroPointTimeoutDisablesTheWatchdogDeadline)
{
    // --point-timeout 0 means "no budget": a point slower than any
    // plausible deadline must still settle Ok, and the injected
    // stall hook must not conspire with the watchdog to kill it.
    ::setenv("SSIM_SWEEP_STALL_POINT", "1:0.15", 1);
    SweepOptions opts;
    opts.jobs = 2;
    opts.pointTimeoutSeconds = 0.0;
    const SweepSummary summary =
        runSweep(makePoints(3), seedMetrics, opts);
    ::unsetenv("SSIM_SWEEP_STALL_POINT");
    EXPECT_EQ(summary.okCount, 3u);
    EXPECT_EQ(summary.timeoutCount, 0u);
    EXPECT_EQ(summary.outcomes[1].status, PointStatus::Ok);
    EXPECT_EQ(summary.outcomes[1].attempts, 1u);
}

TEST(Sweep, RetryableErrorRetriedOnceThenOk)
{
    std::atomic<size_t> failuresLeft{1};
    std::atomic<size_t> calls{0};
    SweepOptions opts;
    opts.maxRetries = 1;
    const SweepSummary summary = runSweep(
        makePoints(1),
        [&](size_t index, uint64_t seed) {
            ++calls;
            if (failuresLeft.fetch_sub(1) > 0) {
                throw Error(ErrorCategory::IoError,
                            "transient I/O hiccup");
            }
            return seedMetrics(index, seed);
        },
        opts);
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(summary.outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(summary.outcomes[0].attempts, 2u);
}

TEST(Sweep, DeterministicFailureIsNotRetried)
{
    std::atomic<size_t> calls{0};
    SweepOptions opts;
    opts.maxRetries = 3;
    const SweepSummary summary = runSweep(
        makePoints(2),
        [&](size_t index, uint64_t seed) {
            if (index == 0) {
                ++calls;
                throw Error(ErrorCategory::InvalidConfig,
                            "ruuSize = 0 is not a pipeline");
            }
            return seedMetrics(index, seed);
        },
        opts);
    EXPECT_EQ(calls.load(), 1u) << "invalid-config is deterministic";
    EXPECT_EQ(summary.outcomes[0].status, PointStatus::Error);
    EXPECT_EQ(summary.outcomes[0].errorCategory,
              ErrorCategory::InvalidConfig);
    EXPECT_EQ(summary.okCount, 1u);
    EXPECT_EQ(summary.errorCount, 1u);
}

TEST(Sweep, GracefulDrainLeavesRestPendingAndResumable)
{
    const std::string path = tempPath("sweep_drain.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.jobs = 1;   // deterministic order: 0, 1, 2, 3
    opts.journalPath = path;
    const auto points = makePoints(4);
    const SweepSummary summary = runSweep(
        points,
        [](size_t index, uint64_t seed) {
            if (index == 1)
                requestSweepStop();   // e.g. SIGINT arrives here
            return seedMetrics(index, seed);
        },
        opts);
    // The in-flight point finishes; nothing new starts.
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.okCount, 2u);
    EXPECT_EQ(summary.pendingCount, 2u);

    const SweepSummary resumed = [&] {
        SweepOptions r = opts;
        r.resume = true;
        return runSweep(points, seedMetrics, r);
    }();
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.okCount, 4u);
    EXPECT_EQ(resumed.reusedCount, 2u);
    EXPECT_EQ(resumed.executedCount, 2u);
}

TEST(Sweep, JournalFromDifferentSweepIsRejected)
{
    const std::string path = tempPath("sweep_mismatch.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.seed = 1;
    opts.journalPath = path;
    runSweep(makePoints(3), seedMetrics, opts);

    SweepOptions other = opts;
    other.resume = true;
    other.seed = 2;   // different sweep identity
    EXPECT_THROW(runSweep(makePoints(3), seedMetrics, other), Error);
}

TEST(Sweep, ExistingJournalWithoutResumeIsRejected)
{
    const std::string path = tempPath("sweep_noresume.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.journalPath = path;
    runSweep(makePoints(2), seedMetrics, opts);
    try {
        runSweep(makePoints(2), seedMetrics, opts);
        FAIL() << "expected a typed error";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidArgument);
    }
}

TEST(Sweep, NonSsimExceptionBecomesInternalErrorPoint)
{
    const SweepSummary summary = runSweep(
        makePoints(2),
        [](size_t index, uint64_t seed) -> PointMetrics {
            if (index == 0)
                throw std::runtime_error("plain bug");
            return seedMetrics(index, seed);
        },
        SweepOptions{});
    EXPECT_EQ(summary.outcomes[0].status, PointStatus::Error);
    EXPECT_EQ(summary.outcomes[0].errorCategory,
              ErrorCategory::Internal);
    EXPECT_EQ(summary.okCount, 1u);
}

TEST(ConfigGrid, ExpandsCrossProductLastAxisFastest)
{
    const auto points = expandConfigGrid(
        cpu::CoreConfig::baseline(),
        {{"ruu", {32, 64}}, {"width", {2, 4}}});
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].name, "ruu=32,width=2");
    EXPECT_EQ(points[1].name, "ruu=32,width=4");
    EXPECT_EQ(points[3].name, "ruu=64,width=4");
    EXPECT_EQ(points[3].cfg.ruuSize, 64u);
    EXPECT_EQ(points[3].cfg.issueWidth, 4u);
    // Distinct configurations hash distinctly.
    EXPECT_NE(configHash(points[0].cfg), configHash(points[3].cfg));
}

TEST(ConfigGrid, UnknownKeyFailsFastNamingTheKey)
{
    try {
        expandConfigGrid(cpu::CoreConfig::baseline(),
                         {{"ruu", {32}}, {"frobnicate", {1}}});
        FAIL() << "expected a typed error";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidArgument);
        EXPECT_NE(e.message().find("frobnicate"), std::string::npos);
        EXPECT_NE(e.message().find("scale-cache"), std::string::npos)
            << "message should list the valid keys";
    }
}

TEST(ConfigGrid, NonIntegerValueForIntegerKnobFails)
{
    EXPECT_THROW(expandConfigGrid(cpu::CoreConfig::baseline(),
                                  {{"ruu", {32.5}}}),
                 Error);
    EXPECT_THROW(expandConfigGrid(cpu::CoreConfig::baseline(),
                                  {{"scale-cache", {-2.0}}}),
                 Error);
}

TEST(SweepOptions, ValidateRejectsBadKnobs)
{
    SweepOptions opts;
    opts.pointTimeoutSeconds = -1;
    EXPECT_THROW(opts.validate(), Error);
    opts = {};
    opts.resume = true;   // without a journal
    EXPECT_THROW(opts.validate(), Error);
    opts = {};
    opts.maxRetries = 1000;
    EXPECT_THROW(opts.validate(), Error);
}

} // namespace
