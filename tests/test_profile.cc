/**
 * @file
 * Statistical flow graph construction tests, anchored on the paper's
 * Figure 2 example: the basic block sequence 'AABAABCABC' and its
 * first- and second-order SFGs.
 */

#include <gtest/gtest.h>

#include "core/profile.hh"

namespace
{

using namespace ssim::core;

constexpr uint32_t A = 0, B = 1, C = 2;

/** Build an SFG of the given order from a block-id sequence. */
StatisticalProfile
fromSequence(int order, const std::vector<uint32_t> &blocks)
{
    StatisticalProfile profile;
    profile.order = order;
    profile.shapes.assign(3, BlockShape(1));
    SfgBuilder builder(profile);
    for (uint32_t b : blocks)
        builder.startBlock(b, 1);
    return profile;
}

const std::vector<uint32_t> Fig2 = {A, A, B, A, A, B, C, A, B, C};

TEST(Sfg, FirstOrderNodeOccurrences)
{
    // Figure 2, k = 1: nodes A(5), B(3), C(2).
    const StatisticalProfile p = fromSequence(1, Fig2);
    ASSERT_EQ(p.nodeCount(), 3u);
    EXPECT_EQ(p.nodes.at({A}).occurrences, 5u);
    EXPECT_EQ(p.nodes.at({B}).occurrences, 3u);
    EXPECT_EQ(p.nodes.at({C}).occurrences, 2u);
}

TEST(Sfg, FirstOrderTransitionProbabilities)
{
    // Figure 2, k = 1: from A: A 40%, B 60%; from B: A 33%, C 66%;
    // from C: A 100%.
    const StatisticalProfile p = fromSequence(1, Fig2);
    const auto &nodeA = p.nodes.at({A});
    ASSERT_EQ(nodeA.edges.size(), 2u);
    EXPECT_EQ(nodeA.edges.at(A).count, 2u);   // 2/5 = 40%
    EXPECT_EQ(nodeA.edges.at(B).count, 3u);   // 3/5 = 60%

    const auto &nodeB = p.nodes.at({B});
    EXPECT_EQ(nodeB.edges.at(A).count, 1u);   // 33%
    EXPECT_EQ(nodeB.edges.at(C).count, 2u);   // 66%

    const auto &nodeC = p.nodes.at({C});
    ASSERT_EQ(nodeC.edges.size(), 1u);
    EXPECT_EQ(nodeC.edges.at(A).count, 1u);   // the final C has no
                                              // successor
}

TEST(Sfg, SecondOrderNodes)
{
    // Figure 2, k = 2: nodes AA(2), AB(3), BA(1), BC(2), CA(1).
    const StatisticalProfile p = fromSequence(2, Fig2);
    ASSERT_EQ(p.nodeCount(), 5u);
    EXPECT_EQ(p.nodes.at({A, A}).occurrences, 2u);
    EXPECT_EQ(p.nodes.at({A, B}).occurrences, 3u);
    EXPECT_EQ(p.nodes.at({B, A}).occurrences, 1u);
    EXPECT_EQ(p.nodes.at({B, C}).occurrences, 2u);
    EXPECT_EQ(p.nodes.at({C, A}).occurrences, 1u);
}

TEST(Sfg, SecondOrderTransitions)
{
    // Figure 2, k = 2: AA -B-> AB (100%); AB -A-> BA (33%),
    // AB -C-> BC (66%); BC -A-> CA (100%); BA -A-> AA (100%);
    // CA -B-> AB (100%).
    const StatisticalProfile p = fromSequence(2, Fig2);
    EXPECT_EQ(p.nodes.at({A, A}).edges.at(B).count, 2u);
    EXPECT_EQ(p.nodes.at({A, B}).edges.at(A).count, 1u);
    EXPECT_EQ(p.nodes.at({A, B}).edges.at(C).count, 2u);
    EXPECT_EQ(p.nodes.at({B, C}).edges.at(A).count, 1u);
    EXPECT_EQ(p.nodes.at({B, A}).edges.at(A).count, 1u);
    EXPECT_EQ(p.nodes.at({C, A}).edges.at(B).count, 1u);
}

TEST(Sfg, ZeroOrderHasNoEdges)
{
    const StatisticalProfile p = fromSequence(0, Fig2);
    ASSERT_EQ(p.nodeCount(), 3u);
    for (const auto &[gram, node] : p.nodes)
        EXPECT_TRUE(node.edges.empty());
    EXPECT_EQ(p.nodes.at({A}).occurrences, 5u);
}

TEST(Sfg, QualifiedBlockCountGrowsWithOrder)
{
    // Table 3's metric: distinct (k+1)-grams, monotone in k.
    const size_t q0 = fromSequence(0, Fig2).qualifiedBlockCount();
    const size_t q1 = fromSequence(1, Fig2).qualifiedBlockCount();
    const size_t q2 = fromSequence(2, Fig2).qualifiedBlockCount();
    EXPECT_EQ(q0, 3u);   // distinct blocks
    EXPECT_EQ(q1, 5u);   // AA, AB, BA, BC, CA
    EXPECT_EQ(q2, 6u);   // AAB, ABA, ABC, BAA, BCA, CAB
    EXPECT_LE(q0, q1);
    EXPECT_LE(q1, q2);
}

TEST(Sfg, HigherOrderWarmupSkipsPrefix)
{
    // With k = 2 the first complete gram needs two blocks: the very
    // first block contributes to no node.
    const StatisticalProfile p = fromSequence(2, {A, B, C});
    EXPECT_EQ(p.nodeCount(), 2u);   // AB, BC
    EXPECT_EQ(p.dynamicBlocks, 2u);
}

TEST(Sfg, EntryStatsCoverEveryDynamicBlock)
{
    const StatisticalProfile p = fromSequence(1, Fig2);
    uint64_t total = 0;
    for (const auto &[gram, node] : p.nodes)
        total += node.entryStats.occurrences;
    EXPECT_EQ(total, Fig2.size());
}

TEST(Sfg, EdgeCountsSumToTransitions)
{
    const StatisticalProfile p = fromSequence(1, Fig2);
    uint64_t total = 0;
    for (const auto &[gram, node] : p.nodes)
        for (const auto &[next, edge] : node.edges)
            total += edge.count;
    EXPECT_EQ(total, Fig2.size() - 1);   // N blocks, N-1 transitions
}

TEST(Sfg, SelfLoopHandled)
{
    const StatisticalProfile p = fromSequence(1, {A, A, A, A});
    EXPECT_EQ(p.nodes.at({A}).occurrences, 4u);
    EXPECT_EQ(p.nodes.at({A}).edges.at(A).count, 3u);
}

TEST(QBlockStats, EnsureSlotsGrowsMonotonically)
{
    QBlockStats qb;
    qb.ensureSlots(3);
    EXPECT_EQ(qb.slots.size(), 3u);
    qb.ensureSlots(2);
    EXPECT_EQ(qb.slots.size(), 3u);
    qb.ensureSlots(5);
    EXPECT_EQ(qb.slots.size(), 5u);
}

TEST(GramHash, DistinguishesOrderAndContent)
{
    GramHash h;
    EXPECT_NE(h({A, B}), h({B, A}));
    EXPECT_NE(h({A}), h({A, A}));
    EXPECT_EQ(h({A, B, C}), h({A, B, C}));
}

} // namespace
