/**
 * @file
 * Unit tests for the ISA definition: instruction classification,
 * operand shapes and helpers.
 */

#include <gtest/gtest.h>

#include "isa/isa.hh"

namespace
{

using namespace ssim::isa;

TEST(InstClass, TwelveClassesExist)
{
    // The paper's section 2.1.1 taxonomy has exactly 12 classes.
    EXPECT_EQ(NumInstClasses, 12);
}

TEST(InstClass, LoadOpcodes)
{
    for (Opcode op : {Opcode::LB, Opcode::LW, Opcode::LD, Opcode::FLD}) {
        EXPECT_EQ(classOf(op), InstClass::Load) << opcodeName(op);
        EXPECT_TRUE(isLoad(op));
        EXPECT_FALSE(isStore(op));
    }
}

TEST(InstClass, StoreOpcodes)
{
    for (Opcode op : {Opcode::SB, Opcode::SW, Opcode::SD, Opcode::FSD}) {
        EXPECT_EQ(classOf(op), InstClass::Store) << opcodeName(op);
        EXPECT_TRUE(isStore(op));
        EXPECT_FALSE(isLoad(op));
    }
}

TEST(InstClass, IntConditionalBranches)
{
    for (Opcode op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                      Opcode::BGE, Opcode::BLTU, Opcode::BGEU}) {
        EXPECT_EQ(classOf(op), InstClass::IntCondBranch);
        EXPECT_TRUE(isCondBranch(op));
        EXPECT_TRUE(isControlFlow(op));
        EXPECT_FALSE(isIndirectBranch(op));
    }
}

TEST(InstClass, FpConditionalBranches)
{
    for (Opcode op : {Opcode::FBLT, Opcode::FBGE, Opcode::FBEQ}) {
        EXPECT_EQ(classOf(op), InstClass::FpCondBranch);
        EXPECT_TRUE(isCondBranch(op));
    }
}

TEST(InstClass, IndirectBranches)
{
    for (Opcode op : {Opcode::JR, Opcode::ICALL, Opcode::RET}) {
        EXPECT_EQ(classOf(op), InstClass::IndirectBranch);
        EXPECT_TRUE(isIndirectBranch(op));
        EXPECT_FALSE(isCondBranch(op));
    }
}

TEST(InstClass, DirectJumpsClassifiedAsIntAlu)
{
    // The 12-class taxonomy has no unconditional-branch class; direct
    // jumps count as integer ALU in the mix but still end blocks.
    for (Opcode op : {Opcode::JMP, Opcode::CALL}) {
        EXPECT_EQ(classOf(op), InstClass::IntAlu);
        EXPECT_TRUE(isControlFlow(op));
        EXPECT_TRUE(isDirectJump(op));
    }
}

TEST(InstClass, ArithmeticClasses)
{
    EXPECT_EQ(classOf(Opcode::MUL), InstClass::IntMult);
    EXPECT_EQ(classOf(Opcode::DIV), InstClass::IntDiv);
    EXPECT_EQ(classOf(Opcode::REM), InstClass::IntDiv);
    EXPECT_EQ(classOf(Opcode::FADD), InstClass::FpAlu);
    EXPECT_EQ(classOf(Opcode::FMUL), InstClass::FpMult);
    EXPECT_EQ(classOf(Opcode::FDIV), InstClass::FpDiv);
    EXPECT_EQ(classOf(Opcode::FSQRT), InstClass::FpSqrt);
}

TEST(InstClass, CallAndReturnPredicates)
{
    EXPECT_TRUE(isCall(Opcode::CALL));
    EXPECT_TRUE(isCall(Opcode::ICALL));
    EXPECT_FALSE(isCall(Opcode::RET));
    EXPECT_TRUE(isReturn(Opcode::RET));
    EXPECT_FALSE(isReturn(Opcode::JR));
}

TEST(Operands, ThreeRegisterAlu)
{
    Instruction inst{Opcode::ADD, 5, 6, 7, 0, 0};
    EXPECT_EQ(numSrcRegs(inst), 2);
    EXPECT_EQ(srcReg(inst, 0), (RegRef{RegSpace::Int, 6}));
    EXPECT_EQ(srcReg(inst, 1), (RegRef{RegSpace::Int, 7}));
    EXPECT_EQ(destReg(inst), (RegRef{RegSpace::Int, 5}));
}

TEST(Operands, LoadImmediateHasNoSources)
{
    Instruction inst{Opcode::LI, 4, 0, 0, 42, 0};
    EXPECT_EQ(numSrcRegs(inst), 0);
    EXPECT_TRUE(destReg(inst).valid());
}

TEST(Operands, StoreHasTwoSourcesNoDest)
{
    Instruction inst{Opcode::SD, 0, 3, 4, 8, 0};
    EXPECT_EQ(numSrcRegs(inst), 2);
    EXPECT_FALSE(destReg(inst).valid());
    EXPECT_EQ(srcReg(inst, 0).space, RegSpace::Int);
    EXPECT_EQ(srcReg(inst, 1).space, RegSpace::Int);
}

TEST(Operands, FpStoreMixesRegisterFiles)
{
    Instruction inst{Opcode::FSD, 0, 3, 4, 8, 0};
    EXPECT_EQ(srcReg(inst, 0).space, RegSpace::Int);  // base address
    EXPECT_EQ(srcReg(inst, 1).space, RegSpace::Fp);   // data
}

TEST(Operands, LoadHasOneSource)
{
    Instruction inst{Opcode::LD, 5, 3, 0, 16, 0};
    EXPECT_EQ(numSrcRegs(inst), 1);
    EXPECT_EQ(srcReg(inst, 0), (RegRef{RegSpace::Int, 3}));
    EXPECT_EQ(destReg(inst), (RegRef{RegSpace::Int, 5}));
}

TEST(Operands, FpLoadWritesFpFile)
{
    Instruction inst{Opcode::FLD, 5, 3, 0, 0, 0};
    EXPECT_EQ(destReg(inst), (RegRef{RegSpace::Fp, 5}));
}

TEST(Operands, CallWritesReturnAddress)
{
    Instruction inst{Opcode::CALL, RegRa, 0, 0, 0, 7};
    EXPECT_EQ(destReg(inst), (RegRef{RegSpace::Int, RegRa}));
    EXPECT_EQ(numSrcRegs(inst), 0);
}

TEST(Operands, ReturnReadsReturnAddress)
{
    Instruction inst{Opcode::RET, 0, RegRa, 0, 0, 0};
    EXPECT_EQ(numSrcRegs(inst), 1);
    EXPECT_EQ(srcReg(inst, 0), (RegRef{RegSpace::Int, RegRa}));
}

TEST(Operands, FpCompareWritesIntFile)
{
    Instruction inst{Opcode::FCMPLT, 5, 2, 3, 0, 0};
    EXPECT_EQ(destReg(inst), (RegRef{RegSpace::Int, 5}));
    EXPECT_EQ(srcReg(inst, 0).space, RegSpace::Fp);
    EXPECT_EQ(srcReg(inst, 1).space, RegSpace::Fp);
    EXPECT_EQ(classOf(Opcode::FCMPLT), InstClass::FpAlu);
}

TEST(MemAccess, SizesMatchOpcodes)
{
    EXPECT_EQ(memAccessBytes(Opcode::LB), 1);
    EXPECT_EQ(memAccessBytes(Opcode::LW), 4);
    EXPECT_EQ(memAccessBytes(Opcode::LD), 8);
    EXPECT_EQ(memAccessBytes(Opcode::FLD), 8);
    EXPECT_EQ(memAccessBytes(Opcode::SB), 1);
    EXPECT_EQ(memAccessBytes(Opcode::SW), 4);
}

TEST(Addresses, InstAddrIsInTextSegment)
{
    EXPECT_EQ(instAddr(0), TextBase);
    EXPECT_EQ(instAddr(10), TextBase + 10 * InstBytes);
    EXPECT_LT(instAddr(1u << 20), DataBase);
}

TEST(Disassemble, ContainsMnemonic)
{
    Instruction inst{Opcode::ADDI, 3, 4, 0, -5, 0};
    const std::string text = disassemble(inst);
    EXPECT_NE(text.find("addi"), std::string::npos);
    EXPECT_NE(text.find("-5"), std::string::npos);
}

/** Every opcode maps to some class and has a printable name. */
class AllOpcodes : public ::testing::TestWithParam<int>
{
};

TEST_P(AllOpcodes, HasNameAndClass)
{
    const Opcode op = static_cast<Opcode>(GetParam());
    EXPECT_STRNE(opcodeName(op), "?");
    EXPECT_LT(static_cast<int>(classOf(op)), NumInstClasses);
}

TEST_P(AllOpcodes, OperandShapeIsConsistent)
{
    const Opcode op = static_cast<Opcode>(GetParam());
    Instruction inst;
    inst.op = op;
    inst.rd = 5;
    inst.rs1 = 6;
    inst.rs2 = 7;
    const int n = numSrcRegs(inst);
    ASSERT_GE(n, 0);
    ASSERT_LE(n, 2);
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(srcReg(inst, i).valid());
    // Out-of-range source queries return invalid refs.
    EXPECT_FALSE(srcReg(inst, n).valid());
}

INSTANTIATE_TEST_SUITE_P(
    Isa, AllOpcodes,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)));

} // namespace
