# CTest script: end-to-end contract of `ssim serve` — the daemon's
# lifecycle under real process control (fifos, SIGTERM, exit codes),
# which no in-process test can exercise.
#
# Invoked with -DSSIM_CLI=<path-to-ssim> -DWORK_DIR=<scratch-dir>
#              -DMODE=<drain|chaos>.
#
# MODE=drain: SIGTERM the daemon while a stalled request is in
#   flight. The in-flight request must complete, a request sent
#   during the drain must be answered `shutting-down`, the exit code
#   must be 10, and the final --stats-json snapshot must account for
#   both.
# MODE=chaos: push >=1000 requests through a small worker pool under
#   every fault at once — the crash hook, stalls past deadlines, and
#   a queue kept saturated — and require exactly one response per
#   request (a result or a typed error), a clean EOF drain (exit 0),
#   and a byte-identical metrics replay of a seeded request across
#   two daemon instances.
# MODE=socket: the Unix-socket transport with concurrent clients. A
#   second client connects in the same poll round that the first
#   client's bytes arrive — regression for the event loop indexing
#   the pollfd array past its end after an accept — then interleaved
#   requests must route responses to the connection that asked, and
#   SIGTERM must drain with exit 10 and unlink the socket.
# MODE=disconnect: one client sends a slow request and disconnects
#   before the response can be written (EPIPE on the worker's flush).
#   The listener must survive, a second client must keep getting
#   responses afterwards, and an oversized (>1 MiB) request line must
#   be answered with a typed parse-error, not a hang or a kill.
# MODE=soak: N concurrent socket clients x M requests each, every
#   response routed back to the connection that asked. Labeled
#   `serve` so the sanitizer lane sweeps the full concurrent
#   transport surface.
# MODE=trace: `--trace` must export per-request lifecycle spans — an
#   admission track, named worker tracks, one complete "request"
#   slice per settled request with its typed outcome and
#   queue/predict timing args, and instant markers for admissions,
#   parse failures, and deadline expiries.
#
# The process choreography (fifo writers, kill timing) needs a real
# shell; the script below is written fresh into the scratch dir and
# driven by bash, with all assertions inside it.

find_program(BASH_PROGRAM bash REQUIRED)

set(dir "${WORK_DIR}/cli_serve_${MODE}")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

if(MODE STREQUAL "drain")

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir
set -u
cli="$1"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- out:"; cat out 2>/dev/null;
         echo "--- err:"; cat err 2>/dev/null; exit 1; }

rm -f in out err stats.json
mkfifo in || exit 99
"$cli" serve --jobs 2 --stats-json stats.json < in > out 2> err &
pid=$!
exec 3>in

# One request that will still be running when the signal lands.
printf '%s\n' \
  '{"id":"slow","workload":"route","max_insts":60000,"reduction":50,"stall_ms":600}' >&3
sleep 0.3
kill -TERM "$pid"
sleep 0.2
# Arrives mid-drain: must be answered, not dropped, and rejected.
printf '%s\n' \
  '{"id":"late","workload":"route","max_insts":60000,"reduction":50}' >&3
exec 3>&-
wait "$pid"
rc=$?

[ "$rc" -eq 10 ] || fail "exit code $rc, want 10 (drained by signal)"
grep -q '"id":"slow","ok":true' out \
  || fail "in-flight request did not complete during the drain"
grep -q '"id":"late","ok":false,"error":"shutting-down"' out \
  || fail "request sent during drain was not rejected shutting-down"
[ "$(wc -l < out)" -eq 2 ] || fail "expected exactly 2 responses"
[ -s stats.json ] || fail "final --stats-json snapshot missing"
grep -q '"serve.requests.ok":1' stats.json \
  || fail "snapshot does not count the completed request"
grep -q '"serve.requests.rejected_draining":1' stats.json \
  || fail "snapshot does not count the drain rejection"
grep -q '"serve.inflight":0' stats.json \
  || fail "snapshot shows residual in-flight work"
echo PASS
]])

elseif(MODE STREQUAL "chaos")

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir
set -u
cli="$1"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- err:"; cat err 2>/dev/null; exit 1; }

# --- build the request mix -----------------------------------------
# Two phases on one stdin stream. Phase 1 blasts 1000 real
# predictions at a 16-slot queue in one write: only the first ~20
# are admitted and the rest MUST shed, exercising backpressure at
# full depth. Phase 2 is paced with small sleeps so its fault
# requests are guaranteed admission: ids on the crash list, stalls
# that overshoot their deadlines, health probes, and garbage lines.
# The predictions are cheap on purpose (tiny profiling cap, heavy
# reduction; the profile is cached after the first), so the queue
# drains between paced sends.
rm -f blast.jsonl out err
blast=1000
for i in $(seq 1 "$blast"); do
  printf '%s\n' "{\"id\":\"n$i\",\"workload\":\"route\",\"max_insts\":60000,\"reduction\":50,\"seed\":$i}"
done > blast.jsonl
faults=10
crash_ids="c1"
for i in $(seq 2 "$faults"); do crash_ids="$crash_ids,c$i"; done
# blast + per-fault-round (crash, deadline, garbage) + final health
total=$((blast + 3 * faults + 1))

produce() {
  cat blast.jsonl
  sleep 1            # let the admitted head of the blast drain
  for i in $(seq 1 "$faults"); do
    printf '%s\n' "{\"id\":\"c$i\",\"workload\":\"route\",\"max_insts\":60000,\"reduction\":50}"
    printf '%s\n' "{\"id\":\"d$i\",\"workload\":\"route\",\"max_insts\":60000,\"reduction\":50,\"stall_ms\":80,\"deadline_ms\":15}"
    printf '%s\n' "this is not json $i"
    sleep 0.05
  done
  printf '%s\n' '{"id":"h-final","type":"health"}'
}

# --- run -----------------------------------------------------------
produce | SSIM_SERVE_CRASH_ON="$crash_ids" \
  "$cli" serve --jobs 4 --queue 16 --restart-backoff-ms 5 --quiet \
  > out 2> err
rc=$?
[ "$rc" -eq 0 ] || fail "EOF drain should exit 0, got $rc"

# --- exactly one response per request, every one typed -------------
responses=$(wc -l < out)
[ "$responses" -eq "$total" ] \
  || fail "sent $total requests, got $responses responses"
bad=$(grep -cvE '"ok":true|"error":"(overloaded|deadline-exceeded|worker-crashed|shutting-down|parse-error|invalid-argument|invalid-config|unknown-workload|internal-error)"' out)
[ "$bad" -eq 0 ] || fail "$bad responses lack a typed outcome"

count() { grep -c "$1" out; }
n_ok=$(count '"ok":true')
n_shed=$(count '"error":"overloaded"')
n_dead=$(count '"error":"deadline-exceeded"')
n_crash=$(count '"error":"worker-crashed"')
n_parse=$(count '"error":"parse-error"')
echo "ok=$n_ok shed=$n_shed deadline=$n_dead crashed=$n_crash parse=$n_parse"
[ "$n_ok" -ge 1 ]    || fail "no request succeeded"
[ "$n_shed" -ge 1 ]  || fail "queue saturation never shed load"
[ "$n_dead" -ge 1 ]  || fail "no deadline was enforced"
[ "$n_crash" -ge 1 ] || fail "crash hook never fired"
[ "$n_parse" -ge 1 ] || fail "garbage lines not answered"
# Shed requests must carry an actionable backoff hint.
[ "$(count '"retry_after_ms":')" -eq "$n_shed" ] \
  || fail "sheds without retry_after_ms hints"

# --- byte-identical replay -----------------------------------------
printf '%s\n' \
  '{"id":"rep","workload":"route","seed":11,"reduction":50,"max_insts":60000,"config":{"ruu":48}}' > rep.jsonl
"$cli" serve --jobs 1 --quiet < rep.jsonl > rep1.out 2>/dev/null \
  || fail "replay run 1 failed"
"$cli" serve --jobs 1 --quiet < rep.jsonl > rep2.out 2>/dev/null \
  || fail "replay run 2 failed"
m1=$(grep -o '"metrics":{[^}]*}' rep1.out)
m2=$(grep -o '"metrics":{[^}]*}' rep2.out)
[ -n "$m1" ] || fail "replay run 1 produced no metrics"
[ "$m1" = "$m2" ] || fail "replayed metrics differ:
  $m1
  $m2"
echo PASS
]])

elseif(MODE STREQUAL "socket")

find_program(PYTHON3_PROGRAM python3 REQUIRED)

file(WRITE "${dir}/clients.py" [[
import json
import socket
import sys
import time

path = sys.argv[1]


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    return s


def send(s, obj):
    s.sendall((json.dumps(obj) + "\n").encode())


def readline(s):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            raise SystemExit("FAIL: peer closed mid-line: %r" % buf)
        buf += chunk
    return json.loads(buf.decode())


req = {"workload": "route", "max_insts": 60000, "reduction": 50}

a = connect()
time.sleep(0.3)  # a is accepted and sits idle in the client list

# The regression scenario: b's connect and a's first bytes land in
# the same poll round, so the daemon accepts a new client and then
# walks the pre-accept pollfd set. The loop must not index past it
# (b is read on the next round).
b = connect()
send(a, dict(req, id="a-stall", stall_ms=300))
send(b, dict(req, id="b-first"))

rb = readline(b)
assert rb["id"] == "b-first" and rb.get("ok"), rb
ra = readline(a)
assert ra["id"] == "a-stall" and ra.get("ok"), ra

# Interleaved traffic, one outstanding request per client: each
# response must come back on the connection that asked.
for i in range(5):
    send(a, dict(req, id="a%d" % i, seed=i))
    send(b, dict(req, id="b%d" % i, seed=i))
    ra = readline(a)
    rb = readline(b)
    assert ra["id"] == "a%d" % i and ra.get("ok"), ra
    assert rb["id"] == "b%d" % i and rb.get("ok"), rb

send(a, {"id": "h", "type": "health"})
rh = readline(a)
assert rh["id"] == "h" and rh.get("ok"), rh

a.close()
b.close()
print("CLIENTS-OK")
]])

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir, $3 = python3
set -u
cli="$1"
py="$3"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- out:"; cat out 2>/dev/null;
         echo "--- err:"; cat err 2>/dev/null; exit 1; }

rm -f sock out err
"$cli" serve --jobs 2 --socket sock --quiet 2> err &
pid=$!
for _ in $(seq 1 100); do [ -S sock ] && break; sleep 0.05; done
[ -S sock ] || fail "daemon never created the socket"

"$py" clients.py sock > out 2>&1 || fail "client script failed"
grep -q CLIENTS-OK out || fail "client assertions did not finish"

kill -TERM "$pid"
wait "$pid"
rc=$?
[ "$rc" -eq 10 ] || fail "exit code $rc, want 10 (drained by signal)"
[ ! -e sock ] || fail "socket path not unlinked on exit"
echo PASS
]])

elseif(MODE STREQUAL "disconnect")

find_program(PYTHON3_PROGRAM python3 REQUIRED)

file(WRITE "${dir}/clients.py" [[
import json
import socket
import sys
import time

path = sys.argv[1]


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    return s


def send(s, obj):
    s.sendall((json.dumps(obj) + "\n").encode())


def readline(s):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            raise SystemExit("FAIL: peer closed mid-line: %r" % buf)
        buf += chunk
    return json.loads(buf.decode())


req = {"workload": "route", "max_insts": 60000, "reduction": 50}

# The victim: a stalled request whose client vanishes before the
# worker flushes the response. The write lands on a closed socket
# (EPIPE) and must only kill this connection's writer.
victim = connect()
send(victim, dict(req, id="victim", stall_ms=400))
time.sleep(0.1)  # admitted and stalling in a worker
victim.close()

# The survivor proves the listener and the pool outlived the EPIPE.
survivor = connect()
time.sleep(0.6)  # let the victim's doomed flush happen first
for i in range(3):
    send(survivor, dict(req, id="s%d" % i, seed=i))
    r = readline(survivor)
    assert r["id"] == "s%d" % i and r.get("ok"), r

# Oversized request line: > 1 MiB of not-JSON must come back as one
# typed parse-error on this same connection, never a hang.
survivor.sendall(b"x" * (1 << 20) + b"xx\n")
r = readline(survivor)
assert r.get("ok") is False and r.get("error") == "parse-error", r
assert "1 MiB" in r.get("message", ""), r

# And the connection still works after the oversized line.
send(survivor, dict(req, id="after", seed=9))
r = readline(survivor)
assert r["id"] == "after" and r.get("ok"), r

survivor.close()
print("CLIENTS-OK")
]])

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir, $3 = python3
set -u
cli="$1"
py="$3"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- out:"; cat out 2>/dev/null;
         echo "--- err:"; cat err 2>/dev/null; exit 1; }

rm -f sock out err
"$cli" serve --jobs 2 --socket sock --quiet 2> err &
pid=$!
for _ in $(seq 1 100); do [ -S sock ] && break; sleep 0.05; done
[ -S sock ] || fail "daemon never created the socket"

"$py" clients.py sock > out 2>&1 || fail "client script failed"
grep -q CLIENTS-OK out || fail "client assertions did not finish"

kill -0 "$pid" 2>/dev/null \
  || fail "daemon died after a client disconnected mid-response"
kill -TERM "$pid"
wait "$pid"
rc=$?
[ "$rc" -eq 10 ] || fail "exit code $rc, want 10 (drained by signal)"
echo PASS
]])

elseif(MODE STREQUAL "soak")

find_program(PYTHON3_PROGRAM python3 REQUIRED)

file(WRITE "${dir}/clients.py" [[
import json
import socket
import sys
import threading

path = sys.argv[1]
CLIENTS = 8
REQUESTS = 25

errors = []


def client(ci):
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(path)
        buf = b""
        for i in range(REQUESTS):
            rid = "c%d-r%d" % (ci, i)
            req = {"id": rid, "workload": "route",
                   "max_insts": 60000, "reduction": 50,
                   "seed": ci * 1000 + i}
            s.sendall((json.dumps(req) + "\n").encode())
            while b"\n" not in buf:
                chunk = s.recv(65536)
                if not chunk:
                    raise RuntimeError("peer closed: %r" % buf)
                buf += chunk
            line, buf = buf.split(b"\n", 1)
            r = json.loads(line.decode())
            assert r["id"] == rid, (rid, r)
            assert r.get("ok"), r
        s.close()
    except Exception as e:  # noqa: BLE001 - collected for the driver
        errors.append("client %d: %s" % (ci, e))


threads = [threading.Thread(target=client, args=(ci,))
           for ci in range(CLIENTS)]
for t in threads:
    t.start()
for t in threads:
    t.join()
if errors:
    raise SystemExit("FAIL: " + "; ".join(errors))
print("CLIENTS-OK %d" % (CLIENTS * REQUESTS))
]])

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir, $3 = python3
set -u
cli="$1"
py="$3"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- out:"; cat out 2>/dev/null;
         echo "--- err:"; cat err 2>/dev/null; exit 1; }

rm -f sock out err
"$cli" serve --jobs 4 --queue 64 --socket sock --quiet 2> err &
pid=$!
for _ in $(seq 1 100); do [ -S sock ] && break; sleep 0.05; done
[ -S sock ] || fail "daemon never created the socket"

"$py" clients.py sock > out 2>&1 || fail "client script failed"
grep -q 'CLIENTS-OK 200' out || fail "soak did not complete all requests"

kill -TERM "$pid"
wait "$pid"
rc=$?
[ "$rc" -eq 10 ] || fail "exit code $rc, want 10 (drained by signal)"
echo PASS
]])

elseif(MODE STREQUAL "trace")

file(WRITE "${dir}/driver.sh" [[#!/bin/bash
# $1 = ssim binary, $2 = scratch dir
set -u
cli="$1"
cd "$2" || exit 99

fail() { echo "FAIL: $*"; echo "--- out:"; cat out 2>/dev/null;
         echo "--- err:"; cat err 2>/dev/null;
         echo "--- trace:"; cat trace.json 2>/dev/null; exit 1; }

rm -f out err trace.json

# Three lines through stdin: a request that finishes, a stalled
# request that outlives the deadline, and one malformed line. EOF
# drains the daemon cleanly, so the trace file must be written.
{
  printf '%s\n' \
    '{"id":"ok1","workload":"zip","max_insts":20000,"reduction":50}'
  printf '%s\n' \
    '{"id":"slow","workload":"zip","max_insts":20000,"reduction":50,"stall_ms":900}'
  printf 'this is not json\n'
  sleep 1.2
} | "$cli" serve --jobs 2 --deadline-ms 300 --trace trace.json \
      > out 2> err
rc=$?
[ "$rc" -eq 0 ] || fail "exit code $rc, want 0 (clean EOF drain)"
[ -s trace.json ] || fail "--trace produced no trace file"

# Track naming: an admission track on tid 0 plus one named worker
# track per spawned worker.
grep -q '"ssim serve"' trace.json || fail "no process_name in trace"
grep -q '"admission"' trace.json || fail "no admission track in trace"
grep -q '"worker 0"' trace.json || fail "no worker track in trace"

# Lifecycle spans: one complete "request" slice per settled request,
# with the typed outcome and the admission->dispatch split in args.
grep -q '"name":"request"' trace.json \
  || fail "no request slices in trace"
grep -q '"outcome":"ok"' trace.json \
  || fail "completed request slice missing outcome ok"
grep -q '"outcome":"deadline-exceeded"' trace.json \
  || fail "expired request slice missing outcome deadline-exceeded"
grep -q '"queue_ms"' trace.json \
  || fail "request slices missing queue_ms arg"
grep -q '"predict_ms"' trace.json \
  || fail "request slices missing predict_ms arg"

# Typed instant markers for admission decisions and parse failures.
grep -q '"name":"admit"' trace.json || fail "no admit instants"
grep -q '"name":"parse-error"' trace.json \
  || fail "malformed line left no parse-error instant"
grep -q '"name":"deadline-exceeded"' trace.json \
  || fail "no deadline-exceeded instant"
echo PASS
]])

else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

execute_process(
    COMMAND "${BASH_PROGRAM}" "${dir}/driver.sh" "${SSIM_CLI}" "${dir}"
            "${PYTHON3_PROGRAM}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "PASS")
    message(FATAL_ERROR
        "cli_serve ${MODE} failed (rc=${rc})\n${out}\n${err}")
endif()
message(STATUS "cli_serve ${MODE}: ${out}")
