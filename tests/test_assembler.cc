/**
 * @file
 * Tests for the assembler (label fixups, data placement) and the
 * basic-block analysis of Program::finalize.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/emulator.hh"

namespace
{

using namespace ssim::isa;

TEST(Assembler, ForwardLabelFixup)
{
    Assembler as("t");
    Label target = as.newLabel();
    as.li(3, 1);
    as.jmp(target);
    as.li(3, 2);       // skipped
    as.bind(target);
    as.halt();
    Program prog = as.finish();

    EXPECT_EQ(prog.text[1].target, 3u);
}

TEST(Assembler, BackwardLabelFixup)
{
    Assembler as("t");
    as.li(3, 0);
    Label top = as.here();
    as.addi(3, 3, 1);
    as.slti(4, 3, 5);
    as.bne(4, RegZero, top);
    as.halt();
    Program prog = as.finish();

    EXPECT_EQ(prog.text[3].target, 1u);
}

TEST(Assembler, RetReadsRa)
{
    Assembler as("t");
    as.ret();
    as.halt();
    Program prog = as.finish();
    EXPECT_EQ(prog.text[0].rs1, RegRa);
}

TEST(Assembler, LaMaterializesInstructionIndex)
{
    Assembler as("t");
    Label fn = as.newLabel();
    as.la(3, fn);
    as.jmp(fn);
    as.nop();
    as.bind(fn);
    as.halt();
    Program prog = as.finish();

    EXPECT_EQ(prog.text[0].op, Opcode::LI);
    EXPECT_EQ(prog.text[0].imm, 3);
}

TEST(Assembler, LaTargetBecomesLeader)
{
    Assembler as("t");
    Label fn = as.newLabel();
    as.la(3, fn);
    as.jr(3);
    as.nop();          // unreachable filler, same block as...
    as.nop();
    as.bind(fn);       // ...must still start a new block here
    as.halt();
    Program prog = as.finish();

    EXPECT_TRUE(prog.isLeader(4));
}

TEST(Assembler, DataWordsRoundTrip)
{
    Assembler as("t");
    as.addWords(64, {1, -2, 300});
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);

    EXPECT_EQ(static_cast<int64_t>(emu.peek64(64)), 1);
    EXPECT_EQ(static_cast<int64_t>(emu.peek64(72)), -2);
    EXPECT_EQ(static_cast<int64_t>(emu.peek64(80)), 300);
}

TEST(Assembler, DataDoublesRoundTrip)
{
    Assembler as("t");
    as.addDoubles(0, {3.25});
    as.fld(1, RegZero, 0);
    as.halt();
    Program prog = as.finish();
    Emulator emu(prog);
    emu.run(10);
    EXPECT_DOUBLE_EQ(emu.fpReg(1), 3.25);
}

TEST(BasicBlocks, StraightLineIsOneBlock)
{
    Assembler as("t");
    as.li(3, 1);
    as.addi(3, 3, 1);
    as.halt();
    Program prog = as.finish();

    // HALT is control flow, so the block ends there; the whole
    // program is blocks {0..2}.
    EXPECT_EQ(prog.numBlocks(), 1u);
    EXPECT_EQ(prog.blockOf(0), prog.blockOf(2));
}

TEST(BasicBlocks, BranchTargetStartsBlock)
{
    Assembler as("t");
    Label skip = as.newLabel();
    as.li(3, 1);               // 0  block A
    as.beq(3, RegZero, skip);  // 1  block A (terminator)
    as.li(4, 2);               // 2  block B (after control flow)
    as.bind(skip);
    as.halt();                 // 3  block C (branch target)
    Program prog = as.finish();

    EXPECT_EQ(prog.numBlocks(), 3u);
    EXPECT_TRUE(prog.isLeader(0));
    EXPECT_TRUE(prog.isLeader(2));
    EXPECT_TRUE(prog.isLeader(3));
    EXPECT_FALSE(prog.isLeader(1));
}

TEST(BasicBlocks, BlockSizesCoverProgram)
{
    Assembler as("t");
    Label top = as.newLabel();
    as.li(3, 0);
    as.bind(top);
    as.addi(3, 3, 1);
    as.slti(4, 3, 3);
    as.bne(4, RegZero, top);
    as.halt();
    Program prog = as.finish();

    size_t covered = 0;
    for (const BasicBlock &bb : prog.blocks())
        covered += bb.size();
    EXPECT_EQ(covered, prog.size());
}

TEST(BasicBlocks, FallThroughIntoLeader)
{
    // A branch target in the middle of straight-line code splits the
    // block; the first block then has a non-control-flow terminator.
    Assembler as("t");
    Label mid = as.newLabel();
    as.li(3, 0);       // 0 block A
    as.bind(mid);
    as.addi(3, 3, 1);  // 1 block B (target of the jump below)
    as.slti(4, 3, 2);  // 2 block B
    as.bne(4, RegZero, mid);  // 3 block B terminator
    as.halt();         // 4 block C
    Program prog = as.finish();

    EXPECT_EQ(prog.numBlocks(), 3u);
    const BasicBlock &a = prog.blocks()[prog.blockOf(0)];
    EXPECT_EQ(a.size(), 1u);
}

} // namespace
