/**
 * @file
 * Power model tests: cc3 conditional clocking semantics, size/width
 * scaling monotonicity, and the EDP metric.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace
{

using namespace ssim;
using cpu::CoreConfig;
using cpu::PowerUnit;
using cpu::SimStats;
using power::PowerModel;
using power::PowerReport;

SimStats
idleStats(uint64_t cycles)
{
    SimStats s;
    s.cycles = cycles;
    return s;
}

TEST(Power, IdleUnitBurnsTenPercent)
{
    const CoreConfig cfg = CoreConfig::baseline();
    const PowerModel model(cfg);
    const PowerReport rep = model.evaluate(idleStats(1000));
    for (int u = 0; u < cpu::NumPowerUnits; ++u) {
        EXPECT_NEAR(rep.unitAvg[u],
                    power::IdleFactor *
                        model.maxPowerOf(static_cast<PowerUnit>(u)),
                    1e-9);
    }
}

TEST(Power, FullyBusyUnitReachesMax)
{
    const CoreConfig cfg = CoreConfig::baseline();
    const PowerModel model(cfg);
    SimStats s = idleStats(1000);
    const int alu = static_cast<int>(PowerUnit::IntAlu);
    s.unitAccesses[alu] =
        1000 * static_cast<uint64_t>(model.portsOf(PowerUnit::IntAlu));
    s.unitActiveCycles[alu] = 1000;
    const PowerReport rep = model.evaluate(s);
    EXPECT_NEAR(rep.unitAvg[alu], model.maxPowerOf(PowerUnit::IntAlu),
                1e-9);
}

TEST(Power, HalfUtilisationScalesLinearly)
{
    const CoreConfig cfg = CoreConfig::baseline();
    const PowerModel model(cfg);
    SimStats s = idleStats(1000);
    const int dc = static_cast<int>(PowerUnit::DCache);
    s.unitAccesses[dc] = 500 *
        static_cast<uint64_t>(model.portsOf(PowerUnit::DCache));
    s.unitActiveCycles[dc] = 500;
    const PowerReport rep = model.evaluate(s);
    const double max = model.maxPowerOf(PowerUnit::DCache);
    // Half the cycles at full tilt, half idle at 10%.
    EXPECT_NEAR(rep.unitAvg[dc], 0.5 * max + 0.5 * 0.1 * max, 1e-9);
}

TEST(Power, BiggerCachesBurnMore)
{
    CoreConfig small = CoreConfig::baseline();
    CoreConfig large = CoreConfig::baseline();
    large.dl1 = large.dl1.scaled(4.0);
    large.l2 = large.l2.scaled(4.0);
    EXPECT_GT(PowerModel(large).maxPowerOf(PowerUnit::DCache),
              PowerModel(small).maxPowerOf(PowerUnit::DCache));
    EXPECT_GT(PowerModel(large).maxPowerOf(PowerUnit::L2),
              PowerModel(small).maxPowerOf(PowerUnit::L2));
}

TEST(Power, BiggerWindowBurnsMore)
{
    CoreConfig small = CoreConfig::baseline();
    small.ruuSize = 32;
    CoreConfig large = CoreConfig::baseline();
    large.ruuSize = 128;
    EXPECT_GT(PowerModel(large).maxPowerOf(PowerUnit::Ruu),
              PowerModel(small).maxPowerOf(PowerUnit::Ruu));
    EXPECT_GT(PowerModel(large).maxPowerOf(PowerUnit::IssueSel),
              PowerModel(small).maxPowerOf(PowerUnit::IssueSel));
}

TEST(Power, WiderMachineBurnsMore)
{
    CoreConfig narrow = CoreConfig::baseline();
    narrow.decodeWidth = narrow.issueWidth = narrow.commitWidth = 2;
    const CoreConfig wide = CoreConfig::baseline();
    EXPECT_GT(PowerModel(wide).maxPowerOf(PowerUnit::Rename),
              PowerModel(narrow).maxPowerOf(PowerUnit::Rename));
    EXPECT_GT(PowerModel(wide).maxPowerOf(PowerUnit::RegFile),
              PowerModel(narrow).maxPowerOf(PowerUnit::RegFile));
    EXPECT_GT(PowerModel(wide).peakPower(),
              PowerModel(narrow).peakPower());
}

TEST(Power, BiggerPredictorBurnsMore)
{
    CoreConfig small = CoreConfig::baseline();
    small.bpred = small.bpred.scaled(-2);
    CoreConfig large = CoreConfig::baseline();
    large.bpred = large.bpred.scaled(2);
    EXPECT_GT(PowerModel(large).maxPowerOf(PowerUnit::Bpred),
              PowerModel(small).maxPowerOf(PowerUnit::Bpred));
}

TEST(Power, PeakPowerInPlausibleRange)
{
    // 0.18um, 1.2 GHz, 8-wide: tens of Watts, not hundreds.
    const PowerModel model(CoreConfig::baseline());
    EXPECT_GT(model.peakPower(), 30.0);
    EXPECT_LT(model.peakPower(), 150.0);
}

TEST(Power, FetchUnitAggregatesFrontEnd)
{
    const PowerModel model(CoreConfig::baseline());
    SimStats s = idleStats(100);
    const PowerReport rep = model.evaluate(s);
    EXPECT_NEAR(rep.fetchUnit(),
                rep.unitAvg[static_cast<int>(PowerUnit::ICache)] +
                rep.unitAvg[static_cast<int>(PowerUnit::ITlb)] +
                rep.unitAvg[static_cast<int>(PowerUnit::Bpred)],
                1e-12);
}

TEST(Power, TotalIsSumOfUnitsPlusClock)
{
    const PowerModel model(CoreConfig::baseline());
    SimStats s = idleStats(500);
    s.unitAccesses[static_cast<int>(PowerUnit::IntAlu)] = 800;
    s.unitActiveCycles[static_cast<int>(PowerUnit::IntAlu)] = 400;
    const PowerReport rep = model.evaluate(s);
    double sum = rep.clockAvg;
    for (double v : rep.unitAvg)
        sum += v;
    EXPECT_NEAR(rep.total, sum, 1e-9);
}

TEST(Power, ZeroCyclesYieldsZeroReport)
{
    const PowerModel model(CoreConfig::baseline());
    const PowerReport rep = model.evaluate(SimStats{});
    EXPECT_DOUBLE_EQ(rep.total, 0.0);
}

TEST(Power, EnergyDelayProduct)
{
    EXPECT_DOUBLE_EQ(PowerModel::energyDelayProduct(20.0, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(PowerModel::energyDelayProduct(20.0, 0.0), 0.0);
    // EDP = EPC * CPI^2: lower IPC quadratically worsens EDP.
    EXPECT_GT(PowerModel::energyDelayProduct(20.0, 1.0),
              PowerModel::energyDelayProduct(20.0, 2.0));
}

TEST(Power, UtilisationClampsAtPorts)
{
    const PowerModel model(CoreConfig::baseline());
    SimStats s = idleStats(10);
    const int alu = static_cast<int>(PowerUnit::IntAlu);
    s.unitAccesses[alu] = 1000000;   // absurd over-count
    s.unitActiveCycles[alu] = 10;
    const PowerReport rep = model.evaluate(s);
    EXPECT_LE(rep.unitAvg[alu],
              model.maxPowerOf(PowerUnit::IntAlu) + 1e-9);
}

} // namespace
