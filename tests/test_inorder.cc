/**
 * @file
 * In-order issue extension tests (the paper's section 2.1.1 note:
 * the framework "could be extended to ... in-order execution").
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "core/sts_frontend.hh"
#include "cpu/pipeline/ooo_core.hh"
#include "util/statistics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using core::SynthInst;
using core::SyntheticTrace;

cpu::CoreConfig
inOrderCfg()
{
    cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    cfg.inOrderIssue = true;
    return cfg;
}

SynthInst
alu(uint16_t dep = 0, isa::InstClass cls = isa::InstClass::IntAlu)
{
    SynthInst si;
    si.cls = cls;
    si.hasDest = true;
    si.numSrcs = dep ? 1 : 0;
    si.depDist[0] = dep;
    return si;
}

cpu::SimStats
run(const std::vector<SynthInst> &insts, const cpu::CoreConfig &cfg)
{
    SyntheticTrace trace;
    trace.insts = insts;
    core::StsFrontend frontend(trace, cfg);
    cpu::OoOCore core(cfg, frontend);
    return core.run();
}

TEST(InOrder, IndependentOpsStillReachWidth)
{
    const cpu::SimStats stats =
        run(std::vector<SynthInst>(4000, alu()), inOrderCfg());
    EXPECT_GT(stats.ipc(), 7.0);
}

TEST(InOrder, HeadOfLineBlockingOnLoadMisses)
{
    // [missing load ; its consumer ; 6 independent alus] repeated.
    // Out-of-order overlaps the miss latency with the independent
    // work and with other loads (MLP); in-order issue stalls at the
    // consumer every time.
    std::vector<SynthInst> insts;
    for (int i = 0; i < 200; ++i) {
        SynthInst ld;
        ld.cls = isa::InstClass::Load;
        ld.isLoad = true;
        ld.hasDest = true;
        ld.dl1Miss = true;
        insts.push_back(ld);
        insts.push_back(alu(1));   // consumer of the load
        for (int j = 0; j < 6; ++j)
            insts.push_back(alu());
    }
    cpu::CoreConfig ooo = cpu::CoreConfig::baseline();
    const double ipcOoo = run(insts, ooo).ipc();
    const double ipcIno = run(insts, inOrderCfg()).ipc();
    EXPECT_LT(ipcIno, 0.7 * ipcOoo);
}

TEST(InOrder, NeverFasterThanOutOfOrder)
{
    for (const char *name : {"zip", "route"}) {
        const isa::Program prog = workloads::build(name, 1);
        cpu::EdsOptions opts;
        opts.maxInsts = 150000;
        cpu::CoreConfig ooo = cpu::CoreConfig::baseline();
        const double a =
            core::runExecutionDriven(prog, ooo, opts).ipc;
        const double b =
            core::runExecutionDriven(prog, inOrderCfg(), opts).ipc;
        EXPECT_LE(b, a * 1.01) << name;
    }
}

TEST(InOrder, CommitsEverything)
{
    const isa::Program prog = workloads::build("route", 1);
    cpu::EdsOptions opts;
    opts.maxInsts = 100000;
    const core::SimResult res =
        core::runExecutionDriven(prog, inOrderCfg(), opts);
    EXPECT_EQ(res.stats.committed, 100000u);
}

TEST(InOrder, StatisticalSimulationStillPredicts)
{
    // The same RAW-only profile drives an in-order machine
    // prediction (renaming is still assumed, so no WAW/WAR needed).
    const isa::Program prog = workloads::build("perl", 1);
    const cpu::CoreConfig cfg = inOrderCfg();
    const core::SimResult eds =
        core::runExecutionDriven(prog, cfg);
    const core::SimResult ss =
        core::runStatisticalSimulation(prog, cfg);
    EXPECT_LT(absoluteError(ss.ipc, eds.ipc), 0.25);
}

} // namespace
