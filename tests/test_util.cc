/**
 * @file
 * Utility tests: RNG determinism and distributions, discrete
 * empirical distributions, weighted picking, running statistics and
 * the paper's error metrics.
 */

#include <gtest/gtest.h>

#include "util/distribution.hh"
#include "util/random.hh"
#include "util/statistics.hh"
#include "util/table.hh"

#include <map>
#include <sstream>
#include <vector>

namespace
{

using namespace ssim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Distribution, RecordAndProbability)
{
    DiscreteDistribution d;
    d.record(1, 3);
    d.record(5, 1);
    EXPECT_EQ(d.totalCount(), 4u);
    EXPECT_EQ(d.countOf(1), 3u);
    EXPECT_DOUBLE_EQ(d.probabilityOf(1), 0.75);
    EXPECT_DOUBLE_EQ(d.probabilityOf(5), 0.25);
    EXPECT_DOUBLE_EQ(d.probabilityOf(9), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Distribution, SamplingMatchesWeights)
{
    DiscreteDistribution d;
    d.record(2, 900);
    d.record(7, 100);
    Rng rng(21);
    int sevens = 0;
    for (int i = 0; i < 10000; ++i)
        sevens += d.sample(rng) == 7 ? 1 : 0;
    EXPECT_NEAR(sevens / 10000.0, 0.1, 0.02);
}

TEST(Distribution, RecordAfterSampleRefreezes)
{
    DiscreteDistribution d;
    d.record(1);
    Rng rng(2);
    EXPECT_EQ(d.sample(rng), 1u);
    d.record(9, 1000000);
    int nines = 0;
    for (int i = 0; i < 100; ++i)
        nines += d.sample(rng) == 9 ? 1 : 0;
    EXPECT_GE(nines, 99);
}

TEST(Distribution, EntriesSortedByValue)
{
    DiscreteDistribution d;
    d.record(9);
    d.record(1);
    d.record(5);
    const auto &entries = d.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 1u);
    EXPECT_EQ(entries[1].first, 5u);
    EXPECT_EQ(entries[2].first, 9u);
}

TEST(WeightedPicker, ZeroWeightNeverPicked)
{
    WeightedPicker picker;
    picker.build({0, 10, 0, 5});
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const size_t p = picker.pick(rng);
        ASSERT_TRUE(p == 1 || p == 3);
    }
}

TEST(WeightedPicker, ProportionalSelection)
{
    WeightedPicker picker;
    picker.build({1, 3});
    Rng rng(19);
    int ones = 0;
    for (int i = 0; i < 20000; ++i)
        ones += picker.pick(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(AliasTable, SingletonAndEmpty)
{
    AliasTable t;
    EXPECT_EQ(t.totalWeight(), 0u);
    t.build({7});
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled)
{
    AliasTable t;
    t.build({0, 4, 0, 0, 1, 0});
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        const size_t s = t.sample(rng);
        ASSERT_TRUE(s == 1 || s == 4);
    }
}

/**
 * Chi-square goodness of fit: the alias sampler must reproduce an
 * empirical distribution as faithfully as the old CDF inversion did.
 * 9 degrees of freedom, alpha = 0.001 -> critical value 27.88; a
 * correct sampler fails this about once in a thousand seed choices,
 * and the seed is fixed.
 */
TEST(AliasTable, ChiSquareMatchesWeights)
{
    const std::vector<uint64_t> weights = {5,  10, 1,  40, 8,
                                           90, 3,  25, 60, 12};
    AliasTable t;
    t.build(weights);
    const double total = static_cast<double>(t.totalWeight());

    const int draws = 200000;
    std::vector<int> hits(weights.size(), 0);
    Rng rng(12345);
    for (int i = 0; i < draws; ++i)
        ++hits[t.sample(rng)];

    double chi2 = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        const double expect =
            draws * static_cast<double>(weights[i]) / total;
        const double diff = hits[i] - expect;
        chi2 += diff * diff / expect;
    }
    EXPECT_LT(chi2, 27.88) << "alias sampler deviates from weights";
}

/** The frozen DiscreteDistribution must agree with its weights too. */
TEST(AliasTable, DistributionSamplerChiSquare)
{
    DiscreteDistribution d;
    const std::vector<std::pair<uint32_t, uint64_t>> spec = {
        {1, 50}, {2, 200}, {3, 10}, {5, 120}, {8, 70}, {13, 30}};
    for (const auto &[v, w] : spec)
        d.record(v, w);
    d.prepare();

    const int draws = 120000;
    std::map<uint32_t, int> hits;
    Rng rng(777);
    for (int i = 0; i < draws; ++i)
        ++hits[d.sample(rng)];

    double chi2 = 0.0;
    for (const auto &[v, w] : spec) {
        const double expect = draws * static_cast<double>(w) /
            static_cast<double>(d.totalCount());
        const double diff = hits[v] - expect;
        chi2 += diff * diff / expect;
    }
    // 5 dof, alpha = 0.001 -> 20.52.
    EXPECT_LT(chi2, 20.52);
}

TEST(Distribution, CountOfBinarySearchAgainstMap)
{
    // Adversarial insert order for the sorted-insert path: keys
    // descending, then interleaved, with repeated accumulation.
    DiscreteDistribution d;
    std::map<uint32_t, uint64_t> ref;
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t v = static_cast<uint32_t>(rng.below(257));
        const uint64_t w = rng.below(5) + 1;
        d.record(v, w);
        ref[v] += w;
    }
    uint64_t total = 0;
    for (const auto &[v, w] : ref) {
        EXPECT_EQ(d.countOf(v), w);
        total += w;
    }
    EXPECT_EQ(d.totalCount(), total);
    EXPECT_EQ(d.countOf(300), 0u);
    // entries() stays sorted without a freeze.
    const auto &es = d.entries();
    for (size_t i = 1; i < es.size(); ++i)
        EXPECT_LT(es[i - 1].first, es[i].first);
}

TEST(FenwickSampler, PickMatchesWeights)
{
    FenwickSampler fs;
    fs.build({10, 0, 30, 60});
    EXPECT_EQ(fs.totalWeight(), 100u);
    Rng rng(5);
    std::vector<int> hits(4, 0);
    for (int i = 0; i < 50000; ++i)
        ++hits[fs.pick(rng)];
    EXPECT_EQ(hits[1], 0);
    EXPECT_NEAR(hits[0] / 50000.0, 0.10, 0.02);
    EXPECT_NEAR(hits[2] / 50000.0, 0.30, 0.02);
    EXPECT_NEAR(hits[3] / 50000.0, 0.60, 0.02);
}

TEST(FenwickSampler, DecrementToExhaustion)
{
    // Draining every index's budget one pick at a time must visit
    // each index exactly its weight's worth of times.
    FenwickSampler fs;
    const std::vector<uint64_t> weights = {3, 1, 4, 1, 5, 9, 2, 6};
    fs.build(weights);
    std::vector<uint64_t> picks(weights.size(), 0);
    Rng rng(31);
    while (fs.totalWeight() > 0) {
        const size_t i = fs.pick(rng);
        ++picks[i];
        fs.add(i, -1);
    }
    for (size_t i = 0; i < weights.size(); ++i)
        EXPECT_EQ(picks[i], weights[i]) << "index " << i;
}

TEST(FenwickSampler, AddClampsAtZero)
{
    FenwickSampler fs;
    fs.build({5, 5});
    fs.add(0, -100);
    EXPECT_EQ(fs.weightOf(0), 0u);
    EXPECT_EQ(fs.totalWeight(), 5u);
    Rng rng(1);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(fs.pick(rng), 1u);
    fs.add(0, 20);
    EXPECT_EQ(fs.weightOf(0), 20u);
    EXPECT_EQ(fs.totalWeight(), 25u);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.cov(), 2.138 / 5.0, 0.001);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(ErrorMetrics, AbsoluteErrorDefinition)
{
    // AE = |M_ss - M_eds| / M_eds (section 4.2).
    EXPECT_NEAR(absoluteError(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(absoluteError(0.9, 1.0), 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(absoluteError(2.0, 0.0), 0.0);
}

TEST(ErrorMetrics, RelativeErrorDefinition)
{
    // RE compares predicted vs reference trends A -> B (section 4.5).
    // Perfect trend prediction even with absolute offsets:
    EXPECT_DOUBLE_EQ(relativeError(2.0, 3.0, 4.0, 6.0), 0.0);
    // Predicted +50% vs actual +100%: |1.5 - 2.0| / 2.0 = 0.25.
    EXPECT_DOUBLE_EQ(relativeError(1.0, 1.5, 1.0, 2.0), 0.25);
}

TEST(TextTable, AlignsColumnsAndHeader)
{
    TextTable t;
    t.setHeader({"a", "long-header"});
    t.addRow({"xxxx", "1"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, Formatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.066, 1), "6.6%");
}

} // namespace
