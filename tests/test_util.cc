/**
 * @file
 * Utility tests: RNG determinism and distributions, discrete
 * empirical distributions, weighted picking, running statistics and
 * the paper's error metrics.
 */

#include <gtest/gtest.h>

#include "util/distribution.hh"
#include "util/random.hh"
#include "util/statistics.hh"
#include "util/table.hh"

#include <sstream>

namespace
{

using namespace ssim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Distribution, RecordAndProbability)
{
    DiscreteDistribution d;
    d.record(1, 3);
    d.record(5, 1);
    EXPECT_EQ(d.totalCount(), 4u);
    EXPECT_EQ(d.countOf(1), 3u);
    EXPECT_DOUBLE_EQ(d.probabilityOf(1), 0.75);
    EXPECT_DOUBLE_EQ(d.probabilityOf(5), 0.25);
    EXPECT_DOUBLE_EQ(d.probabilityOf(9), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Distribution, SamplingMatchesWeights)
{
    DiscreteDistribution d;
    d.record(2, 900);
    d.record(7, 100);
    Rng rng(21);
    int sevens = 0;
    for (int i = 0; i < 10000; ++i)
        sevens += d.sample(rng) == 7 ? 1 : 0;
    EXPECT_NEAR(sevens / 10000.0, 0.1, 0.02);
}

TEST(Distribution, RecordAfterSampleRefreezes)
{
    DiscreteDistribution d;
    d.record(1);
    Rng rng(2);
    EXPECT_EQ(d.sample(rng), 1u);
    d.record(9, 1000000);
    int nines = 0;
    for (int i = 0; i < 100; ++i)
        nines += d.sample(rng) == 9 ? 1 : 0;
    EXPECT_GE(nines, 99);
}

TEST(Distribution, EntriesSortedByValue)
{
    DiscreteDistribution d;
    d.record(9);
    d.record(1);
    d.record(5);
    const auto &entries = d.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 1u);
    EXPECT_EQ(entries[1].first, 5u);
    EXPECT_EQ(entries[2].first, 9u);
}

TEST(WeightedPicker, ZeroWeightNeverPicked)
{
    WeightedPicker picker;
    picker.build({0, 10, 0, 5});
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const size_t p = picker.pick(rng);
        ASSERT_TRUE(p == 1 || p == 3);
    }
}

TEST(WeightedPicker, ProportionalSelection)
{
    WeightedPicker picker;
    picker.build({1, 3});
    Rng rng(19);
    int ones = 0;
    for (int i = 0; i < 20000; ++i)
        ones += picker.pick(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.cov(), 2.138 / 5.0, 0.001);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(ErrorMetrics, AbsoluteErrorDefinition)
{
    // AE = |M_ss - M_eds| / M_eds (section 4.2).
    EXPECT_NEAR(absoluteError(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(absoluteError(0.9, 1.0), 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(absoluteError(2.0, 0.0), 0.0);
}

TEST(ErrorMetrics, RelativeErrorDefinition)
{
    // RE compares predicted vs reference trends A -> B (section 4.5).
    // Perfect trend prediction even with absolute offsets:
    EXPECT_DOUBLE_EQ(relativeError(2.0, 3.0, 4.0, 6.0), 0.0);
    // Predicted +50% vs actual +100%: |1.5 - 2.0| / 2.0 = 0.25.
    EXPECT_DOUBLE_EQ(relativeError(1.0, 1.5, 1.0, 2.0), 0.25);
}

TEST(TextTable, AlignsColumnsAndHeader)
{
    TextTable t;
    t.setHeader({"a", "long-header"});
    t.addRow({"xxxx", "1"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, Formatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.066, 1), "6.6%");
}

} // namespace
