/**
 * @file
 * Surrogate predictor tests (src/proxy): deterministic feature
 * extraction, journal-to-dataset loading under interior corruption
 * and provenance mismatch, train-twice byte stability of the model
 * file, corrupted-model rejection, Pareto frontier selection, and
 * the keep-mask pruning / dry-run planning surface of the sweep
 * engine the surrogate drives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/profiler.hh"
#include "core/serialize.hh"
#include "experiments/sweep.hh"
#include "isa/assembler.hh"
#include "proxy/features.hh"
#include "proxy/model.hh"
#include "proxy/model_io.hh"
#include "proxy/pareto.hh"
#include "util/error.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;
using namespace ssim::proxy;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

/** Tiny counted loop; enough structure to profile meaningfully. */
isa::Program
loopProgram(int iterations)
{
    isa::Assembler as("loop");
    isa::Label top = as.newLabel();
    as.li(3, 0);
    as.li(4, iterations);
    as.bind(top);
    as.addi(3, 3, 1);
    as.slti(5, 3, 1 << 30);
    as.add(6, 5, 3);
    as.blt(3, 4, top);
    as.halt();
    return as.finish();
}

core::StatisticalProfile
testProfile(int iterations = 400)
{
    return core::buildProfile(loopProgram(iterations),
                              cpu::CoreConfig::baseline());
}

PointMetrics
toPointMetrics(const std::vector<util::JournalMetric> &metrics)
{
    PointMetrics out;
    out.reserve(metrics.size());
    for (const auto &m : metrics)
        out.emplace_back(m.name, m.value);
    return out;
}

/** A small design grid with smooth, deterministic pseudo-metrics. */
std::vector<cpu::CoreConfig>
gridConfigs()
{
    std::vector<cpu::CoreConfig> cfgs;
    for (uint32_t ruu : {16u, 32u, 64u, 128u})
        for (uint32_t w : {2u, 4u, 8u}) {
            cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
            cfg.ruuSize = ruu;
            cfg.lsqSize = ruu / 2;
            cfg.decodeWidth = w;
            cfg.issueWidth = w;
            cfg.commitWidth = w;
            cfgs.push_back(cfg);
        }
    return cfgs;
}

PointMetrics
pseudoMetrics(const cpu::CoreConfig &cfg)
{
    // Monotone-ish responses a regressor can learn exactly enough.
    const double ipc = 0.4 + 0.35 * std::log2(double(cfg.ruuSize)) +
                       0.12 * double(cfg.issueWidth);
    const double epc = 1.0 + 0.02 * double(cfg.ruuSize) +
                       0.3 * double(cfg.decodeWidth);
    return {{"epc", epc}, {"ipc", ipc}};
}

/**
 * Sweep the grid into @p path with full provenance + feature
 * stamping — the journal shape `ssim train` consumes.
 */
void
writeTrainingJournal(const std::string &path,
                     const core::StatisticalProfile &profile)
{
    std::remove(path.c_str());
    const auto cfgs = gridConfigs();
    std::vector<SweepPoint> points;
    for (size_t i = 0; i < cfgs.size(); ++i)
        points.push_back({"g" + std::to_string(i),
                          configHash(cfgs[i]),
                          toPointMetrics(configFeatureMetrics(cfgs[i]))});
    SweepOptions opts;
    opts.jobs = 2;
    opts.journalPath = path;
    opts.profileChecksum = core::profileDigest(profile);
    opts.baseConfigHash = configHash(cpu::CoreConfig::baseline());
    opts.profileFeatures =
        toPointMetrics(profileFeatureMetrics(profile));
    const SweepSummary summary = runSweep(
        points,
        [&](size_t p, uint64_t) { return pseudoMetrics(cfgs[p]); },
        opts);
    ASSERT_EQ(summary.okCount, cfgs.size());
}

// --- Feature extraction --------------------------------------------

TEST(Features, DeterministicAndSchemaSized)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const auto a = configFeatures(cfg);
    const auto b = configFeatures(cfg);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), configFeatureNames().size());

    const core::StatisticalProfile profile = testProfile();
    const auto pa = profileFeatures(profile);
    const auto pb = profileFeatures(profile);
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(pa.size(), profileFeatureNames().size());
}

TEST(Features, DistinctConfigsProduceDistinctVectors)
{
    cpu::CoreConfig a = cpu::CoreConfig::baseline();
    cpu::CoreConfig b = a;
    b.ruuSize *= 2;
    EXPECT_NE(configFeatures(a), configFeatures(b));
}

TEST(Features, MetricNamesMatchSchemaOrder)
{
    const cpu::CoreConfig cfg = cpu::CoreConfig::baseline();
    const auto metrics = configFeatureMetrics(cfg);
    const auto &names = configFeatureNames();
    ASSERT_EQ(metrics.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(metrics[i].name, names[i]);
}

// --- Dataset loading -----------------------------------------------

TEST(Dataset, LoadsFeatureAnnotatedJournal)
{
    const std::string path = tempPath("proxy_train.jsonl");
    const core::StatisticalProfile profile = testProfile();
    writeTrainingJournal(path, profile);

    const Dataset ds = loadDataset({path});
    EXPECT_EQ(ds.rows.size(), gridConfigs().size());
    EXPECT_EQ(ds.profileChecksum, core::profileDigest(profile));
    EXPECT_EQ(ds.journalCount, 1u);
    EXPECT_EQ(ds.skippedCorrupt, 0u);
    ASSERT_EQ(ds.targetNames.size(), 2u);
    EXPECT_EQ(ds.targetNames[0], "epc");
    EXPECT_EQ(ds.targetNames[1], "ipc");
    EXPECT_EQ(ds.featureNames.size(), configFeatureNames().size() +
                                          profileFeatureNames().size());
}

TEST(Dataset, ToleratesInteriorCorruptLines)
{
    const std::string clean = tempPath("proxy_clean.jsonl");
    const std::string dirty = tempPath("proxy_dirty.jsonl");
    const core::StatisticalProfile profile = testProfile();
    writeTrainingJournal(clean, profile);

    // Splice garbage between records: a half-written JSON line, a
    // binary blob, and a trailing torn line — the crash shapes a
    // journal accumulates in practice.
    std::ifstream in(clean);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_GT(lines.size(), 4u);
    std::ofstream out(dirty, std::ios::trunc);
    for (size_t i = 0; i < lines.size(); ++i) {
        out << lines[i] << "\n";
        if (i == 1)
            out << "{\"event\":\"done\",\"point\":\"g0\",\"st\n";
        if (i == 3)
            out << "\x01\x02garbage\x7f\n";
    }
    out << "{\"event\":\"done\",\"poi";   // torn mid-write, no newline
    out.close();

    // The torn final line is the expected crash artifact and is
    // tolerated silently; the two interior splices are counted.
    const Dataset ds = loadDataset({dirty});
    EXPECT_EQ(ds.rows.size(), gridConfigs().size());
    EXPECT_EQ(ds.skippedCorrupt, 2u);
}

TEST(Dataset, RefusesJournalWithoutProvenance)
{
    const std::string path = tempPath("proxy_noprov.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;   // no profileChecksum stamped
    std::vector<SweepPoint> points = {{"p0", 1}};
    runSweep(
        points,
        [](size_t, uint64_t) {
            return PointMetrics{{"ipc", 1.0}};
        },
        opts);
    try {
        (void)loadDataset({path});
        FAIL() << "expected InvalidArgument";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("profile_checksum"),
                  std::string::npos);
    }
}

TEST(Dataset, RefusesMixingJournalsFromDifferentProfiles)
{
    const std::string a = tempPath("proxy_mix_a.jsonl");
    const std::string b = tempPath("proxy_mix_b.jsonl");
    writeTrainingJournal(a, testProfile(400));
    writeTrainingJournal(b, testProfile(900));   // different program run
    try {
        (void)loadDataset({a, b});
        FAIL() << "expected InvalidArgument";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("mix"),
                  std::string::npos);
    }
}

// --- Training determinism and model IO -----------------------------

TEST(Model, TrainTwiceRendersIdenticalBytes)
{
    const std::string path = tempPath("proxy_bytes.jsonl");
    writeTrainingJournal(path, testProfile());
    const Dataset ds = loadDataset({path});

    TrainOptions opts;
    opts.seed = 7;
    const std::string first = renderModel(trainModel(ds, opts));
    const std::string second = renderModel(trainModel(ds, opts));
    EXPECT_EQ(first, second);

    TrainOptions gbm = opts;
    gbm.kind = ModelKind::Gbm;
    gbm.rounds = 50;
    EXPECT_EQ(renderModel(trainModel(ds, gbm)),
              renderModel(trainModel(ds, gbm)));
}

TEST(Model, RenderParseRoundTripIsByteStable)
{
    const std::string path = tempPath("proxy_roundtrip.jsonl");
    writeTrainingJournal(path, testProfile());
    const SurrogateModel model =
        trainModel(loadDataset({path}), TrainOptions{});
    const std::string text = renderModel(model);
    const SurrogateModel reparsed = parseModel(text);
    EXPECT_EQ(renderModel(reparsed), text);
    EXPECT_EQ(reparsed.profileChecksum, model.profileChecksum);
    ASSERT_EQ(reparsed.targets.size(), model.targets.size());
}

TEST(Model, PredictionsSurviveRoundTrip)
{
    const std::string path = tempPath("proxy_pred.jsonl");
    writeTrainingJournal(path, testProfile());
    const SurrogateModel model =
        trainModel(loadDataset({path}), TrainOptions{});
    const SurrogateModel reparsed = parseModel(renderModel(model));

    const TargetModel *ipc = model.findTarget("ipc");
    const TargetModel *ipc2 = reparsed.findTarget("ipc");
    ASSERT_NE(ipc, nullptr);
    ASSERT_NE(ipc2, nullptr);
    for (const cpu::CoreConfig &cfg : gridConfigs()) {
        const auto x = model.featuresFor(cfg);
        EXPECT_DOUBLE_EQ(model.predict(*ipc, x),
                         reparsed.predict(*ipc2, x));
    }
    EXPECT_EQ(model.findTarget("nonesuch"), nullptr);
}

TEST(ModelIo, RejectsTruncationBitFlipAndBadVersion)
{
    const std::string path = tempPath("proxy_corrupt.jsonl");
    writeTrainingJournal(path, testProfile());
    const std::string text =
        renderModel(trainModel(loadDataset({path}), TrainOptions{}));

    // Truncation: the checksummed header sees it before any field.
    try {
        (void)parseModel(text.substr(0, text.size() / 2));
        FAIL() << "expected CorruptData";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::CorruptData);
    }

    // A one-byte payload flip fails the checksum.
    std::string flipped = text;
    const size_t at = flipped.find("\"kind\":\"ridge\"");
    ASSERT_NE(at, std::string::npos);
    flipped[at + 9] = 'R';
    try {
        (void)parseModel(flipped);
        FAIL() << "expected CorruptData";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::CorruptData);
    }

    // Malformed JSON is a parse error, not a crash.
    EXPECT_THROW((void)parseModel("not a model\n"), Error);

    // An unknown future format version is a version mismatch.
    const SurrogateModel model =
        trainModel(loadDataset({path}), TrainOptions{});
    SurrogateModel future = model;
    std::string bumped = renderModel(future);
    const size_t vat = bumped.find("\"version\":1");
    ASSERT_NE(vat, std::string::npos);
    bumped.replace(vat, 11, "\"version\":9");
    try {
        (void)parseModel(bumped);
        FAIL() << "expected VersionMismatch or CorruptData";
    } catch (const Error &e) {
        // Header edits also break the checksum; either typed error
        // is a correct refusal, silence is not.
        EXPECT_TRUE(e.category() == ErrorCategory::VersionMismatch ||
                    e.category() == ErrorCategory::CorruptData);
    }
}

TEST(ModelIo, SaveLoadFileRoundTrip)
{
    const std::string jpath = tempPath("proxy_file.jsonl");
    const std::string mpath = tempPath("proxy_file_model.json");
    writeTrainingJournal(jpath, testProfile());
    const SurrogateModel model =
        trainModel(loadDataset({jpath}), TrainOptions{});
    saveModelFile(model, mpath);
    const SurrogateModel loaded = loadModelFile(mpath);
    EXPECT_EQ(renderModel(loaded), renderModel(model));

    EXPECT_FALSE(tryLoadModelFile(tempPath("nonesuch_model.json")).ok());
}

// --- Pareto frontier -----------------------------------------------

TEST(Pareto, FrontierKeepsOnlyNonDominated)
{
    //   a (2.0, 1.0) and d (3.0, 2.0) are non-dominated;
    //   b is dominated by a; c is dominated by d.
    const std::vector<ParetoPoint> pts = {{0, 2.0, 1.0},
                                          {1, 1.5, 1.5},
                                          {2, 2.5, 3.0},
                                          {3, 3.0, 2.0}};
    const auto frontier = paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 2u);
    EXPECT_EQ(frontier[0], 3u);   // ipc-descending order
    EXPECT_EQ(frontier[1], 0u);
}

TEST(Pareto, DuplicatePointsAllKept)
{
    const std::vector<ParetoPoint> pts = {{0, 1.0, 1.0},
                                          {1, 1.0, 1.0}};
    EXPECT_EQ(paretoFrontier(pts).size(), 2u);
}

TEST(Pareto, FrontierMaskPeelsShells)
{
    // A diagonal chain: each point dominates the next, so shells are
    // singletons and the mask keeps exactly margin + 1 points.
    std::vector<ParetoPoint> pts;
    for (size_t i = 0; i < 6; ++i)
        pts.push_back({i, 6.0 - double(i), 1.0 + double(i)});
    for (unsigned margin = 0; margin < 6; ++margin) {
        const auto mask = frontierMask(pts, margin);
        ASSERT_EQ(mask.size(), pts.size());
        size_t kept = 0;
        for (uint8_t m : mask)
            kept += m;
        EXPECT_EQ(kept, size_t(margin) + 1);
        // Shells peel in order: the first margin+1 points are kept.
        for (size_t i = 0; i < pts.size(); ++i)
            EXPECT_EQ(mask[i] != 0, i <= margin);
    }
}

// --- Surrogate pruning through the sweep engine --------------------

TEST(Pruning, KeepMaskSettlesPrunedPointsWithoutSimulating)
{
    const std::string path = tempPath("proxy_prune.jsonl");
    std::remove(path.c_str());
    std::vector<SweepPoint> points;
    for (size_t i = 0; i < 6; ++i)
        points.push_back({"p" + std::to_string(i), 100 + i});
    const std::vector<uint8_t> keep = {1, 0, 1, 0, 0, 1};

    SweepOptions opts;
    opts.jobs = 2;
    opts.journalPath = path;
    opts.keepMask = &keep;
    size_t executions = 0;
    const SweepSummary summary = runSweep(
        points,
        [&](size_t, uint64_t) {
            ++executions;
            return PointMetrics{{"ipc", 1.0}};
        },
        opts);
    EXPECT_EQ(summary.okCount, 3u);
    EXPECT_EQ(summary.prunedCount, 3u);
    EXPECT_EQ(executions, 3u);
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(summary.outcomes[i].status,
                  keep[i] ? PointStatus::Ok : PointStatus::Pruned);

    // Resume without a mask: journaled pruned points re-queue and
    // run; the ok points are reused untouched.
    SweepOptions resume = opts;
    resume.keepMask = nullptr;
    resume.resume = true;
    executions = 0;
    const SweepSummary resumed = runSweep(
        points,
        [&](size_t, uint64_t) {
            ++executions;
            return PointMetrics{{"ipc", 1.0}};
        },
        resume);
    EXPECT_EQ(resumed.okCount, 6u);
    EXPECT_EQ(resumed.prunedCount, 0u);
    EXPECT_EQ(resumed.reusedCount, 3u);
    EXPECT_EQ(executions, 3u);
}

TEST(Planning, DryRunPlanMirrorsEngineClassification)
{
    const std::string path = tempPath("proxy_plan.jsonl");
    std::remove(path.c_str());
    std::vector<SweepPoint> points;
    for (size_t i = 0; i < 4; ++i)
        points.push_back({"p" + std::to_string(i), 200 + i});

    // Fresh: everything runs (and a keep-mask turns runs into prunes).
    SweepOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;
    const SweepPlan fresh = planSweep(points, opts);
    EXPECT_EQ(fresh.runCount, 4u);
    EXPECT_EQ(fresh.reuseCount, 0u);

    const std::vector<uint8_t> keep = {1, 1, 0, 0};
    SweepOptions masked = opts;
    masked.keepMask = &keep;
    const SweepPlan planned = planSweep(points, masked);
    EXPECT_EQ(planned.runCount, 2u);
    EXPECT_EQ(planned.pruneCount, 2u);
    EXPECT_EQ(planned.points[2].action, PlanAction::Prune);

    // planSweep must not create or touch the journal.
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());

    // After a real sweep, a resumed plan reuses every point.
    runSweep(
        points,
        [](size_t, uint64_t) {
            return PointMetrics{{"ipc", 1.0}};
        },
        opts);
    SweepOptions resume = opts;
    resume.resume = true;
    const SweepPlan after = planSweep(points, resume);
    EXPECT_EQ(after.reuseCount, 4u);
    EXPECT_EQ(after.runCount, 0u);
    for (const PointPlan &p : after.points) {
        EXPECT_EQ(p.action, PlanAction::Reuse);
        EXPECT_EQ(p.journaled, PointStatus::Ok);
        EXPECT_EQ(p.attempts, 1u);
    }
}

} // namespace
