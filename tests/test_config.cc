/**
 * @file
 * Configuration tests: the Table 2 baseline preset, the
 * SimpleScalar-like preset used by the HLS comparison, and the
 * scaling helpers the sweeps rely on.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/generator.hh"
#include "core/profiler.hh"
#include "cpu/config.hh"
#include "util/error.hh"

namespace
{

using namespace ssim::cpu;

/** The InvalidConfig message for @p fn, or "" if nothing was thrown. */
template <typename F>
std::string
configErrorOf(F &&fn)
{
    try {
        fn();
    } catch (const ssim::Error &e) {
        EXPECT_EQ(e.category(), ssim::ErrorCategory::InvalidConfig);
        return e.what();
    }
    return {};
}

TEST(Config, BaselineMatchesTable2)
{
    const CoreConfig cfg = CoreConfig::baseline();
    EXPECT_EQ(cfg.il1.sizeBytes, 8u * 1024);
    EXPECT_EQ(cfg.il1.assoc, 2u);
    EXPECT_EQ(cfg.il1.lineBytes, 32u);
    EXPECT_EQ(cfg.il1.latency, 1u);
    EXPECT_EQ(cfg.dl1.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.dl1.assoc, 4u);
    EXPECT_EQ(cfg.dl1.latency, 2u);
    EXPECT_EQ(cfg.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.l2.lineBytes, 64u);
    EXPECT_EQ(cfg.l2.latency, 20u);
    EXPECT_EQ(cfg.itlb.entries, 32u);
    EXPECT_EQ(cfg.itlb.assoc, 8u);
    EXPECT_EQ(cfg.itlb.pageBytes, 4096u);
    EXPECT_EQ(cfg.memLatency, 150u);
    EXPECT_EQ(cfg.mispredictPenalty, 14u);
    EXPECT_EQ(cfg.ifqSize, 32u);
    EXPECT_EQ(cfg.ruuSize, 128u);
    EXPECT_EQ(cfg.lsqSize, 32u);
    EXPECT_EQ(cfg.decodeWidth, 8u);
    EXPECT_EQ(cfg.issueWidth, 8u);
    EXPECT_EQ(cfg.commitWidth, 8u);
    EXPECT_EQ(cfg.fetchSpeed, 2u);
    EXPECT_EQ(cfg.fu.intAluCount, 8u);
    EXPECT_EQ(cfg.fu.ldStCount, 4u);
    EXPECT_EQ(cfg.fu.fpAluCount, 2u);
    EXPECT_EQ(cfg.fu.intMultCount, 2u);
    EXPECT_EQ(cfg.fu.fpMultCount, 2u);
}

TEST(Config, BaselinePredictorMatchesTable2)
{
    const BpredConfig b = CoreConfig::baseline().bpred;
    EXPECT_EQ(b.kind, BpredKind::Hybrid);
    EXPECT_EQ(b.bimodalEntries, 8192u);
    EXPECT_EQ(b.l1Entries, 8192u);
    EXPECT_EQ(b.l2Entries, 8192u);
    EXPECT_EQ(b.chooserEntries, 8192u);
    EXPECT_TRUE(b.xorPc);
    EXPECT_EQ(b.btbEntries, 512u);
    EXPECT_EQ(b.btbAssoc, 4u);
    EXPECT_EQ(b.rasEntries, 64u);
}

TEST(Config, SimpleScalarPresetIsSmaller)
{
    const CoreConfig ss = CoreConfig::simpleScalarDefault();
    const CoreConfig base = CoreConfig::baseline();
    EXPECT_LT(ss.ruuSize, base.ruuSize);
    EXPECT_LT(ss.decodeWidth, base.decodeWidth);
    EXPECT_LT(ss.ifqSize, base.ifqSize);
    EXPECT_EQ(ss.bpred.kind, BpredKind::Bimodal);
}

TEST(Config, BpredScalingIsSymmetric)
{
    const BpredConfig base = CoreConfig::baseline().bpred;
    const BpredConfig up = base.scaled(2);
    const BpredConfig down = base.scaled(-2);
    EXPECT_EQ(up.bimodalEntries, base.bimodalEntries * 4);
    EXPECT_EQ(down.bimodalEntries, base.bimodalEntries / 4);
    EXPECT_EQ(up.scaled(-2).bimodalEntries, base.bimodalEntries);
}

TEST(Config, BpredScalingAdjustsHistoryBits)
{
    const BpredConfig base = CoreConfig::baseline().bpred;
    const BpredConfig up = base.scaled(1);
    // History length follows log2 of the pattern table.
    EXPECT_EQ(up.historyBits, base.historyBits + 1);
}

TEST(Config, CacheScalingFloorsAtOneSet)
{
    const CacheConfig base{8 * 1024, 2, 32, 1};
    const CacheConfig tiny = base.scaled(1e-6);
    EXPECT_GE(tiny.sizeBytes, tiny.assoc * tiny.lineBytes);
    EXPECT_GE(tiny.numSets(), 1u);
}

TEST(Config, NumSetsArithmetic)
{
    const CacheConfig cfg{16 * 1024, 4, 32, 2};
    EXPECT_EQ(cfg.numSets(), 128u);
}

TEST(ConfigValidation, PresetsAreValid)
{
    EXPECT_NO_THROW(CoreConfig::baseline().validate());
    EXPECT_NO_THROW(CoreConfig::simpleScalarDefault().validate());
}

TEST(ConfigValidation, ZeroWidthsNameTheKnob)
{
    for (const char *knob : {"decodeWidth", "issueWidth",
                             "commitWidth", "ifqSize", "ruuSize",
                             "lsqSize", "fetchSpeed", "memLatency"}) {
        CoreConfig cfg = CoreConfig::baseline();
        if (std::string(knob) == "decodeWidth") cfg.decodeWidth = 0;
        else if (std::string(knob) == "issueWidth") cfg.issueWidth = 0;
        else if (std::string(knob) == "commitWidth") cfg.commitWidth = 0;
        else if (std::string(knob) == "ifqSize") cfg.ifqSize = 0;
        else if (std::string(knob) == "ruuSize") cfg.ruuSize = 0;
        else if (std::string(knob) == "lsqSize") cfg.lsqSize = 0;
        else if (std::string(knob) == "fetchSpeed") cfg.fetchSpeed = 0;
        else cfg.memLatency = 0;
        const std::string msg = configErrorOf([&] { cfg.validate(); });
        ASSERT_FALSE(msg.empty()) << knob << " = 0 was accepted";
        EXPECT_NE(msg.find(knob), std::string::npos) << msg;
    }
}

TEST(ConfigValidation, LsqMayNotExceedRuu)
{
    CoreConfig cfg = CoreConfig::baseline();
    cfg.lsqSize = cfg.ruuSize + 1;
    const std::string msg = configErrorOf([&] { cfg.validate(); });
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("lsqSize"), std::string::npos);
    EXPECT_NE(msg.find("ruuSize"), std::string::npos);
}

TEST(ConfigValidation, CacheMustHoldOneSet)
{
    CoreConfig cfg = CoreConfig::baseline();
    cfg.dl1.sizeBytes = cfg.dl1.assoc * cfg.dl1.lineBytes - 1;
    const std::string msg = configErrorOf([&] { cfg.validate(); });
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("dl1.sizeBytes"), std::string::npos);

    CacheConfig zeroAssoc{8 * 1024, 0, 32, 1};
    EXPECT_FALSE(
        configErrorOf([&] { zeroAssoc.validate("il1"); }).empty());
}

TEST(ConfigValidation, PredictorTablesMustBeNonZero)
{
    CoreConfig cfg = CoreConfig::baseline();
    cfg.bpred.l2Entries = 0;
    EXPECT_FALSE(configErrorOf([&] { cfg.validate(); }).empty());

    cfg = CoreConfig::baseline();
    cfg.bpred.historyBits = 31;
    const std::string msg = configErrorOf([&] { cfg.validate(); });
    EXPECT_NE(msg.find("historyBits"), std::string::npos);

    // Static predictors carry no tables; zero sizes are fine there.
    cfg = CoreConfig::baseline();
    cfg.bpred.kind = BpredKind::Taken;
    cfg.bpred.bimodalEntries = 0;
    cfg.bpred.historyBits = 0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidation, ProfileOptionsRejectBadValues)
{
    ssim::core::ProfileOptions opts;
    EXPECT_NO_THROW(opts.validate());
    opts.order = 9;
    EXPECT_FALSE(configErrorOf([&] { opts.validate(); }).empty());
    opts.order = 1;
    opts.maxInsts = 0;
    EXPECT_FALSE(configErrorOf([&] { opts.validate(); }).empty());
}

TEST(ConfigValidation, GenerationOptionsRejectBadValues)
{
    ssim::core::GenerationOptions opts;
    EXPECT_NO_THROW(opts.validate());
    opts.reductionFactor = 0;
    EXPECT_FALSE(configErrorOf([&] { opts.validate(); }).empty());
    opts.reductionFactor = 10;
    opts.maxDependencyRetries = 0;
    EXPECT_FALSE(configErrorOf([&] { opts.validate(); }).empty());
}

} // namespace
