/**
 * @file
 * Configuration tests: the Table 2 baseline preset, the
 * SimpleScalar-like preset used by the HLS comparison, and the
 * scaling helpers the sweeps rely on.
 */

#include <gtest/gtest.h>

#include "cpu/config.hh"

namespace
{

using namespace ssim::cpu;

TEST(Config, BaselineMatchesTable2)
{
    const CoreConfig cfg = CoreConfig::baseline();
    EXPECT_EQ(cfg.il1.sizeBytes, 8u * 1024);
    EXPECT_EQ(cfg.il1.assoc, 2u);
    EXPECT_EQ(cfg.il1.lineBytes, 32u);
    EXPECT_EQ(cfg.il1.latency, 1u);
    EXPECT_EQ(cfg.dl1.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.dl1.assoc, 4u);
    EXPECT_EQ(cfg.dl1.latency, 2u);
    EXPECT_EQ(cfg.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.l2.lineBytes, 64u);
    EXPECT_EQ(cfg.l2.latency, 20u);
    EXPECT_EQ(cfg.itlb.entries, 32u);
    EXPECT_EQ(cfg.itlb.assoc, 8u);
    EXPECT_EQ(cfg.itlb.pageBytes, 4096u);
    EXPECT_EQ(cfg.memLatency, 150u);
    EXPECT_EQ(cfg.mispredictPenalty, 14u);
    EXPECT_EQ(cfg.ifqSize, 32u);
    EXPECT_EQ(cfg.ruuSize, 128u);
    EXPECT_EQ(cfg.lsqSize, 32u);
    EXPECT_EQ(cfg.decodeWidth, 8u);
    EXPECT_EQ(cfg.issueWidth, 8u);
    EXPECT_EQ(cfg.commitWidth, 8u);
    EXPECT_EQ(cfg.fetchSpeed, 2u);
    EXPECT_EQ(cfg.fu.intAluCount, 8u);
    EXPECT_EQ(cfg.fu.ldStCount, 4u);
    EXPECT_EQ(cfg.fu.fpAluCount, 2u);
    EXPECT_EQ(cfg.fu.intMultCount, 2u);
    EXPECT_EQ(cfg.fu.fpMultCount, 2u);
}

TEST(Config, BaselinePredictorMatchesTable2)
{
    const BpredConfig b = CoreConfig::baseline().bpred;
    EXPECT_EQ(b.kind, BpredKind::Hybrid);
    EXPECT_EQ(b.bimodalEntries, 8192u);
    EXPECT_EQ(b.l1Entries, 8192u);
    EXPECT_EQ(b.l2Entries, 8192u);
    EXPECT_EQ(b.chooserEntries, 8192u);
    EXPECT_TRUE(b.xorPc);
    EXPECT_EQ(b.btbEntries, 512u);
    EXPECT_EQ(b.btbAssoc, 4u);
    EXPECT_EQ(b.rasEntries, 64u);
}

TEST(Config, SimpleScalarPresetIsSmaller)
{
    const CoreConfig ss = CoreConfig::simpleScalarDefault();
    const CoreConfig base = CoreConfig::baseline();
    EXPECT_LT(ss.ruuSize, base.ruuSize);
    EXPECT_LT(ss.decodeWidth, base.decodeWidth);
    EXPECT_LT(ss.ifqSize, base.ifqSize);
    EXPECT_EQ(ss.bpred.kind, BpredKind::Bimodal);
}

TEST(Config, BpredScalingIsSymmetric)
{
    const BpredConfig base = CoreConfig::baseline().bpred;
    const BpredConfig up = base.scaled(2);
    const BpredConfig down = base.scaled(-2);
    EXPECT_EQ(up.bimodalEntries, base.bimodalEntries * 4);
    EXPECT_EQ(down.bimodalEntries, base.bimodalEntries / 4);
    EXPECT_EQ(up.scaled(-2).bimodalEntries, base.bimodalEntries);
}

TEST(Config, BpredScalingAdjustsHistoryBits)
{
    const BpredConfig base = CoreConfig::baseline().bpred;
    const BpredConfig up = base.scaled(1);
    // History length follows log2 of the pattern table.
    EXPECT_EQ(up.historyBits, base.historyBits + 1);
}

TEST(Config, CacheScalingFloorsAtOneSet)
{
    const CacheConfig base{8 * 1024, 2, 32, 1};
    const CacheConfig tiny = base.scaled(1e-6);
    EXPECT_GE(tiny.sizeBytes, tiny.assoc * tiny.lineBytes);
    EXPECT_GE(tiny.numSets(), 1u);
}

TEST(Config, NumSetsArithmetic)
{
    const CacheConfig cfg{16 * 1024, 4, 32, 2};
    EXPECT_EQ(cfg.numSets(), 128u);
}

} // namespace
