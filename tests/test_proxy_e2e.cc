/**
 * @file
 * End-to-end acceptance gate for the surrogate-pruned design-space
 * flow over the exact Section 4.6 study: the 1,792-point
 * RUU x LSQ x width space is fully swept once (journaled), a
 * surrogate is trained from that journal, and the surrogate's
 * predicted-frontier keep-mask must then reproduce the study at a
 * fraction of the cost:
 *
 *  - the pruned sweep simulates at most 1/10 of the points;
 *  - mean absolute relative IPC error on the retained points < 2%;
 *  - >= 90% of the *true* Pareto frontier survives the pruning;
 *  - training twice from the same journal and seed yields
 *    byte-identical model files.
 *
 * This is the claim the proxy subsystem exists to make — that a
 * journal of one full sweep buys cheap, trustworthy exploration —
 * so it is enforced by ctest rather than documented.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/generator.hh"
#include "core/profiler.hh"
#include "core/serialize.hh"
#include "core/statsim.hh"
#include "experiments/sweep.hh"
#include "proxy/features.hh"
#include "proxy/model.hh"
#include "proxy/model_io.hh"
#include "proxy/pareto.hh"
#include "util/journal.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::experiments;
using namespace ssim::proxy;

/** The paper's Section 4.6 grid: 28 (ruu, lsq) pairs x 4^3 widths. */
std::vector<cpu::CoreConfig>
designSpace()
{
    const std::vector<uint32_t> ruus = {8, 16, 32, 48, 64, 96, 128};
    const std::vector<uint32_t> lsqs = {4, 8, 16, 24, 32, 48, 64};
    const std::vector<uint32_t> widths = {2, 4, 6, 8};
    std::vector<cpu::CoreConfig> space;
    for (size_t ri = 0; ri < ruus.size(); ++ri)
        for (size_t li = 0; li <= ri; ++li)
            for (uint32_t dw : widths)
                for (uint32_t iw : widths)
                    for (uint32_t cw : widths) {
                        cpu::CoreConfig cfg =
                            cpu::CoreConfig::baseline();
                        cfg.ruuSize = ruus[ri];
                        cfg.lsqSize = lsqs[li];
                        cfg.decodeWidth = dw;
                        cfg.issueWidth = iw;
                        cfg.commitWidth = cw;
                        space.push_back(cfg);
                    }
    return space;
}

PointMetrics
toPointMetrics(const std::vector<util::JournalMetric> &metrics)
{
    PointMetrics out;
    out.reserve(metrics.size());
    for (const auto &m : metrics)
        out.emplace_back(m.name, m.value);
    return out;
}

TEST(ProxyE2e, SurrogatePrunedSweepReproducesSec46Study)
{
    const std::vector<cpu::CoreConfig> space = designSpace();
    ASSERT_EQ(space.size(), 1792u);

    // One modest profile + synthetic trace serves the whole space
    // (exactly the bench_sec46 setup, shrunk for test time).
    core::ProfileOptions popts;
    popts.maxInsts = 200000;
    const core::StatisticalProfile profile = core::buildProfile(
        workloads::build("zip", 1), cpu::CoreConfig::baseline(),
        popts);
    core::GenerationOptions gopts;
    gopts.reductionFactor =
        std::max<uint64_t>(2, profile.instructions / 50000);
    const core::SyntheticTrace trace =
        core::generateSyntheticTrace(profile, gopts);

    std::vector<SweepPoint> points;
    points.reserve(space.size());
    for (size_t i = 0; i < space.size(); ++i)
        points.push_back({"pt" + std::to_string(i),
                          configHash(space[i]),
                          toPointMetrics(
                              configFeatureMetrics(space[i]))});

    SweepOptions sopts;
    sopts.jobs = 0;   // one worker per hardware thread
    sopts.profileChecksum = core::profileDigest(profile);
    sopts.baseConfigHash = configHash(cpu::CoreConfig::baseline());
    sopts.profileFeatures =
        toPointMetrics(profileFeatureMetrics(profile));

    const auto simulate = [&](size_t p, uint64_t) {
        const core::SimResult r =
            core::simulateSyntheticTrace(trace, space[p]);
        return PointMetrics{{"epc", r.epc}, {"ipc", r.ipc}};
    };

    // --- Phase 1: the full (expensive) reference sweep. ------------
    const std::string fullJournal =
        testing::TempDir() + "/sec46_full.jsonl";
    std::remove(fullJournal.c_str());
    SweepOptions fullOpts = sopts;
    fullOpts.journalPath = fullJournal;
    const SweepSummary full = runSweep(points, simulate, fullOpts);
    ASSERT_EQ(full.okCount, space.size());

    std::vector<double> trueIpc(space.size()), trueEpc(space.size());
    for (size_t p = 0; p < space.size(); ++p) {
        trueEpc[p] = full.outcomes[p].metrics[0].second;
        trueIpc[p] = full.outcomes[p].metrics[1].second;
    }

    // --- Phase 2: train the surrogate from the journal. ------------
    const Dataset ds = loadDataset({fullJournal});
    ASSERT_EQ(ds.rows.size(), space.size());

    // Near-interpolation regime: the frontier of this space is packed
    // (adjacent shells ~0.3% apart in IPC), so the booster runs until
    // the training residual is far below the shell spacing. CV is
    // skipped here — the CLI contract test covers it — because five
    // extra fits at this depth would dominate the test's budget.
    TrainOptions topts;
    topts.kind = ModelKind::Gbm;
    topts.rounds = 40000;
    topts.learningRate = 0.2;
    topts.folds = 0;
    topts.seed = 7;
    const SurrogateModel model = trainModel(ds, topts);
    const SurrogateModel retrained = trainModel(ds, topts);
    EXPECT_EQ(renderModel(model), renderModel(retrained))
        << "same journal + seed must give a byte-identical model";

    // --- Phase 3: predict, keep the frontier + margin. -------------
    const TargetModel *ipcT = model.findTarget("ipc");
    const TargetModel *epcT = model.findTarget("epc");
    ASSERT_NE(ipcT, nullptr);
    ASSERT_NE(epcT, nullptr);
    std::vector<ParetoPoint> predicted(space.size());
    for (size_t p = 0; p < space.size(); ++p) {
        const auto x = model.featuresFor(space[p]);
        predicted[p] = {p, model.predict(*ipcT, x),
                        model.predict(*epcT, x)};
    }
    // Widest margin that stays within the 1/10 simulation budget —
    // the selection rule a user of --frontier-margin would apply.
    const size_t budget = space.size() / 10;
    const auto countKept = [](const std::vector<uint8_t> &mask) {
        size_t c = 0;
        for (uint8_t k : mask)
            c += k;
        return c;
    };
    unsigned margin = 0;
    std::vector<uint8_t> keep = frontierMask(predicted, 0);
    size_t kept = countKept(keep);
    ASSERT_LE(kept, budget)
        << "even the bare predicted frontier exceeds the budget";
    for (;;) {
        std::vector<uint8_t> wider =
            frontierMask(predicted, margin + 1);
        const size_t widerKept = countKept(wider);
        if (widerKept > budget)
            break;
        keep = std::move(wider);
        kept = widerKept;
        ++margin;
    }
    EXPECT_GE(margin, 1u)
        << "no room for any safety margin within the budget";
    ASSERT_GT(kept, 0u);
    EXPECT_LE(kept, budget)
        << "pruned sweep must simulate at most 1/10 of the space";

    // Accuracy on the retained points: mean |rel err| of IPC < 2%.
    double relErrSum = 0.0;
    for (size_t p = 0; p < space.size(); ++p) {
        if (!keep[p])
            continue;
        const double pred = predicted[p].ipc;
        relErrSum += std::fabs(pred - trueIpc[p]) / trueIpc[p];
    }
    const double mape = relErrSum / double(kept);
    EXPECT_LT(mape, 0.02)
        << "surrogate IPC error too high on the retained points";

    // Coverage: >= 90% of the true frontier must be retained.
    std::vector<ParetoPoint> truth(space.size());
    for (size_t p = 0; p < space.size(); ++p)
        truth[p] = {p, trueIpc[p], trueEpc[p]};
    const std::vector<size_t> trueFrontier = paretoFrontier(truth);
    ASSERT_FALSE(trueFrontier.empty());
    size_t covered = 0;
    for (size_t p : trueFrontier)
        covered += keep[p];
    EXPECT_GE(double(covered),
              0.9 * double(trueFrontier.size()))
        << "pruning lost more than 10% of the true Pareto frontier ("
        << covered << "/" << trueFrontier.size() << " retained)";

    // --- Phase 4: the pruned sweep itself. -------------------------
    const std::string prunedJournal =
        testing::TempDir() + "/sec46_pruned.jsonl";
    std::remove(prunedJournal.c_str());
    SweepOptions prunedOpts = sopts;
    prunedOpts.journalPath = prunedJournal;
    prunedOpts.keepMask = &keep;
    const SweepSummary pruned =
        runSweep(points, simulate, prunedOpts);
    EXPECT_EQ(pruned.executedCount, kept);
    EXPECT_EQ(pruned.prunedCount, space.size() - kept);

    // Retained points reproduce the reference sweep exactly (same
    // trace, same deterministic simulator), and every pruned point
    // is journaled as such for a later maskless resume.
    for (size_t p = 0; p < space.size(); ++p) {
        if (!keep[p]) {
            EXPECT_EQ(pruned.outcomes[p].status, PointStatus::Pruned);
            continue;
        }
        ASSERT_EQ(pruned.outcomes[p].status, PointStatus::Ok);
        EXPECT_DOUBLE_EQ(pruned.outcomes[p].metrics[1].second,
                         trueIpc[p]);
        EXPECT_DOUBLE_EQ(pruned.outcomes[p].metrics[0].second,
                         trueEpc[p]);
    }
    auto loaded = util::Journal::load(prunedJournal);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    size_t prunedRecords = 0;
    for (const auto &rec : loaded.value())
        prunedRecords +=
            rec.event == "done" && rec.status == "pruned";
    EXPECT_EQ(prunedRecords, space.size() - kept);
}

} // namespace
