/**
 * @file
 * End-to-end statistical simulation tests: the full
 * profile -> generate -> simulate flow against the execution-driven
 * reference. These encode the paper's top-level claims as testable
 * bounds (absolute accuracy, the k >= 1 improvement, delayed-update
 * improvement, relative accuracy, convergence).
 */

#include <gtest/gtest.h>

#include "core/statsim.hh"
#include "util/statistics.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ssim;
using namespace ssim::core;

cpu::CoreConfig
baseline()
{
    return cpu::CoreConfig::baseline();
}

/** Shared, size-capped fixtures so the suite stays fast. */
struct Fixture
{
    isa::Program prog;
    SimResult eds;

    explicit Fixture(const char *name, uint64_t maxInsts = 600000)
        : prog(workloads::build(name, 1))
    {
        cpu::EdsOptions opts;
        opts.maxInsts = maxInsts;
        eds = runExecutionDriven(prog, baseline(), opts);
    }
};

StatSimOptions
makeOptions(int order, uint64_t reduction, uint64_t seed = 1,
            uint64_t maxInsts = 600000)
{
    StatSimOptions opts;
    opts.profile.order = order;
    opts.profile.maxInsts = maxInsts;
    opts.generation.reductionFactor = reduction;
    opts.generation.seed = seed;
    return opts;
}

TEST(StatSim, IpcWithinPaperBallpark)
{
    // Paper: 6.6% average, 14.2% max for IPC. Give individual
    // workloads headroom; the bench harness reports exact numbers.
    for (const char *name : {"zip", "route", "perl"}) {
        Fixture fx(name);
        const SimResult ss = runStatisticalSimulation(
            fx.prog, baseline(), makeOptions(1, 10));
        EXPECT_LT(absoluteError(ss.ipc, fx.eds.ipc), 0.25) << name;
    }
}

TEST(StatSim, EpcTracksCloserThanIpc)
{
    Fixture fx("place");
    const SimResult ss = runStatisticalSimulation(
        fx.prog, baseline(), makeOptions(1, 10));
    EXPECT_LT(absoluteError(ss.epc, fx.eds.epc), 0.15);
    EXPECT_GT(ss.epc, 5.0);
    EXPECT_LT(ss.epc, 80.0);
}

TEST(StatSim, FirstOrderBeatsZeroOrderUnderPerfectStructures)
{
    // Figure 4's claim, evaluated as the paper does: perfect caches
    // and perfect branch prediction isolate the control/dependency
    // modeling.
    cpu::CoreConfig cfg = baseline();
    cfg.perfectCaches = true;
    cfg.perfectBpred = true;

    double err0 = 0.0, err1 = 0.0;
    int count = 0;
    for (const char *name : {"chess", "cc", "route"}) {
        const isa::Program prog = workloads::build(name, 1);
        cpu::EdsOptions eopts;
        eopts.maxInsts = 400000;
        const SimResult eds = runExecutionDriven(prog, cfg, eopts);

        for (int k : {0, 1}) {
            StatSimOptions opts = makeOptions(k, 10, 1, 400000);
            opts.profile.perfectCaches = true;
            opts.profile.perfectBpred = true;
            const SimResult ss =
                runStatisticalSimulation(prog, cfg, opts);
            (k == 0 ? err0 : err1) +=
                absoluteError(ss.ipc, eds.ipc);
        }
        ++count;
    }
    err0 /= count;
    err1 /= count;
    EXPECT_LT(err1, err0 + 0.02);
    EXPECT_LT(err1, 0.15);   // k=1 is accurate in absolute terms
}

TEST(StatSim, SyntheticTraceIsShortButPredictive)
{
    Fixture fx("raytrace");
    StatSimOptions opts = makeOptions(1, 50);
    const StatisticalProfile profile =
        buildProfile(fx.prog, baseline(), opts.profile);
    const SyntheticTrace trace =
        generateSyntheticTrace(profile, opts.generation);
    // Two orders of magnitude smaller...
    EXPECT_LT(trace.size() * 40, profile.instructions);
    // ...yet predictive.
    const SimResult ss = simulateSyntheticTrace(trace, baseline());
    EXPECT_LT(absoluteError(ss.ipc, fx.eds.ipc), 0.25);
}

TEST(StatSim, RelativeAccuracyAcrossWindowSizes)
{
    // Section 4.5: trends matter more than absolutes. Compare the
    // predicted IPC ratio across window sizes with the reference.
    const isa::Program prog = workloads::build("zip", 1);
    cpu::CoreConfig smallCfg = baseline();
    smallCfg.ruuSize = 16;
    smallCfg.lsqSize = 8;
    const cpu::CoreConfig largeCfg = baseline();

    cpu::EdsOptions eopts;
    eopts.maxInsts = 600000;
    const double edsSmall =
        runExecutionDriven(prog, smallCfg, eopts).ipc;
    const double edsLarge =
        runExecutionDriven(prog, largeCfg, eopts).ipc;

    // R=5: a longer synthetic trace keeps sampling noise well below
    // the 10% relative-accuracy bound being asserted.
    const StatSimOptions opts = makeOptions(1, 5);
    const double ssSmall =
        runStatisticalSimulation(prog, smallCfg, opts).ipc;
    const double ssLarge =
        runStatisticalSimulation(prog, largeCfg, opts).ipc;

    EXPECT_LT(relativeError(ssSmall, ssLarge, edsSmall, edsLarge),
              0.10);
    // The ordering must be preserved.
    EXPECT_GT(ssLarge, ssSmall);
}

TEST(StatSim, SeedVariationIsSmall)
{
    // Section 4.1: the CoV across seeds shrinks with trace length;
    // for a healthy trace it is a few percent.
    const isa::Program prog = workloads::build("parse", 1);
    const StatisticalProfile profile = buildProfile(
        prog, baseline(), ProfileOptions{});
    RunningStats ipc;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        GenerationOptions gopts;
        gopts.reductionFactor = 20;
        gopts.seed = seed;
        const SyntheticTrace trace =
            generateSyntheticTrace(profile, gopts);
        ipc.add(simulateSyntheticTrace(trace, baseline()).ipc);
    }
    EXPECT_LT(ipc.cov(), 0.06);
}

TEST(StatSim, DeterministicEndToEnd)
{
    const isa::Program prog = workloads::build("route", 1);
    const StatSimOptions opts = makeOptions(1, 20, 3, 300000);
    const SimResult a =
        runStatisticalSimulation(prog, baseline(), opts);
    const SimResult b =
        runStatisticalSimulation(prog, baseline(), opts);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_DOUBLE_EQ(a.epc, b.epc);
}

TEST(StatSim, ScoreRunComputesDerivedMetrics)
{
    Fixture fx("zip", 100000);
    EXPECT_DOUBLE_EQ(fx.eds.ipc, fx.eds.stats.ipc());
    EXPECT_DOUBLE_EQ(fx.eds.edp,
                     fx.eds.epc / (fx.eds.ipc * fx.eds.ipc));
    EXPECT_DOUBLE_EQ(fx.eds.epc, fx.eds.power.total);
}

TEST(StatSim, MispredictRatePropagatesToSynthetic)
{
    Fixture fx("cc", 400000);
    const SimResult ss = runStatisticalSimulation(
        fx.prog, baseline(), makeOptions(1, 10, 1, 400000));
    EXPECT_NEAR(ss.stats.mispredictsPerKilo(),
                fx.eds.stats.mispredictsPerKilo(),
                0.2 * fx.eds.stats.mispredictsPerKilo() + 1.0);
}

} // namespace
