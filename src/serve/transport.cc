#include "transport.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/fault.hh"
#include "util/drain.hh"
#include "util/logging.hh"

namespace ssim::serve
{

namespace
{

/** A client that streams lines this long is broken or hostile. */
constexpr size_t MaxLineBytes = 1 << 20;

/**
 * Serialized line writer over one fd. Workers complete requests
 * concurrently; the mutex keeps each response line whole.
 *
 * A write error (EPIPE/ECONNRESET from a client that disconnected
 * mid-response) marks the writer *dead* rather than touching the fd:
 * later writes become silent drops, the fd stays owned so close()
 * still releases it, and the event loop sweeps dead clients at the
 * end of each round. One broken client must never take down the
 * listener — or leak its descriptor into the poll set.
 */
class LineWriter
{
  public:
    explicit LineWriter(int fd) : fd_(fd) {}

    void
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ < 0 || dead_.load(std::memory_order_relaxed))
            return;
        // Fault site "transport.write": `drop` is the peer vanishing
        // before the response lands; `fail` is the same through a
        // chosen errno; `short` forces the partial-send retry loop.
        size_t cap = std::string::npos;
        const fault::Outcome fault = fault::point("transport.write");
        if (fault.action == fault::Action::Drop ||
            fault.action == fault::Action::FailErrno) {
            dead_.store(true, std::memory_order_relaxed);
            return;
        }
        if (fault.action == fault::Action::ShortIo && fault.bytes > 0)
            cap = fault.bytes;
        std::string out = line;
        out += '\n';
        size_t off = 0;
        while (off < out.size()) {
            // MSG_NOSIGNAL on sockets; plain write elsewhere (the
            // transport ignores SIGPIPE so a vanished stdout reader
            // cannot kill the daemon).
            const size_t chunk = std::min(cap, out.size() - off);
            const ssize_t n =
                socket_ ? ::send(fd_, out.data() + off, chunk,
                                 MSG_NOSIGNAL)
                        : ::write(fd_, out.data() + off, chunk);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                // Client is gone; drop the rest and let the event
                // loop close and reap this connection.
                dead_.store(true, std::memory_order_relaxed);
                return;
            }
            off += static_cast<size_t>(n);
        }
    }

    void
    markSocket()
    {
        socket_ = true;
    }

    /** True once a write failed; the connection should be reaped. */
    bool
    dead() const
    {
        return dead_.load(std::memory_order_relaxed);
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ >= 0 && socket_)
            ::close(fd_);
        fd_ = -1;
    }

  private:
    std::mutex mu_;
    int fd_;
    bool socket_ = false;
    std::atomic<bool> dead_{false};
};

/**
 * Incremental newline splitter with the 1 MiB cap. An oversized line
 * is reported once (the caller answers with a parse error) and its
 * remainder discarded up to the next newline.
 */
class LineFeeder
{
  public:
    template <typename OnLine, typename OnOversize>
    void
    feed(const char *data, size_t n, const OnLine &onLine,
         const OnOversize &onOversize)
    {
        for (size_t i = 0; i < n; ++i) {
            const char c = data[i];
            if (c == '\n') {
                if (skipping_)
                    skipping_ = false;
                else if (!buf_.empty())
                    onLine(buf_);
                buf_.clear();
                continue;
            }
            if (skipping_)
                continue;
            buf_ += c;
            if (buf_.size() > MaxLineBytes) {
                buf_.clear();
                skipping_ = true;
                onOversize();
            }
        }
    }

    /** EOF: whatever is buffered is the final (unterminated) line. */
    template <typename OnLine>
    void
    finish(const OnLine &onLine)
    {
        if (!skipping_ && !buf_.empty())
            onLine(buf_);
        buf_.clear();
        skipping_ = false;
    }

  private:
    std::string buf_;
    bool skipping_ = false;
};

std::string
oversizeResponse()
{
    return renderErrorResponse("", ErrorCategory::ParseError,
                               "request line exceeds 1 MiB");
}

/** Scoped SIGPIPE ignore: a closed peer must not kill the daemon. */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore() { old_ = std::signal(SIGPIPE, SIG_IGN); }
    ~ScopedSigpipeIgnore() { std::signal(SIGPIPE, old_); }

  private:
    void (*old_)(int) = SIG_DFL;
};

} // namespace

int
runStdioTransport(Server &server, const TransportOptions &opts)
{
    util::ScopedDrainHandlers guard(opts.handleSignals);
    ScopedSigpipeIgnore sigpipe;
    auto out = std::make_shared<LineWriter>(STDOUT_FILENO);
    const Respond respond = [out](const std::string &line) {
        out->writeLine(line);
    };

    LineFeeder feeder;
    bool signalled = false;
    bool eof = false;
    while (!eof) {
        if (!signalled && util::drainRequested()) {
            // Keep reading after the signal: requests already in the
            // pipe (or sent during the drain) are answered
            // `shutting-down` instead of vanishing. The loop ends
            // when the admitted work has drained.
            signalled = true;
            server.beginDrain();
        }
        if (signalled && server.drainComplete())
            break;
        struct pollfd pfd = {STDIN_FILENO, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 50);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        char chunk[65536];
        // Fault site "transport.read" (stdio flavour): `short` caps
        // the chunk; `fail` with EINTR retries, anything else is a
        // broken stdin, which ends the session through the normal
        // drain below.
        size_t want = sizeof chunk;
        const fault::Outcome rf = fault::point("transport.read");
        if (rf.action == fault::Action::FailErrno) {
            if (rf.err == EINTR)
                continue;
            break;
        }
        if (rf.action == fault::Action::ShortIo && rf.bytes > 0)
            want = std::min<size_t>(want, rf.bytes);
        const ssize_t n = ::read(STDIN_FILENO, chunk, want);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        feeder.feed(
            chunk, static_cast<size_t>(n),
            [&](const std::string &line) {
                server.submitLine(line, respond);
            },
            [&] { respond(oversizeResponse()); });
    }
    if (eof) {
        feeder.finish([&](const std::string &line) {
            server.submitLine(line, respond);
        });
    }
    server.beginDrain();
    if (!server.awaitDrain())
        warn("serve: drain budget exhausted; remaining requests "
             "were force-failed");
    server.stop();
    return signalled ? ServeDrainedExitCode : 0;
}

namespace
{

struct SocketClient
{
    int fd = -1;
    LineFeeder feeder;
    std::shared_ptr<LineWriter> out;
};

} // namespace

int
runUnixSocketTransport(Server &server, const std::string &path,
                       const TransportOptions &opts)
{
    util::ScopedDrainHandlers guard(opts.handleSignals);
    ScopedSigpipeIgnore sigpipe;

    struct sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        throw Error(ErrorCategory::InvalidArgument,
                    "socket path too long: " + path);
    }
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0) {
        throw Error(ErrorCategory::IoError,
                    std::string("cannot create socket: ") +
                        std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(lfd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(lfd, 64) != 0) {
        const int err = errno;
        ::close(lfd);
        throw Error(ErrorCategory::IoError,
                    "cannot bind/listen on " + path + ": " +
                        std::strerror(err),
                    {path, 0});
    }
    inform("serve: listening on " + path);

    std::vector<std::unique_ptr<SocketClient>> clients;
    bool signalled = false;
    for (;;) {
        if (!signalled && util::drainRequested()) {
            signalled = true;
            server.beginDrain();
        }
        if (signalled && server.drainComplete())
            break;
        std::vector<struct pollfd> pfds;
        pfds.push_back({lfd, POLLIN, 0});
        for (const auto &c : clients)
            pfds.push_back({c->fd, POLLIN, 0});
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0)
            continue;
        // pfds[1 + i] mirrors clients[i] as polled; snapshot that
        // count before accepting so a client admitted this iteration
        // (which has no pfd yet) is first read on the next poll.
        const size_t polled = clients.size();
        if ((pfds[0].revents & POLLIN) != 0) {
            // Fault site "transport.accept": a transient accept
            // failure (EMFILE storm) skips this round; the listener
            // survives and the connection is retried by poll.
            if (fault::point("transport.accept").action !=
                fault::Action::FailErrno) {
                const int cfd = ::accept(lfd, nullptr, nullptr);
                if (cfd >= 0) {
                    auto client = std::make_unique<SocketClient>();
                    client->fd = cfd;
                    client->out = std::make_shared<LineWriter>(cfd);
                    client->out->markSocket();
                    clients.push_back(std::move(client));
                }
            }
        }
        // Iterate by index and drop dead clients afterwards so the
        // pfds/clients mapping stays aligned.
        std::vector<size_t> dead;
        for (size_t i = 0; i < polled; ++i) {
            if ((pfds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) ==
                0)
                continue;
            SocketClient &client = *clients[i];
            char chunk[65536];
            // Fault site "transport.read": `short` forces tiny reads
            // (a request line arriving one byte per round must still
            // assemble); `fail` with EINTR retries, anything else
            // drops the client; `drop` is a mid-request disconnect.
            size_t want = sizeof chunk;
            const fault::Outcome rf = fault::point("transport.read");
            if (rf.action == fault::Action::FailErrno) {
                if (rf.err == EINTR)
                    continue;
                dead.push_back(i);
                continue;
            }
            if (rf.action == fault::Action::Drop) {
                dead.push_back(i);
                continue;
            }
            if (rf.action == fault::Action::ShortIo && rf.bytes > 0)
                want = std::min<size_t>(want, rf.bytes);
            const ssize_t n = ::read(client.fd, chunk, want);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                dead.push_back(i);
                continue;
            }
            const auto out = client.out;
            client.feeder.feed(
                chunk, static_cast<size_t>(n),
                [&](const std::string &line) {
                    server.submitLine(line,
                                      [out](const std::string &l) {
                                          out->writeLine(l);
                                      });
                },
                [&] { out->writeLine(oversizeResponse()); });
        }
        // A writer that hit EPIPE/ECONNRESET mid-response marked
        // itself dead; reap those connections here so their fds leave
        // the poll set (and are actually closed).
        for (size_t i = 0; i < polled; ++i) {
            if (clients[i]->out->dead() &&
                std::find(dead.begin(), dead.end(), i) == dead.end())
                dead.push_back(i);
        }
        std::sort(dead.begin(), dead.end());
        for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
            clients[*it]->out->close();
            clients.erase(clients.begin() +
                          static_cast<ptrdiff_t>(*it));
        }
    }
    ::close(lfd);
    server.beginDrain();
    if (!server.awaitDrain())
        warn("serve: drain budget exhausted; remaining requests "
             "were force-failed");
    server.stop();
    for (auto &client : clients)
        client->out->close();
    ::unlink(path.c_str());
    return signalled ? ServeDrainedExitCode : 0;
}

} // namespace ssim::serve
