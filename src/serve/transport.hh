/**
 * @file
 * Transports for `ssim serve`: the loops that move request lines
 * between clients and the Server engine.
 *
 *  - stdio: newline-delimited JSON on stdin/stdout — the pipe-
 *    friendly mode the tests drive through a fifo. EOF on stdin
 *    starts a graceful drain and exits 0; SIGINT/SIGTERM starts the
 *    same drain and exits ServeDrainedExitCode (10), with requests
 *    that arrive during the drain answered `shutting-down`.
 *  - Unix domain socket: accepts multiple concurrent clients, each
 *    speaking the same line protocol; responses go back to the
 *    client that asked. A disconnected client's outstanding
 *    responses are dropped (the engine still completes them). Exits
 *    only on signal.
 *
 * Both transports poll(2) with a short timeout so the util/drain
 * flag set by a signal handler is noticed promptly; neither trusts a
 * client: lines are capped at 1 MiB and an oversized line is
 * answered with a typed parse error instead of buffering forever.
 */

#ifndef SSIM_SERVE_TRANSPORT_HH
#define SSIM_SERVE_TRANSPORT_HH

#include <string>

#include "serve/server.hh"

namespace ssim::serve
{

/** Transport knobs shared by both modes. */
struct TransportOptions
{
    /** Install SIGINT/SIGTERM drain handlers for the loop. */
    bool handleSignals = true;
};

/**
 * Serve stdin/stdout until EOF or a drain signal. Returns the CLI
 * exit code: 0 for an EOF-initiated drain, ServeDrainedExitCode for
 * a signal-initiated one. The server must already be start()ed; the
 * transport runs its drain and stop.
 */
int runStdioTransport(Server &server, const TransportOptions &opts);

/**
 * Serve a Unix domain socket at @p path (unlinked and re-created)
 * until a drain signal. Same exit-code contract as stdio.
 * @throws ssim::Error (IoError) when the socket cannot be created.
 */
int runUnixSocketTransport(Server &server, const std::string &path,
                           const TransportOptions &opts);

} // namespace ssim::serve

#endif // SSIM_SERVE_TRANSPORT_HH
