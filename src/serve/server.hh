/**
 * @file
 * The `ssim serve` engine: a long-lived prediction service with
 * bounded admission, per-request deadlines, crash isolation, and
 * graceful drain — the server-side counterpart of the sweep engine's
 * crash tolerance, built from the same ingredients (poll-wait worker
 * pool, a watchdog thread, the shared util/drain stop discipline).
 *
 * Request lifecycle:
 *
 *   accept -> admit | shed(overloaded) | reject(shutting-down)
 *   admit  -> dispatch -> ok | error | deadline-exceeded
 *                            | worker-crashed
 *   drain  -> in-flight finishes within the budget; stragglers get
 *             deadline-exceeded; new requests get shutting-down
 *
 * Robustness properties, each of which is tested:
 *
 *  - Bounded admission: the queue has a fixed capacity; a request
 *    that would exceed it is answered immediately with `overloaded`
 *    plus a retry_after_ms hint derived from an EWMA of recent
 *    service latency and the current backlog. Load is shed at the
 *    door, never absorbed into unbounded memory.
 *  - Deadlines: the watchdog answers an expired request with
 *    `deadline-exceeded` and *recycles* its worker — a replacement
 *    thread is spawned immediately so capacity never degrades, and
 *    the stuck thread discards its result and exits when the
 *    prediction finally returns. Exactly one response per request,
 *    always.
 *  - Crash isolation: SSIM_SERVE_CRASH_ON=<id,id,...> makes the
 *    worker that picks up a listed request die (the moral equivalent
 *    of a segfault confined to one thread). The request is answered
 *    `worker-crashed`; the watchdog reaps the dead worker and
 *    restarts it after an exponential backoff (reset by the next
 *    successful completion). One bad request costs one response,
 *    never the daemon.
 *  - Graceful drain: beginDrain() (the transports call it on
 *    SIGINT/SIGTERM or EOF) stops admission; awaitDrain() lets
 *    admitted work finish within the drain budget and force-fails
 *    whatever remains. The CLI maps a signal-initiated drain to exit
 *    code 10, the same resumable code an interrupted sweep uses.
 *
 * Observability: the engine owns an obs::Registry with serve.*
 * counters (requests by outcome, sheds, crashes, restarts), live
 * gauges (queue depth, in-flight), and a service-latency histogram;
 * `metrics` requests and the CLI's final --stats-json snapshot both
 * read from it.
 */

#ifndef SSIM_SERVE_SERVER_HH
#define SSIM_SERVE_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/export_trace.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "serve/protocol.hh"
#include "util/error.hh"

namespace ssim::serve
{

/** Knobs of one daemon instance. */
struct ServeOptions
{
    /** Worker threads; 0 means one per hardware thread. */
    unsigned workers = 2;

    /** Admission queue capacity; beyond it requests are shed. */
    size_t queueCapacity = 64;

    /** Deadline for requests that do not carry one; 0 = none. */
    double defaultDeadlineSeconds = 0.0;

    /** How long awaitDrain() lets admitted work finish. */
    double drainBudgetSeconds = 5.0;

    /** First crash-restart delay; doubles per consecutive crash. */
    double restartBackoffSeconds = 0.05;

    /** Upper bound of the exponential restart backoff. */
    double restartBackoffCapSeconds = 2.0;

    /**
     * Optional Chrome-trace sink (the same exporter the sweep engine
     * uses): tid 0 is the admission track (admit / shed / reject /
     * parse-error instants), each worker gets its own track with one
     * complete slice per request spanning admission to response
     * (args: id, outcome, queue_ms, predict_ms), and typed outcomes
     * (deadline-exceeded, worker-crashed) add instant markers. Must
     * outlive the Server.
     */
    obs::TraceLog *trace = nullptr;

    /** @throws ssim::Error (InvalidConfig) on unusable knobs. */
    void validate() const;
};

/** CLI exit code for a signal-initiated drain (shared with sweep). */
constexpr int ServeDrainedExitCode = 10;

/**
 * The prediction behind a predict request. Throw ssim::Error for a
 * typed failure (unknown workload, invalid config); any other
 * exception is reported as an internal error. Must be callable
 * concurrently from multiple workers.
 */
using PredictFn = std::function<Metrics(const PredictRequest &)>;

/**
 * The ensemble behind a batch request: all items, answered in item
 * order, with per-item outcomes (an item failure does not fail its
 * neighbours). @p jobs is the client's requested thread count; the
 * implementation may clamp it. Like PredictFn, must be callable
 * concurrently from multiple workers. Optional: a server without one
 * answers batches by looping the PredictFn over the items on the
 * dispatching worker.
 */
using BatchFn = std::function<std::vector<BatchItemResult>(
    const std::vector<PredictRequest> &items, unsigned jobs)>;

/**
 * Completion callback: receives the rendered response line (no
 * trailing newline) exactly once per submitted request, from an
 * arbitrary thread. Must be safe to call after the submitting
 * transport moved on (a disconnected client's callback should
 * quietly drop the line).
 */
using Respond = std::function<void(const std::string &line)>;

class Server
{
  public:
    /** @p manifest is stamped into metrics responses; may be null. */
    Server(PredictFn fn, const ServeOptions &opts,
           const obs::RunManifest *manifest = nullptr);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Install the batch ensemble path. Call before start(). */
    void setBatchFn(BatchFn fn);

    /** Spawn the worker pool and the watchdog. */
    void start();

    /**
     * Submit one raw request line. Malformed lines, health/metrics
     * requests, sheds, and drain rejections are answered
     * synchronously; predict requests are answered from a worker.
     */
    void submitLine(const std::string &line, Respond respond);

    /** Submit an already-parsed request (the typed entry point). */
    void submit(Request req, Respond respond);

    /** Stop admission; queued + running requests keep going. */
    void beginDrain();

    /** True once no admitted request is queued or running. */
    bool drainComplete();

    /**
     * Wait for admitted work to finish, up to the drain budget, then
     * answer any stragglers with deadline-exceeded. Returns true when
     * the drain finished inside the budget.
     */
    bool awaitDrain();

    /** Join every thread (after a drain). Idempotent. */
    void stop();

    /** Queue/worker/outcome counters for health responses. */
    HealthInfo health() const;

    /** Registry snapshot (serve.* instruments). */
    obs::Snapshot metricsSnapshot() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ssim::serve

#endif // SSIM_SERVE_SERVER_HH
