#include "predict.hh"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "experiments/harness.hh"
#include "experiments/sweep.hh"
#include "workloads/workload.hh"

namespace ssim::serve
{

namespace
{

namespace exp = ssim::experiments;

/**
 * Benchmark programs keyed by (workload, scale). Guarded the same
 * way the profile cache is: one mutex, builds serialized on first
 * request. Values are shared_ptr so a build result outlives any
 * rehash while a concurrent request still holds it.
 */
class BenchmarkCache
{
  public:
    std::shared_ptr<const exp::Benchmark>
    get(const std::string &workload, uint64_t scale)
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto key = std::make_pair(workload, scale);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        // workloads::build throws UnknownWorkload for a bad name —
        // exactly the typed error the wire protocol forwards.
        auto bench = std::make_shared<exp::Benchmark>(
            exp::Benchmark{workload, "",
                           workloads::build(workload, scale)});
        cache_.emplace(key, bench);
        return bench;
    }

  private:
    std::mutex mu_;
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<const exp::Benchmark>>
        cache_;
};

} // namespace

PredictFn
makeStatSimPredictFn()
{
    auto cache = std::make_shared<BenchmarkCache>();
    return [cache](const PredictRequest &req) -> Metrics {
        // The request's config object rides through the same grid
        // layer the sweep CLI uses: every key is validated against
        // sweepGridKeys() and every value against the knob's domain,
        // so a bad request gets the identical InvalidArgument /
        // InvalidConfig diagnostics a bad --grid would.
        std::vector<exp::GridAxis> axes;
        axes.reserve(req.config.size());
        for (const auto &[key, value] : req.config)
            axes.push_back({key, {value}});
        cpu::CoreConfig base = cpu::CoreConfig::baseline();
        base.perfectCaches = req.perfectCaches;
        base.perfectBpred = req.perfectBpred;
        const std::vector<exp::ConfigPoint> grid =
            exp::expandConfigGrid(base, axes);
        const cpu::CoreConfig cfg =
            grid.empty() ? base : grid.front().cfg;
        cfg.validate();

        exp::StatSimKnobs knobs;
        knobs.seed = req.seed;
        knobs.reductionFactor = req.reduction;
        knobs.maxInsts = req.maxInsts;
        knobs.perfectCaches = req.perfectCaches;
        knobs.perfectBpred = req.perfectBpred;

        const std::shared_ptr<const exp::Benchmark> bench =
            cache->get(req.workload, req.workloadScale);
        const core::SimResult res =
            exp::runStatSim(*bench, cfg, knobs);
        return Metrics{
            {"ipc", res.ipc},
            {"epc", res.epc},
            {"edp", res.edp},
            {"cycles", static_cast<double>(res.stats.cycles)},
        };
    };
}

} // namespace ssim::serve
