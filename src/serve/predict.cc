#include "predict.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/ensemble.hh"
#include "core/gen_model.hh"
#include "experiments/harness.hh"
#include "experiments/sweep.hh"
#include "workloads/workload.hh"

namespace ssim::serve
{

namespace
{

namespace exp = ssim::experiments;

/**
 * Benchmark programs keyed by (workload, scale). Guarded the same
 * way the profile cache is: one mutex, builds serialized on first
 * request. Values are shared_ptr so a build result outlives any
 * rehash while a concurrent request still holds it.
 */
class BenchmarkCache
{
  public:
    std::shared_ptr<const exp::Benchmark>
    get(const std::string &workload, uint64_t scale)
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto key = std::make_pair(workload, scale);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        // workloads::build throws UnknownWorkload for a bad name —
        // exactly the typed error the wire protocol forwards.
        auto bench = std::make_shared<exp::Benchmark>(
            exp::Benchmark{workload, "",
                           workloads::build(workload, scale)});
        cache_.emplace(key, bench);
        return bench;
    }

  private:
    std::mutex mu_;
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<const exp::Benchmark>>
        cache_;
};

/** A request resolved to concrete simulation inputs. */
struct ResolvedRequest
{
    cpu::CoreConfig cfg;
    exp::StatSimKnobs knobs;
    std::shared_ptr<const exp::Benchmark> bench;
};

/**
 * Validate and resolve one predict payload: config grid-key
 * overrides, knobs, benchmark program. Throws the same typed errors
 * a bad --grid or workload name gets from the sweep CLI.
 */
ResolvedRequest
resolve(BenchmarkCache &cache, const PredictRequest &req)
{
    // The request's config object rides through the same grid
    // layer the sweep CLI uses: every key is validated against
    // sweepGridKeys() and every value against the knob's domain,
    // so a bad request gets the identical InvalidArgument /
    // InvalidConfig diagnostics a bad --grid would.
    std::vector<exp::GridAxis> axes;
    axes.reserve(req.config.size());
    for (const auto &[key, value] : req.config)
        axes.push_back({key, {value}});
    cpu::CoreConfig base = cpu::CoreConfig::baseline();
    base.perfectCaches = req.perfectCaches;
    base.perfectBpred = req.perfectBpred;
    const std::vector<exp::ConfigPoint> grid =
        exp::expandConfigGrid(base, axes);

    ResolvedRequest out;
    out.cfg = grid.empty() ? base : grid.front().cfg;
    out.cfg.validate();

    out.knobs.seed = req.seed;
    out.knobs.reductionFactor = req.reduction;
    out.knobs.maxInsts = req.maxInsts;
    out.knobs.perfectCaches = req.perfectCaches;
    out.knobs.perfectBpred = req.perfectBpred;

    out.bench = cache.get(req.workload, req.workloadScale);
    return out;
}

Metrics
metricsOf(const core::SimResult &res)
{
    return Metrics{
        {"ipc", res.ipc},
        {"epc", res.epc},
        {"edp", res.edp},
        {"cycles", static_cast<double>(res.stats.cycles)},
    };
}

} // namespace

PredictFn
makeStatSimPredictFn()
{
    auto cache = std::make_shared<BenchmarkCache>();
    return [cache](const PredictRequest &req) -> Metrics {
        const ResolvedRequest r = resolve(*cache, req);
        cpu::CoreConfig cfg = r.cfg;
        const core::SimResult res =
            exp::runStatSim(*r.bench, cfg, r.knobs);
        return metricsOf(res);
    };
}

BatchFn
makeStatSimBatchFn()
{
    auto cache = std::make_shared<BenchmarkCache>();
    return [cache](const std::vector<PredictRequest> &items,
                   unsigned jobs) -> std::vector<BatchItemResult> {
        std::vector<BatchItemResult> out(items.size());

        // Resolution phase: profiles and generation models come out
        // of their shared caches here, so items that agree on the
        // profile-affecting knobs reuse one profiling pass and one
        // model build no matter how the ensemble schedules them.
        std::vector<core::EnsembleJob> ensemble;
        std::vector<size_t> ensembleIndex;   // ensemble -> item slot
        for (size_t i = 0; i < items.size(); ++i) {
            out[i].seed = items[i].seed;
            try {
                const ResolvedRequest r = resolve(*cache, items[i]);
                cpu::CoreConfig cfg = r.cfg;
                cfg.perfectCaches = r.knobs.perfectCaches;
                cfg.perfectBpred = r.knobs.perfectBpred;
                const auto profile =
                    exp::profileFor(*r.bench, cfg, r.knobs);
                core::GenerationOptions gopts;
                gopts.reductionFactor = r.knobs.reductionFactor;
                gopts.seed = r.knobs.seed;
                const auto model =
                    core::GenModelCache::instance().get(profile,
                                                        gopts);
                ensemble.push_back({model, cfg, r.knobs.seed});
                ensembleIndex.push_back(i);
            } catch (const Error &e) {
                out[i].category = e.category();
                out[i].message = e.message();
            }
        }

        core::EnsembleOptions eopts;
        eopts.jobs = std::max(
            1u, std::min(jobs, std::max(
                1u, std::thread::hardware_concurrency())));
        const std::vector<Expected<core::SimResult>> results =
            core::runEnsembleExpected(ensemble, eopts);

        for (size_t j = 0; j < results.size(); ++j) {
            BatchItemResult &r = out[ensembleIndex[j]];
            if (results[j].ok()) {
                r.ok = true;
                r.metrics = metricsOf(results[j].value());
            } else {
                r.category = results[j].error().category();
                r.message = results[j].error().message();
            }
        }
        return out;
    };
}

} // namespace ssim::serve
