/**
 * @file
 * The production PredictFn behind `ssim serve`: one statistical
 * simulation per request, on top of the experiment harness's
 * thread-safe profile cache.
 *
 * This is where the daemon earns its keep: profileFor() means the
 * expensive profiling pass for a (workload, profiling-config) pair
 * runs once per daemon lifetime and every later request against it
 * pays only generation + simulation — the paper's profile-once,
 * evaluate-many economics, packaged as a service. Workload programs
 * are cached the same way (keyed by name and scale), so a request is
 * never charged for rebuilding its benchmark.
 */

#ifndef SSIM_SERVE_PREDICT_HH
#define SSIM_SERVE_PREDICT_HH

#include "serve/server.hh"

namespace ssim::serve
{

/**
 * A PredictFn that runs the real statistical simulation. Applies the
 * request's `config` grid-key overrides to the baseline core
 * configuration (unknown keys and invalid values throw the same
 * typed errors the sweep CLI reports), builds or reuses the cached
 * profile, and returns ipc/epc/edp/cycles. Deterministic in the
 * request seed: a replayed request reproduces byte-identical
 * metrics.
 */
PredictFn makeStatSimPredictFn();

} // namespace ssim::serve

#endif // SSIM_SERVE_PREDICT_HH
