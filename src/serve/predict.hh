/**
 * @file
 * The production PredictFn behind `ssim serve`: one statistical
 * simulation per request, on top of the experiment harness's
 * thread-safe profile cache.
 *
 * This is where the daemon earns its keep: profileFor() means the
 * expensive profiling pass for a (workload, profiling-config) pair
 * runs once per daemon lifetime and every later request against it
 * pays only generation + simulation — the paper's profile-once,
 * evaluate-many economics, packaged as a service. Workload programs
 * are cached the same way (keyed by name and scale), so a request is
 * never charged for rebuilding its benchmark.
 */

#ifndef SSIM_SERVE_PREDICT_HH
#define SSIM_SERVE_PREDICT_HH

#include "serve/server.hh"

namespace ssim::serve
{

/**
 * A PredictFn that runs the real statistical simulation. Applies the
 * request's `config` grid-key overrides to the baseline core
 * configuration (unknown keys and invalid values throw the same
 * typed errors the sweep CLI reports), builds or reuses the cached
 * profile, and returns ipc/epc/edp/cycles. Deterministic in the
 * request seed: a replayed request reproduces byte-identical
 * metrics.
 */
PredictFn makeStatSimPredictFn();

/**
 * The batch counterpart: all items of a batch request run through
 * core::runEnsembleExpected over shared GenModel/profile state —
 * items that differ only in seed (or core knobs that do not affect
 * the profile) share one model build via the content-keyed
 * GenModelCache, and the walk+simulate work spreads across the
 * requested thread count (clamped to the hardware). Per-item results
 * are bit-identical to the same items sent as individual predict
 * requests. Item failures (unknown workload, invalid config) come
 * back in that item's result slot; the batch itself still succeeds.
 */
BatchFn makeStatSimBatchFn();

} // namespace ssim::serve

#endif // SSIM_SERVE_PREDICT_HH
