/**
 * @file
 * Wire protocol of `ssim serve`: newline-delimited JSON requests and
 * responses, one object per line, in the same no-whitespace dialect
 * the journal and the exporters speak (util/json_reader,
 * util/json_writer).
 *
 * Requests:
 *
 *   {"id":"r1","type":"predict","workload":"route",
 *    "config":{"ruu":32,"width":4},"seed":7,"reduction":50,
 *    "max_insts":120000,"deadline_ms":2000}
 *   {"id":"b1","type":"batch","jobs":4,"requests":[
 *    {"workload":"zip","seed":1},{"workload":"zip","seed":2}]}
 *   {"id":"h1","type":"health"}
 *   {"id":"m1","type":"metrics"}
 *
 * A batch request carries an array of predict payloads (same fields
 * as a predict request minus id/type/deadline_ms/stall_ms) and is
 * admitted, deadlined and answered as ONE request: a single response
 * line with a per-item `results` array, item order preserved. `jobs`
 * asks the ensemble engine for that many worker threads; seeds and
 * configurations that share a generation model share one build
 * (core::GenModelCache), which is the point of batching.
 *
 * `config` keys are the sweep grid keys (ruu, lsq, width, ifq,
 * scale-bpred, scale-cache); unknown keys are rejected with the same
 * typed InvalidArgument the sweep CLI gives. `stall_ms` is a
 * documented fault-injection field (the worker sleeps before
 * predicting) used by the deadline tests; it plays the role
 * SSIM_SWEEP_STALL_POINT plays for the sweep engine.
 *
 * Responses (exactly one per request, in completion order):
 *
 *   {"id":"r1","ok":true,"seed":7,"metrics":{"ipc":...,...},
 *    "wall_ms":12.5}
 *   {"id":"r1","ok":false,"error":"overloaded",
 *    "message":"...","retry_after_ms":40}
 *
 * The `error` field is always an errorCategoryName() string, so a
 * client branches on the same category vocabulary the CLI exit codes
 * and the sweep journal use. `metrics` values are rendered with
 * %.17g: a replayed request with the same seed produces a
 * byte-identical metrics object.
 */

#ifndef SSIM_SERVE_PROTOCOL_HH
#define SSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "util/error.hh"

namespace ssim::serve
{

/** The request kinds the daemon answers. */
enum class RequestType : uint8_t
{
    Predict,   ///< run one statistical simulation
    Batch,     ///< run an ensemble of statistical simulations
    Health,    ///< liveness + queue state, answered inline
    Metrics,   ///< full obs registry snapshot, answered inline
};

/** Named metric values of one prediction ("ipc", "epc", ...). */
using Metrics = std::vector<std::pair<std::string, double>>;

/** Payload of a predict request. */
struct PredictRequest
{
    std::string workload;
    /** Grid-key overrides applied to the baseline configuration. */
    std::vector<std::pair<std::string, double>> config;
    bool perfectCaches = false;
    bool perfectBpred = false;
    uint64_t seed = 1;
    uint64_t reduction = 20;
    uint64_t maxInsts = 0;        ///< profiling cap; 0 = completion
    uint64_t workloadScale = 1;
    double stallSeconds = 0.0;    ///< fault injection (stall_ms)
};

/** Hard cap on batch size: bounded admission, item-count edition. */
constexpr size_t MaxBatchItems = 256;

/** One parsed request line. */
struct Request
{
    std::string id;
    RequestType type = RequestType::Predict;
    double deadlineSeconds = 0.0;   ///< 0 = server default
    PredictRequest predict;

    /** Batch payload (type == Batch): the items, in wire order. */
    std::vector<PredictRequest> batch;
    /** Requested ensemble threads for the batch (wire field "jobs"). */
    unsigned batchJobs = 1;
};

/**
 * Parse one request line.
 * @throws nothing; malformed input comes back as a failed Expected
 *         carrying a ParseError (or InvalidArgument for a bad type).
 */
Expected<Request> parseRequestLine(const std::string &line);

/** Success response with the prediction metrics. */
std::string renderOkResponse(const std::string &id, uint64_t seed,
                             const Metrics &metrics, double wallMs);

/** Outcome of one batch item (results array element). */
struct BatchItemResult
{
    bool ok = false;
    uint64_t seed = 0;
    Metrics metrics;                ///< valid when ok
    ErrorCategory category = ErrorCategory::Internal;
    std::string message;            ///< valid when !ok
};

/**
 * Batch response: one line, `results` in item order. Item failures
 * are reported per element with the same error-category vocabulary
 * as a failed predict; the batch itself is still `ok`.
 */
std::string renderBatchResponse(const std::string &id,
                                const std::vector<BatchItemResult> &results,
                                double wallMs);

/**
 * Typed failure response. @p retryAfterMs > 0 adds the backoff hint
 * clients should honour before retrying (set for Overloaded).
 */
std::string renderErrorResponse(const std::string &id,
                                ErrorCategory category,
                                const std::string &message,
                                uint64_t retryAfterMs = 0);

/** Queue/worker state reported by a health response. */
struct HealthInfo
{
    bool draining = false;
    unsigned workers = 0;
    uint64_t queueDepth = 0;
    uint64_t inflight = 0;
    uint64_t served = 0;
    uint64_t shed = 0;
    uint64_t deadlineExceeded = 0;
    uint64_t crashed = 0;
};

std::string renderHealthResponse(const std::string &id,
                                 const HealthInfo &info);

/** Metrics response: the ssim-stats document under a "stats" key. */
std::string renderMetricsResponse(const std::string &id,
                                  const obs::Snapshot &snap,
                                  const obs::RunManifest &manifest);

} // namespace ssim::serve

#endif // SSIM_SERVE_PROTOCOL_HH
