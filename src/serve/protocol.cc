#include "protocol.hh"

#include "obs/export_json.hh"
#include "util/json_reader.hh"
#include "util/json_writer.hh"

namespace ssim::serve
{

namespace
{

using util::json::appendBool;
using util::json::appendDouble;
using util::json::appendEscaped;
using util::json::appendField;
using util::json::appendKey;
using util::json::appendU64;
using util::json::doubleToken;
using util::json::LineScanner;

RequestType
requestTypeFromName(const std::string &name, const LineScanner &p)
{
    if (name == "predict")
        return RequestType::Predict;
    if (name == "batch")
        return RequestType::Batch;
    if (name == "health")
        return RequestType::Health;
    if (name == "metrics")
        return RequestType::Metrics;
    throw p.fail("unknown request type '" + name +
                 "' (expected predict, batch, health, or metrics)");
}

/** Milliseconds field -> seconds, rejecting negatives and NaN. */
double
secondsFromMs(double ms, const char *key, const LineScanner &p)
{
    if (!(ms >= 0.0))
        throw p.fail(std::string(key) + " must be >= 0");
    return ms / 1000.0;
}

/**
 * One predict-payload field (shared between a top-level predict
 * request and a batch item). Returns false when @p key is not a
 * predict field.
 */
bool
parsePredictField(LineScanner &p, const std::string &key,
                  PredictRequest &out)
{
    if (key == "workload") {
        out.workload = p.parseString();
    } else if (key == "config") {
        if (!p.consume('{'))
            throw p.fail("config must be an object");
        bool cFirst = true;
        while (!p.consume('}')) {
            if (!cFirst && !p.consume(','))
                throw p.fail("expected ',' in config");
            cFirst = false;
            const std::string knob = p.parseString();
            if (!p.consume(':'))
                throw p.fail("expected ':' in config");
            out.config.emplace_back(knob, p.parseDouble());
        }
    } else if (key == "perfect_caches") {
        out.perfectCaches = p.parseBool();
    } else if (key == "perfect_bpred") {
        out.perfectBpred = p.parseBool();
    } else if (key == "seed") {
        out.seed = p.parseU64();
    } else if (key == "reduction") {
        out.reduction = p.parseU64();
    } else if (key == "max_insts") {
        out.maxInsts = p.parseU64();
    } else if (key == "workload_scale") {
        out.workloadScale = p.parseU64();
    } else {
        return false;
    }
    return true;
}

/** One element of a batch request's `requests` array. */
PredictRequest
parseBatchItem(LineScanner &p)
{
    PredictRequest item;
    if (!p.consume('{'))
        throw p.fail("batch item must be an object");
    bool first = true;
    while (!p.consume('}')) {
        if (!first && !p.consume(','))
            throw p.fail("expected ',' between batch item fields");
        first = false;
        const std::string key = p.parseString();
        if (!p.consume(':'))
            throw p.fail("expected ':' after key '" + key + "'");
        if (!parsePredictField(p, key, item)) {
            throw p.fail("unknown batch item field '" + key +
                         "' (per-item id/type/deadline_ms/stall_ms "
                         "are not supported; they belong to the "
                         "batch request)");
        }
    }
    if (item.workload.empty())
        throw p.fail("batch item needs a \"workload\"");
    return item;
}

} // namespace

Expected<Request>
parseRequestLine(const std::string &line)
{
    return tryInvoke([&]() -> Request {
        LineScanner p(line, "<request>", 1);
        Request req;
        if (!p.consume('{'))
            throw p.fail("expected a JSON object");
        bool first = true;
        while (!p.consume('}')) {
            if (!first && !p.consume(','))
                throw p.fail("expected ',' between fields");
            first = false;
            const std::string key = p.parseString();
            if (!p.consume(':'))
                throw p.fail("expected ':' after key '" + key + "'");
            if (key == "id") {
                req.id = p.parseString();
            } else if (key == "type") {
                req.type = requestTypeFromName(p.parseString(), p);
            } else if (key == "deadline_ms") {
                req.deadlineSeconds = secondsFromMs(
                    p.parseDouble(), "deadline_ms", p);
            } else if (key == "stall_ms") {
                req.predict.stallSeconds = secondsFromMs(
                    p.parseDouble(), "stall_ms", p);
            } else if (key == "jobs") {
                const uint64_t jobs = p.parseU64();
                if (jobs == 0 || jobs > 64)
                    throw p.fail("jobs must be in 1..64");
                req.batchJobs = static_cast<unsigned>(jobs);
            } else if (key == "requests") {
                if (!p.consume('['))
                    throw p.fail("requests must be an array");
                bool rFirst = true;
                while (!p.consume(']')) {
                    if (!rFirst && !p.consume(','))
                        throw p.fail("expected ',' between batch "
                                     "items");
                    rFirst = false;
                    if (req.batch.size() >= MaxBatchItems) {
                        throw p.fail(
                            "batch exceeds " +
                            std::to_string(MaxBatchItems) +
                            " items");
                    }
                    req.batch.push_back(parseBatchItem(p));
                }
            } else if (parsePredictField(p, key, req.predict)) {
                // handled
            } else {
                throw p.fail("unknown field '" + key + "'");
            }
        }
        if (!p.atEnd())
            throw p.fail("trailing characters after request");
        if (req.id.empty())
            throw p.fail("request needs a non-empty \"id\"");
        if (req.type == RequestType::Predict &&
            req.predict.workload.empty())
            throw p.fail("predict request needs a \"workload\"");
        if (req.type == RequestType::Batch && req.batch.empty())
            throw p.fail("batch request needs a non-empty "
                         "\"requests\" array");
        return req;
    });
}

std::string
renderOkResponse(const std::string &id, uint64_t seed,
                 const Metrics &metrics, double wallMs)
{
    std::string out = "{";
    appendField(out, "id", id);
    appendBool(out, "ok", true);
    appendU64(out, "seed", seed);
    // %.17g, no whitespace: the metrics object is byte-identical
    // across replays of the same seeded request. wall_ms rides
    // outside it — an observation, not a result.
    appendKey(out, "metrics");
    out += '{';
    for (const auto &[name, value] : metrics) {
        appendKey(out, name.c_str());
        out += doubleToken(value);
    }
    out += '}';
    appendDouble(out, "wall_ms", wallMs);
    out += '}';
    return out;
}

std::string
renderBatchResponse(const std::string &id,
                    const std::vector<BatchItemResult> &results,
                    double wallMs)
{
    std::string out = "{";
    appendField(out, "id", id);
    appendBool(out, "ok", true);
    appendKey(out, "results");
    out += '[';
    bool first = true;
    for (const BatchItemResult &r : results) {
        if (!first)
            out += ',';
        first = false;
        out += '{';
        appendBool(out, "ok", r.ok);
        if (r.ok) {
            appendU64(out, "seed", r.seed);
            appendKey(out, "metrics");
            out += '{';
            for (const auto &[name, value] : r.metrics) {
                appendKey(out, name.c_str());
                out += doubleToken(value);
            }
            out += '}';
        } else {
            appendField(out, "error", errorCategoryName(r.category));
            if (!r.message.empty())
                appendField(out, "message", r.message);
        }
        out += '}';
    }
    out += ']';
    appendDouble(out, "wall_ms", wallMs);
    out += '}';
    return out;
}

std::string
renderErrorResponse(const std::string &id, ErrorCategory category,
                    const std::string &message, uint64_t retryAfterMs)
{
    std::string out = "{";
    appendField(out, "id", id);
    appendBool(out, "ok", false);
    appendField(out, "error", errorCategoryName(category));
    if (!message.empty())
        appendField(out, "message", message);
    if (retryAfterMs > 0)
        appendU64(out, "retry_after_ms", retryAfterMs);
    out += '}';
    return out;
}

std::string
renderHealthResponse(const std::string &id, const HealthInfo &info)
{
    std::string out = "{";
    appendField(out, "id", id);
    appendBool(out, "ok", true);
    appendField(out, "status", info.draining ? "draining" : "serving");
    appendU64(out, "workers", info.workers);
    appendU64(out, "queue_depth", info.queueDepth);
    appendU64(out, "inflight", info.inflight);
    appendU64(out, "served", info.served);
    appendU64(out, "shed", info.shed);
    appendU64(out, "deadline_exceeded", info.deadlineExceeded);
    appendU64(out, "crashed", info.crashed);
    out += '}';
    return out;
}

std::string
renderMetricsResponse(const std::string &id, const obs::Snapshot &snap,
                      const obs::RunManifest &manifest)
{
    std::string out = "{";
    appendField(out, "id", id);
    appendBool(out, "ok", true);
    appendKey(out, "stats");
    out += obs::renderStatsJson(snap, manifest);
    out += '}';
    return out;
}

} // namespace ssim::serve
