#include "server.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "util/logging.hh"

namespace ssim::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

std::chrono::duration<double>
secondsOf(double s)
{
    return std::chrono::duration<double>(s);
}

} // namespace

void
ServeOptions::validate() const
{
    if (queueCapacity == 0)
        throw Error(ErrorCategory::InvalidConfig,
                    "serve queueCapacity must be >= 1");
    if (defaultDeadlineSeconds < 0)
        throw Error(ErrorCategory::InvalidConfig,
                    "serve defaultDeadlineSeconds must be >= 0");
    if (drainBudgetSeconds <= 0)
        throw Error(ErrorCategory::InvalidConfig,
                    "serve drainBudgetSeconds must be > 0");
    if (restartBackoffSeconds <= 0 || restartBackoffCapSeconds <= 0 ||
        restartBackoffCapSeconds < restartBackoffSeconds) {
        throw Error(ErrorCategory::InvalidConfig,
                    "serve restart backoff must be positive and the "
                    "cap must be >= the base");
    }
}

struct Server::Impl
{
    /** One admitted-but-not-started request. */
    struct Job
    {
        Request req;
        Respond respond;
        Clock::time_point enqueued;
        Clock::time_point deadline;
        bool hasDeadline = false;
    };

    /** One dispatched request, shared by its worker + the watchdog. */
    struct ActiveRequest
    {
        Request req;
        Respond respond;
        Clock::time_point enqueued;
        Clock::time_point started;   ///< dispatch to a worker
        Clock::time_point deadline;
        bool hasDeadline = false;
        bool settled = false;     ///< guarded by mu_
        bool abandoned = false;   ///< deadline fired; worker recycled
    };

    /**
     * One worker thread. `exited` flips just before the thread
     * returns, which is the watchdog's reap signal (a returned thread
     * joins without blocking).
     */
    struct Worker
    {
        unsigned id = 0;
        std::thread thread;
        std::atomic<bool> exited{false};
        std::shared_ptr<ActiveRequest> current;   ///< guarded by mu_
        bool recycled = false;   ///< moved to zombies_; mu_ guarded
    };

    Impl(PredictFn fn, const ServeOptions &opts,
         const obs::RunManifest *manifest)
        : fn_(std::move(fn)), opts_(opts),
          legacyPlan_(fault::FaultPlan::fromServeEnv())
    {
        // The legacy SSIM_SERVE_CRASH_ON hook latches here, at Server
        // construction, exactly as the old ad-hoc parser did (tests
        // unset the variable right after start() and expect listed
        // requests still to crash); it now rides the fault registry
        // as a subsystem-local compatibility plan behind the
        // "serve.request" site.
        if (manifest)
            manifest_ = *manifest;
        if (opts_.trace) {
            opts_.trace->processName(0, "ssim serve");
            opts_.trace->threadName(0, "admission");
        }
        if (opts_.workers == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            opts_.workers = hw > 0 ? hw : 1;
        }
        // serve.* instruments. Counts live in plain members guarded
        // by mu_ and are exported through computed gauges that read
        // them lock-free; metricsSnapshot() holds mu_ around
        // snapshot(), which is what makes those reads (and the
        // latency histogram copy) race-free. The one lock-order rule:
        // mu_ before the registry mutex, never the reverse.
        registry_.gaugeFn("serve.queue.depth", [this] {
            return static_cast<double>(queue_.size());
        });
        registry_.gaugeFn("serve.queue.capacity", [this] {
            return static_cast<double>(opts_.queueCapacity);
        });
        registry_.gaugeFn("serve.inflight", [this] {
            return static_cast<double>(inflight_.size());
        });
        registry_.gaugeFn("serve.workers.live", [this] {
            return static_cast<double>(liveWorkers_);
        });
        registry_.gaugeFn("serve.requests.admitted",
                          [this] { return double(admitted_); });
        registry_.gaugeFn("serve.requests.ok",
                          [this] { return double(okCount_); });
        registry_.gaugeFn("serve.requests.error",
                          [this] { return double(errorCount_); });
        registry_.gaugeFn("serve.requests.shed",
                          [this] { return double(shed_); });
        registry_.gaugeFn("serve.requests.deadline_exceeded",
                          [this] { return double(deadline_); });
        registry_.gaugeFn("serve.requests.worker_crashed",
                          [this] { return double(crashed_); });
        registry_.gaugeFn("serve.requests.rejected_draining",
                          [this] { return double(rejectedDraining_); });
        registry_.gaugeFn("serve.requests.parse_error",
                          [this] { return double(parseErrors_); });
        registry_.gaugeFn("serve.worker.restarts",
                          [this] { return double(restartsDone_); });
        latency_ = &registry_.histogram(
            "serve.latency_ms",
            {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
    }

    // --- lifecycle ------------------------------------------------

    void
    start()
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (started_)
            return;
        started_ = true;
        for (unsigned i = 0; i < opts_.workers; ++i)
            spawnWorkerLocked();
        watchdog_ = std::thread([this] { watchdogLoop(); });
    }

    void
    beginDrain()
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!draining_)
            traceInstant("drain-begin", 0);
        draining_ = true;
        cv_.notify_all();
    }

    bool
    drainComplete()
    {
        std::lock_guard<std::mutex> lk(mu_);
        return draining_ && queue_.empty() && inflight_.empty();
    }

    bool
    awaitDrain()
    {
        const auto budgetEnd =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                secondsOf(opts_.drainBudgetSeconds));
        std::vector<std::pair<Respond, std::string>> toSend;
        bool clean = false;
        {
            std::unique_lock<std::mutex> lk(mu_);
            draining_ = true;
            cv_.notify_all();
            while (Clock::now() < budgetEnd) {
                if (queue_.empty() && inflight_.empty()) {
                    clean = true;
                    break;
                }
                cv_.wait_for(lk, std::chrono::milliseconds(20));
            }
            if (!clean) {
                // Budget exhausted. Work that never started gets
                // shutting-down (nothing ran); work mid-prediction
                // gets deadline-exceeded (the drain budget is its
                // final deadline) and its worker is abandoned.
                const auto now = Clock::now();
                traceInstant("drain-expired", 0);
                for (Job &job : queue_) {
                    ++rejectedDraining_;
                    traceRequestSlice(job.req.id, "shutting-down",
                                      0, job.enqueued, now, now);
                    toSend.emplace_back(
                        std::move(job.respond),
                        renderErrorResponse(
                            job.req.id, ErrorCategory::ShuttingDown,
                            "service stopped before the request "
                            "started"));
                }
                queue_.clear();
                for (auto &active : inflight_) {
                    if (active->settled)
                        continue;
                    active->settled = true;
                    active->abandoned = true;
                    ++deadline_;
                    traceRequestSlice(active->req.id,
                                      "deadline-exceeded", 0,
                                      active->enqueued,
                                      active->started, now);
                    toSend.emplace_back(
                        active->respond,
                        renderErrorResponse(
                            active->req.id,
                            ErrorCategory::DeadlineExceeded,
                            "drain budget exhausted"));
                }
                inflight_.clear();
            }
        }
        for (auto &[respond, line] : toSend)
            if (respond)
                respond(line);
        return clean;
    }

    void
    stop()
    {
        std::vector<std::pair<Respond, std::string>> toSend;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!started_ || stopping_)
                return;
            stopping_ = true;
            // Defensive exactly-once: a stop without a full drain
            // still answers whatever never started.
            for (Job &job : queue_) {
                ++rejectedDraining_;
                toSend.emplace_back(
                    std::move(job.respond),
                    renderErrorResponse(
                        job.req.id, ErrorCategory::ShuttingDown,
                        "service stopped before the request "
                        "started"));
            }
            queue_.clear();
            cv_.notify_all();
        }
        for (auto &[respond, line] : toSend)
            if (respond)
                respond(line);
        if (watchdog_.joinable())
            watchdog_.join();
        // The watchdog has exited; workers_/zombies_ are now only
        // touched here. A thread stuck in a prediction is waited
        // for — its request was already answered, but its stack must
        // unwind before the engine is torn down.
        std::vector<std::shared_ptr<Worker>> all;
        {
            std::lock_guard<std::mutex> lk(mu_);
            all = workers_;
            all.insert(all.end(), zombies_.begin(), zombies_.end());
            workers_.clear();
            zombies_.clear();
        }
        for (auto &w : all)
            if (w->thread.joinable())
                w->thread.join();
    }

    // --- admission ------------------------------------------------

    void
    submit(Request req, Respond respond)
    {
        if (req.type == RequestType::Health) {
            respond(renderHealthResponse(req.id, health()));
            return;
        }
        if (req.type == RequestType::Metrics) {
            respond(renderMetricsResponse(req.id, metricsSnapshot(),
                                          manifest_));
            return;
        }
        std::string reject;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (draining_ || stopping_) {
                ++rejectedDraining_;
                traceInstant("reject", 0,
                             {obs::TraceArg::str("id", req.id)});
                reject = renderErrorResponse(
                    req.id, ErrorCategory::ShuttingDown,
                    "service is draining; request not admitted");
            } else if (queue_.size() >= opts_.queueCapacity) {
                ++shed_;
                traceInstant(
                    "shed", 0,
                    {obs::TraceArg::str("id", req.id),
                     obs::TraceArg::u64("queue_depth",
                                        queue_.size())});
                reject = renderErrorResponse(
                    req.id, ErrorCategory::Overloaded,
                    "admission queue full (" +
                        std::to_string(opts_.queueCapacity) +
                        " requests)",
                    retryHintMsLocked());
            } else {
                Job job;
                job.req = std::move(req);
                job.respond = std::move(respond);
                job.enqueued = Clock::now();
                const double dl = job.req.deadlineSeconds > 0
                                      ? job.req.deadlineSeconds
                                      : opts_.defaultDeadlineSeconds;
                if (dl > 0) {
                    job.hasDeadline = true;
                    job.deadline =
                        job.enqueued +
                        std::chrono::duration_cast<Clock::duration>(
                            secondsOf(dl));
                }
                queue_.push_back(std::move(job));
                ++admitted_;
                traceInstant(
                    "admit", 0,
                    {obs::TraceArg::str("id", queue_.back().req.id),
                     obs::TraceArg::u64("queue_depth",
                                        queue_.size())});
                cv_.notify_one();
                return;
            }
        }
        respond(reject);
    }

    void
    submitLine(const std::string &line, Respond respond)
    {
        Expected<Request> req = parseRequestLine(line);
        if (!req) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++parseErrors_;
            }
            traceInstant("parse-error", 0);
            // The id is unknown when the line does not parse; an
            // empty id tells the client "one of yours, unidentified".
            respond(renderErrorResponse("", req.error().category(),
                                        req.error().message()));
            return;
        }
        submit(std::move(req.value()), std::move(respond));
    }

    // --- introspection --------------------------------------------

    HealthInfo
    health() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        HealthInfo info;
        info.draining = draining_ || stopping_;
        info.workers = liveWorkers_;
        info.queueDepth = queue_.size();
        info.inflight = inflight_.size();
        info.served = okCount_ + errorCount_ + deadline_ + crashed_;
        info.shed = shed_;
        info.deadlineExceeded = deadline_;
        info.crashed = crashed_;
        return info;
    }

    obs::Snapshot
    metricsSnapshot() const
    {
        // mu_ serializes the snapshot against every count update and
        // histogram observation (see the ctor comment).
        std::lock_guard<std::mutex> lk(mu_);
        return registry_.snapshot();
    }

    // --- internals ------------------------------------------------

    /** Backoff hint for a shed request; mu_ held. */
    uint64_t
    retryHintMsLocked() const
    {
        // Expected wait ~= smoothed service latency times the number
        // of requests ahead of this one per worker. Clamped so a cold
        // hint is still a sane client sleep.
        const double perWorker =
            ewmaLatency_ *
            (static_cast<double>(queue_.size() + inflight_.size()) /
                 static_cast<double>(opts_.workers) +
             1.0);
        const double ms = perWorker * 1000.0;
        return static_cast<uint64_t>(
            std::min(10000.0, std::max(10.0, ms)));
    }

    // --- tracing --------------------------------------------------
    //
    // TraceLog has its own lock, so these are callable with or
    // without mu_ held (lock order mu_ -> trace lock, never the
    // reverse). All timestamps are microseconds since Server
    // construction.

    double
    usSince(Clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - t0_)
            .count();
    }

    void
    traceInstant(const char *name, uint32_t tid,
                 std::vector<obs::TraceArg> args = {})
    {
        if (opts_.trace) {
            opts_.trace->instant(name, "serve",
                                 usSince(Clock::now()), tid,
                                 std::move(args));
        }
    }

    /**
     * One complete slice per settled request, admission to response,
     * on the track that settled it (its worker, or the admission
     * track when it never reached one). queue_ms is admission to
     * dispatch, predict_ms dispatch to settlement; a request that
     * expired while queued passes started == end (all queue, no
     * predict).
     */
    void
    traceRequestSlice(const std::string &id, const char *outcome,
                      uint32_t tid, Clock::time_point enqueued,
                      Clock::time_point started,
                      Clock::time_point end)
    {
        if (!opts_.trace)
            return;
        const auto ms = [](Clock::duration d) {
            return std::chrono::duration<double, std::milli>(d)
                .count();
        };
        opts_.trace->complete(
            "request", "serve", usSince(enqueued),
            ms(end - enqueued) * 1000.0, tid,
            {obs::TraceArg::str("id", id),
             obs::TraceArg::str("outcome", outcome),
             obs::TraceArg::num("queue_ms", ms(started - enqueued)),
             obs::TraceArg::num("predict_ms", ms(end - started))});
    }

    /** mu_ held. */
    void
    spawnWorkerLocked()
    {
        auto w = std::make_shared<Worker>();
        w->id = nextWorkerId_++;
        ++liveWorkers_;
        workers_.push_back(w);
        if (opts_.trace) {
            opts_.trace->threadName(w->id + 1,
                                    "worker " +
                                        std::to_string(w->id));
        }
        w->thread = std::thread([this, w] { workerLoop(w); });
    }

    /** mu_ held. */
    void
    removeInflightLocked(const std::shared_ptr<ActiveRequest> &active)
    {
        inflight_.erase(
            std::remove(inflight_.begin(), inflight_.end(), active),
            inflight_.end());
    }

    void
    workerLoop(const std::shared_ptr<Worker> &self)
    {
        for (;;) {
            std::shared_ptr<ActiveRequest> active;
            {
                std::unique_lock<std::mutex> lk(mu_);
                // Poll-wait like the sweep workers: signal handlers
                // cannot notify a condition variable, so the wait
                // doubles as the drain-flag poll.
                cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
                    return stopping_ || !queue_.empty();
                });
                if (stopping_) {
                    self->exited.store(true);
                    --liveWorkers_;
                    return;
                }
                if (queue_.empty())
                    continue;
                Job job = std::move(queue_.front());
                queue_.pop_front();
                active = std::make_shared<ActiveRequest>();
                active->req = std::move(job.req);
                active->respond = std::move(job.respond);
                active->enqueued = job.enqueued;
                active->started = Clock::now();
                active->deadline = job.deadline;
                active->hasDeadline = job.hasDeadline;
                inflight_.push_back(active);
                self->current = active;
            }

            // Fault site "serve.request", keyed by the request id:
            // crash kills this worker (one worker-crashed response,
            // backoff restart), stall delays the prediction, fail
            // turns it into one typed error response.
            const fault::Outcome reqFault =
                fault::point("serve.request", active->req.id,
                             legacyPlan_.get());
            if (reqFault.action == fault::Action::Crash) {
                crashWith(self, active);
                return;   // this thread is "dead"
            }
            fault::sleepFor(reqFault);

            // Fault injection: stall before predicting (stall_ms).
            if (active->req.predict.stallSeconds > 0) {
                std::this_thread::sleep_for(secondsOf(
                    active->req.predict.stallSeconds));
            }

            Metrics metrics;
            std::vector<BatchItemResult> batchResults;
            const bool isBatch =
                active->req.type == RequestType::Batch;
            bool failed = false;
            ErrorCategory category = ErrorCategory::Internal;
            std::string message;
            try {
                if (reqFault.action == fault::Action::FailErrno) {
                    throw Error(ErrorCategory::IoError,
                                std::string("injected fault: ") +
                                    std::strerror(reqFault.err));
                }
                if (isBatch)
                    batchResults = runBatch(active->req);
                else
                    metrics = fn_(active->req.predict);
            } catch (const Error &e) {
                failed = true;
                category = e.category();
                message = e.message();
            } catch (const std::exception &e) {
                failed = true;
                message = e.what();
            }
            const auto settledAt = Clock::now();
            const double wallMs =
                std::chrono::duration<double, std::milli>(
                    settledAt - active->enqueued)
                    .count();

            std::string line;
            Respond respond;
            {
                std::lock_guard<std::mutex> lk(mu_);
                self->current.reset();
                if (active->settled) {
                    // The watchdog (or the drain) already answered
                    // this request; the result is discarded and the
                    // thread retires. A watchdog recycle already
                    // took this worker out of the live count.
                    if (!self->recycled)
                        --liveWorkers_;
                    self->exited.store(true);
                    return;
                }
                active->settled = true;
                removeInflightLocked(active);
                if (failed) {
                    ++errorCount_;
                    line = renderErrorResponse(active->req.id,
                                               category, message);
                } else {
                    ++okCount_;
                    latency_->observe(wallMs);
                    // EWMA of successful service time feeds the
                    // overload retry hint.
                    ewmaLatency_ = 0.8 * ewmaLatency_ +
                                   0.2 * (wallMs / 1000.0);
                    line = isBatch
                        ? renderBatchResponse(active->req.id,
                                              batchResults, wallMs)
                        : renderOkResponse(active->req.id,
                                           active->req.predict.seed,
                                           metrics, wallMs);
                }
                // A completed request proves the pool is healthy
                // again: the crash-restart backoff resets.
                crashBackoff_ = 0.0;
                respond = active->respond;
                cv_.notify_all();   // wake awaitDrain
            }
            traceRequestSlice(active->req.id,
                              failed ? "error" : "ok", self->id + 1,
                              active->enqueued, active->started,
                              settledAt);
            respond(line);
        }
    }

    /** Simulated worker death on a listed request id. */
    void
    crashWith(const std::shared_ptr<Worker> &self,
              const std::shared_ptr<ActiveRequest> &active)
    {
        const auto diedAt = Clock::now();
        std::string line;
        Respond respond;
        {
            std::lock_guard<std::mutex> lk(mu_);
            self->current.reset();
            if (!active->settled) {
                active->settled = true;
                removeInflightLocked(active);
                ++crashed_;
                line = renderErrorResponse(
                    active->req.id, ErrorCategory::WorkerCrashed,
                    "worker died processing this request; it will "
                    "be restarted");
                respond = active->respond;
            }
            // A watchdog recycle (deadline fired between dispatch
            // and this crash) already took this worker out of the
            // live count and scheduled its replacement; doing either
            // again would underflow liveWorkers_ and overgrow the
            // pool. Same guard as the workerLoop retirement path.
            if (!self->recycled) {
                --liveWorkers_;
                // Exponential backoff before the replacement spawns;
                // reset by the next successful completion.
                crashBackoff_ =
                    crashBackoff_ == 0.0
                        ? opts_.restartBackoffSeconds
                        : std::min(crashBackoff_ * 2.0,
                                   opts_.restartBackoffCapSeconds);
                restarts_.push_back(
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        secondsOf(crashBackoff_)));
            }
            self->exited.store(true);
            cv_.notify_all();
        }
        warn("serve: worker " + std::to_string(self->id) +
             " crashed on request '" + active->req.id +
             "'; restarting after backoff");
        if (respond) {
            traceRequestSlice(active->req.id, "worker-crashed",
                              self->id + 1, active->enqueued,
                              active->started, diedAt);
        }
        traceInstant("worker-crashed", self->id + 1,
                     {obs::TraceArg::str("id", active->req.id)});
        if (respond)
            respond(line);
    }

    /**
     * Execute a batch request on the dispatching worker: the
     * installed BatchFn (the ensemble path) when one exists,
     * otherwise a per-item loop over the PredictFn. Per-item errors
     * land in the item's result slot; only infrastructure failures
     * (and non-ssim exceptions) escape to the caller's catch.
     */
    std::vector<BatchItemResult>
    runBatch(const Request &req)
    {
        if (batchFn_)
            return batchFn_(req.batch, req.batchJobs);
        std::vector<BatchItemResult> out;
        out.reserve(req.batch.size());
        for (const PredictRequest &item : req.batch) {
            BatchItemResult r;
            r.seed = item.seed;
            try {
                r.metrics = fn_(item);
                r.ok = true;
            } catch (const Error &e) {
                r.category = e.category();
                r.message = e.message();
            } catch (const std::exception &e) {
                r.category = ErrorCategory::Internal;
                r.message = e.what();
            }
            out.push_back(std::move(r));
        }
        return out;
    }

    void
    watchdogLoop()
    {
        for (;;) {
            std::vector<std::pair<Respond, std::string>> toSend;
            std::vector<std::shared_ptr<Worker>> reaped;
            {
                std::unique_lock<std::mutex> lk(mu_);
                if (stopping_)
                    return;
                const auto now = Clock::now();

                // 1. Expired queued requests never started; answer
                //    them without costing a worker.
                for (auto it = queue_.begin(); it != queue_.end();) {
                    if (it->hasDeadline && now >= it->deadline) {
                        ++deadline_;
                        // Never dispatched: the whole slice is queue
                        // time, on the admission track.
                        traceRequestSlice(it->req.id,
                                          "deadline-exceeded", 0,
                                          it->enqueued, now, now);
                        traceInstant(
                            "deadline-exceeded", 0,
                            {obs::TraceArg::str("id", it->req.id),
                             obs::TraceArg::str("where", "queued")});
                        toSend.emplace_back(
                            std::move(it->respond),
                            renderErrorResponse(
                                it->req.id,
                                ErrorCategory::DeadlineExceeded,
                                "deadline expired while queued"));
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }

                // 2. Expired running requests: answer now, recycle
                //    the worker. The stuck thread keeps the shared
                //    state alive and retires when the prediction
                //    returns; a fresh worker spawns immediately so
                //    capacity never degrades.
                for (auto it = inflight_.begin();
                     it != inflight_.end();) {
                    auto &active = *it;
                    if (!active->settled && active->hasDeadline &&
                        now >= active->deadline) {
                        active->settled = true;
                        active->abandoned = true;
                        ++deadline_;
                        toSend.emplace_back(
                            active->respond,
                            renderErrorResponse(
                                active->req.id,
                                ErrorCategory::DeadlineExceeded,
                                "deadline expired mid-prediction; "
                                "worker recycled"));
                        uint32_t tid = 0;
                        for (auto wit = workers_.begin();
                             wit != workers_.end(); ++wit) {
                            if ((*wit)->current == active) {
                                tid = (*wit)->id + 1;
                                (*wit)->recycled = true;
                                zombies_.push_back(*wit);
                                workers_.erase(wit);
                                --liveWorkers_;
                                restarts_.push_back(now);
                                break;
                            }
                        }
                        traceRequestSlice(active->req.id,
                                          "deadline-exceeded", tid,
                                          active->enqueued,
                                          active->started, now);
                        traceInstant(
                            "deadline-exceeded", tid,
                            {obs::TraceArg::str("id",
                                                active->req.id),
                             obs::TraceArg::str("where",
                                                "running")});
                        it = inflight_.erase(it);
                    } else {
                        ++it;
                    }
                }

                // 3. Reap returned threads (crashed workers and
                //    retired zombies join without blocking).
                for (auto it = workers_.begin();
                     it != workers_.end();) {
                    if ((*it)->exited.load()) {
                        reaped.push_back(*it);
                        it = workers_.erase(it);
                    } else {
                        ++it;
                    }
                }
                for (auto it = zombies_.begin();
                     it != zombies_.end();) {
                    if ((*it)->exited.load()) {
                        reaped.push_back(*it);
                        it = zombies_.erase(it);
                    } else {
                        ++it;
                    }
                }

                // 4. Respawn due restarts. A draining pool only
                //    shrinks — except back from zero while admitted
                //    work remains, or a crash of every worker
                //    mid-drain would starve the queue until the
                //    budget expires (found by `ssim chaos`).
                while (!restarts_.empty() &&
                       now >= restarts_.front() &&
                       (!draining_ ||
                        (liveWorkers_ == 0 &&
                         (!queue_.empty() || !inflight_.empty())))) {
                    restarts_.pop_front();
                    ++restartsDone_;
                    spawnWorkerLocked();
                }
            }
            for (auto &[respond, line] : toSend)
                if (respond)
                    respond(line);
            for (auto &w : reaped)
                if (w->thread.joinable())
                    w->thread.join();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }

    // --- state ----------------------------------------------------

    PredictFn fn_;
    BatchFn batchFn_;   ///< set before start(); never mutated after
    ServeOptions opts_;
    obs::RunManifest manifest_;
    const Clock::time_point t0_ = Clock::now();   ///< trace epoch
    const std::shared_ptr<fault::FaultPlan> legacyPlan_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    std::vector<std::shared_ptr<ActiveRequest>> inflight_;
    std::vector<std::shared_ptr<Worker>> workers_;
    std::vector<std::shared_ptr<Worker>> zombies_;
    std::thread watchdog_;
    bool started_ = false;
    bool draining_ = false;
    bool stopping_ = false;

    unsigned liveWorkers_ = 0;
    unsigned nextWorkerId_ = 0;
    std::deque<Clock::time_point> restarts_;
    double crashBackoff_ = 0.0;

    // Outcome counts (guarded by mu_; exported via gaugeFn).
    uint64_t admitted_ = 0;
    uint64_t okCount_ = 0;
    uint64_t errorCount_ = 0;
    uint64_t shed_ = 0;
    uint64_t deadline_ = 0;
    uint64_t crashed_ = 0;
    uint64_t rejectedDraining_ = 0;
    uint64_t parseErrors_ = 0;
    uint64_t restartsDone_ = 0;
    double ewmaLatency_ = 0.05;   ///< seconds; seeds the retry hint

    obs::Registry registry_;
    obs::Histogram *latency_ = nullptr;
};

Server::Server(PredictFn fn, const ServeOptions &opts,
               const obs::RunManifest *manifest)
    : impl_(std::make_unique<Impl>(std::move(fn), opts, manifest))
{
}

Server::~Server()
{
    impl_->stop();
}

void
Server::setBatchFn(BatchFn fn)
{
    impl_->batchFn_ = std::move(fn);
}

void
Server::start()
{
    impl_->start();
}

void
Server::submitLine(const std::string &line, Respond respond)
{
    impl_->submitLine(line, std::move(respond));
}

void
Server::submit(Request req, Respond respond)
{
    impl_->submit(std::move(req), std::move(respond));
}

void
Server::beginDrain()
{
    impl_->beginDrain();
}

bool
Server::drainComplete()
{
    return impl_->drainComplete();
}

bool
Server::awaitDrain()
{
    return impl_->awaitDrain();
}

void
Server::stop()
{
    impl_->stop();
}

HealthInfo
Server::health() const
{
    return impl_->health();
}

obs::Snapshot
Server::metricsSnapshot() const
{
    return impl_->metricsSnapshot();
}

} // namespace ssim::serve
