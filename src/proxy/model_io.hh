/**
 * @file
 * Checksummed, versioned model files.
 *
 * Follows the core/serialize v2 conventions in JSON clothing: a
 * fixed-order header carrying the format name, format version, and
 * the byte count + FNV-1a checksum of the payload, so truncation and
 * bit-flips are detected deterministically *before* any model field
 * is interpreted. The whole file is a single JSON line rendered by
 * util/json_writer (%.17g doubles, hex64 hashes, no whitespace), so
 * rendering the same model always produces identical bytes — the
 * property behind the train-twice byte-stability test.
 *
 *   {"format":"ssim-model","version":1,
 *    "payload_bytes":N,"payload_checksum":"<16-hex>",
 *    "payload":{...model fields...}}
 *
 * Loading is a strict validating parse: unknown format version is
 * VersionMismatch, bad length or checksum is CorruptData, malformed
 * JSON is ParseError — all with the file path in context. Writing
 * goes through util::atomicWriteFile, so a crash mid-save never
 * publishes a torn model.
 */

#ifndef SSIM_PROXY_MODEL_IO_HH
#define SSIM_PROXY_MODEL_IO_HH

#include <cstdint>
#include <string>

#include "model.hh"
#include "util/error.hh"

namespace ssim::proxy
{

/** Current on-disk model format version. */
constexpr uint32_t ModelFormatVersion = 1;

/** Render @p model as complete file bytes (one line + '\n'). */
std::string renderModel(const SurrogateModel &model);

/**
 * Parse file bytes produced by renderModel.
 * @throws ssim::Error (ParseError, CorruptData, VersionMismatch)
 *         with @p file in context.
 */
SurrogateModel parseModel(const std::string &text,
                          const std::string &file = "<string>");

/** Atomic, durable save. @throws ssim::Error (IoError). */
void saveModelFile(const SurrogateModel &model,
                   const std::string &path);

/** Load and validate. @throws like parseModel, plus IoError. */
SurrogateModel loadModelFile(const std::string &path);

/** Non-throwing variant of loadModelFile. */
Expected<SurrogateModel> tryLoadModelFile(const std::string &path);

} // namespace ssim::proxy

#endif // SSIM_PROXY_MODEL_IO_HH
