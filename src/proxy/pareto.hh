/**
 * @file
 * Pareto-frontier selection over (IPC up, EPC down).
 *
 * The design-space study's figure of merit is EDP, and EDP = EPC/IPC²
 * is monotone in both objectives — so every EDP optimum lies on the
 * (maximize IPC, minimize EPC) Pareto frontier. A surrogate-pruned
 * sweep therefore simulates the *predicted* frontier plus a safety
 * margin of additional non-dominated shells (peel the frontier off,
 * take the frontier of what remains, repeat), which is what absorbs
 * bounded prediction error.
 */

#ifndef SSIM_PROXY_PARETO_HH
#define SSIM_PROXY_PARETO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssim::proxy
{

/** One candidate design point in objective space. */
struct ParetoPoint
{
    size_t index = 0;   ///< caller's point index
    double ipc = 0.0;   ///< maximized
    double epc = 0.0;   ///< minimized
};

/**
 * Indices (into @p points) of the non-dominated set: no other point
 * has both ipc >= and epc <= with at least one strict. Points with
 * identical (ipc, epc) are all kept. Returned sorted by ipc
 * descending (ties: epc ascending, then index).
 */
std::vector<size_t> paretoFrontier(
    const std::vector<ParetoPoint> &points);

/**
 * Byte mask over @p points: 1 for members of the first
 * @p margin + 1 non-dominated shells (shell 0 is the frontier;
 * each further shell is the frontier of the remainder).
 */
std::vector<uint8_t> frontierMask(
    const std::vector<ParetoPoint> &points, unsigned margin);

} // namespace ssim::proxy

#endif // SSIM_PROXY_PARETO_HH
