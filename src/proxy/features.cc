#include "features.hh"

#include <cmath>
#include <map>
#include <set>

#include "util/json_writer.hh"

namespace ssim::proxy
{

namespace
{

/** log2 of a count-like knob, safe at zero. */
double
log2Of(double v)
{
    return std::log2(v < 1.0 ? 1.0 : v);
}

/** Safe ratio: 0 when the denominator is 0. */
double
rate(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                            static_cast<double>(den);
}

std::vector<util::JournalMetric>
toMetrics(const std::vector<std::string> &names,
          const std::vector<double> &values)
{
    std::vector<util::JournalMetric> out;
    out.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        out.push_back({names[i], values[i]});
    return out;
}

/**
 * Reorder a record's named features into @p wanted order. Extra names
 * are ignored (forward compatibility); a missing name means the
 * journal was written by an incompatible feature schema.
 */
std::vector<double>
mapFeatures(const std::vector<util::JournalMetric> &have,
            const std::vector<std::string> &wanted,
            const std::string &path, const char *what)
{
    std::map<std::string, double> byName;
    for (const util::JournalMetric &m : have)
        byName[m.name] = m.value;
    std::vector<double> out;
    out.reserve(wanted.size());
    for (const std::string &name : wanted) {
        const auto it = byName.find(name);
        if (it == byName.end()) {
            throw Error(ErrorCategory::VersionMismatch,
                        std::string(what) + " features are missing '" +
                        name + "': the journal was written by an "
                        "incompatible feature schema (expected v" +
                        std::to_string(FeatureSchemaVersion) + ")",
                        {path, 0});
        }
        out.push_back(it->second);
    }
    return out;
}

} // namespace

const std::vector<std::string> &
configFeatureNames()
{
    static const std::vector<std::string> names = {
        "ruu", "lsq", "ifq",
        "decode_width", "issue_width", "commit_width", "fetch_speed",
        "mispredict_penalty", "redirect_penalty", "mem_latency",
        "il1_log2_bytes", "il1_assoc", "il1_latency",
        "dl1_log2_bytes", "dl1_assoc", "dl1_latency",
        "l2_log2_bytes", "l2_assoc", "l2_latency",
        "bpred_kind", "bpred_log2_bimodal", "bpred_log2_l2",
        "bpred_history_bits", "bpred_log2_btb", "bpred_ras",
        "perfect_caches", "perfect_bpred", "in_order",
        "log2_ruu", "log2_lsq", "width_min",
        "ruu_per_width", "lsq_per_width", "lsq_ruu_ratio",
        "log2_ruu_x_wmin", "log2_lsq_x_wmin", "wmin_sq",
        "log2_ruu_x_log2_lsq",
        "log2_ruu_sq", "log2_lsq_sq",
        "log2_ruu_x_dw", "log2_ruu_x_iw", "log2_ruu_x_cw",
        "log2_lsq_x_dw", "log2_lsq_x_iw", "log2_lsq_x_cw",
        "dw_x_iw", "dw_x_cw", "iw_x_cw",
        "dw_sq", "iw_sq", "cw_sq",
        "log2_ruu_x_log2_lsq_x_dw", "log2_ruu_x_log2_lsq_x_iw",
        "log2_ruu_x_log2_lsq_x_cw", "log2_ruu_x_log2_lsq_x_wmin",
        "log2_ruu_x_dw_x_iw", "log2_ruu_x_iw_x_cw",
        "log2_lsq_x_dw_x_iw", "dw_x_iw_x_cw",
    };
    return names;
}

const std::vector<std::string> &
profileFeatureNames()
{
    static const std::vector<std::string> names = {
        "profile_order", "log2_instructions", "log2_nodes",
        "log2_qblocks", "avg_block_len",
        "branch_taken_rate", "branch_mispredict_rate",
        "branch_redirect_rate", "mispredicts_per_kilo",
        "load_frac", "store_frac", "ctrl_frac",
        "il1_miss_rate", "dl1_miss_rate",
    };
    return names;
}

std::vector<double>
configFeatures(const cpu::CoreConfig &cfg)
{
    const double widthMin =
        std::min({static_cast<double>(cfg.decodeWidth),
                  static_cast<double>(cfg.issueWidth),
                  static_cast<double>(cfg.commitWidth)});
    std::vector<double> x = {
        static_cast<double>(cfg.ruuSize),
        static_cast<double>(cfg.lsqSize),
        static_cast<double>(cfg.ifqSize),
        static_cast<double>(cfg.decodeWidth),
        static_cast<double>(cfg.issueWidth),
        static_cast<double>(cfg.commitWidth),
        static_cast<double>(cfg.fetchSpeed),
        static_cast<double>(cfg.mispredictPenalty),
        static_cast<double>(cfg.redirectPenalty),
        static_cast<double>(cfg.memLatency),
        log2Of(cfg.il1.sizeBytes),
        static_cast<double>(cfg.il1.assoc),
        static_cast<double>(cfg.il1.latency),
        log2Of(cfg.dl1.sizeBytes),
        static_cast<double>(cfg.dl1.assoc),
        static_cast<double>(cfg.dl1.latency),
        log2Of(cfg.l2.sizeBytes),
        static_cast<double>(cfg.l2.assoc),
        static_cast<double>(cfg.l2.latency),
        static_cast<double>(cfg.bpred.kind),
        log2Of(cfg.bpred.bimodalEntries),
        log2Of(cfg.bpred.l2Entries),
        static_cast<double>(cfg.bpred.historyBits),
        log2Of(cfg.bpred.btbEntries),
        static_cast<double>(cfg.bpred.rasEntries),
        cfg.perfectCaches ? 1.0 : 0.0,
        cfg.perfectBpred ? 1.0 : 0.0,
        cfg.inOrderIssue ? 1.0 : 0.0,
        log2Of(cfg.ruuSize),
        log2Of(cfg.lsqSize),
        widthMin,
        static_cast<double>(cfg.ruuSize) / (widthMin < 1 ? 1 : widthMin),
        static_cast<double>(cfg.lsqSize) / (widthMin < 1 ? 1 : widthMin),
        rate(cfg.lsqSize, cfg.ruuSize),
        // Interaction terms: window size and pipeline width gate IPC
        // jointly (a wide pipeline starves behind a small window and
        // vice versa), which no additive model of the marginal
        // features can represent — so hand it the products. Boosted
        // stumps fit an arbitrary 1-D response to each product, which
        // is what lets an additive-in-features model rank the packed
        // Pareto frontier of a width x window design space.
        log2Of(cfg.ruuSize) * widthMin,
        log2Of(cfg.lsqSize) * widthMin,
        widthMin * widthMin,
        log2Of(cfg.ruuSize) * log2Of(cfg.lsqSize),
    };
    const double lr2 = log2Of(cfg.ruuSize);
    const double lq2 = log2Of(cfg.lsqSize);
    const double dw = static_cast<double>(cfg.decodeWidth);
    const double iw = static_cast<double>(cfg.issueWidth);
    const double cw = static_cast<double>(cfg.commitWidth);
    const double pairs[] = {
        lr2 * lr2, lq2 * lq2,
        lr2 * dw, lr2 * iw, lr2 * cw,
        lq2 * dw, lq2 * iw, lq2 * cw,
        dw * iw, dw * cw, iw * cw,
        dw * dw, iw * iw, cw * cw,
        lr2 * lq2 * dw, lr2 * lq2 * iw,
        lr2 * lq2 * cw, lr2 * lq2 * widthMin,
        lr2 * dw * iw, lr2 * iw * cw,
        lq2 * dw * iw, dw * iw * cw,
    };
    x.insert(x.end(), std::begin(pairs), std::end(pairs));
    return x;
}

std::vector<double>
profileFeatures(const core::StatisticalProfile &profile)
{
    // Integer accumulation only inside the unordered_map walk: the
    // iteration order is unspecified and floating-point addition is
    // order-dependent, but integer sums are not — so the features are
    // identical for a freshly built profile and its reloaded twin.
    uint64_t dynInsts = 0, dynLoads = 0, dynStores = 0, dynCtrl = 0;
    uint64_t il1Access = 0, il1Miss = 0, dl1Miss = 0;
    for (const auto &[gram, node] : profile.nodes) {
        const uint32_t block = core::StatisticalProfile::blockOf(gram);
        if (block < profile.shapes.size()) {
            const core::BlockShape &shape = profile.shapes[block];
            dynInsts += node.occurrences * shape.size();
            for (const core::SlotShape &s : shape) {
                if (s.isLoad)
                    dynLoads += node.occurrences;
                if (s.isStore)
                    dynStores += node.occurrences;
                if (s.isCtrl)
                    dynCtrl += node.occurrences;
            }
        }
        for (const core::SlotStats &s : node.entryStats.slots) {
            il1Access += s.il1Access;
            il1Miss += s.il1Miss;
            dl1Miss += s.dl1Miss;
        }
    }
    const core::BranchStats br = profile.totalBranchStats();
    std::vector<double> x = {
        static_cast<double>(profile.order),
        log2Of(static_cast<double>(profile.instructions)),
        log2Of(static_cast<double>(profile.nodeCount())),
        log2Of(static_cast<double>(profile.qualifiedBlockCount())),
        rate(profile.instructions, profile.dynamicBlocks),
        rate(br.taken, br.count),
        rate(br.mispredict, br.count),
        rate(br.redirect, br.count),
        profile.mispredictsPerKilo(),
        rate(dynLoads, dynInsts),
        rate(dynStores, dynInsts),
        rate(dynCtrl, dynInsts),
        rate(il1Miss, il1Access),
        rate(dl1Miss, dynLoads),
    };
    return x;
}

std::vector<util::JournalMetric>
configFeatureMetrics(const cpu::CoreConfig &cfg)
{
    return toMetrics(configFeatureNames(), configFeatures(cfg));
}

std::vector<util::JournalMetric>
profileFeatureMetrics(const core::StatisticalProfile &profile)
{
    return toMetrics(profileFeatureNames(), profileFeatures(profile));
}

Dataset
loadDataset(const std::vector<std::string> &journalPaths)
{
    if (journalPaths.empty())
        throw Error(ErrorCategory::InvalidArgument,
                    "no journals to train on");

    Dataset ds;
    ds.featureNames = configFeatureNames();
    for (const std::string &name : profileFeatureNames())
        ds.featureNames.push_back(name);

    // One row per distinct point: features + the row's metric map.
    std::vector<std::map<std::string, double>> rowMetrics;
    std::string firstPath;

    for (const std::string &path : journalPaths) {
        uint64_t skipped = 0;
        Expected<std::vector<util::JournalRecord>> loaded =
            util::Journal::load(path, &skipped);
        if (!loaded)
            throw loaded.error();
        ds.skippedCorrupt += skipped;
        ++ds.journalCount;
        const std::vector<util::JournalRecord> &recs = loaded.value();

        const util::JournalRecord *header = nullptr;
        for (const util::JournalRecord &r : recs) {
            if (r.event == "sweep") {
                header = &r;
                break;
            }
        }
        if (header == nullptr)
            throw Error(ErrorCategory::CorruptData,
                        "journal has no sweep header", {path, 0});
        if (header->profileChecksum == 0)
            throw Error(ErrorCategory::InvalidArgument,
                        "journal header carries no profile provenance "
                        "(profile_checksum); re-run the sweep before "
                        "training on it", {path, 0});
        const std::vector<double> profValues = mapFeatures(
            header->features, profileFeatureNames(), path, "header");
        if (ds.profileChecksum == 0) {
            ds.profileChecksum = header->profileChecksum;
            ds.baseConfigHash = header->baseConfigHash;
            ds.profileFeatureValues = profValues;
            firstPath = path;
        } else if (header->profileChecksum != ds.profileChecksum) {
            throw Error(ErrorCategory::InvalidArgument,
                        "journal " + path +
                        " was swept from a different profile than " +
                        firstPath + " (profile_checksum " +
                        util::json::hex64Token(header->profileChecksum)
                        + " vs " +
                        util::json::hex64Token(ds.profileChecksum) +
                        "); refusing to mix programs in one training "
                        "set", {path, 0});
        }

        // Highest-attempt `ok` record wins per point, so a journal
        // that retried or resumed contributes each point once.
        std::map<uint64_t, const util::JournalRecord *> best;
        for (const util::JournalRecord &r : recs) {
            if (r.event != "done" || r.status != "ok" ||
                r.features.empty())
                continue;
            const auto it = best.find(r.point);
            if (it == best.end() || r.attempt >= it->second->attempt)
                best[r.point] = &r;
        }
        for (const auto &[point, rec] : best) {
            std::vector<double> x = mapFeatures(
                rec->features, configFeatureNames(), path, "point");
            x.insert(x.end(), profValues.begin(), profValues.end());
            ds.rows.push_back(std::move(x));
            std::map<std::string, double> m;
            for (const util::JournalMetric &jm : rec->metrics)
                m[jm.name] = jm.value;
            rowMetrics.push_back(std::move(m));
        }
    }

    if (ds.rows.empty())
        throw Error(ErrorCategory::InvalidArgument,
                    "no feature-annotated ok records in " + firstPath +
                    (ds.journalCount > 1 ? " (or its peers)" : "") +
                    "; the journal predates feature stamping or the "
                    "sweep has not settled any point yet");

    // Targets: every metric present in all rows, sorted by name.
    std::set<std::string> common;
    for (const auto &[name, value] : rowMetrics.front())
        common.insert(name);
    for (const std::map<std::string, double> &m : rowMetrics) {
        for (auto it = common.begin(); it != common.end();) {
            if (m.find(*it) == m.end())
                it = common.erase(it);
            else
                ++it;
        }
    }
    if (common.empty())
        throw Error(ErrorCategory::InvalidArgument,
                    "journal rows share no metric names; nothing to "
                    "train on");
    ds.targetNames.assign(common.begin(), common.end());
    ds.targets.reserve(ds.rows.size());
    for (const std::map<std::string, double> &m : rowMetrics) {
        std::vector<double> y;
        y.reserve(ds.targetNames.size());
        for (const std::string &name : ds.targetNames)
            y.push_back(m.at(name));
        ds.targets.push_back(std::move(y));
    }
    return ds;
}

} // namespace ssim::proxy
