/**
 * @file
 * Dependency-free regressors for the surrogate predictor.
 *
 * Two model families, both deterministic and both trained from the
 * same Dataset (features.hh):
 *
 *  - *ridge*: closed-form normal equations on z-scored features
 *    solved by Cholesky (the lambda > 0 ridge term makes the Gram
 *    matrix positive definite, so the factorization cannot fail);
 *  - *gbm*: gradient-boosted regression stumps — per round, the
 *    single (feature, threshold) split minimizing squared residual
 *    error, with a deterministic first-wins tie-break and shrinkage.
 *
 * Targets whose training values are strictly positive (IPC, EPC,
 * cycles...) are fit in log space: a core's throughput responds
 * multiplicatively to structure sizes, and the log makes that
 * structure additive — which is what a linear model (and shallow
 * stumps) can actually represent. Predictions are exponentiated back
 * and all cross-validation errors are reported in linear space.
 *
 * Determinism contract: trainModel() is a pure function of
 * (Dataset, TrainOptions) — fold shuffling uses a seeded ssim::Rng,
 * every reduction runs in a fixed order, and no wall clock or
 * global state is consulted. The same journal and seed therefore
 * always produce a byte-identical rendered model (model_io.hh).
 */

#ifndef SSIM_PROXY_MODEL_HH
#define SSIM_PROXY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "features.hh"
#include "util/error.hh"

namespace ssim::proxy
{

enum class ModelKind : uint8_t
{
    Ridge,
    Gbm,
};

/** Stable file/CLI name ("ridge", "gbm"). */
const char *modelKindName(ModelKind kind);

/** @throws ssim::Error (InvalidArgument) for unknown names. */
ModelKind modelKindFromName(const std::string &name);

/** One boosted regression stump over the z-scored feature vector. */
struct Stump
{
    uint32_t feature = 0;
    double threshold = 0.0;   ///< z-space; x <= threshold goes left
    double left = 0.0;
    double right = 0.0;
};

/** Held-out error of one target, linear space, pooled over folds. */
struct CvReport
{
    double mae = 0.0;
    double rmse = 0.0;
    double mape = 0.0;   ///< mean |err| / |y|, rows with y != 0
};

/** The fitted predictor of one target metric. */
struct TargetModel
{
    std::string name;
    bool logSpace = false;

    // Ridge: intercept + weights over z-scored features.
    double intercept = 0.0;
    std::vector<double> weights;

    // Gbm: bias + stump ensemble over z-scored features.
    double bias = 0.0;
    std::vector<Stump> stumps;

    CvReport cv;
};

/** A trained surrogate: scaler + per-target models + provenance. */
struct SurrogateModel
{
    uint32_t featureVersion = FeatureSchemaVersion;
    ModelKind kind = ModelKind::Ridge;

    std::vector<std::string> configNames;
    std::vector<std::string> profileNames;
    std::vector<double> mean;   ///< z-score scaler, full feature vector
    std::vector<double> std;    ///< 0-variance columns stored as 1

    /** Profile features of the training sweep (rank-time constants). */
    std::vector<double> profileValues;
    uint64_t profileChecksum = 0;
    uint64_t baseConfigHash = 0;

    uint64_t trainRows = 0;
    uint64_t trainSeed = 0;
    uint32_t cvFolds = 0;
    std::vector<TargetModel> targets;

    /** The target named @p name, or null. */
    const TargetModel *findTarget(const std::string &name) const;

    /**
     * Predict @p target for a raw (unstandardized) full feature
     * vector — configFeatures(cfg) followed by the model's stored
     * profile values. Returns linear-space values (log-space targets
     * are exponentiated).
     * @throws ssim::Error (InvalidArgument) on a size mismatch.
     */
    double predict(const TargetModel &target,
                   const std::vector<double> &x) const;

    /**
     * Full feature vector for @p cfg under this model's training
     * profile: configFeatures(cfg) ++ profileValues.
     * @throws ssim::Error (VersionMismatch) when the model's feature
     *         names do not match this build's extractor.
     */
    std::vector<double> featuresFor(const cpu::CoreConfig &cfg) const;
};

/** Training knobs. */
struct TrainOptions
{
    ModelKind kind = ModelKind::Ridge;
    double lambda = 1.0;        ///< ridge penalty, > 0
    unsigned folds = 5;         ///< k-fold CV; 0 or 1 skips CV
    uint64_t seed = 1;          ///< fold shuffling seed
    unsigned rounds = 300;      ///< gbm boosting rounds
    double learningRate = 0.1;  ///< gbm shrinkage, in (0, 1]

    /** Fit strictly-positive targets in log space. */
    bool logTargets = true;

    /** @throws ssim::Error (InvalidConfig) on unusable knobs. */
    void validate() const;
};

/**
 * Fit one model per dataset target under @p opts. Deterministic: the
 * same dataset and options always yield the same model, bit for bit.
 * @throws ssim::Error (InvalidConfig on bad options, InvalidArgument
 *         on a degenerate dataset).
 */
SurrogateModel trainModel(const Dataset &ds, const TrainOptions &opts);

} // namespace ssim::proxy

#endif // SSIM_PROXY_MODEL_HH
