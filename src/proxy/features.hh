/**
 * @file
 * Deterministic feature extraction for the surrogate predictor.
 *
 * A training row for the surrogate is the concatenation of two
 * feature groups, both extracted by pure functions of in-repo
 * structures:
 *
 *  - *config features*: every knob the sweep grid can move (queue
 *    sizes, widths, penalties, cache geometry, predictor tables)
 *    plus a few derived ratios (log2 sizes, entries-per-width) that
 *    make the models' job easier — IPC responds roughly
 *    logarithmically to structure sizes;
 *  - *profile features*: summary statistics of the source
 *    statistical profile (instruction mix, branch behaviour, cache
 *    locality). Within one sweep these are constant — they identify
 *    *which program* the rows describe, which is what lets a model
 *    file refuse to rank points for a different workload.
 *
 * The vector layout is versioned (FeatureSchemaVersion): names and
 * order are part of the model-file contract, and a model whose
 * feature names do not match the extractor's is rejected with
 * VersionMismatch rather than silently misaligned.
 *
 * Journals are the training source: `done` records carry the config
 * features of their point, the `sweep` header carries the profile
 * features and the profile's canonical digest (provenance).
 * loadDataset() pools one or more such journals into a dense matrix,
 * refusing journals with missing or mismatched provenance.
 */

#ifndef SSIM_PROXY_FEATURES_HH
#define SSIM_PROXY_FEATURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hh"
#include "cpu/config.hh"
#include "util/journal.hh"

namespace ssim::proxy
{

/** Version of the feature vector layout (names and order). */
constexpr uint32_t FeatureSchemaVersion = 1;

/** Names of the configuration features, in vector order. */
const std::vector<std::string> &configFeatureNames();

/** Names of the profile features, in vector order. */
const std::vector<std::string> &profileFeatureNames();

/** Configuration feature vector (configFeatureNames() order). */
std::vector<double> configFeatures(const cpu::CoreConfig &cfg);

/** Profile feature vector (profileFeatureNames() order). */
std::vector<double> profileFeatures(
    const core::StatisticalProfile &profile);

/** configFeatures() as named journal metrics (for `done` records). */
std::vector<util::JournalMetric> configFeatureMetrics(
    const cpu::CoreConfig &cfg);

/** profileFeatures() as named journal metrics (for the header). */
std::vector<util::JournalMetric> profileFeatureMetrics(
    const core::StatisticalProfile &profile);

/**
 * A dense training set pooled from one or more sweep journals.
 * One row per distinct design point with a terminal `ok` record
 * carrying features; the feature columns are configFeatureNames()
 * followed by profileFeatureNames(), the target columns are every
 * metric name present in *all* contributing rows (sorted by name).
 */
struct Dataset
{
    std::vector<std::string> featureNames;
    std::vector<std::string> targetNames;
    std::vector<std::vector<double>> rows;      ///< [row][feature]
    std::vector<std::vector<double>> targets;   ///< [row][target]

    /** Provenance shared by every contributing journal. */
    uint64_t profileChecksum = 0;
    uint64_t baseConfigHash = 0;   ///< from the first journal's header
    std::vector<double> profileFeatureValues;   ///< from the header

    uint64_t skippedCorrupt = 0;   ///< corrupt lines tolerated on load
    size_t journalCount = 0;
};

/**
 * Load and pool @p journalPaths into one Dataset.
 *
 * Rules, each a typed error rather than a silent degradation:
 *  - every journal must open with an intact `sweep` header carrying a
 *    nonzero `profile_checksum` (InvalidArgument otherwise — the
 *    journal predates provenance stamping and could be any program);
 *  - all journals must agree on the profile checksum (InvalidArgument
 *    naming both paths — mixing programs fits garbage);
 *  - header and per-point feature names must cover the current
 *    feature schema (VersionMismatch otherwise);
 *  - at least one feature-annotated `ok` row must survive
 *    (InvalidArgument otherwise).
 *
 * Interior-corrupt journal lines are tolerated exactly as the sweep
 * engine tolerates them (skipped with a count, never fatal); for each
 * point the highest-attempt `ok` record wins, so a resumed journal
 * contributes each point once.
 *
 * @throws ssim::Error as above (plus IoError for unreadable paths).
 */
Dataset loadDataset(const std::vector<std::string> &journalPaths);

} // namespace ssim::proxy

#endif // SSIM_PROXY_FEATURES_HH
