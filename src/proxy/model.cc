#include "model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/random.hh"

namespace ssim::proxy
{

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Ridge: return "ridge";
      case ModelKind::Gbm:   return "gbm";
    }
    return "?";
}

ModelKind
modelKindFromName(const std::string &name)
{
    if (name == "ridge")
        return ModelKind::Ridge;
    if (name == "gbm")
        return ModelKind::Gbm;
    throw Error(ErrorCategory::InvalidArgument,
                "unknown model kind '" + name +
                "' (expected ridge or gbm)");
}

void
TrainOptions::validate() const
{
    const auto bad = [](const std::string &msg) {
        return Error(ErrorCategory::InvalidConfig, "train: " + msg);
    };
    if (!(lambda > 0.0) || !std::isfinite(lambda))
        throw bad("--lambda must be a positive finite number");
    if (folds > 1000)
        throw bad("--folds is implausibly large");
    if (rounds == 0 || rounds > 100000)
        throw bad("--rounds must be in [1, 100000]");
    if (!(learningRate > 0.0) || learningRate > 1.0)
        throw bad("--learning-rate must be in (0, 1]");
}

const TargetModel *
SurrogateModel::findTarget(const std::string &name) const
{
    for (const TargetModel &t : targets) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

std::vector<double>
SurrogateModel::featuresFor(const cpu::CoreConfig &cfg) const
{
    if (configNames != configFeatureNames() ||
        profileNames != profileFeatureNames()) {
        throw Error(ErrorCategory::VersionMismatch,
                    "model feature names do not match this build's "
                    "feature schema (v" +
                    std::to_string(FeatureSchemaVersion) +
                    "); retrain the model");
    }
    std::vector<double> x = configFeatures(cfg);
    x.insert(x.end(), profileValues.begin(), profileValues.end());
    return x;
}

double
SurrogateModel::predict(const TargetModel &target,
                        const std::vector<double> &x) const
{
    if (x.size() != mean.size())
        throw Error(ErrorCategory::InvalidArgument,
                    "feature vector has " + std::to_string(x.size()) +
                    " entries, model expects " +
                    std::to_string(mean.size()));
    double out;
    if (kind == ModelKind::Ridge) {
        out = target.intercept;
        for (size_t j = 0; j < x.size(); ++j)
            out += target.weights[j] * (x[j] - mean[j]) / std[j];
    } else {
        out = target.bias;
        for (const Stump &s : target.stumps) {
            const double z =
                (x[s.feature] - mean[s.feature]) / std[s.feature];
            out += z <= s.threshold ? s.left : s.right;
        }
    }
    return target.logSpace ? std::exp(out) : out;
}

namespace
{

/** Mean of y over the index subset. */
double
meanOver(const std::vector<double> &y, const std::vector<size_t> &idx)
{
    double sum = 0.0;
    for (size_t i : idx)
        sum += y[i];
    return sum / static_cast<double>(idx.size());
}

/**
 * Solve A w = b for symmetric positive-definite A (dense, row-major)
 * by Cholesky. A's ridge term guarantees positive-definiteness, so a
 * non-positive pivot means the caller's matrix is broken — reported
 * as Internal, never silently "fixed".
 */
std::vector<double>
choleskySolve(std::vector<double> A, std::vector<double> b)
{
    const size_t n = b.size();
    // Factor A = L L^T in place (lower triangle).
    for (size_t j = 0; j < n; ++j) {
        double diag = A[j * n + j];
        for (size_t k = 0; k < j; ++k)
            diag -= A[j * n + k] * A[j * n + k];
        if (!(diag > 0.0))
            throw Error(ErrorCategory::Internal,
                        "ridge normal matrix is not positive definite");
        const double ljj = std::sqrt(diag);
        A[j * n + j] = ljj;
        for (size_t i = j + 1; i < n; ++i) {
            double v = A[i * n + j];
            for (size_t k = 0; k < j; ++k)
                v -= A[i * n + k] * A[j * n + k];
            A[i * n + j] = v / ljj;
        }
    }
    // Forward substitution: L v = b (in place in b).
    for (size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (size_t k = 0; k < i; ++k)
            v -= A[i * n + k] * b[k];
        b[i] = v / A[i * n + i];
    }
    // Back substitution: L^T w = v.
    for (size_t ii = n; ii-- > 0;) {
        double v = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            v -= A[k * n + ii] * b[k];
        b[ii] = v / A[ii * n + ii];
    }
    return b;
}

/** Ridge fit over the z-scored rows named by @p idx. */
void
fitRidge(const std::vector<std::vector<double>> &Z,
         const std::vector<double> &y, const std::vector<size_t> &idx,
         double lambda, TargetModel &out)
{
    const size_t d = Z.front().size();
    out.intercept = meanOver(y, idx);
    std::vector<double> A(d * d, 0.0);
    std::vector<double> b(d, 0.0);
    for (size_t i : idx) {
        const std::vector<double> &z = Z[i];
        const double yc = y[i] - out.intercept;
        for (size_t j = 0; j < d; ++j) {
            b[j] += z[j] * yc;
            for (size_t k = 0; k <= j; ++k)
                A[j * d + k] += z[j] * z[k];
        }
    }
    for (size_t j = 0; j < d; ++j) {
        A[j * d + j] += lambda;
        for (size_t k = j + 1; k < d; ++k)
            A[j * d + k] = A[k * d + j];
    }
    out.weights = choleskySolve(std::move(A), std::move(b));
    out.bias = 0.0;
    out.stumps.clear();
}

/**
 * Gradient-boosted stumps over the z-scored rows named by @p idx:
 * per round, the single (feature, threshold) split with the largest
 * squared-error reduction (first feature / first split wins ties),
 * leaves shrunk by the learning rate.
 */
void
fitGbm(const std::vector<std::vector<double>> &Z,
       const std::vector<double> &y, const std::vector<size_t> &idx,
       unsigned rounds, double learningRate, TargetModel &out)
{
    const size_t d = Z.front().size();
    const size_t n = idx.size();
    out.bias = meanOver(y, idx);
    out.weights.clear();
    out.intercept = 0.0;
    out.stumps.clear();

    // Per-feature sorted order of the subset (positions into idx),
    // computed once; stable sort + position tie-break keeps the scan
    // order (and with it the fitted model) fully deterministic.
    std::vector<std::vector<uint32_t>> order(d);
    for (size_t j = 0; j < d; ++j) {
        std::vector<uint32_t> ord(n);
        std::iota(ord.begin(), ord.end(), 0u);
        std::sort(ord.begin(), ord.end(),
                  [&](uint32_t a, uint32_t b) {
                      const double va = Z[idx[a]][j];
                      const double vb = Z[idx[b]][j];
                      if (va != vb)
                          return va < vb;
                      return a < b;
                  });
        order[j] = std::move(ord);
    }

    std::vector<double> residual(n);
    for (size_t i = 0; i < n; ++i)
        residual[i] = y[idx[i]] - out.bias;

    for (unsigned round = 0; round < rounds; ++round) {
        double totalSum = 0.0;
        for (size_t i = 0; i < n; ++i)
            totalSum += residual[i];

        double bestGain = 0.0;
        uint32_t bestFeature = 0;
        size_t bestCut = 0;     // split after this many sorted rows
        double bestThreshold = 0.0;
        bool found = false;
        for (size_t j = 0; j < d; ++j) {
            const std::vector<uint32_t> &ord = order[j];
            double leftSum = 0.0;
            for (size_t c = 0; c + 1 < n; ++c) {
                leftSum += residual[ord[c]];
                const double lo = Z[idx[ord[c]]][j];
                const double hi = Z[idx[ord[c + 1]]][j];
                if (lo == hi)
                    continue;
                const double rightSum = totalSum - leftSum;
                const double lc = static_cast<double>(c + 1);
                const double rc = static_cast<double>(n - c - 1);
                const double gain = leftSum * leftSum / lc +
                                    rightSum * rightSum / rc -
                                    totalSum * totalSum /
                                        static_cast<double>(n);
                if (gain > bestGain) {
                    bestGain = gain;
                    bestFeature = static_cast<uint32_t>(j);
                    bestCut = c + 1;
                    bestThreshold = lo + (hi - lo) / 2.0;
                    found = true;
                }
            }
        }
        if (!found)
            break;   // every feature constant or residuals flat

        const std::vector<uint32_t> &ord = order[bestFeature];
        double leftSum = 0.0, rightSum = 0.0;
        for (size_t c = 0; c < n; ++c)
            (c < bestCut ? leftSum : rightSum) += residual[ord[c]];
        Stump s;
        s.feature = bestFeature;
        s.threshold = bestThreshold;
        s.left = learningRate * leftSum / static_cast<double>(bestCut);
        s.right =
            learningRate * rightSum / static_cast<double>(n - bestCut);
        for (size_t c = 0; c < n; ++c)
            residual[ord[c]] -= c < bestCut ? s.left : s.right;
        out.stumps.push_back(s);
    }
}

/** Fit one target over @p idx with the chosen family. */
void
fitTarget(ModelKind kind, const std::vector<std::vector<double>> &Z,
          const std::vector<double> &y, const std::vector<size_t> &idx,
          const TrainOptions &opts, TargetModel &out)
{
    if (kind == ModelKind::Ridge)
        fitRidge(Z, y, idx, opts.lambda, out);
    else
        fitGbm(Z, y, idx, opts.rounds, opts.learningRate, out);
}

/** Apply a fitted target to z-scored row @p z (training space). */
double
applyFitted(ModelKind kind, const TargetModel &t,
            const std::vector<double> &z)
{
    if (kind == ModelKind::Ridge) {
        double out = t.intercept;
        for (size_t j = 0; j < z.size(); ++j)
            out += t.weights[j] * z[j];
        return out;
    }
    double out = t.bias;
    for (const Stump &s : t.stumps)
        out += z[s.feature] <= s.threshold ? s.left : s.right;
    return out;
}

} // namespace

SurrogateModel
trainModel(const Dataset &ds, const TrainOptions &opts)
{
    opts.validate();
    if (ds.rows.empty())
        throw Error(ErrorCategory::InvalidArgument,
                    "empty training set");
    const size_t n = ds.rows.size();
    const size_t d = ds.featureNames.size();
    for (const std::vector<double> &row : ds.rows) {
        if (row.size() != d)
            throw Error(ErrorCategory::Internal,
                        "dataset row width mismatch");
    }

    SurrogateModel model;
    model.kind = opts.kind;
    model.configNames = configFeatureNames();
    model.profileNames = profileFeatureNames();
    model.profileValues = ds.profileFeatureValues;
    model.profileChecksum = ds.profileChecksum;
    model.baseConfigHash = ds.baseConfigHash;
    model.trainRows = n;
    model.trainSeed = opts.seed;

    // z-score scaler over the full set; constant columns get std 1 so
    // they standardize to exactly 0 instead of dividing by 0.
    model.mean.assign(d, 0.0);
    model.std.assign(d, 0.0);
    for (size_t j = 0; j < d; ++j) {
        double sum = 0.0;
        for (const std::vector<double> &row : ds.rows)
            sum += row[j];
        model.mean[j] = sum / static_cast<double>(n);
        double sq = 0.0;
        for (const std::vector<double> &row : ds.rows) {
            const double c = row[j] - model.mean[j];
            sq += c * c;
        }
        const double var = sq / static_cast<double>(n);
        model.std[j] = var > 0.0 ? std::sqrt(var) : 1.0;
    }
    std::vector<std::vector<double>> Z(n, std::vector<double>(d));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j)
            Z[i][j] = (ds.rows[i][j] - model.mean[j]) / model.std[j];
    }

    const bool runCv = opts.folds >= 2 && n >= opts.folds * 2;
    model.cvFolds = runCv ? opts.folds : 0;

    // Seeded fold assignment, shared across targets.
    std::vector<size_t> shuffled(n);
    std::iota(shuffled.begin(), shuffled.end(), size_t{0});
    if (runCv) {
        Rng rng(opts.seed);
        for (size_t i = n; i-- > 1;) {
            const size_t k =
                static_cast<size_t>(rng.below(static_cast<uint64_t>(
                    i + 1)));
            std::swap(shuffled[i], shuffled[k]);
        }
    }

    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});

    for (size_t t = 0; t < ds.targetNames.size(); ++t) {
        TargetModel tm;
        tm.name = ds.targetNames[t];

        std::vector<double> yRaw(n);
        for (size_t i = 0; i < n; ++i)
            yRaw[i] = ds.targets[i][t];
        tm.logSpace = opts.logTargets;
        for (size_t i = 0; i < n && tm.logSpace; ++i) {
            if (!(yRaw[i] > 0.0))
                tm.logSpace = false;
        }
        std::vector<double> y(n);
        for (size_t i = 0; i < n; ++i)
            y[i] = tm.logSpace ? std::log(yRaw[i]) : yRaw[i];

        if (runCv) {
            double absSum = 0.0, sqSum = 0.0, apeSum = 0.0;
            size_t count = 0, apeCount = 0;
            for (unsigned f = 0; f < opts.folds; ++f) {
                std::vector<size_t> trainIdx, testIdx;
                for (size_t i = 0; i < n; ++i) {
                    // Chunked assignment over the shuffled order.
                    const unsigned fold = static_cast<unsigned>(
                        i * opts.folds / n);
                    (fold == f ? testIdx : trainIdx)
                        .push_back(shuffled[i]);
                }
                TargetModel fm;
                fm.logSpace = tm.logSpace;
                fitTarget(opts.kind, Z, y, trainIdx, opts, fm);
                for (size_t i : testIdx) {
                    double pred = applyFitted(opts.kind, fm, Z[i]);
                    if (tm.logSpace)
                        pred = std::exp(pred);
                    const double err = pred - yRaw[i];
                    absSum += std::abs(err);
                    sqSum += err * err;
                    ++count;
                    if (yRaw[i] != 0.0) {
                        apeSum += std::abs(err) / std::abs(yRaw[i]);
                        ++apeCount;
                    }
                }
            }
            tm.cv.mae = absSum / static_cast<double>(count);
            tm.cv.rmse = std::sqrt(sqSum / static_cast<double>(count));
            tm.cv.mape = apeCount > 0
                             ? apeSum / static_cast<double>(apeCount)
                             : 0.0;
        }

        fitTarget(opts.kind, Z, y, all, opts, tm);
        model.targets.push_back(std::move(tm));
    }
    return model;
}

} // namespace ssim::proxy
