#include "pareto.hh"

#include <algorithm>

namespace ssim::proxy
{

namespace
{

/** Sweep-line frontier over the positions named by @p alive. */
std::vector<size_t>
frontierOf(const std::vector<ParetoPoint> &points,
           const std::vector<size_t> &alive)
{
    std::vector<size_t> order = alive;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) {
                  if (points[a].ipc != points[b].ipc)
                      return points[a].ipc > points[b].ipc;
                  if (points[a].epc != points[b].epc)
                      return points[a].epc < points[b].epc;
                  return a < b;
              });
    // Descending ipc: a point is non-dominated iff its epc beats
    // every higher-ipc point's best epc. Exact (ipc, epc) duplicates
    // of a kept point are kept too.
    std::vector<size_t> front;
    bool any = false;
    double bestEpc = 0.0, bestIpc = 0.0;
    for (size_t i : order) {
        const ParetoPoint &p = points[i];
        if (!any || p.epc < bestEpc ||
            (p.epc == bestEpc && p.ipc == bestIpc)) {
            front.push_back(i);
            if (!any || p.epc < bestEpc) {
                bestEpc = p.epc;
                bestIpc = p.ipc;
            }
            any = true;
        }
    }
    return front;
}

} // namespace

std::vector<size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> alive(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        alive[i] = i;
    return frontierOf(points, alive);
}

std::vector<uint8_t>
frontierMask(const std::vector<ParetoPoint> &points, unsigned margin)
{
    std::vector<uint8_t> mask(points.size(), 0);
    std::vector<size_t> alive(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        alive[i] = i;
    for (unsigned shell = 0; shell <= margin && !alive.empty();
         ++shell) {
        const std::vector<size_t> front = frontierOf(points, alive);
        for (size_t i : front)
            mask[i] = 1;
        std::vector<size_t> rest;
        rest.reserve(alive.size() - front.size());
        for (size_t i : alive) {
            if (!mask[i])
                rest.push_back(i);
        }
        alive = std::move(rest);
    }
    return mask;
}

} // namespace ssim::proxy
