#include "model_io.hh"

#include <fstream>
#include <sstream>

#include "util/journal.hh"
#include "util/json_reader.hh"
#include "util/json_writer.hh"

namespace ssim::proxy
{

namespace
{

using util::json::appendBool;
using util::json::appendDouble;
using util::json::appendEscaped;
using util::json::appendField;
using util::json::appendHex64;
using util::json::appendKey;
using util::json::appendU64;
using util::json::LineScanner;

void
appendStringArray(std::string &out, const char *key,
                  const std::vector<std::string> &items)
{
    appendKey(out, key);
    out += '[';
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ',';
        appendEscaped(out, items[i]);
    }
    out += ']';
}

void
appendDoubleArray(std::string &out, const char *key,
                  const std::vector<double> &items)
{
    appendKey(out, key);
    out += '[';
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ',';
        out += util::json::doubleToken(items[i]);
    }
    out += ']';
}

std::string
renderPayload(const SurrogateModel &m)
{
    std::string out = "{";
    appendU64(out, "feature_version", m.featureVersion);
    appendField(out, "kind", modelKindName(m.kind));
    appendHex64(out, "profile_checksum", m.profileChecksum);
    appendHex64(out, "base_config", m.baseConfigHash);
    appendU64(out, "train_rows", m.trainRows);
    appendU64(out, "train_seed", m.trainSeed);
    appendU64(out, "cv_folds", m.cvFolds);
    appendStringArray(out, "config_features", m.configNames);
    appendStringArray(out, "profile_features", m.profileNames);
    appendDoubleArray(out, "mean", m.mean);
    appendDoubleArray(out, "std", m.std);
    appendDoubleArray(out, "profile_values", m.profileValues);
    appendKey(out, "targets");
    out += '[';
    for (size_t i = 0; i < m.targets.size(); ++i) {
        const TargetModel &t = m.targets[i];
        if (i > 0)
            out += ',';
        out += '{';
        appendField(out, "name", t.name);
        appendBool(out, "log_space", t.logSpace);
        appendDouble(out, "cv_mae", t.cv.mae);
        appendDouble(out, "cv_rmse", t.cv.rmse);
        appendDouble(out, "cv_mape", t.cv.mape);
        if (m.kind == ModelKind::Ridge) {
            appendDouble(out, "intercept", t.intercept);
            appendDoubleArray(out, "weights", t.weights);
        } else {
            appendDouble(out, "bias", t.bias);
            appendKey(out, "stumps");
            out += '[';
            for (size_t s = 0; s < t.stumps.size(); ++s) {
                const Stump &st = t.stumps[s];
                if (s > 0)
                    out += ',';
                out += '[';
                out += std::to_string(st.feature);
                out += ',';
                out += util::json::doubleToken(st.threshold);
                out += ',';
                out += util::json::doubleToken(st.left);
                out += ',';
                out += util::json::doubleToken(st.right);
                out += ']';
            }
            out += ']';
        }
        out += '}';
    }
    out += ']';
    out += '}';
    return out;
}

// --- Strict fixed-order parsing ------------------------------------

/** Consume `"key":` exactly, with a field comma when not first. */
void
expectKey(LineScanner &p, const char *key, bool first = false)
{
    if (!first && !p.consume(','))
        throw p.fail(std::string("expected ',' before '") + key + "'");
    const std::string got = p.parseString();
    if (got != key)
        throw p.fail(std::string("expected key '") + key + "', got '" +
                     got + "'");
    if (!p.consume(':'))
        throw p.fail(std::string("expected ':' after '") + key + "'");
}

std::vector<std::string>
parseStringArray(LineScanner &p)
{
    if (!p.consume('['))
        throw p.fail("expected '['");
    std::vector<std::string> out;
    if (p.consume(']'))
        return out;
    do {
        out.push_back(p.parseString());
    } while (p.consume(','));
    if (!p.consume(']'))
        throw p.fail("expected ']'");
    return out;
}

std::vector<double>
parseDoubleArray(LineScanner &p)
{
    if (!p.consume('['))
        throw p.fail("expected '['");
    std::vector<double> out;
    if (p.consume(']'))
        return out;
    do {
        out.push_back(p.parseDouble());
    } while (p.consume(','));
    if (!p.consume(']'))
        throw p.fail("expected ']'");
    return out;
}

SurrogateModel
parsePayload(const std::string &payload, const std::string &file)
{
    LineScanner p(payload, file, 1);
    SurrogateModel m;
    if (!p.consume('{'))
        throw p.fail("expected '{' opening the model payload");
    expectKey(p, "feature_version", true);
    m.featureVersion = static_cast<uint32_t>(p.parseU64());
    if (m.featureVersion != FeatureSchemaVersion)
        throw Error(ErrorCategory::VersionMismatch,
                    "model uses feature schema v" +
                    std::to_string(m.featureVersion) +
                    ", this build speaks v" +
                    std::to_string(FeatureSchemaVersion) +
                    "; retrain the model", {file, 1});
    expectKey(p, "kind");
    const std::string kind = p.parseString();
    if (kind == "ridge")
        m.kind = ModelKind::Ridge;
    else if (kind == "gbm")
        m.kind = ModelKind::Gbm;
    else
        throw p.fail("unknown model kind '" + kind + "'");
    expectKey(p, "profile_checksum");
    m.profileChecksum = p.parseHex64String();
    expectKey(p, "base_config");
    m.baseConfigHash = p.parseHex64String();
    expectKey(p, "train_rows");
    m.trainRows = p.parseU64();
    expectKey(p, "train_seed");
    m.trainSeed = p.parseU64();
    expectKey(p, "cv_folds");
    m.cvFolds = static_cast<uint32_t>(p.parseU64());
    expectKey(p, "config_features");
    m.configNames = parseStringArray(p);
    expectKey(p, "profile_features");
    m.profileNames = parseStringArray(p);
    expectKey(p, "mean");
    m.mean = parseDoubleArray(p);
    expectKey(p, "std");
    m.std = parseDoubleArray(p);
    expectKey(p, "profile_values");
    m.profileValues = parseDoubleArray(p);
    expectKey(p, "targets");
    if (!p.consume('['))
        throw p.fail("targets must be an array");
    if (!p.consume(']')) {
        do {
            TargetModel t;
            if (!p.consume('{'))
                throw p.fail("target must be an object");
            expectKey(p, "name", true);
            t.name = p.parseString();
            expectKey(p, "log_space");
            t.logSpace = p.parseBool();
            expectKey(p, "cv_mae");
            t.cv.mae = p.parseDouble();
            expectKey(p, "cv_rmse");
            t.cv.rmse = p.parseDouble();
            expectKey(p, "cv_mape");
            t.cv.mape = p.parseDouble();
            if (m.kind == ModelKind::Ridge) {
                expectKey(p, "intercept");
                t.intercept = p.parseDouble();
                expectKey(p, "weights");
                t.weights = parseDoubleArray(p);
            } else {
                expectKey(p, "bias");
                t.bias = p.parseDouble();
                expectKey(p, "stumps");
                if (!p.consume('['))
                    throw p.fail("stumps must be an array");
                if (!p.consume(']')) {
                    do {
                        if (!p.consume('['))
                            throw p.fail("stump must be an array");
                        Stump s;
                        s.feature =
                            static_cast<uint32_t>(p.parseU64());
                        if (!p.consume(','))
                            throw p.fail("expected ',' in stump");
                        s.threshold = p.parseDouble();
                        if (!p.consume(','))
                            throw p.fail("expected ',' in stump");
                        s.left = p.parseDouble();
                        if (!p.consume(','))
                            throw p.fail("expected ',' in stump");
                        s.right = p.parseDouble();
                        if (!p.consume(']'))
                            throw p.fail("expected ']' closing stump");
                        t.stumps.push_back(s);
                    } while (p.consume(','));
                    if (!p.consume(']'))
                        throw p.fail("expected ']' closing stumps");
                }
            }
            if (!p.consume('}'))
                throw p.fail("expected '}' closing target");
            m.targets.push_back(std::move(t));
        } while (p.consume(','));
        if (!p.consume(']'))
            throw p.fail("expected ']' closing targets");
    }
    if (!p.consume('}'))
        throw p.fail("expected '}' closing the model payload");
    if (!p.atEnd())
        throw p.fail("trailing bytes after the model payload");

    // Semantic validation: every index and width the predictor will
    // dereference, checked once here so predict() never reads out of
    // bounds off a corrupted-but-checksummed file.
    const auto corrupt = [&](const std::string &msg) {
        return Error(ErrorCategory::CorruptData, msg, {file, 1});
    };
    const size_t d = m.configNames.size() + m.profileNames.size();
    if (m.mean.size() != d || m.std.size() != d)
        throw corrupt("model scaler width does not match its feature "
                      "names");
    if (m.profileValues.size() != m.profileNames.size())
        throw corrupt("model profile values do not match its profile "
                      "feature names");
    for (double s : m.std) {
        if (!(s > 0.0))
            throw corrupt("model scaler has a non-positive std entry");
    }
    for (const TargetModel &t : m.targets) {
        if (m.kind == ModelKind::Ridge && t.weights.size() != d)
            throw corrupt("target '" + t.name +
                          "' weight vector width mismatch");
        for (const Stump &s : t.stumps) {
            if (s.feature >= d)
                throw corrupt("target '" + t.name +
                              "' references feature " +
                              std::to_string(s.feature) +
                              " past the feature vector");
        }
    }
    return m;
}

} // namespace

std::string
renderModel(const SurrogateModel &model)
{
    const std::string payload = renderPayload(model);
    std::string out = "{";
    appendField(out, "format", "ssim-model");
    appendU64(out, "version", ModelFormatVersion);
    appendU64(out, "payload_bytes", payload.size());
    appendHex64(out, "payload_checksum", util::fnv1a64(payload));
    appendKey(out, "payload");
    out += payload;
    out += "}\n";
    return out;
}

SurrogateModel
parseModel(const std::string &text, const std::string &file)
{
    std::string line = text;
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();

    LineScanner p(line, file, 1);
    if (!p.consume('{'))
        throw p.fail("not a ssim model (expected '{')");
    expectKey(p, "format", true);
    const std::string format = p.parseString();
    if (format != "ssim-model")
        throw p.fail("not a ssim model (format '" + format + "')");
    expectKey(p, "version");
    const uint64_t version = p.parseU64();
    if (version != ModelFormatVersion)
        throw Error(ErrorCategory::VersionMismatch,
                    "model format version " + std::to_string(version) +
                    ", this build reads version " +
                    std::to_string(ModelFormatVersion), {file, 1});
    expectKey(p, "payload_bytes");
    const uint64_t payloadBytes = p.parseU64();
    expectKey(p, "payload_checksum");
    const uint64_t checksum = p.parseHex64String();
    expectKey(p, "payload");
    p.skipSpace();
    const size_t start = p.pos();

    // The payload runs to the final '}' closing the header object;
    // verify length and checksum against the raw bytes before
    // interpreting a single field, exactly like the profile loader.
    if (line.empty() || line.back() != '}')
        throw Error(ErrorCategory::CorruptData,
                    "model file is truncated (no closing '}')",
                    {file, 1});
    if (line.size() - 1 < start)
        throw Error(ErrorCategory::CorruptData,
                    "model file is truncated (empty payload)",
                    {file, 1});
    const std::string payload = line.substr(start,
                                            line.size() - 1 - start);
    if (payload.size() != payloadBytes)
        throw Error(ErrorCategory::CorruptData,
                    "model payload is " +
                    std::to_string(payload.size()) +
                    " bytes, header promises " +
                    std::to_string(payloadBytes) +
                    " (truncated or padded file)", {file, 1});
    if (util::fnv1a64(payload) != checksum)
        throw Error(ErrorCategory::CorruptData,
                    "model payload checksum mismatch (corrupted file)",
                    {file, 1});
    return parsePayload(payload, file);
}

void
saveModelFile(const SurrogateModel &model, const std::string &path)
{
    const std::string bytes = renderModel(model);
    Expected<void> written = util::atomicWriteFile(
        path, [&](std::ostream &os) { os << bytes; });
    if (!written)
        throw written.error();
}

SurrogateModel
loadModelFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw Error(ErrorCategory::IoError,
                    "cannot open model file", {path, 0});
    std::ostringstream ss;
    ss << is.rdbuf();
    return parseModel(ss.str(), path);
}

Expected<SurrogateModel>
tryLoadModelFile(const std::string &path)
{
    return tryInvoke([&] { return loadModelFile(path); });
}

} // namespace ssim::proxy
