#include "hls.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace ssim::baselines
{

using core::StatisticalProfile;
using core::SynthInst;
using core::SyntheticTrace;

HlsProfile
HlsProfile::fromProfile(const StatisticalProfile &profile)
{
    HlsProfile hls;
    hls.benchmark = profile.benchmark;
    hls.instructions = profile.instructions;

    std::array<uint64_t, isa::NumInstClasses> classCounts{};
    uint64_t blocks = 0;
    double sizeSum = 0.0, sizeSqSum = 0.0;
    uint64_t branches = 0, taken = 0, mispredict = 0, redirect = 0;
    uint64_t il1Acc = 0, il1Miss = 0, il2Miss = 0, itlbMiss = 0;
    uint64_t loads = 0, dl1Miss = 0, dl2Miss = 0, dtlbMiss = 0;

    // Node entry statistics cover every dynamic block exactly once.
    for (const auto &[gram, node] : profile.nodes) {
        const core::QBlockStats &qb = node.entryStats;
        const uint64_t occ = qb.occurrences;
        if (occ == 0)
            continue;
        const uint32_t blockId = StatisticalProfile::blockOf(gram);
        const core::BlockShape &shape = profile.shapes[blockId];

        blocks += occ;
        sizeSum += static_cast<double>(occ) * shape.size();
        sizeSqSum += static_cast<double>(occ) * shape.size() *
            shape.size();

        for (size_t i = 0; i < shape.size(); ++i) {
            classCounts[static_cast<int>(shape[i].cls)] += occ;
            if (i < qb.slots.size()) {
                const core::SlotStats &ss = qb.slots[i];
                for (const auto &dist : ss.depDist) {
                    for (const auto &[value, count] : dist.entries())
                        hls.depDist.record(value, count);
                }
                il1Acc += ss.il1Access;
                il1Miss += ss.il1Miss;
                il2Miss += ss.il2Miss;
                itlbMiss += ss.itlbMiss;
                if (shape[i].isLoad) {
                    loads += occ;
                    dl1Miss += ss.dl1Miss;
                    dl2Miss += ss.dl2Miss;
                    dtlbMiss += ss.dtlbMiss;
                }
            }
        }
        branches += qb.branch.count;
        taken += qb.branch.taken;
        mispredict += qb.branch.mispredict;
        redirect += qb.branch.redirect;
    }

    uint64_t totalInsts = 0;
    for (uint64_t c : classCounts)
        totalInsts += c;
    if (totalInsts > 0) {
        for (int c = 0; c < isa::NumInstClasses; ++c) {
            hls.mix[c] = static_cast<double>(classCounts[c]) /
                static_cast<double>(totalInsts);
        }
    }

    if (blocks > 0) {
        hls.meanBlockSize = sizeSum / static_cast<double>(blocks);
        const double var = sizeSqSum / static_cast<double>(blocks) -
            hls.meanBlockSize * hls.meanBlockSize;
        hls.stddevBlockSize = std::sqrt(std::max(0.0, var));
    }

    auto ratio = [](uint64_t num, uint64_t den) {
        return den ? static_cast<double>(num) / den : 0.0;
    };
    hls.takenProb = ratio(taken, branches);
    hls.mispredictProb = ratio(mispredict, branches);
    hls.redirectProb = ratio(redirect, branches);
    hls.il1AccessProb = ratio(il1Acc, profile.instructions);
    hls.il1MissProb = ratio(il1Miss, il1Acc);
    hls.il2MissProb = ratio(il2Miss, il1Miss);
    hls.itlbMissProb = ratio(itlbMiss, il1Acc);
    hls.dl1MissProb = ratio(dl1Miss, loads);
    hls.dl2MissProb = ratio(dl2Miss, dl1Miss);
    hls.dtlbMissProb = ratio(dtlbMiss, loads);
    return hls;
}

namespace
{

/** Static shape of one synthetic HLS block. */
struct HlsBlock
{
    std::vector<isa::InstClass> classes;
    uint32_t takenSucc = 0;
    uint32_t notTakenSucc = 0;
};

/** Operand count for an instruction class in the mini ISA. */
int
srcsForClass(isa::InstClass cls)
{
    using isa::InstClass;
    switch (cls) {
      case InstClass::Load:
        return 1;
      case InstClass::Store:
      case InstClass::IntCondBranch:
      case InstClass::FpCondBranch:
        return 2;
      case InstClass::IndirectBranch:
        return 1;
      case InstClass::FpSqrt:
        return 1;
      default:
        return 2;
    }
}

bool
classHasDest(isa::InstClass cls)
{
    using isa::InstClass;
    switch (cls) {
      case InstClass::Store:
      case InstClass::IntCondBranch:
      case InstClass::FpCondBranch:
      case InstClass::IndirectBranch:
        return false;
      default:
        return true;
    }
}

} // namespace

SyntheticTrace
generateHlsTrace(const HlsProfile &profile, const HlsOptions &opts)
{
    Rng rng(opts.seed);
    SyntheticTrace trace;
    trace.benchmark = profile.benchmark + "(hls)";
    trace.reductionFactor = opts.reductionFactor;
    trace.seed = opts.seed;

    // All instruction slots draw from the overall mix — HLS assigns
    // instructions to blocks "randomly based on the overall
    // instruction mix distribution" with no sequence modeling.
    auto drawClass = [&rng, &profile]() {
        double u = rng.uniform();
        for (int c = 0; c < isa::NumInstClasses; ++c) {
            u -= profile.mix[c];
            if (u <= 0.0)
                return static_cast<isa::InstClass>(c);
        }
        return isa::InstClass::IntAlu;
    };

    // Build the 100 synthetic blocks and their random successors.
    std::vector<HlsBlock> blocks(opts.numBlocks);
    for (uint32_t b = 0; b < opts.numBlocks; ++b) {
        const double drawn =
            rng.gaussian(profile.meanBlockSize, profile.stddevBlockSize);
        const int size = std::max(1, static_cast<int>(
            std::llround(drawn)));
        HlsBlock &blk = blocks[b];
        for (int i = 0; i < size; ++i)
            blk.classes.push_back(drawClass());
        blk.takenSucc = static_cast<uint32_t>(
            rng.below(opts.numBlocks));
        blk.notTakenSucc = static_cast<uint32_t>(
            rng.below(opts.numBlocks));
    }

    const uint64_t target = std::max<uint64_t>(
        1, profile.instructions /
               std::max<uint64_t>(1, opts.reductionFactor));

    uint32_t cur = 0;
    while (trace.insts.size() < target) {
        const HlsBlock &blk = blocks[cur];
        bool takenExit = false;
        for (size_t i = 0; i < blk.classes.size() && !takenExit;
             ++i) {
            const isa::InstClass cls = blk.classes[i];
            SynthInst si;
            si.cls = cls;
            si.isLoad = cls == isa::InstClass::Load;
            si.isStore = cls == isa::InstClass::Store;
            si.isCtrl = cls == isa::InstClass::IntCondBranch ||
                cls == isa::InstClass::FpCondBranch ||
                cls == isa::InstClass::IndirectBranch;
            si.hasDest = classHasDest(cls);
            si.numSrcs = static_cast<uint8_t>(srcsForClass(cls));
            si.blockId = cur;

            for (int p = 0; p < si.numSrcs; ++p) {
                if (profile.depDist.empty())
                    break;
                for (int attempt = 0; attempt < 1000; ++attempt) {
                    const uint32_t d = profile.depDist.sample(rng);
                    if (d == 0)
                        break;
                    if (d > trace.insts.size())
                        continue;
                    if (trace.insts[trace.insts.size() - d].hasDest) {
                        si.depDist[p] = static_cast<uint16_t>(d);
                        break;
                    }
                }
            }

            si.il1Access = rng.chance(profile.il1AccessProb);
            if (si.il1Access) {
                si.il1Miss = rng.chance(profile.il1MissProb);
                if (si.il1Miss)
                    si.il2Miss = rng.chance(profile.il2MissProb);
                si.itlbMiss = rng.chance(profile.itlbMissProb);
            }
            if (si.isLoad) {
                si.dl1Miss = rng.chance(profile.dl1MissProb);
                if (si.dl1Miss)
                    si.dl2Miss = rng.chance(profile.dl2MissProb);
                si.dtlbMiss = rng.chance(profile.dtlbMissProb);
            }
            if (si.isCtrl) {
                si.taken = rng.chance(profile.takenProb);
                takenExit = si.taken;
                const double u = rng.uniform();
                if (u < profile.mispredictProb)
                    si.outcome = cpu::BranchOutcome::Mispredict;
                else if (u < profile.mispredictProb +
                             profile.redirectProb)
                    si.outcome = cpu::BranchOutcome::FetchRedirect;
            }
            trace.insts.push_back(si);
        }
        // A taken branch leaves through the taken arc; otherwise the
        // block falls through.
        cur = takenExit ? blk.takenSucc : blk.notTakenSucc;
    }
    return trace;
}

} // namespace ssim::baselines
