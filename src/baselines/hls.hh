/**
 * @file
 * The HLS statistical workload model (Oskin, Chong and Farrens,
 * ISCA 2000), implemented as the paper's section 5 describes it for
 * the Figure 7 comparison:
 *
 *  - one hundred synthetic basic blocks whose sizes are drawn from a
 *    normal distribution over the average dynamic block size;
 *  - instructions assigned randomly from the overall instruction mix
 *    (no per-block sequence modeling — the key contrast with the SFG);
 *  - branch predictability and cache behaviour applied as single
 *    program-wide probabilities;
 *  - dependencies drawn from one aggregate distance distribution.
 *
 * The generated trace runs on the same synthetic-trace simulator as
 * SMART-HLS traces, so Figure 7 compares workload models only.
 */

#ifndef SSIM_BASELINES_HLS_HH
#define SSIM_BASELINES_HLS_HH

#include <array>
#include <cstdint>

#include "core/profile.hh"
#include "core/synth_trace.hh"
#include "util/distribution.hh"

namespace ssim::baselines
{

/** Aggregate (program-wide) statistics the HLS model uses. */
struct HlsProfile
{
    std::string benchmark;
    uint64_t instructions = 0;

    double meanBlockSize = 0.0;
    double stddevBlockSize = 0.0;

    /** Overall instruction mix (by paper class). */
    std::array<double, isa::NumInstClasses> mix{};

    /** Aggregate RAW distance distribution (all operands pooled). */
    DiscreteDistribution depDist;

    // Program-wide branch probabilities.
    double takenProb = 0.0;
    double mispredictProb = 0.0;
    double redirectProb = 0.0;

    // Program-wide cache/TLB probabilities.
    double il1AccessProb = 0.0;
    double il1MissProb = 0.0;   ///< conditional on an access
    double il2MissProb = 0.0;   ///< conditional on an L1 miss
    double itlbMissProb = 0.0;  ///< conditional on an access
    double dl1MissProb = 0.0;   ///< per load
    double dl2MissProb = 0.0;   ///< conditional on an L1 miss
    double dtlbMissProb = 0.0;  ///< per load

    /** Collapse a (any-order) statistical profile into HLS form. */
    static HlsProfile fromProfile(
        const core::StatisticalProfile &profile);
};

/** HLS synthetic trace generation controls. */
struct HlsOptions
{
    uint32_t numBlocks = 100;       ///< per the HLS paper
    uint64_t reductionFactor = 1000;
    uint64_t seed = 1;
};

/** Generate an HLS synthetic trace from aggregate statistics. */
core::SyntheticTrace generateHlsTrace(const HlsProfile &profile,
                                      const HlsOptions &opts = {});

} // namespace ssim::baselines

#endif // SSIM_BASELINES_HLS_HH
