#include "sweep.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <sys/stat.h>

#include <algorithm>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "fault/fault.hh"
#include "obs/export_json.hh"
#include "util/drain.hh"
#include "util/process.hh"
#include "util/random.hh"

namespace ssim::experiments
{

namespace
{

using Clock = std::chrono::steady_clock;

// The stop flag and its SIGINT/SIGTERM handlers live in util/drain,
// shared with the serve engine so both speak one drain discipline.

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

PointStatus
statusFromName(const std::string &name)
{
    if (name == "ok")
        return PointStatus::Ok;
    if (name == "error")
        return PointStatus::Error;
    if (name == "timeout")
        return PointStatus::Timeout;
    if (name == "crashed")
        return PointStatus::Crashed;
    if (name == "pruned")
        return PointStatus::Pruned;
    throw Error(ErrorCategory::CorruptData,
                "journal has unknown point status '" + name + "'");
}

ErrorCategory
categoryFromName(const std::string &name)
{
    for (int c = 0; c <= static_cast<int>(ErrorCategory::Internal);
         ++c) {
        const auto cat = static_cast<ErrorCategory>(c);
        if (name == errorCategoryName(cat))
            return cat;
    }
    return ErrorCategory::Internal;
}

/** In-flight attempt shared between its worker and the watchdog. */
struct AttemptState
{
    size_t point = 0;
    unsigned attempt = 0;
    uint32_t tid = 0;       ///< trace track (worker id + 1)
    Clock::time_point deadline;
    bool hasDeadline = false;
    bool settled = false;   ///< guarded by the engine mutex
};

class Engine
{
  public:
    Engine(const std::vector<SweepPoint> &points, const PointFn &fn,
           const SweepOptions &opts)
        : points_(points), fn_(fn), opts_(opts),
          legacyPlan_(fault::FaultPlan::fromSweepEnv()),
          t0_(Clock::now())
    {
        // The legacy SSIM_SWEEP_CRASH_AFTER / SSIM_SWEEP_STALL_POINT
        // hooks latch here, at engine construction, exactly as their
        // old ad-hoc parsers did; they now ride the fault registry as
        // a subsystem-local compatibility plan.
        summary_.outcomes.resize(points_.size());
        attemptsUsed_.assign(points_.size(), 0);
        for (size_t i = 0; i < points_.size(); ++i)
            summary_.outcomes[i].seed = pointSeed(opts_.seed, i);
    }

    SweepSummary run();

  private:
    void prepareJournal();
    void applyKeepMask();
    void replayJournal(const std::vector<util::JournalRecord> &old);
    void journalAppend(const util::JournalRecord &rec);
    util::JournalRecord doneRecord(size_t point,
                                   const PointOutcome &o) const;
    void settle(size_t point, PointOutcome &&outcome, uint32_t tid);
    void writeHeartbeat();
    void workerLoop(unsigned workerId);
    void watchdogLoop();
    unsigned totalAttemptsAllowed() const
    {
        return 1 + opts_.maxRetries;
    }

    /** Microseconds since the sweep started (trace timestamps). */
    double
    usSinceStart(Clock::time_point tp) const
    {
        return std::chrono::duration<double, std::micro>(tp - t0_)
            .count();
    }

    const std::vector<SweepPoint> &points_;
    const PointFn &fn_;
    const SweepOptions &opts_;

    SweepSummary summary_;
    std::vector<unsigned> attemptsUsed_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<size_t> queue_;
    std::vector<std::shared_ptr<AttemptState>> inflight_;
    bool finished_ = false;   ///< workers done; watchdog may exit

    util::Journal journal_;
    bool replayed_ = false;   ///< resume replay filled the queue
    std::shared_ptr<fault::FaultPlan> legacyPlan_;

    Clock::time_point t0_;

    // Heartbeat progress (guarded by mu_).
    size_t hbSettled_ = 0;
    size_t hbOk_ = 0;
    size_t hbFailed_ = 0;
    size_t hbRetried_ = 0;
    size_t hbPruned_ = 0;
};

void
Engine::journalAppend(const util::JournalRecord &rec)
{
    if (!journal_.isOpen())
        return;
    // Journal failures must not kill a sweep that is otherwise
    // producing results; surface them once on stderr and carry on
    // (the run degrades to non-resumable).
    Expected<void> r = journal_.append(rec);
    if (!r) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            std::fputs((std::string("sweep: journal write failed: ") +
                        r.error().what() + "\n").c_str(), stderr);
        return;
    }
    if (rec.event == "done") {
        // Fault site "sweep.journal.done": one hit per successfully
        // appended done record (the legacy crash-after-N hook maps to
        // on_hit=N). A crash lands after the record is durably on
        // disk, which is the harder resume case.
        const fault::Outcome out =
            fault::point("sweep.journal.done", std::string(),
                         legacyPlan_.get());
        if (out.action == fault::Action::Crash) {
            journal_.sync();
            fault::crashHard();
        }
        fault::sleepFor(out);
    }
}

util::JournalRecord
Engine::doneRecord(size_t point, const PointOutcome &o) const
{
    util::JournalRecord rec;
    rec.event = "done";
    rec.point = point;
    rec.attempt = o.attempts;
    rec.configHash = points_[point].configHash;
    rec.seed = o.seed;
    rec.status = pointStatusName(o.status);
    if (o.status == PointStatus::Error)
        rec.category = errorCategoryName(o.errorCategory);
    rec.message = o.message;
    rec.wallSeconds = o.wallSeconds;
    // Observation, not a result: the point's gen+sim wall time rides
    // in wall_s and the process high-water mark here; both stay
    // outside `metrics`, whose values must reproduce across resume.
    rec.peakRssKb = peakRssKb();
    for (const auto &[name, value] : o.metrics)
        rec.metrics.push_back({name, value});
    // Config features turn `ok` records into surrogate training rows;
    // failures and pruned points carry none (nothing to learn from).
    if (o.status == PointStatus::Ok) {
        for (const auto &[name, value] : points_[point].features)
            rec.features.push_back({name, value});
    }
    return rec;
}

/** Record a settled attempt; mutex held by the caller. */
void
Engine::settle(size_t point, PointOutcome &&outcome, uint32_t tid)
{
    outcome.attempts = attemptsUsed_[point];
    summary_.outcomes[point] = outcome;
    journalAppend(doneRecord(point, summary_.outcomes[point]));
    const bool retryable =
        outcome.status == PointStatus::Error
            ? retryableCategory(outcome.errorCategory)
            : retryableStatus(outcome.status);
    const bool willRetry =
        outcome.status != PointStatus::Ok && retryable &&
        attemptsUsed_[point] < totalAttemptsAllowed() &&
        !util::drainRequested();
    if (willRetry)
        queue_.push_back(point);

    // Heartbeat counters track *points*, not attempts: an attempt
    // that will be retried is progress toward a settle, not a settle.
    if (!willRetry) {
        ++hbSettled_;
        if (outcome.status == PointStatus::Ok)
            ++hbOk_;
        else
            ++hbFailed_;
    } else {
        ++hbRetried_;
        if (opts_.trace) {
            opts_.trace->instant(
                "retry " + points_[point].name, "retry",
                usSinceStart(Clock::now()), tid,
                {obs::TraceArg::u64("point", point),
                 obs::TraceArg::u64("next_attempt",
                                    attemptsUsed_[point] + 1)});
        }
    }
    writeHeartbeat();
}

/**
 * Rewrite the heartbeat stats JSON; mutex held by the caller. A tiny
 * fresh registry per write keeps this self-contained — the cost is
 * trivial next to a settled design point.
 */
void
Engine::writeHeartbeat()
{
    if (opts_.heartbeatPath.empty())
        return;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0_).count();
    const size_t remaining = queue_.size() + inflight_.size();

    obs::Registry reg;
    reg.counter("sweep.points.total").set(points_.size());
    reg.counter("sweep.points.settled").set(hbSettled_);
    reg.counter("sweep.points.ok").set(hbOk_);
    reg.counter("sweep.points.failed").set(hbFailed_);
    reg.counter("sweep.points.retried").set(hbRetried_);
    reg.counter("sweep.points.pruned").set(hbPruned_);
    reg.gauge("sweep.points.inflight")
        .set(static_cast<double>(inflight_.size()));
    reg.gauge("sweep.elapsed-seconds").set(elapsed);
    reg.gauge("sweep.peak-rss-kb")
        .set(static_cast<double>(peakRssKb()));
    // Naive but serviceable ETA: average settled-attempt rate
    // extrapolated over the remaining work.
    reg.gauge("sweep.eta-seconds")
        .set(hbSettled_ ? elapsed / static_cast<double>(hbSettled_) *
                              static_cast<double>(remaining)
                        : 0.0);

    const obs::RunManifest manifest =
        opts_.manifest ? *opts_.manifest : obs::makeManifest("sweep");
    // Failures are tolerated exactly like journal failures: the sweep
    // result matters more than the progress file.
    (void)obs::writeStatsJson(opts_.heartbeatPath, reg.snapshot(),
                              manifest);
}

void
Engine::workerLoop(unsigned workerId)
{
    const uint32_t tid = workerId + 1;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        // Poll-wait: a signal handler cannot safely notify a condvar,
        // so waits are bounded to observe the stop flag promptly.
        cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
            return util::drainRequested() || !queue_.empty() ||
                   inflight_.empty();
        });
        if (util::drainRequested())
            return;
        if (queue_.empty()) {
            if (inflight_.empty())
                return;   // nothing left and no retries can appear
            continue;
        }

        const size_t point = queue_.front();
        queue_.pop_front();
        const unsigned attempt = ++attemptsUsed_[point];
        auto st = std::make_shared<AttemptState>();
        st->point = point;
        st->attempt = attempt;
        st->tid = tid;
        if (opts_.pointTimeoutSeconds > 0) {
            st->hasDeadline = true;
            st->deadline =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        opts_.pointTimeoutSeconds));
        }
        inflight_.push_back(st);
        ++summary_.executedCount;

        util::JournalRecord startRec;
        startRec.event = "start";
        startRec.point = point;
        startRec.attempt = attempt;
        startRec.configHash = points_[point].configHash;
        startRec.seed = summary_.outcomes[point].seed;
        journalAppend(startRec);

        lk.unlock();

        PointOutcome o;
        o.seed = pointSeed(opts_.seed, point);
        const auto t0 = Clock::now();
        // Fault site "sweep.point.start", keyed by point index; the
        // legacy stall hook maps to {key:index, on_hit:1, stall} so
        // only the first attempt blows its budget and the retry runs
        // clean.
        const fault::Outcome startFault =
            fault::point("sweep.point.start", std::to_string(point),
                         legacyPlan_.get());
        if (startFault.action == fault::Action::Crash)
            fault::crashHard();
        fault::sleepFor(startFault);
        try {
            o.metrics = fn_(point, o.seed);
            o.status = PointStatus::Ok;
        } catch (const Error &e) {
            o.status = PointStatus::Error;
            o.errorCategory = e.category();
            o.message = e.message();
        } catch (const std::exception &e) {
            // A non-ssim exception is a bug in the point function,
            // but one bad point must not take down the pool.
            o.status = PointStatus::Error;
            o.errorCategory = ErrorCategory::Internal;
            o.message = e.what();
        }
        const auto t1 = Clock::now();
        o.wallSeconds = std::chrono::duration<double>(t1 - t0).count();

        lk.lock();
        auto it = std::find(inflight_.begin(), inflight_.end(), st);
        if (it != inflight_.end())
            inflight_.erase(it);
        const bool late = st->settled;
        if (!st->settled) {
            st->settled = true;
            settle(point, std::move(o), tid);
        }
        // else: the watchdog already journaled this attempt as a
        // timeout; the late result is discarded.
        if (opts_.trace) {
            const PointOutcome &fin = summary_.outcomes[point];
            opts_.trace->complete(
                points_[point].name, "point", usSinceStart(t0),
                usSinceStart(t1) - usSinceStart(t0), tid,
                {obs::TraceArg::u64("point", point),
                 obs::TraceArg::u64("attempt", attempt),
                 obs::TraceArg::str("status",
                                    late ? "discarded-after-timeout"
                                         : pointStatusName(fin.status)),
                 obs::TraceArg::u64("seed",
                                    pointSeed(opts_.seed, point))});
        }
        cv_.notify_all();
    }
}

void
Engine::watchdogLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!finished_) {
        cv_.wait_for(lk, std::chrono::milliseconds(5),
                     [&] { return finished_; });
        if (finished_)
            return;
        const auto now = Clock::now();
        for (size_t i = 0; i < inflight_.size();) {
            auto st = inflight_[i];
            if (!st->settled && st->hasDeadline &&
                now >= st->deadline) {
                st->settled = true;
                inflight_.erase(inflight_.begin() + i);
                PointOutcome o;
                o.status = PointStatus::Timeout;
                o.seed = summary_.outcomes[st->point].seed;
                o.wallSeconds = opts_.pointTimeoutSeconds;
                o.message =
                    "exceeded the per-point budget of " +
                    std::to_string(opts_.pointTimeoutSeconds) + " s";
                if (opts_.trace) {
                    opts_.trace->instant(
                        "timeout " + points_[st->point].name,
                        "watchdog", usSinceStart(now), st->tid,
                        {obs::TraceArg::u64("point", st->point),
                         obs::TraceArg::u64("attempt", st->attempt)});
                }
                settle(st->point, std::move(o), st->tid);
                cv_.notify_all();
            } else {
                ++i;
            }
        }
    }
}

void
Engine::prepareJournal()
{
    if (opts_.journalPath.empty())
        return;

    const bool exists = fileExists(opts_.journalPath);
    if (exists && !opts_.resume) {
        throw Error(ErrorCategory::InvalidArgument,
                    "journal already exists; pass --resume to "
                    "continue it or remove it to start over",
                    {opts_.journalPath, 0});
    }

    if (opts_.resume && exists) {
        Expected<std::vector<util::JournalRecord>> loaded =
            util::Journal::load(opts_.journalPath);
        if (!loaded)
            throw loaded.error();
        replayJournal(loaded.value());
        replayed_ = true;
        return;
    }

    // Fresh journal: write the header identifying this sweep, with
    // the profile/base-config provenance and profile features that
    // make it a self-describing training set.
    util::JournalRecord header;
    header.event = "sweep";
    header.sweepHash = sweepIdentityHash(points_, opts_.seed);
    header.pointCount = points_.size();
    header.sweepSeed = opts_.seed;
    header.profileChecksum = opts_.profileChecksum;
    header.baseConfigHash = opts_.baseConfigHash;
    for (const auto &[name, value] : opts_.profileFeatures)
        header.features.push_back({name, value});
    Expected<void> opened = journal_.open(opts_.journalPath, true);
    if (!opened)
        throw opened.error();
    journalAppend(header);
}

void
Engine::replayJournal(const std::vector<util::JournalRecord> &old)
{
    const std::string &path = opts_.journalPath;
    if (old.empty() || old.front().event != "sweep") {
        throw Error(ErrorCategory::CorruptData,
                    "journal has no sweep header", {path, 1});
    }
    const uint64_t identity = sweepIdentityHash(points_, opts_.seed);
    if (old.front().sweepHash != identity) {
        throw Error(ErrorCategory::InvalidArgument,
                    "journal belongs to a different sweep "
                    "(different points or seed); refusing to resume",
                    {path, 1});
    }

    // Replay: the terminal record with the highest attempt number
    // wins; a start with no matching done means the process died
    // mid-point, which becomes a synthesized `crashed` record.
    std::vector<const util::JournalRecord *> lastDone(points_.size(),
                                                      nullptr);
    std::vector<const util::JournalRecord *> dangling(points_.size(),
                                                      nullptr);
    for (const util::JournalRecord &rec : old) {
        if (rec.point >= points_.size())
            throw Error(ErrorCategory::CorruptData,
                        "journal references point " +
                        std::to_string(rec.point) +
                        " outside the sweep", {path, 0});
        if (rec.event == "start") {
            dangling[rec.point] = &rec;
            if (rec.attempt > attemptsUsed_[rec.point])
                attemptsUsed_[rec.point] = rec.attempt;
        } else if (rec.event == "done") {
            if (dangling[rec.point] &&
                dangling[rec.point]->attempt == rec.attempt)
                dangling[rec.point] = nullptr;
            if (!lastDone[rec.point] ||
                rec.attempt >= lastDone[rec.point]->attempt)
                lastDone[rec.point] = &rec;
            if (rec.attempt > attemptsUsed_[rec.point])
                attemptsUsed_[rec.point] = rec.attempt;
        }
    }

    std::vector<util::JournalRecord> rebuilt(old.begin(), old.end());
    // Reserve up front: lastDone[] stores pointers into rebuilt for
    // synthesized records, which reallocation would invalidate.
    rebuilt.reserve(old.size() + points_.size());
    for (size_t p = 0; p < points_.size(); ++p) {
        if (!dangling[p])
            continue;
        util::JournalRecord crash;
        crash.event = "done";
        crash.point = p;
        crash.attempt = dangling[p]->attempt;
        crash.configHash = points_[p].configHash;
        crash.seed = summary_.outcomes[p].seed;
        crash.status = pointStatusName(PointStatus::Crashed);
        crash.message = "process died mid-point (start record with "
                        "no done record)";
        rebuilt.push_back(std::move(crash));
        if (!lastDone[p] ||
            rebuilt.back().attempt >= lastDone[p]->attempt)
            lastDone[p] = &rebuilt.back();
    }

    // Decide each point's fate and fill reused outcomes.
    for (size_t p = 0; p < points_.size(); ++p) {
        const util::JournalRecord *rec = lastDone[p];
        if (!rec) {
            queue_.push_back(p);
            continue;
        }
        PointOutcome &o = summary_.outcomes[p];
        o.status = statusFromName(rec->status);
        // A journaled `pruned` record is only as terminal as the
        // current mask: resuming with a mask that keeps the point —
        // or with no mask — re-queues it, so a pruned sweep can later
        // be completed (or widened) in place.
        if (o.status == PointStatus::Pruned &&
            (opts_.keepMask == nullptr || (*opts_.keepMask)[p])) {
            o.status = PointStatus::Pending;
            queue_.push_back(p);
            continue;
        }
        o.message = rec->message;
        o.wallSeconds = rec->wallSeconds;
        o.attempts = attemptsUsed_[p];
        o.reused = true;
        if (!rec->category.empty())
            o.errorCategory = categoryFromName(rec->category);
        for (const util::JournalMetric &m : rec->metrics)
            o.metrics.push_back({m.name, m.value});

        const bool retryable =
            o.status == PointStatus::Error
                ? retryableCategory(o.errorCategory)
                : retryableStatus(o.status);
        if (o.status != PointStatus::Ok && retryable &&
            attemptsUsed_[p] < totalAttemptsAllowed()) {
            queue_.push_back(p);
        }
    }

    // Checkpoint the rebuilt journal (drops any partial final line,
    // folds in synthesized crash records) and reopen for appending.
    Expected<void> ck = util::Journal::checkpoint(path, rebuilt);
    if (!ck)
        throw ck.error();
    Expected<void> opened = journal_.open(path, false);
    if (!opened)
        throw opened.error();
}

/**
 * Settle every queued point the keep-mask excludes as `pruned`, with
 * a journaled done record, before any worker starts. Runs single-
 * threaded (no lock needed); points already terminal in the journal
 * are untouched — the mask only filters what would otherwise run.
 */
void
Engine::applyKeepMask()
{
    if (opts_.keepMask == nullptr)
        return;
    std::deque<size_t> kept;
    for (size_t p : queue_) {
        if ((*opts_.keepMask)[p]) {
            kept.push_back(p);
            continue;
        }
        PointOutcome &o = summary_.outcomes[p];
        o.status = PointStatus::Pruned;
        o.message = "pruned by surrogate frontier mask";
        o.attempts = attemptsUsed_[p];
        o.metrics.clear();
        journalAppend(doneRecord(p, o));
        ++hbPruned_;
    }
    queue_ = std::move(kept);
    if (hbPruned_ > 0)
        writeHeartbeat();
}

SweepSummary
Engine::run()
{
    const auto t0 = t0_;
    prepareJournal();
    if (!replayed_) {
        for (size_t p = 0; p < points_.size(); ++p)
            queue_.push_back(p);
    }
    // (replayJournal filled queue_ for the resume case.)
    applyKeepMask();

    if (!queue_.empty()) {
        unsigned jobs = opts_.jobs != 0
                            ? opts_.jobs
                            : std::max(1u,
                                  std::thread::hardware_concurrency());
        jobs = std::min<unsigned>(
            jobs, static_cast<unsigned>(queue_.size()));

        if (opts_.trace) {
            opts_.trace->processName(0, "ssim sweep");
            for (unsigned w = 0; w < jobs; ++w) {
                opts_.trace->threadName(
                    w + 1, "worker " + std::to_string(w));
            }
        }

        util::ScopedDrainHandlers guard(opts_.handleSignals);
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            workers.emplace_back([this, w] { workerLoop(w); });
        std::thread watchdog;
        if (opts_.pointTimeoutSeconds > 0)
            watchdog = std::thread([this] { watchdogLoop(); });

        for (std::thread &t : workers)
            t.join();
        {
            std::lock_guard<std::mutex> lk(mu_);
            finished_ = true;
        }
        cv_.notify_all();
        if (watchdog.joinable())
            watchdog.join();
    }

    bool resumeWouldRun = false;
    for (size_t p = 0; p < summary_.outcomes.size(); ++p) {
        const PointOutcome &o = summary_.outcomes[p];
        switch (o.status) {
          case PointStatus::Pending: ++summary_.pendingCount; break;
          case PointStatus::Ok: ++summary_.okCount; break;
          case PointStatus::Error: ++summary_.errorCount; break;
          case PointStatus::Timeout: ++summary_.timeoutCount; break;
          case PointStatus::Crashed: ++summary_.crashedCount; break;
          case PointStatus::Pruned: ++summary_.prunedCount; break;
        }
        if (o.reused)
            ++summary_.reusedCount;
        const bool retryable =
            o.status == PointStatus::Error
                ? retryableCategory(o.errorCategory)
                : retryableStatus(o.status);
        if (o.status == PointStatus::Pending ||
            (o.status != PointStatus::Ok && retryable &&
             attemptsUsed_[p] < totalAttemptsAllowed()))
            resumeWouldRun = true;
    }
    summary_.interrupted = util::drainRequested() && resumeWouldRun;
    if (journal_.isOpen()) {
        journal_.sync();
        journal_.close();
    }
    {
        // Final heartbeat so the file reflects the finished state
        // even for sweeps fully satisfied from the journal.
        std::lock_guard<std::mutex> lk(mu_);
        writeHeartbeat();
    }
    summary_.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return summary_;
}

} // namespace

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Pending: return "pending";
      case PointStatus::Ok: return "ok";
      case PointStatus::Error: return "error";
      case PointStatus::Timeout: return "timeout";
      case PointStatus::Crashed: return "crashed";
      case PointStatus::Pruned: return "pruned";
    }
    return "unknown";
}

void
SweepOptions::validate() const
{
    if (!std::isfinite(pointTimeoutSeconds) ||
        pointTimeoutSeconds < 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep pointTimeoutSeconds must be a finite "
                    "non-negative number");
    }
    if (maxRetries > 100) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep maxRetries must be at most 100 (got " +
                    std::to_string(maxRetries) + ")");
    }
    if (resume && journalPath.empty()) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep resume requires a journal path");
    }
}

uint64_t
pointSeed(uint64_t sweepSeed, uint64_t index)
{
    return splitmix64(sweepSeed ^ splitmix64(index));
}

uint64_t
sweepIdentityHash(const std::vector<SweepPoint> &points, uint64_t seed)
{
    std::ostringstream key;
    key << "sweep-v1|" << seed << '|' << points.size();
    for (const SweepPoint &p : points) {
        key << '|' << p.name << ':';
        key << std::hex << p.configHash << std::dec;
    }
    return util::fnv1a64(key.str());
}

bool
retryableStatus(PointStatus status)
{
    return status == PointStatus::Timeout ||
           status == PointStatus::Crashed;
}

bool
retryableCategory(ErrorCategory category)
{
    // Only I/O failures are plausibly transient; every other typed
    // category is deterministic for a fixed (config, seed).
    return category == ErrorCategory::IoError;
}

SweepSummary
runSweep(const std::vector<SweepPoint> &points, const PointFn &fn,
         const SweepOptions &opts)
{
    opts.validate();
    if (!fn) {
        throw Error(ErrorCategory::InvalidArgument,
                    "runSweep requires a point function");
    }
    if (opts.keepMask && opts.keepMask->size() != points.size()) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep keep-mask covers " +
                    std::to_string(opts.keepMask->size()) +
                    " points, the sweep has " +
                    std::to_string(points.size()));
    }
    util::clearDrainRequest();
    Engine engine(points, fn, opts);
    return engine.run();
}

void
requestSweepStop()
{
    util::requestDrain();
}

bool
sweepStopRequested()
{
    return util::drainRequested();
}

const char *
planActionName(PlanAction action)
{
    switch (action) {
      case PlanAction::Run: return "run";
      case PlanAction::Reuse: return "reuse";
      case PlanAction::Retry: return "retry";
      case PlanAction::Prune: return "prune";
    }
    return "unknown";
}

SweepPlan
planSweep(const std::vector<SweepPoint> &points,
          const SweepOptions &opts)
{
    opts.validate();
    if (opts.keepMask && opts.keepMask->size() != points.size()) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep keep-mask covers " +
                    std::to_string(opts.keepMask->size()) +
                    " points, the sweep has " +
                    std::to_string(points.size()));
    }

    SweepPlan plan;
    plan.points.resize(points.size());

    // Read-only journal replay: same classification as the engine
    // (last done record wins, a dangling start counts as crashed),
    // but nothing is checkpointed, synthesized, or appended.
    std::vector<PointStatus> journaled(points.size(),
                                       PointStatus::Pending);
    std::vector<unsigned> attempts(points.size(), 0);
    std::vector<ErrorCategory> categories(points.size(),
                                          ErrorCategory::Internal);
    if (opts.resume && !opts.journalPath.empty() &&
        fileExists(opts.journalPath)) {
        const std::string &path = opts.journalPath;
        Expected<std::vector<util::JournalRecord>> loaded =
            util::Journal::load(path, &plan.skippedCorrupt);
        if (!loaded)
            throw loaded.error();
        const std::vector<util::JournalRecord> &old = loaded.value();
        if (old.empty() || old.front().event != "sweep")
            throw Error(ErrorCategory::CorruptData,
                        "journal has no sweep header", {path, 1});
        if (old.front().sweepHash !=
            sweepIdentityHash(points, opts.seed))
            throw Error(ErrorCategory::InvalidArgument,
                        "journal belongs to a different sweep "
                        "(different points or seed); refusing to "
                        "resume", {path, 1});
        std::vector<unsigned> danglingAttempt(points.size(), 0);
        std::vector<unsigned> doneAttempt(points.size(), 0);
        std::vector<bool> dangling(points.size(), false);
        std::vector<bool> haveDone(points.size(), false);
        for (const util::JournalRecord &rec : old) {
            if (rec.event != "start" && rec.event != "done")
                continue;
            if (rec.point >= points.size())
                throw Error(ErrorCategory::CorruptData,
                            "journal references point " +
                            std::to_string(rec.point) +
                            " outside the sweep", {path, 0});
            const size_t p = rec.point;
            if (rec.attempt > attempts[p])
                attempts[p] = rec.attempt;
            if (rec.event == "start") {
                dangling[p] = true;
                danglingAttempt[p] = rec.attempt;
            } else {
                if (dangling[p] && danglingAttempt[p] == rec.attempt)
                    dangling[p] = false;
                // Highest attempt wins, latest record on ties —
                // exactly the engine's lastDone rule.
                if (!haveDone[p] || rec.attempt >= doneAttempt[p]) {
                    haveDone[p] = true;
                    doneAttempt[p] = rec.attempt;
                    journaled[p] = statusFromName(rec.status);
                    categories[p] = rec.category.empty()
                                        ? ErrorCategory::Internal
                                        : categoryFromName(
                                              rec.category);
                }
            }
        }
        // A start with no done would be synthesized as `crashed` by
        // the engine (if it is the newest attempt of its point).
        for (size_t p = 0; p < points.size(); ++p) {
            if (dangling[p] &&
                (!haveDone[p] || danglingAttempt[p] >= attempts[p]))
                journaled[p] = PointStatus::Crashed;
        }
    }

    const unsigned allowed = 1 + opts.maxRetries;
    for (size_t p = 0; p < points.size(); ++p) {
        PointPlan &pp = plan.points[p];
        pp.journaled = journaled[p];
        pp.attempts = attempts[p];
        const bool keep =
            opts.keepMask == nullptr || (*opts.keepMask)[p];
        switch (journaled[p]) {
          case PointStatus::Ok:
            pp.action = PlanAction::Reuse;
            break;
          case PointStatus::Pending:
          case PointStatus::Pruned:
            pp.action = keep ? PlanAction::Run : PlanAction::Prune;
            break;
          default: {
            const bool retryable =
                journaled[p] == PointStatus::Error
                    ? retryableCategory(categories[p])
                    : retryableStatus(journaled[p]);
            if (retryable && attempts[p] < allowed)
                pp.action = keep ? PlanAction::Retry
                                 : PlanAction::Prune;
            else
                pp.action = PlanAction::Reuse;
            break;
          }
        }
        switch (pp.action) {
          case PlanAction::Run: ++plan.runCount; break;
          case PlanAction::Reuse: ++plan.reuseCount; break;
          case PlanAction::Retry: ++plan.retryCount; break;
          case PlanAction::Prune: ++plan.pruneCount; break;
        }
    }
    return plan;
}

// --- Core-configuration grids --------------------------------------

const std::vector<std::string> &
sweepGridKeys()
{
    static const std::vector<std::string> keys = {
        "ruu", "lsq", "width", "ifq", "scale-bpred", "scale-cache",
    };
    return keys;
}

namespace
{

uint32_t
gridU32(const std::string &key, double v)
{
    if (v <= 0 || v != std::floor(v) || v > 1e9) {
        throw Error(ErrorCategory::InvalidConfig,
                    "sweep grid key '" + key +
                    "' needs a positive integer, got " +
                    std::to_string(v));
    }
    return static_cast<uint32_t>(v);
}

cpu::CoreConfig
applyGridKnob(cpu::CoreConfig cfg, const std::string &key, double v)
{
    if (key == "ruu") {
        cfg.ruuSize = gridU32(key, v);
    } else if (key == "lsq") {
        cfg.lsqSize = gridU32(key, v);
    } else if (key == "width") {
        const uint32_t w = gridU32(key, v);
        cfg.decodeWidth = w;
        cfg.issueWidth = w;
        cfg.commitWidth = w;
    } else if (key == "ifq") {
        cfg.ifqSize = gridU32(key, v);
    } else if (key == "scale-bpred") {
        if (v != std::floor(v) || v < -16 || v > 16) {
            throw Error(ErrorCategory::InvalidConfig,
                        "sweep grid key 'scale-bpred' needs an "
                        "integer log2 factor in [-16, 16], got " +
                        std::to_string(v));
        }
        cfg.bpred = cfg.bpred.scaled(static_cast<int>(v));
    } else if (key == "scale-cache") {
        if (!std::isfinite(v) || v <= 0) {
            throw Error(ErrorCategory::InvalidConfig,
                        "sweep grid key 'scale-cache' needs a "
                        "positive factor, got " + std::to_string(v));
        }
        cfg.il1 = cfg.il1.scaled(v);
        cfg.dl1 = cfg.dl1.scaled(v);
        cfg.l2 = cfg.l2.scaled(v);
    } else {
        std::string valid;
        for (const std::string &k : sweepGridKeys())
            valid += (valid.empty() ? "" : ", ") + k;
        throw Error(ErrorCategory::InvalidArgument,
                    "unknown sweep grid key '" + key +
                    "' (valid keys: " + valid + ")");
    }
    return cfg;
}

std::string
trimmedValue(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

std::vector<ConfigPoint>
expandConfigGrid(const cpu::CoreConfig &base,
                 const std::vector<GridAxis> &axes)
{
    for (const GridAxis &axis : axes) {
        if (axis.values.empty()) {
            throw Error(ErrorCategory::InvalidArgument,
                        "sweep grid key '" + axis.key +
                        "' has no values");
        }
    }
    std::vector<ConfigPoint> points;
    std::vector<size_t> idx(axes.size(), 0);
    for (;;) {
        ConfigPoint point;
        point.cfg = base;
        for (size_t a = 0; a < axes.size(); ++a) {
            const double v = axes[a].values[idx[a]];
            point.cfg = applyGridKnob(point.cfg, axes[a].key, v);
            point.name += (a > 0 ? "," : "") + axes[a].key + "=" +
                          trimmedValue(v);
        }
        point.cfg.name = point.name;
        points.push_back(std::move(point));

        // Odometer increment, last axis fastest.
        size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++idx[a] < axes[a].values.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return points;
        }
        if (axes.empty())
            return points;
    }
}

uint64_t
configHash(const cpu::CoreConfig &cfg)
{
    std::ostringstream key;
    key << cfg.ifqSize << '|' << cfg.ruuSize << '|' << cfg.lsqSize
        << '|' << cfg.decodeWidth << '|' << cfg.issueWidth << '|'
        << cfg.commitWidth << '|' << cfg.fetchSpeed << '|'
        << cfg.mispredictPenalty << '|' << cfg.redirectPenalty << '|'
        << cfg.il1.sizeBytes << ':' << cfg.il1.assoc << ':'
        << cfg.il1.lineBytes << ':' << cfg.il1.latency << '|'
        << cfg.dl1.sizeBytes << ':' << cfg.dl1.assoc << ':'
        << cfg.dl1.lineBytes << ':' << cfg.dl1.latency << '|'
        << cfg.l2.sizeBytes << ':' << cfg.l2.assoc << ':'
        << cfg.l2.lineBytes << ':' << cfg.l2.latency << '|'
        << cfg.memLatency << '|' << static_cast<int>(cfg.bpred.kind)
        << ':' << cfg.bpred.bimodalEntries << ':'
        << cfg.bpred.l1Entries << ':' << cfg.bpred.l2Entries << ':'
        << cfg.bpred.historyBits << ':' << cfg.bpred.chooserEntries
        << ':' << cfg.bpred.btbEntries << ':' << cfg.bpred.btbAssoc
        << ':' << cfg.bpred.rasEntries << '|' << cfg.perfectCaches
        << cfg.perfectBpred << cfg.inOrderIssue;
    return util::fnv1a64(key.str());
}

} // namespace ssim::experiments
