/**
 * @file
 * Shared experiment harness used by every bench binary: the benchmark
 * suite (built once per process), cached statistical profiles, and
 * standard run wrappers for execution-driven and statistical
 * simulation.
 *
 * Environment knobs:
 *  - SSIM_SCALE: multiplies workload input sizes (default 1);
 *  - SSIM_QUICK: nonzero trims expensive sweeps for smoke runs.
 */

#ifndef SSIM_EXPERIMENTS_HARNESS_HH
#define SSIM_EXPERIMENTS_HARNESS_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/statsim.hh"
#include "isa/program.hh"
#include "util/error.hh"

namespace ssim::experiments
{

/** Workload scale from SSIM_SCALE (default 1). */
uint64_t workloadScale();

/** True when SSIM_QUICK is set to a nonzero value. */
bool quickMode();

/** One suite benchmark. */
struct Benchmark
{
    std::string name;
    std::string archetype;
    isa::Program program;
};

/** The ten-workload suite, built once per process. */
const std::vector<Benchmark> &suitePrograms();

/** Knobs for one statistical simulation run. */
struct StatSimKnobs
{
    int order = 1;
    core::BranchProfilingMode branchMode =
        core::BranchProfilingMode::DelayedUpdate;
    uint64_t reductionFactor = 20;
    uint64_t seed = 1;
    bool perfectCaches = false;
    bool perfectBpred = false;
    uint64_t skipInsts = 0;   ///< profiling warm-up skip
    uint64_t maxInsts = 0;    ///< profiling cap; 0 = run to completion
};

/** Execution-driven reference run (honours perfect-structure knobs). */
core::SimResult runEds(const Benchmark &bench,
                       cpu::CoreConfig cfg,
                       bool perfectCaches = false,
                       bool perfectBpred = false);

/**
 * Profile @p bench for @p cfg (cached: repeated calls with the same
 * benchmark and an equivalent profiling configuration reuse the
 * profile, which is how a designer amortizes profiling across a
 * design-space sweep — a new profile is only needed when the
 * predictor or cache configuration changes). Thread-safe with per-key
 * build latches: parallel sweep workers share one profile, concurrent
 * first requests for the same key block on that key's build only, and
 * requests for different keys build in parallel.
 */
std::shared_ptr<const core::StatisticalProfile> profileFor(
    const Benchmark &bench, const cpu::CoreConfig &cfg,
    const StatSimKnobs &knobs);

/**
 * The cache key profileFor() files @p bench under: a string over
 * everything the profile depends on (benchmark name, profiling knobs,
 * and the front-end/cache/predictor configuration fields). Two
 * configurations with equal keys share one profiling pass — and,
 * since the generation model is a pure function of (profile,
 * reduction factor), one generation-model build. `ssim sweep
 * --dry-run` uses this to annotate which points build a model and
 * which reuse a cached one.
 */
std::string profileCacheKey(const Benchmark &bench,
                            const cpu::CoreConfig &cfg,
                            const StatSimKnobs &knobs);

/** Full statistical simulation (profile -> generate -> simulate). */
core::SimResult runStatSim(const Benchmark &bench, cpu::CoreConfig cfg,
                           const StatSimKnobs &knobs = {});

/**
 * Sweep-safe variants: a design point that fails validation (or a
 * profile that fails its integrity checks) comes back as a failed
 * Expected carrying the typed error, so a multi-configuration sweep
 * reports the bad point and continues instead of losing the whole
 * run. Errors other than ssim::Error still propagate — those are
 * bugs, not inputs.
 */
Expected<core::SimResult> tryRunEds(const Benchmark &bench,
                                    cpu::CoreConfig cfg,
                                    bool perfectCaches = false,
                                    bool perfectBpred = false);
Expected<core::SimResult> tryRunStatSim(const Benchmark &bench,
                                        cpu::CoreConfig cfg,
                                        const StatSimKnobs &knobs = {});

/** Wall-clock helper. */
template <typename F>
double
wallSeconds(F &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace ssim::experiments

#endif // SSIM_EXPERIMENTS_HARNESS_HH
