#include "harness.hh"

#include <cstdlib>
#include <sstream>

#include "core/gen_model.hh"
#include "core/sts_frontend.hh"
#include "util/keyed_once.hh"
#include "workloads/workload.hh"

namespace ssim::experiments
{

uint64_t
workloadScale()
{
    const char *env = std::getenv("SSIM_SCALE");
    if (!env)
        return 1;
    const long long v = std::atoll(env);
    return v > 0 ? static_cast<uint64_t>(v) : 1;
}

bool
quickMode()
{
    const char *env = std::getenv("SSIM_QUICK");
    return env && std::atoi(env) != 0;
}

const std::vector<Benchmark> &
suitePrograms()
{
    static const std::vector<Benchmark> suite = [] {
        std::vector<Benchmark> out;
        const uint64_t scale = workloadScale();
        for (const auto &info : workloads::suite()) {
            out.push_back({info.name, info.archetype,
                           workloads::build(info.name, scale)});
        }
        return out;
    }();
    return suite;
}

core::SimResult
runEds(const Benchmark &bench, cpu::CoreConfig cfg, bool perfectCaches,
       bool perfectBpred)
{
    cfg.perfectCaches = perfectCaches;
    cfg.perfectBpred = perfectBpred;
    return core::runExecutionDriven(bench.program, cfg);
}

std::string
profileCacheKey(const Benchmark &bench, const cpu::CoreConfig &cfg,
                const StatSimKnobs &knobs)
{
    std::ostringstream key;
    key << bench.name << '|' << knobs.order << '|'
        << static_cast<int>(knobs.branchMode) << '|'
        << knobs.perfectCaches << knobs.perfectBpred << '|'
        << knobs.skipInsts << '|' << knobs.maxInsts << '|'
        << cfg.ifqSize << '|' << cfg.fetchSpeed << '|'
        << cfg.decodeWidth << '|'
        << static_cast<int>(cfg.bpred.kind) << ':'
        << cfg.bpred.bimodalEntries << ':' << cfg.bpred.l1Entries
        << ':' << cfg.bpred.l2Entries << ':' << cfg.bpred.historyBits
        << ':' << cfg.bpred.chooserEntries << ':'
        << cfg.bpred.btbEntries << ':' << cfg.bpred.rasEntries << '|'
        << cfg.il1.sizeBytes << ':' << cfg.il1.assoc << ':'
        << cfg.il1.lineBytes << '|' << cfg.dl1.sizeBytes << ':'
        << cfg.dl1.assoc << ':' << cfg.dl1.lineBytes << '|'
        << cfg.l2.sizeBytes << ':' << cfg.l2.assoc << ':'
        << cfg.l2.lineBytes << '|' << cfg.itlb.entries << ':'
        << cfg.dtlb.entries;
    return key.str();
}

std::shared_ptr<const core::StatisticalProfile>
profileFor(const Benchmark &bench, const cpu::CoreConfig &cfg,
           const StatSimKnobs &knobs)
{
    // Per-key build latches (util::KeyedOnceCache): concurrent sweep
    // workers asking for the same key share one profiling pass, while
    // workers asking for *different* keys build fully in parallel —
    // the old single mutex held across buildProfile serialized them.
    static util::KeyedOnceCache<std::string, core::StatisticalProfile>
        cache;
    const std::string key = profileCacheKey(bench, cfg, knobs);
    return cache.get(key, [&] {
        core::ProfileOptions opts;
        opts.order = knobs.order;
        opts.branchMode = knobs.branchMode;
        opts.perfectCaches = knobs.perfectCaches;
        opts.perfectBpred = knobs.perfectBpred;
        opts.skipInsts = knobs.skipInsts;
        if (knobs.maxInsts != 0)
            opts.maxInsts = knobs.maxInsts;
        return std::make_shared<const core::StatisticalProfile>(
            core::buildProfile(bench.program, cfg, opts));
    });
}

Expected<core::SimResult>
tryRunEds(const Benchmark &bench, cpu::CoreConfig cfg,
          bool perfectCaches, bool perfectBpred)
{
    return tryInvoke([&] {
        return runEds(bench, cfg, perfectCaches, perfectBpred);
    });
}

Expected<core::SimResult>
tryRunStatSim(const Benchmark &bench, cpu::CoreConfig cfg,
              const StatSimKnobs &knobs)
{
    return tryInvoke([&] { return runStatSim(bench, cfg, knobs); });
}

core::SimResult
runStatSim(const Benchmark &bench, cpu::CoreConfig cfg,
           const StatSimKnobs &knobs)
{
    cfg.perfectCaches = knobs.perfectCaches;
    cfg.perfectBpred = knobs.perfectBpred;
    const auto profile = profileFor(bench, cfg, knobs);
    core::GenerationOptions gopts;
    gopts.reductionFactor = knobs.reductionFactor;
    gopts.seed = knobs.seed;
    // The seed-independent generation model (reduced graph + alias
    // tables) is content-cached: sweep points and serve requests that
    // differ only in seed or core knobs share one build. Results are
    // bit-identical to a private build (SSIM_GEN_MODEL_CACHE=0).
    const auto model =
        core::GenModelCache::instance().get(profile, gopts);
    // Stream: the synthetic trace is consumed as it is generated and
    // never materialized (peak memory independent of trace length).
    core::StreamingGenerator gen(model, gopts.seed,
                                 core::requiredStreamLookback(cfg));
    return core::simulateSyntheticStream(gen, cfg);
}

} // namespace ssim::experiments
