/**
 * @file
 * Crash-tolerant parallel sweep engine.
 *
 * The paper's economics are "profile once, sweep thousands of design
 * points"; this module makes the sweep itself survive the real world.
 * A sweep is a list of named points run through a fixed-size worker
 * pool, with:
 *
 *  - a journal (util/journal.hh): every attempt writes a `start`
 *    record before running and a `done` record when it settles, so a
 *    killed process leaves a precise frontier of finished work;
 *  - resume: rerunning with the same journal skips points with a
 *    terminal record and re-runs only pending/retryable ones. Per-
 *    point seeds are splitmix64(sweep seed, index) — a pure function
 *    of the index — so a resumed sweep's results are bit-identical to
 *    an uninterrupted run;
 *  - a watchdog enforcing a per-point wall-clock budget: an expired
 *    point is journaled `timeout` (its eventual result, if any, is
 *    discarded) and the sweep keeps going instead of hanging;
 *  - bounded retry for retryable failures (timeout, crashed,
 *    io-error); deterministic failures (invalid-config, parse
 *    errors...) are never retried;
 *  - graceful SIGINT/SIGTERM drain: no new points start, in-flight
 *    points finish or time out, the journal is flushed, and the
 *    summary reports `interrupted` so the CLI can exit with the
 *    documented resumable code.
 *
 * Fault injection: setting SSIM_SWEEP_CRASH_AFTER=<n> makes the
 * engine raise SIGKILL immediately after the n-th `done` record is
 * journaled — the hook the crash/resume tests use to die at a
 * deterministic instant. SSIM_SWEEP_STALL_POINT=<index>:<seconds>
 * makes the *first* attempt of one point sleep before running, which
 * with a small --point-timeout produces a deterministic
 * timeout-then-successful-retry — the hook the trace tests use to get
 * a reproducible timeout/retry annotation.
 *
 * Observability (src/obs): an attached TraceLog gets one Chrome-trace
 * track per worker with a complete slice per attempt plus instant
 * markers for watchdog timeouts and retry scheduling; a heartbeat
 * path gets a small stats JSON (points done/ok/failed/retried,
 * elapsed, ETA) atomically rewritten as the sweep progresses, so an
 * operator can watch a long sweep without touching the journal.
 */

#ifndef SSIM_EXPERIMENTS_SWEEP_HH
#define SSIM_EXPERIMENTS_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cpu/config.hh"
#include "obs/export_trace.hh"
#include "obs/manifest.hh"
#include "util/error.hh"
#include "util/journal.hh"

namespace ssim::experiments
{

/** Terminal (and initial) states of one design point. */
enum class PointStatus : uint8_t
{
    Pending,   ///< never ran (sweep interrupted before it started)
    Ok,
    Error,     ///< typed ssim::Error from the point function
    Timeout,   ///< exceeded the per-point wall-clock budget
    Crashed,   ///< a start record with no done record (process died)

    /**
     * Skipped by a surrogate keep-mask: journaled `done` with status
     * "pruned" so a later resume knows the point was deliberately not
     * simulated. Not terminal forever — resuming the journal with a
     * mask that keeps the point (or with no mask at all) re-queues it.
     */
    Pruned,
};

/** Stable journal name ("ok", "error", "timeout", "crashed"...). */
const char *pointStatusName(PointStatus status);

using PointMetrics = std::vector<std::pair<std::string, double>>;

/** One design point: a stable label plus its configuration hash. */
struct SweepPoint
{
    std::string name;
    uint64_t configHash = 0;

    /**
     * Optional named features of the point's configuration
     * (proxy::configFeatureMetrics). Stamped into the point's `ok`
     * journal records, turning the journal into a training set for
     * the surrogate predictor.
     */
    PointMetrics features;
};

/**
 * The work of one point: given the point index and its derived seed,
 * return named metrics. Throw ssim::Error for a typed, recoverable
 * failure; any other exception is recorded as an internal error for
 * that point (the pool survives either way). Must be safe to call
 * concurrently from multiple workers.
 */
using PointFn =
    std::function<PointMetrics(size_t index, uint64_t seed)>;

/** Knobs of one sweep run. */
struct SweepOptions
{
    /** Worker threads; 0 means one per hardware thread. */
    unsigned jobs = 1;

    /** Sweep seed; per-point seeds derive from (seed, index). */
    uint64_t seed = 1;

    /** Per-point wall-clock budget in seconds; 0 disables it. */
    double pointTimeoutSeconds = 0.0;

    /** Extra attempts after the first for retryable failures. */
    unsigned maxRetries = 1;

    /** Journal path; empty runs without persistence. */
    std::string journalPath;

    /** Skip points the journal already settled. */
    bool resume = false;

    /** Install SIGINT/SIGTERM drain handlers for the run (CLI). */
    bool handleSignals = false;

    /**
     * Optional Chrome-trace sink: per-worker point timelines with
     * timeout/retry annotations. Must outlive runSweep().
     */
    obs::TraceLog *trace = nullptr;

    /**
     * When non-empty, a heartbeat stats JSON (points done / ok /
     * failed / retried, elapsed seconds, ETA) is atomically rewritten
     * here after every settled attempt.
     */
    std::string heartbeatPath;

    /** Manifest stamped into the heartbeat export; optional. */
    const obs::RunManifest *manifest = nullptr;

    /**
     * Provenance stamped into a fresh journal's header (0 = omitted):
     * the canonical digest of the source profile
     * (core::profileDigest) and the hash of the base configuration
     * the grid was expanded from. Together with profileFeatures these
     * make the journal self-describing for `ssim train`.
     */
    uint64_t profileChecksum = 0;
    uint64_t baseConfigHash = 0;

    /** Profile features for the header (proxy::profileFeatureMetrics). */
    PointMetrics profileFeatures;

    /**
     * Optional surrogate keep-mask, one byte per point: points with
     * mask 0 are not simulated — they settle immediately as `pruned`
     * with a journaled done record. Terminal journal records still
     * win on resume; a previously-pruned point re-queues when the
     * current mask keeps it (or when no mask is given). Must outlive
     * runSweep() and match the point count.
     */
    const std::vector<uint8_t> *keepMask = nullptr;

    /** @throws ssim::Error (InvalidConfig) on unusable knobs. */
    void validate() const;
};

/** Final state of one point after the sweep. */
struct PointOutcome
{
    PointStatus status = PointStatus::Pending;
    ErrorCategory errorCategory = ErrorCategory::Internal;
    std::string message;
    PointMetrics metrics;
    double wallSeconds = 0.0;
    uint64_t seed = 0;
    unsigned attempts = 0;
    bool reused = false;   ///< satisfied from the journal on resume
};

/** What happened to the whole sweep. */
struct SweepSummary
{
    std::vector<PointOutcome> outcomes;   // indexed like the points
    size_t okCount = 0;
    size_t errorCount = 0;
    size_t timeoutCount = 0;
    size_t crashedCount = 0;
    size_t pendingCount = 0;
    size_t prunedCount = 0;    ///< skipped by the surrogate keep-mask
    size_t reusedCount = 0;    ///< outcomes satisfied by the journal
    size_t executedCount = 0;  ///< points actually run this process
    bool interrupted = false;  ///< drained early; resumable
    double wallSeconds = 0.0;
};

/** CLI exit code for an interrupted-but-resumable sweep. */
constexpr int SweepInterruptedExitCode = 10;

/**
 * Seed for point @p index of a sweep seeded with @p sweepSeed: a
 * splitmix64 hash chain over both values, so each point's stream is
 * independent of every other point and of execution order.
 */
uint64_t pointSeed(uint64_t sweepSeed, uint64_t index);

/** Identity of a sweep definition (checked against the journal). */
uint64_t sweepIdentityHash(const std::vector<SweepPoint> &points,
                           uint64_t seed);

/** True for failures worth retrying (transient, not deterministic). */
bool retryableStatus(PointStatus status);
bool retryableCategory(ErrorCategory category);

/**
 * Run @p fn over @p points under @p opts. Throws ssim::Error for
 * sweep-level failures (bad options, unusable or mismatched journal);
 * per-point failures are recorded in the summary, never thrown.
 */
SweepSummary runSweep(const std::vector<SweepPoint> &points,
                      const PointFn &fn, const SweepOptions &opts);

/**
 * Ask a running sweep to drain and stop (what the signal handlers
 * call; also usable programmatically). Safe from any thread or from
 * a signal handler. runSweep() clears the flag when it starts.
 */
void requestSweepStop();
bool sweepStopRequested();

// --- Dry-run planning ----------------------------------------------

/** What a sweep run would do with one point. */
enum class PlanAction : uint8_t
{
    Run,     ///< no usable journal record; would be simulated
    Reuse,   ///< terminal journal record; would be skipped
    Retry,   ///< retryable failure with attempts left; would re-run
    Prune,   ///< keep-mask excludes it; would settle as pruned
};

/** Stable display name ("run", "reuse", "retry", "prune"). */
const char *planActionName(PlanAction action);

/** Planned fate of one point (dry run). */
struct PointPlan
{
    PlanAction action = PlanAction::Run;
    PointStatus journaled = PointStatus::Pending;  ///< last done record
    unsigned attempts = 0;    ///< attempts already in the journal
};

/** The whole dry-run plan: per-point fates plus the delta counts. */
struct SweepPlan
{
    std::vector<PointPlan> points;
    size_t runCount = 0;
    size_t reuseCount = 0;
    size_t retryCount = 0;
    size_t pruneCount = 0;
    uint64_t skippedCorrupt = 0;   ///< corrupt journal lines tolerated
};

/**
 * Compute what runSweep() would do under @p opts without simulating
 * anything or writing a byte: the journal (when resuming) is loaded
 * read-only — no checkpoint, no synthesized records, no header
 * append. Classification matches the engine exactly: last done
 * record wins, dangling starts count as crashed, bounded retry, the
 * keep-mask prunes points that would otherwise run.
 *
 * @throws ssim::Error exactly like runSweep() for sweep-level
 *         problems (bad options, mismatched or corrupt journal).
 */
SweepPlan planSweep(const std::vector<SweepPoint> &points,
                    const SweepOptions &opts);

// --- Core-configuration grids (the CLI `sweep` subcommand) ---------

/** One grid axis: a knob name and the values to sweep it over. */
struct GridAxis
{
    std::string key;
    std::vector<double> values;
};

/** A named point of the expanded grid. */
struct ConfigPoint
{
    std::string name;
    cpu::CoreConfig cfg;
};

/** The grid keys expandConfigGrid() accepts, for diagnostics. */
const std::vector<std::string> &sweepGridKeys();

/**
 * Cross product of @p axes applied to @p base, in row-major order
 * (last axis fastest).
 *
 * @throws ssim::Error (InvalidArgument) naming any unknown grid key;
 *         (InvalidConfig) for values that do not fit the knob (a
 *         non-integer RUU size, a non-positive cache scale).
 */
std::vector<ConfigPoint> expandConfigGrid(
    const cpu::CoreConfig &base, const std::vector<GridAxis> &axes);

/** Hash of every sweepable field of @p cfg (journal identity). */
uint64_t configHash(const cpu::CoreConfig &cfg);

} // namespace ssim::experiments

#endif // SSIM_EXPERIMENTS_SWEEP_HH
