/**
 * @file
 * In-order functional emulator for the mini ISA.
 *
 * The emulator is the architectural reference: the execution-driven
 * simulator dispatches instructions through it in program order, and
 * the statistical profiler walks the same committed stream. It never
 * executes wrong paths — wrong-path effects are modeled by the fetch
 * engine, which only needs static decode (see cpu/eds_frontend).
 */

#ifndef SSIM_ISA_EMULATOR_HH
#define SSIM_ISA_EMULATOR_HH

#include <cstdint>
#include <vector>

#include "program.hh"

namespace ssim::isa
{

/** Result of functionally executing one instruction. */
struct ExecutedInst
{
    uint32_t pc = 0;        ///< instruction index executed
    uint32_t nextPc = 0;    ///< architecturally correct next index
    bool taken = false;     ///< control flow left the fall-through path
    bool isMem = false;     ///< load or store
    uint64_t memAddr = 0;   ///< effective byte address (DataBase-relative
                            ///< offsets are translated to full addresses)
    uint8_t memBytes = 0;   ///< access size
    bool halted = false;    ///< this instruction was HALT
};

/**
 * Functional state: PC, register files, flat data memory.
 */
class Emulator
{
  public:
    /** Bind to a finalized program and reset state. */
    explicit Emulator(const Program &prog);

    /** Reset registers, memory image and PC. */
    void reset();

    /** True once HALT has executed. */
    bool halted() const { return halted_; }

    /** Current PC (instruction index). */
    uint32_t pc() const { return pc_; }

    /** Number of instructions retired so far. */
    uint64_t instCount() const { return instCount_; }

    /**
     * Execute the instruction at the current PC and advance.
     * Calling step() after HALT returns a record with halted set.
     */
    ExecutedInst step();

    /** Run up to @p maxInsts instructions; returns how many ran. */
    uint64_t run(uint64_t maxInsts);

    /** Architectural integer register read (r0 reads as zero). */
    int64_t intReg(int idx) const { return intRegs_[idx]; }

    /** Architectural FP register read. */
    double fpReg(int idx) const { return fpRegs_[idx]; }

    /** The program being executed. */
    const Program &program() const { return *prog_; }

    /** Data memory peek, for tests. */
    uint64_t peek64(uint64_t offset) const;

  private:
    int64_t readInt(uint8_t r) const { return intRegs_[r]; }
    void writeInt(uint8_t r, int64_t v)
    {
        if (r != RegZero)
            intRegs_[r] = v;
    }

    uint64_t effectiveAddr(const Instruction &inst) const;
    void checkRange(uint64_t offset, int bytes) const;
    uint64_t loadMem(uint64_t offset, int bytes, bool signExtend) const;
    void storeMem(uint64_t offset, int bytes, uint64_t value);

    const Program *prog_;
    uint32_t pc_;
    bool halted_;
    uint64_t instCount_;
    int64_t intRegs_[NumIntRegs];
    double fpRegs_[NumFpRegs];
    std::vector<uint8_t> mem_;
};

} // namespace ssim::isa

#endif // SSIM_ISA_EMULATOR_HH
