#include "isa.hh"

#include <cstdio>

#include "util/logging.hh"

namespace ssim::isa
{

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::Load:           return "load";
      case InstClass::Store:          return "store";
      case InstClass::IntCondBranch:  return "int cond branch";
      case InstClass::FpCondBranch:   return "fp cond branch";
      case InstClass::IndirectBranch: return "indirect branch";
      case InstClass::IntAlu:         return "int alu";
      case InstClass::IntMult:        return "int mult";
      case InstClass::IntDiv:         return "int div";
      case InstClass::FpAlu:          return "fp alu";
      case InstClass::FpMult:         return "fp mult";
      case InstClass::FpDiv:          return "fp div";
      case InstClass::FpSqrt:         return "fp sqrt";
      default:                        return "?";
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::NOP:    return "nop";
      case Opcode::ADD:    return "add";
      case Opcode::SUB:    return "sub";
      case Opcode::AND:    return "and";
      case Opcode::OR:     return "or";
      case Opcode::XOR:    return "xor";
      case Opcode::SLL:    return "sll";
      case Opcode::SRL:    return "srl";
      case Opcode::SRA:    return "sra";
      case Opcode::SLT:    return "slt";
      case Opcode::SLTU:   return "sltu";
      case Opcode::ADDI:   return "addi";
      case Opcode::ANDI:   return "andi";
      case Opcode::ORI:    return "ori";
      case Opcode::XORI:   return "xori";
      case Opcode::SLLI:   return "slli";
      case Opcode::SRLI:   return "srli";
      case Opcode::SRAI:   return "srai";
      case Opcode::SLTI:   return "slti";
      case Opcode::LI:     return "li";
      case Opcode::MOV:    return "mov";
      case Opcode::MUL:    return "mul";
      case Opcode::DIV:    return "div";
      case Opcode::REM:    return "rem";
      case Opcode::FADD:   return "fadd";
      case Opcode::FSUB:   return "fsub";
      case Opcode::FMIN:   return "fmin";
      case Opcode::FMAX:   return "fmax";
      case Opcode::FABS:   return "fabs";
      case Opcode::FNEG:   return "fneg";
      case Opcode::FMOV:   return "fmov";
      case Opcode::FLI:    return "fli";
      case Opcode::FCVTIF: return "fcvt.i.f";
      case Opcode::FCVTFI: return "fcvt.f.i";
      case Opcode::FCMPLT: return "fcmplt";
      case Opcode::FMUL:   return "fmul";
      case Opcode::FDIV:   return "fdiv";
      case Opcode::FSQRT:  return "fsqrt";
      case Opcode::LB:     return "lb";
      case Opcode::LW:     return "lw";
      case Opcode::LD:     return "ld";
      case Opcode::FLD:    return "fld";
      case Opcode::SB:     return "sb";
      case Opcode::SW:     return "sw";
      case Opcode::SD:     return "sd";
      case Opcode::FSD:    return "fsd";
      case Opcode::BEQ:    return "beq";
      case Opcode::BNE:    return "bne";
      case Opcode::BLT:    return "blt";
      case Opcode::BGE:    return "bge";
      case Opcode::BLTU:   return "bltu";
      case Opcode::BGEU:   return "bgeu";
      case Opcode::FBLT:   return "fblt";
      case Opcode::FBGE:   return "fbge";
      case Opcode::FBEQ:   return "fbeq";
      case Opcode::JMP:    return "jmp";
      case Opcode::CALL:   return "call";
      case Opcode::JR:     return "jr";
      case Opcode::ICALL:  return "icall";
      case Opcode::RET:    return "ret";
      case Opcode::HALT:   return "halt";
      default:             return "?";
    }
}

InstClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::LB: case Opcode::LW: case Opcode::LD:
      case Opcode::FLD:
        return InstClass::Load;
      case Opcode::SB: case Opcode::SW: case Opcode::SD:
      case Opcode::FSD:
        return InstClass::Store;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return InstClass::IntCondBranch;
      case Opcode::FBLT: case Opcode::FBGE: case Opcode::FBEQ:
        return InstClass::FpCondBranch;
      case Opcode::JR: case Opcode::ICALL: case Opcode::RET:
        return InstClass::IndirectBranch;
      case Opcode::MUL:
        return InstClass::IntMult;
      case Opcode::DIV: case Opcode::REM:
        return InstClass::IntDiv;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FABS: case Opcode::FNEG:
      case Opcode::FMOV: case Opcode::FLI: case Opcode::FCVTIF:
      case Opcode::FCVTFI: case Opcode::FCMPLT:
        return InstClass::FpAlu;
      case Opcode::FMUL:
        return InstClass::FpMult;
      case Opcode::FDIV:
        return InstClass::FpDiv;
      case Opcode::FSQRT:
        return InstClass::FpSqrt;
      default:
        // NOP, integer ALU ops, LI/MOV, and the direct unconditional
        // JMP/CALL/HALT (see DESIGN.md on branch classification).
        return InstClass::IntAlu;
    }
}

bool
isControlFlow(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
      case Opcode::FBLT: case Opcode::FBGE: case Opcode::FBEQ:
      case Opcode::JMP: case Opcode::CALL: case Opcode::JR:
      case Opcode::ICALL: case Opcode::RET: case Opcode::HALT:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Opcode op)
{
    const InstClass c = classOf(op);
    return c == InstClass::IntCondBranch || c == InstClass::FpCondBranch;
}

bool
isIndirectBranch(Opcode op)
{
    return classOf(op) == InstClass::IndirectBranch;
}

bool
isDirectJump(Opcode op)
{
    return op == Opcode::JMP || op == Opcode::CALL;
}

bool
isCall(Opcode op)
{
    return op == Opcode::CALL || op == Opcode::ICALL;
}

bool
isReturn(Opcode op)
{
    return op == Opcode::RET;
}

bool
isLoad(Opcode op)
{
    return classOf(op) == InstClass::Load;
}

bool
isStore(Opcode op)
{
    return classOf(op) == InstClass::Store;
}

// numSrcRegs / srcReg / destReg live in isa.hh as inline table
// lookups: they run several times per profiled instruction.

int
memAccessBytes(Opcode op)
{
    switch (op) {
      case Opcode::LB: case Opcode::SB: return 1;
      case Opcode::LW: case Opcode::SW: return 4;
      case Opcode::LD: case Opcode::SD:
      case Opcode::FLD: case Opcode::FSD: return 8;
      default:
        panic("memAccessBytes on non-memory opcode");
    }
}

std::string
disassemble(const Instruction &inst)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%-8s rd=%u rs1=%u rs2=%u imm=%lld tgt=%u",
                  opcodeName(inst.op), inst.rd, inst.rs1, inst.rs2,
                  static_cast<long long>(inst.imm), inst.target);
    return buf;
}

} // namespace ssim::isa
