#include "emulator.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace ssim::isa
{

namespace
{

// Guest integer arithmetic wraps modulo 2^64 (two's complement);
// compute in uint64_t, where wraparound is defined, so a guest
// program that overflows (an LCG, a hash loop) is not host UB.
inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

} // namespace

Emulator::Emulator(const Program &prog)
    : prog_(&prog)
{
    fatalIf(!prog.finalized(), "emulating a non-finalized program");
    reset();
}

void
Emulator::reset()
{
    pc_ = 0;
    halted_ = false;
    instCount_ = 0;
    std::memset(intRegs_, 0, sizeof(intRegs_));
    std::memset(fpRegs_, 0, sizeof(fpRegs_));
    mem_.assign(prog_->dataSize, 0);
    for (const DataBlob &blob : prog_->data) {
        fatalIf(blob.offset + blob.bytes.size() > mem_.size(),
                "initial data blob outside the data segment");
        std::memcpy(mem_.data() + blob.offset, blob.bytes.data(),
                    blob.bytes.size());
    }
    // Stack grows down from the top of the data segment.
    intRegs_[RegSp] = static_cast<int64_t>(prog_->dataSize - 64);
}

uint64_t
Emulator::effectiveAddr(const Instruction &inst) const
{
    return static_cast<uint64_t>(wrapAdd(readInt(inst.rs1), inst.imm));
}

void
Emulator::checkRange(uint64_t offset, int bytes) const
{
    panicIf(offset + static_cast<uint64_t>(bytes) > mem_.size(),
            "data access out of range: offset " +
            std::to_string(offset) + " in " + prog_->name);
}

uint64_t
Emulator::loadMem(uint64_t offset, int bytes, bool signExtend) const
{
    checkRange(offset, bytes);
    uint64_t raw = 0;
    std::memcpy(&raw, mem_.data() + offset, bytes);
    if (signExtend && bytes < 8) {
        const int shift = 64 - 8 * bytes;
        raw = static_cast<uint64_t>(
            (static_cast<int64_t>(raw << shift)) >> shift);
    }
    return raw;
}

void
Emulator::storeMem(uint64_t offset, int bytes, uint64_t value)
{
    checkRange(offset, bytes);
    std::memcpy(mem_.data() + offset, &value, bytes);
}

uint64_t
Emulator::peek64(uint64_t offset) const
{
    return loadMem(offset, 8, false);
}

ExecutedInst
Emulator::step()
{
    ExecutedInst rec;
    if (halted_) {
        rec.pc = pc_;
        rec.nextPc = pc_;
        rec.halted = true;
        return rec;
    }

    panicIf(pc_ >= prog_->text.size(), "PC out of text segment");
    const Instruction &inst = prog_->text[pc_];
    rec.pc = pc_;
    uint32_t next = pc_ + 1;

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::ADD:
        writeInt(inst.rd, wrapAdd(readInt(inst.rs1), readInt(inst.rs2)));
        break;
      case Opcode::SUB:
        writeInt(inst.rd, wrapSub(readInt(inst.rs1), readInt(inst.rs2)));
        break;
      case Opcode::AND:
        writeInt(inst.rd, readInt(inst.rs1) & readInt(inst.rs2));
        break;
      case Opcode::OR:
        writeInt(inst.rd, readInt(inst.rs1) | readInt(inst.rs2));
        break;
      case Opcode::XOR:
        writeInt(inst.rd, readInt(inst.rs1) ^ readInt(inst.rs2));
        break;
      case Opcode::SLL:
        writeInt(inst.rd, readInt(inst.rs1) <<
                 (readInt(inst.rs2) & 63));
        break;
      case Opcode::SRL:
        writeInt(inst.rd, static_cast<int64_t>(
            static_cast<uint64_t>(readInt(inst.rs1)) >>
            (readInt(inst.rs2) & 63)));
        break;
      case Opcode::SRA:
        writeInt(inst.rd, readInt(inst.rs1) >>
                 (readInt(inst.rs2) & 63));
        break;
      case Opcode::SLT:
        writeInt(inst.rd, readInt(inst.rs1) < readInt(inst.rs2));
        break;
      case Opcode::SLTU:
        writeInt(inst.rd,
                 static_cast<uint64_t>(readInt(inst.rs1)) <
                 static_cast<uint64_t>(readInt(inst.rs2)));
        break;
      case Opcode::ADDI:
        writeInt(inst.rd, wrapAdd(readInt(inst.rs1), inst.imm));
        break;
      case Opcode::ANDI:
        writeInt(inst.rd, readInt(inst.rs1) & inst.imm);
        break;
      case Opcode::ORI:
        writeInt(inst.rd, readInt(inst.rs1) | inst.imm);
        break;
      case Opcode::XORI:
        writeInt(inst.rd, readInt(inst.rs1) ^ inst.imm);
        break;
      case Opcode::SLLI:
        writeInt(inst.rd, readInt(inst.rs1) << (inst.imm & 63));
        break;
      case Opcode::SRLI:
        writeInt(inst.rd, static_cast<int64_t>(
            static_cast<uint64_t>(readInt(inst.rs1)) >>
            (inst.imm & 63)));
        break;
      case Opcode::SRAI:
        writeInt(inst.rd, readInt(inst.rs1) >> (inst.imm & 63));
        break;
      case Opcode::SLTI:
        writeInt(inst.rd, readInt(inst.rs1) < inst.imm);
        break;
      case Opcode::LI:
        writeInt(inst.rd, inst.imm);
        break;
      case Opcode::MOV:
        writeInt(inst.rd, readInt(inst.rs1));
        break;
      case Opcode::MUL:
        writeInt(inst.rd, wrapMul(readInt(inst.rs1), readInt(inst.rs2)));
        break;
      case Opcode::DIV:
        {
            // d == -1 separately: INT64_MIN / -1 overflows (host UB);
            // the wrapping quotient is the negation.
            const int64_t d = readInt(inst.rs2);
            writeInt(inst.rd,
                     d == 0 ? -1 :
                     d == -1 ? wrapSub(0, readInt(inst.rs1)) :
                     readInt(inst.rs1) / d);
        }
        break;
      case Opcode::REM:
        {
            const int64_t d = readInt(inst.rs2);
            writeInt(inst.rd,
                     d == 0 ? readInt(inst.rs1) :
                     d == -1 ? 0 :
                     readInt(inst.rs1) % d);
        }
        break;

      case Opcode::FADD:
        fpRegs_[inst.rd] = fpRegs_[inst.rs1] + fpRegs_[inst.rs2];
        break;
      case Opcode::FSUB:
        fpRegs_[inst.rd] = fpRegs_[inst.rs1] - fpRegs_[inst.rs2];
        break;
      case Opcode::FMIN:
        fpRegs_[inst.rd] = std::fmin(fpRegs_[inst.rs1],
                                     fpRegs_[inst.rs2]);
        break;
      case Opcode::FMAX:
        fpRegs_[inst.rd] = std::fmax(fpRegs_[inst.rs1],
                                     fpRegs_[inst.rs2]);
        break;
      case Opcode::FABS:
        fpRegs_[inst.rd] = std::fabs(fpRegs_[inst.rs1]);
        break;
      case Opcode::FNEG:
        fpRegs_[inst.rd] = -fpRegs_[inst.rs1];
        break;
      case Opcode::FMOV:
        fpRegs_[inst.rd] = fpRegs_[inst.rs1];
        break;
      case Opcode::FLI:
        {
            double v;
            std::memcpy(&v, &inst.imm, sizeof(v));
            fpRegs_[inst.rd] = v;
        }
        break;
      case Opcode::FCVTIF:
        fpRegs_[inst.rd] = static_cast<double>(readInt(inst.rs1));
        break;
      case Opcode::FCVTFI:
        writeInt(inst.rd, static_cast<int64_t>(fpRegs_[inst.rs1]));
        break;
      case Opcode::FCMPLT:
        writeInt(inst.rd, fpRegs_[inst.rs1] < fpRegs_[inst.rs2]);
        break;
      case Opcode::FMUL:
        fpRegs_[inst.rd] = fpRegs_[inst.rs1] * fpRegs_[inst.rs2];
        break;
      case Opcode::FDIV:
        fpRegs_[inst.rd] = fpRegs_[inst.rs2] == 0.0
            ? 0.0 : fpRegs_[inst.rs1] / fpRegs_[inst.rs2];
        break;
      case Opcode::FSQRT:
        fpRegs_[inst.rd] = std::sqrt(std::fabs(fpRegs_[inst.rs1]));
        break;

      case Opcode::LB: case Opcode::LW: case Opcode::LD:
        {
            const uint64_t offset = effectiveAddr(inst);
            const int bytes = memAccessBytes(inst.op);
            writeInt(inst.rd, static_cast<int64_t>(
                loadMem(offset, bytes, true)));
            rec.isMem = true;
            rec.memAddr = DataBase + offset;
            rec.memBytes = static_cast<uint8_t>(bytes);
        }
        break;
      case Opcode::FLD:
        {
            const uint64_t offset = effectiveAddr(inst);
            const uint64_t raw = loadMem(offset, 8, false);
            double v;
            std::memcpy(&v, &raw, sizeof(v));
            fpRegs_[inst.rd] = v;
            rec.isMem = true;
            rec.memAddr = DataBase + offset;
            rec.memBytes = 8;
        }
        break;
      case Opcode::SB: case Opcode::SW: case Opcode::SD:
        {
            const uint64_t offset = effectiveAddr(inst);
            const int bytes = memAccessBytes(inst.op);
            storeMem(offset, bytes,
                     static_cast<uint64_t>(readInt(inst.rs2)));
            rec.isMem = true;
            rec.memAddr = DataBase + offset;
            rec.memBytes = static_cast<uint8_t>(bytes);
        }
        break;
      case Opcode::FSD:
        {
            const uint64_t offset = effectiveAddr(inst);
            uint64_t raw;
            std::memcpy(&raw, &fpRegs_[inst.rs2], sizeof(raw));
            storeMem(offset, 8, raw);
            rec.isMem = true;
            rec.memAddr = DataBase + offset;
            rec.memBytes = 8;
        }
        break;

      case Opcode::BEQ:
        rec.taken = readInt(inst.rs1) == readInt(inst.rs2);
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::BNE:
        rec.taken = readInt(inst.rs1) != readInt(inst.rs2);
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::BLT:
        rec.taken = readInt(inst.rs1) < readInt(inst.rs2);
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::BGE:
        rec.taken = readInt(inst.rs1) >= readInt(inst.rs2);
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::BLTU:
        rec.taken = static_cast<uint64_t>(readInt(inst.rs1)) <
            static_cast<uint64_t>(readInt(inst.rs2));
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::BGEU:
        rec.taken = static_cast<uint64_t>(readInt(inst.rs1)) >=
            static_cast<uint64_t>(readInt(inst.rs2));
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::FBLT:
        rec.taken = fpRegs_[inst.rs1] < fpRegs_[inst.rs2];
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::FBGE:
        rec.taken = fpRegs_[inst.rs1] >= fpRegs_[inst.rs2];
        if (rec.taken)
            next = inst.target;
        break;
      case Opcode::FBEQ:
        rec.taken = fpRegs_[inst.rs1] == fpRegs_[inst.rs2];
        if (rec.taken)
            next = inst.target;
        break;

      case Opcode::JMP:
        rec.taken = true;
        next = inst.target;
        break;
      case Opcode::CALL:
        writeInt(RegRa, pc_ + 1);
        rec.taken = true;
        next = inst.target;
        break;
      case Opcode::JR:
        rec.taken = true;
        next = static_cast<uint32_t>(readInt(inst.rs1));
        break;
      case Opcode::ICALL:
        {
            const uint32_t dest =
                static_cast<uint32_t>(readInt(inst.rs1));
            writeInt(RegRa, pc_ + 1);
            rec.taken = true;
            next = dest;
        }
        break;
      case Opcode::RET:
        rec.taken = true;
        next = static_cast<uint32_t>(readInt(RegRa));
        break;

      case Opcode::HALT:
        halted_ = true;
        rec.halted = true;
        next = pc_;
        break;

      default:
        panic("unimplemented opcode in emulator");
    }

    rec.nextPc = next;
    pc_ = next;
    ++instCount_;
    return rec;
}

uint64_t
Emulator::run(uint64_t maxInsts)
{
    uint64_t n = 0;
    while (n < maxInsts && !halted_) {
        step();
        ++n;
    }
    return n;
}

} // namespace ssim::isa
