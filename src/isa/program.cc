#include "program.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ssim::isa
{

void
Program::finalize(std::vector<uint32_t> extraLeaders)
{
    fatalIf(text.empty(), "finalizing an empty program");
    const uint32_t n = static_cast<uint32_t>(text.size());

    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (uint32_t i = 0; i < n; ++i) {
        const Instruction &inst = text[i];
        if (!isControlFlow(inst.op))
            continue;
        if (i + 1 < n)
            leader[i + 1] = true;
        if ((isCondBranch(inst.op) || isDirectJump(inst.op))) {
            panicIf(inst.target >= n, "branch target out of range: " +
                    disassemble(inst));
            leader[inst.target] = true;
        }
    }
    for (uint32_t pc : extraLeaders) {
        panicIf(pc >= n, "extra leader out of range");
        leader[pc] = true;
    }

    blocks_.clear();
    blockOf_.assign(n, InvalidBasicBlock);
    for (uint32_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.first = i;
            bb.last = i;
            blocks_.push_back(bb);
        } else {
            blocks_.back().last = i;
        }
        blockOf_[i] = static_cast<BasicBlockId>(blocks_.size() - 1);
    }
}

} // namespace ssim::isa
