/**
 * @file
 * Programmatic assembler for the mini ISA.
 *
 * Workloads are written against this builder: it provides one method
 * per opcode, forward-referencing labels with a fixup pass, and pseudo
 * instructions (la) for materializing code addresses used by indirect
 * calls and jump tables. Labels whose address is materialized are
 * recorded and become basic-block leaders at finalize time.
 */

#ifndef SSIM_ISA_ASSEMBLER_HH
#define SSIM_ISA_ASSEMBLER_HH

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "program.hh"

namespace ssim::isa
{

/** Opaque label handle. */
struct Label
{
    uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

/**
 * Builder producing a finalized Program.
 *
 * Typical use:
 * @code
 *   Assembler as("loop_demo");
 *   Label top = as.newLabel();
 *   as.li(3, 0);
 *   as.bind(top);
 *   as.addi(3, 3, 1);
 *   as.slti(4, 3, 100);
 *   as.bne(4, RegZero, top);
 *   as.halt();
 *   Program prog = as.finish();
 * @endcode
 */
class Assembler
{
  public:
    explicit Assembler(std::string name);

    /** Create an unbound label. */
    Label newLabel();

    /** Bind a label to the current position. */
    void bind(Label l);

    /** Create and immediately bind a label. */
    Label here();

    /** Current instruction index. */
    uint32_t pc() const { return static_cast<uint32_t>(text_.size()); }

    // ---- integer ALU -------------------------------------------------
    void nop();
    void add(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void and_(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void or_(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sll(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void srl(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sra(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void slt(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void addi(uint8_t rd, uint8_t rs1, int64_t imm);
    void andi(uint8_t rd, uint8_t rs1, int64_t imm);
    void ori(uint8_t rd, uint8_t rs1, int64_t imm);
    void xori(uint8_t rd, uint8_t rs1, int64_t imm);
    void slli(uint8_t rd, uint8_t rs1, int64_t imm);
    void srli(uint8_t rd, uint8_t rs1, int64_t imm);
    void srai(uint8_t rd, uint8_t rs1, int64_t imm);
    void slti(uint8_t rd, uint8_t rs1, int64_t imm);
    void li(uint8_t rd, int64_t imm);
    void mov(uint8_t rd, uint8_t rs1);
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2);
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2);

    // ---- floating point ----------------------------------------------
    void fadd(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fsub(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fmin(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fmax(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fabs_(uint8_t fd, uint8_t fs1);
    void fneg(uint8_t fd, uint8_t fs1);
    void fmov(uint8_t fd, uint8_t fs1);
    void fli(uint8_t fd, double value);
    void fcvtif(uint8_t fd, uint8_t rs1);
    void fcvtfi(uint8_t rd, uint8_t fs1);
    void fcmplt(uint8_t rd, uint8_t fs1, uint8_t fs2);
    void fmul(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fdiv(uint8_t fd, uint8_t fs1, uint8_t fs2);
    void fsqrt(uint8_t fd, uint8_t fs1);

    // ---- memory (address = intReg[rs1] + imm) ------------------------
    void lb(uint8_t rd, uint8_t rs1, int64_t imm = 0);
    void lw(uint8_t rd, uint8_t rs1, int64_t imm = 0);
    void ld(uint8_t rd, uint8_t rs1, int64_t imm = 0);
    void fld(uint8_t fd, uint8_t rs1, int64_t imm = 0);
    void sb(uint8_t rs2, uint8_t rs1, int64_t imm = 0);
    void sw(uint8_t rs2, uint8_t rs1, int64_t imm = 0);
    void sd(uint8_t rs2, uint8_t rs1, int64_t imm = 0);
    void fsd(uint8_t fs2, uint8_t rs1, int64_t imm = 0);

    // ---- control flow ------------------------------------------------
    void beq(uint8_t rs1, uint8_t rs2, Label target);
    void bne(uint8_t rs1, uint8_t rs2, Label target);
    void blt(uint8_t rs1, uint8_t rs2, Label target);
    void bge(uint8_t rs1, uint8_t rs2, Label target);
    void bltu(uint8_t rs1, uint8_t rs2, Label target);
    void bgeu(uint8_t rs1, uint8_t rs2, Label target);
    void fblt(uint8_t fs1, uint8_t fs2, Label target);
    void fbge(uint8_t fs1, uint8_t fs2, Label target);
    void fbeq(uint8_t fs1, uint8_t fs2, Label target);
    void jmp(Label target);
    void call(Label target);
    void jr(uint8_t rs1);
    void icall(uint8_t rs1);
    void ret();
    void halt();

    // ---- pseudo instructions -----------------------------------------
    /**
     * Materialize the *instruction index* of a label into an integer
     * register (for jump tables / indirect calls: jr/icall jump to
     * instruction indices). Marks the label as an indirect target.
     */
    void la(uint8_t rd, Label codeLabel);

    // ---- data segment -------------------------------------------------
    /** Set the data segment size in bytes. */
    void setDataSize(uint64_t bytes) { dataSize_ = bytes; }

    /** Add an initial data blob at the given data-segment offset. */
    void addData(uint64_t offset, std::vector<uint8_t> bytes);

    /** Convenience: place an array of 64-bit words. */
    void addWords(uint64_t offset, const std::vector<int64_t> &words);

    /** Convenience: place an array of doubles. */
    void addDoubles(uint64_t offset, const std::vector<double> &vals);

    /**
     * Apply fixups, run basic-block analysis and return the Program.
     * The assembler must not be reused afterwards.
     */
    Program finish();

  private:
    void emit(Instruction inst);
    void emitBranch(Opcode op, uint8_t rs1, uint8_t rs2, Label target);

    std::string name_;
    std::vector<Instruction> text_;
    std::vector<uint32_t> labelPos_;       // per label id; ~0u = unbound
    std::vector<std::pair<uint32_t, uint32_t>> fixups_;  // (inst, label)
    std::vector<std::pair<uint32_t, uint32_t>> laFixups_; // (inst, label)
    std::vector<uint32_t> indirectTargets_; // label ids used by la()
    uint64_t dataSize_ = 1 << 20;
    std::vector<DataBlob> blobs_;
};

} // namespace ssim::isa

#endif // SSIM_ISA_ASSEMBLER_HH
