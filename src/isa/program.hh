/**
 * @file
 * Static program container plus basic-block analysis.
 *
 * A Program is the unit both the execution-driven simulator and the
 * statistical profiler operate on. finalize() performs the static
 * analysis that identifies basic-block leaders; the dynamic basic
 * block stream observed by the profiler is derived from those leaders.
 */

#ifndef SSIM_ISA_PROGRAM_HH
#define SSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa.hh"

namespace ssim::isa
{

/** Identifier of a static basic block (index into Program::blocks). */
using BasicBlockId = uint32_t;

/** Sentinel for "no basic block". */
constexpr BasicBlockId InvalidBasicBlock = ~0u;

/** A contiguous range of instructions with a single entry and exit. */
struct BasicBlock
{
    uint32_t first = 0;  ///< index of the leader instruction
    uint32_t last = 0;   ///< index of the final instruction (inclusive)

    uint32_t size() const { return last - first + 1; }
};

/** One blob of initial data copied into memory before execution. */
struct DataBlob
{
    uint64_t offset = 0;  ///< byte offset within the data segment
    std::vector<uint8_t> bytes;
};

/**
 * A complete static program: text, initial data and block structure.
 */
class Program
{
  public:
    /** Program name (used by the workload registry and reports). */
    std::string name;

    /** The text segment. */
    std::vector<Instruction> text;

    /** Size of the data segment in bytes. */
    uint64_t dataSize = 1 << 20;

    /** Initial data image blobs. */
    std::vector<DataBlob> data;

    /**
     * Run the basic-block analysis. Must be called once after the
     * text segment is complete and before execution or profiling.
     *
     * Leaders are: instruction 0, every direct control-flow target,
     * and every instruction following a control-flow instruction.
     * Indirect branch targets are call sites' return points and
     * function entries, which are already leaders through the other
     * two rules as long as indirect jumps only target function
     * entries or jump-table labels created through the assembler
     * (which records them as targets).
     */
    void finalize(std::vector<uint32_t> extraLeaders = {});

    /** True once finalize() ran. */
    bool finalized() const { return !blockOf_.empty(); }

    /** Number of static basic blocks. */
    size_t numBlocks() const { return blocks_.size(); }

    /** Block table. */
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Map instruction index -> containing basic block. */
    BasicBlockId blockOf(uint32_t pc) const { return blockOf_[pc]; }

    /** True if @p pc is a basic-block leader. */
    bool isLeader(uint32_t pc) const
    {
        return blocks_[blockOf_[pc]].first == pc;
    }

    /** Convenience: number of static instructions. */
    size_t size() const { return text.size(); }

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<BasicBlockId> blockOf_;
};

} // namespace ssim::isa

#endif // SSIM_ISA_PROGRAM_HH
