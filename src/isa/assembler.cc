#include "assembler.hh"

#include <cstring>

#include "util/logging.hh"

namespace ssim::isa
{

Assembler::Assembler(std::string name)
    : name_(std::move(name))
{
}

Label
Assembler::newLabel()
{
    labelPos_.push_back(~0u);
    return Label{static_cast<uint32_t>(labelPos_.size() - 1)};
}

void
Assembler::bind(Label l)
{
    panicIf(!l.valid(), "binding an invalid label");
    panicIf(labelPos_[l.id] != ~0u, "label bound twice");
    labelPos_[l.id] = pc();
}

Label
Assembler::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
Assembler::emit(Instruction inst)
{
    text_.push_back(inst);
}

void
Assembler::emitBranch(Opcode op, uint8_t rs1, uint8_t rs2, Label target)
{
    panicIf(!target.valid(), "branch to invalid label");
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    fixups_.emplace_back(pc(), target.id);
    emit(inst);
}

// ---- integer ALU ------------------------------------------------------

void Assembler::nop() { emit({Opcode::NOP, 0, 0, 0, 0, 0}); }

void
Assembler::add(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::ADD, rd, rs1, rs2, 0, 0});
}

void
Assembler::sub(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SUB, rd, rs1, rs2, 0, 0});
}

void
Assembler::and_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::AND, rd, rs1, rs2, 0, 0});
}

void
Assembler::or_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::OR, rd, rs1, rs2, 0, 0});
}

void
Assembler::xor_(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::XOR, rd, rs1, rs2, 0, 0});
}

void
Assembler::sll(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SLL, rd, rs1, rs2, 0, 0});
}

void
Assembler::srl(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SRL, rd, rs1, rs2, 0, 0});
}

void
Assembler::sra(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SRA, rd, rs1, rs2, 0, 0});
}

void
Assembler::slt(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SLT, rd, rs1, rs2, 0, 0});
}

void
Assembler::sltu(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::SLTU, rd, rs1, rs2, 0, 0});
}

void
Assembler::addi(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::ADDI, rd, rs1, 0, imm, 0});
}

void
Assembler::andi(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::ANDI, rd, rs1, 0, imm, 0});
}

void
Assembler::ori(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::ORI, rd, rs1, 0, imm, 0});
}

void
Assembler::xori(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::XORI, rd, rs1, 0, imm, 0});
}

void
Assembler::slli(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SLLI, rd, rs1, 0, imm, 0});
}

void
Assembler::srli(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SRLI, rd, rs1, 0, imm, 0});
}

void
Assembler::srai(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SRAI, rd, rs1, 0, imm, 0});
}

void
Assembler::slti(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SLTI, rd, rs1, 0, imm, 0});
}

void
Assembler::li(uint8_t rd, int64_t imm)
{
    emit({Opcode::LI, rd, 0, 0, imm, 0});
}

void
Assembler::mov(uint8_t rd, uint8_t rs1)
{
    emit({Opcode::MOV, rd, rs1, 0, 0, 0});
}

void
Assembler::mul(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::MUL, rd, rs1, rs2, 0, 0});
}

void
Assembler::div(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::DIV, rd, rs1, rs2, 0, 0});
}

void
Assembler::rem(uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    emit({Opcode::REM, rd, rs1, rs2, 0, 0});
}

// ---- floating point ----------------------------------------------------

void
Assembler::fadd(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FADD, fd, fs1, fs2, 0, 0});
}

void
Assembler::fsub(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FSUB, fd, fs1, fs2, 0, 0});
}

void
Assembler::fmin(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FMIN, fd, fs1, fs2, 0, 0});
}

void
Assembler::fmax(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FMAX, fd, fs1, fs2, 0, 0});
}

void
Assembler::fabs_(uint8_t fd, uint8_t fs1)
{
    emit({Opcode::FABS, fd, fs1, 0, 0, 0});
}

void
Assembler::fneg(uint8_t fd, uint8_t fs1)
{
    emit({Opcode::FNEG, fd, fs1, 0, 0, 0});
}

void
Assembler::fmov(uint8_t fd, uint8_t fs1)
{
    emit({Opcode::FMOV, fd, fs1, 0, 0, 0});
}

void
Assembler::fli(uint8_t fd, double value)
{
    int64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    emit({Opcode::FLI, fd, 0, 0, bits, 0});
}

void
Assembler::fcvtif(uint8_t fd, uint8_t rs1)
{
    emit({Opcode::FCVTIF, fd, rs1, 0, 0, 0});
}

void
Assembler::fcvtfi(uint8_t rd, uint8_t fs1)
{
    emit({Opcode::FCVTFI, rd, fs1, 0, 0, 0});
}

void
Assembler::fcmplt(uint8_t rd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FCMPLT, rd, fs1, fs2, 0, 0});
}

void
Assembler::fmul(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FMUL, fd, fs1, fs2, 0, 0});
}

void
Assembler::fdiv(uint8_t fd, uint8_t fs1, uint8_t fs2)
{
    emit({Opcode::FDIV, fd, fs1, fs2, 0, 0});
}

void
Assembler::fsqrt(uint8_t fd, uint8_t fs1)
{
    emit({Opcode::FSQRT, fd, fs1, 0, 0, 0});
}

// ---- memory -------------------------------------------------------------

void
Assembler::lb(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::LB, rd, rs1, 0, imm, 0});
}

void
Assembler::lw(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::LW, rd, rs1, 0, imm, 0});
}

void
Assembler::ld(uint8_t rd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::LD, rd, rs1, 0, imm, 0});
}

void
Assembler::fld(uint8_t fd, uint8_t rs1, int64_t imm)
{
    emit({Opcode::FLD, fd, rs1, 0, imm, 0});
}

void
Assembler::sb(uint8_t rs2, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SB, 0, rs1, rs2, imm, 0});
}

void
Assembler::sw(uint8_t rs2, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SW, 0, rs1, rs2, imm, 0});
}

void
Assembler::sd(uint8_t rs2, uint8_t rs1, int64_t imm)
{
    emit({Opcode::SD, 0, rs1, rs2, imm, 0});
}

void
Assembler::fsd(uint8_t fs2, uint8_t rs1, int64_t imm)
{
    emit({Opcode::FSD, 0, rs1, fs2, imm, 0});
}

// ---- control flow ---------------------------------------------------------

void
Assembler::beq(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BEQ, rs1, rs2, target);
}

void
Assembler::bne(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BNE, rs1, rs2, target);
}

void
Assembler::blt(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BLT, rs1, rs2, target);
}

void
Assembler::bge(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BGE, rs1, rs2, target);
}

void
Assembler::bltu(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BLTU, rs1, rs2, target);
}

void
Assembler::bgeu(uint8_t rs1, uint8_t rs2, Label target)
{
    emitBranch(Opcode::BGEU, rs1, rs2, target);
}

void
Assembler::fblt(uint8_t fs1, uint8_t fs2, Label target)
{
    emitBranch(Opcode::FBLT, fs1, fs2, target);
}

void
Assembler::fbge(uint8_t fs1, uint8_t fs2, Label target)
{
    emitBranch(Opcode::FBGE, fs1, fs2, target);
}

void
Assembler::fbeq(uint8_t fs1, uint8_t fs2, Label target)
{
    emitBranch(Opcode::FBEQ, fs1, fs2, target);
}

void
Assembler::jmp(Label target)
{
    emitBranch(Opcode::JMP, 0, 0, target);
}

void
Assembler::call(Label target)
{
    panicIf(!target.valid(), "call to invalid label");
    Instruction inst;
    inst.op = Opcode::CALL;
    inst.rd = RegRa;
    fixups_.emplace_back(pc(), target.id);
    emit(inst);
}

void
Assembler::jr(uint8_t rs1)
{
    emit({Opcode::JR, 0, rs1, 0, 0, 0});
}

void
Assembler::icall(uint8_t rs1)
{
    emit({Opcode::ICALL, RegRa, rs1, 0, 0, 0});
}

void
Assembler::ret()
{
    emit({Opcode::RET, 0, RegRa, 0, 0, 0});
}

void
Assembler::halt()
{
    emit({Opcode::HALT, 0, 0, 0, 0, 0});
}

void
Assembler::la(uint8_t rd, Label codeLabel)
{
    panicIf(!codeLabel.valid(), "la of invalid label");
    Instruction inst;
    inst.op = Opcode::LI;
    inst.rd = rd;
    laFixups_.emplace_back(pc(), codeLabel.id);
    indirectTargets_.push_back(codeLabel.id);
    emit(inst);
}

// ---- data -------------------------------------------------------------

void
Assembler::addData(uint64_t offset, std::vector<uint8_t> bytes)
{
    blobs_.push_back({offset, std::move(bytes)});
}

void
Assembler::addWords(uint64_t offset, const std::vector<int64_t> &words)
{
    std::vector<uint8_t> bytes(words.size() * 8);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    addData(offset, std::move(bytes));
}

void
Assembler::addDoubles(uint64_t offset, const std::vector<double> &vals)
{
    std::vector<uint8_t> bytes(vals.size() * 8);
    std::memcpy(bytes.data(), vals.data(), bytes.size());
    addData(offset, std::move(bytes));
}

Program
Assembler::finish()
{
    for (const auto &[instIdx, labelId] : fixups_) {
        panicIf(labelPos_[labelId] == ~0u,
                "unbound label referenced by instruction " +
                std::to_string(instIdx) + " in " + name_);
        text_[instIdx].target = labelPos_[labelId];
    }
    for (const auto &[instIdx, labelId] : laFixups_) {
        panicIf(labelPos_[labelId] == ~0u,
                "unbound label in la() in " + name_);
        text_[instIdx].imm = labelPos_[labelId];
    }

    Program prog;
    prog.name = std::move(name_);
    prog.text = std::move(text_);
    prog.dataSize = dataSize_;
    prog.data = std::move(blobs_);

    std::vector<uint32_t> extraLeaders;
    extraLeaders.reserve(indirectTargets_.size());
    for (uint32_t labelId : indirectTargets_)
        extraLeaders.push_back(labelPos_[labelId]);

    prog.finalize(std::move(extraLeaders));
    return prog;
}

} // namespace ssim::isa
