/**
 * @file
 * The miniature RISC ISA all workloads are written in.
 *
 * The ISA is deliberately small but covers every instruction class the
 * paper's statistical profile distinguishes (section 2.1.1): load,
 * store, integer conditional branch, floating-point conditional
 * branch, indirect branch, integer alu, integer multiply, integer
 * divide, floating-point alu, floating-point multiply, floating-point
 * divide and floating-point square root.
 *
 * 32 integer registers (r0 hardwired to zero, r1 = return address,
 * r2 = stack pointer) and 32 floating-point registers. Instructions
 * occupy 4 bytes of the text segment for I-cache purposes; the program
 * counter is an instruction index.
 */

#ifndef SSIM_ISA_ISA_HH
#define SSIM_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>

namespace ssim::isa
{

/** Number of architectural integer (and FP) registers. */
constexpr int NumIntRegs = 32;
constexpr int NumFpRegs = 32;

/** Register aliases used by the calling convention. */
constexpr uint8_t RegZero = 0;
constexpr uint8_t RegRa = 1;
constexpr uint8_t RegSp = 2;

/** Byte address of the first text-segment instruction. */
constexpr uint64_t TextBase = 0x0040'0000;

/** Byte address of the data segment (heap + stack live here). */
constexpr uint64_t DataBase = 0x1000'0000;

/** Bytes per instruction (for I-cache/TLB addressing). */
constexpr uint64_t InstBytes = 4;

/**
 * The paper's 12 instruction classes (section 2.1.1). Every opcode
 * maps onto exactly one class; direct unconditional jumps/calls are
 * classified as IntAlu for the instruction mix (the taxonomy has no
 * unconditional-branch class) but still terminate basic blocks.
 */
enum class InstClass : uint8_t
{
    Load,
    Store,
    IntCondBranch,
    FpCondBranch,
    IndirectBranch,
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    FpSqrt,
    NumClasses
};

/** Number of distinct instruction classes. */
constexpr int NumInstClasses =
    static_cast<int>(InstClass::NumClasses);

/** Human-readable class name ("load", "int alu", ...). */
const char *instClassName(InstClass c);

/** Opcodes of the mini ISA. */
enum class Opcode : uint8_t
{
    // Integer ALU.
    NOP,
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    LI,      ///< rd = imm
    MOV,     ///< rd = rs1
    // Integer multiply / divide.
    MUL, DIV, REM,
    // Floating point.
    FADD, FSUB, FMIN, FMAX, FABS, FNEG, FMOV,
    FLI,     ///< fd = immediate double (bit pattern in imm)
    FCVTIF,  ///< fd = (double) rs1
    FCVTFI,  ///< rd = (int64) fs1
    FCMPLT,  ///< rd = fs1 < fs2
    FMUL, FDIV, FSQRT,
    // Memory. Address = intReg[rs1] + imm.
    LB, LW, LD, FLD,
    SB, SW, SD, FSD,
    // Control flow. Conditional targets are instruction indices.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,   ///< int conditional
    FBLT, FBGE, FBEQ,                 ///< fp conditional
    JMP,     ///< direct unconditional jump
    CALL,    ///< direct call, writes return address to r1
    JR,      ///< indirect jump to intReg[rs1]
    ICALL,   ///< indirect call to intReg[rs1], writes r1
    RET,     ///< indirect jump to intReg[r1]
    HALT,    ///< stop the program
    NumOpcodes
};

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Map opcode -> paper instruction class. */
InstClass classOf(Opcode op);

/** True for every opcode that may change the PC non-sequentially. */
bool isControlFlow(Opcode op);

/** True for conditional branches (int or fp). */
bool isCondBranch(Opcode op);

/** True for JR/ICALL/RET. */
bool isIndirectBranch(Opcode op);

/** True for direct unconditional JMP/CALL. */
bool isDirectJump(Opcode op);

/** True for CALL/ICALL (pushes the return-address stack). */
bool isCall(Opcode op);

/** True for RET (pops the return-address stack). */
bool isReturn(Opcode op);

/** True for LB/LW/LD/FLD. */
bool isLoad(Opcode op);

/** True for SB/SW/SD/FSD. */
bool isStore(Opcode op);

/** Which register file a register operand lives in. */
enum class RegSpace : uint8_t { Int, Fp, None };

/** A register reference: file + index. */
struct RegRef
{
    RegSpace space = RegSpace::None;
    uint8_t index = 0;

    bool valid() const { return space != RegSpace::None; }
    bool operator==(const RegRef &) const = default;
};

/**
 * One static instruction.
 *
 * @c target holds the instruction-index destination of direct control
 * flow (filled in by the assembler's fixup pass).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
    uint32_t target = 0;

    /** Paper instruction class. */
    InstClass instClass() const { return classOf(op); }
};

/** Operand shape: which of rd/rs1/rs2 are used and in which file. */
struct OperandShape
{
    RegSpace dest;
    RegSpace src1;
    RegSpace src2;
};

namespace detail
{

constexpr OperandShape
shapeOfSwitch(Opcode op)
{
    const RegSpace I = RegSpace::Int;
    const RegSpace F = RegSpace::Fp;
    const RegSpace N = RegSpace::None;
    switch (op) {
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::JMP:
        return {N, N, N};
      case Opcode::LI:
        return {I, N, N};
      case Opcode::CALL:
        return {I, N, N};  // writes r1
      case Opcode::MOV:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
        return {I, I, N};
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::MUL: case Opcode::DIV:
      case Opcode::REM:
        return {I, I, I};
      case Opcode::FLI:
        return {F, N, N};
      case Opcode::FABS: case Opcode::FNEG: case Opcode::FMOV:
      case Opcode::FSQRT:
        return {F, F, N};
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FMUL: case Opcode::FDIV:
        return {F, F, F};
      case Opcode::FCVTIF:
        return {F, I, N};
      case Opcode::FCVTFI:
        return {I, F, N};
      case Opcode::FCMPLT:
        return {I, F, F};
      case Opcode::LB: case Opcode::LW: case Opcode::LD:
        return {I, I, N};
      case Opcode::FLD:
        return {F, I, N};
      case Opcode::SB: case Opcode::SW: case Opcode::SD:
        return {N, I, I};  // rs1 = base, rs2 = data
      case Opcode::FSD:
        return {N, I, F};  // rs1 = base, rs2 = fp data
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return {N, I, I};
      case Opcode::FBLT: case Opcode::FBGE: case Opcode::FBEQ:
        return {N, F, F};
      case Opcode::JR:
        return {N, I, N};
      case Opcode::ICALL:
        return {I, I, N};  // writes r1, jumps via rs1
      case Opcode::RET:
        return {N, I, N};  // reads r1 (assembler sets rs1 = RegRa)
      default:
        return {N, N, N};
    }
}

constexpr auto
makeShapeTable()
{
    std::array<OperandShape,
               static_cast<size_t>(Opcode::NumOpcodes)> t{};
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = shapeOfSwitch(static_cast<Opcode>(i));
    return t;
}

inline constexpr auto ShapeTable = makeShapeTable();

} // namespace detail

/**
 * Operand shape of an opcode. A table load, not a switch: the
 * operand-walk helpers below sit on the statistical profiler's hot
 * path (several calls per profiled instruction).
 */
inline const OperandShape &
operandShape(Opcode op)
{
    return detail::ShapeTable[static_cast<size_t>(op)];
}

/** Number of register source operands (0..2). */
inline int
numSrcRegs(const Instruction &inst)
{
    const OperandShape &s = operandShape(inst.op);
    return (s.src1 != RegSpace::None) + (s.src2 != RegSpace::None);
}

/** The i-th source register (i < numSrcRegs). */
inline RegRef
srcReg(const Instruction &inst, int i)
{
    const OperandShape &s = operandShape(inst.op);
    if (i == 0 && s.src1 != RegSpace::None)
        return {s.src1, inst.rs1};
    if (s.src2 != RegSpace::None &&
        ((i == 0 && s.src1 == RegSpace::None) || i == 1)) {
        return {s.src2, inst.rs2};
    }
    return {};
}

/** Destination register, or an invalid RegRef for none. */
inline RegRef
destReg(const Instruction &inst)
{
    const OperandShape &s = operandShape(inst.op);
    if (s.dest == RegSpace::None)
        return {};
    return {s.dest, inst.rd};
}

/** Byte address of the instruction at index @p pc. */
inline uint64_t
instAddr(uint64_t pc)
{
    return TextBase + pc * InstBytes;
}

/** Memory access size in bytes for a load/store opcode. */
int memAccessBytes(Opcode op);

/** One-line disassembly, for debugging and error messages. */
std::string disassemble(const Instruction &inst);

} // namespace ssim::isa

#endif // SSIM_ISA_ISA_HH
