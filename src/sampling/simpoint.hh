/**
 * @file
 * SimPoint-style representative sampling (Sherwood et al., ASPLOS
 * 2002), used as the comparison point of the paper's Figure 8:
 * basic-block vectors per fixed-length interval, random projection to
 * a low dimension, k-means clustering with BIC model selection, and
 * weighted execution-driven simulation of the representative
 * intervals.
 */

#ifndef SSIM_SAMPLING_SIMPOINT_HH
#define SSIM_SAMPLING_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "cpu/config.hh"
#include "isa/program.hh"

namespace ssim::sampling
{

/** One interval's projected basic-block vector. */
using FeatureVector = std::vector<double>;

/** Basic-block vector collection result. */
struct BbvData
{
    uint64_t intervalLength = 0;
    /** Per interval: normalized, projected execution frequencies. */
    std::vector<FeatureVector> vectors;
};

/**
 * Run the program functionally and collect one BBV per interval of
 * @p intervalLength instructions, randomly projected to
 * @p projectedDims dimensions (seeded, deterministic).
 */
BbvData collectBbvs(const isa::Program &prog, uint64_t intervalLength,
                    uint32_t projectedDims = 15, uint64_t seed = 1);

/** k-means clustering result. */
struct Clustering
{
    uint32_t k = 0;
    std::vector<uint32_t> assignment;   ///< per interval
    std::vector<FeatureVector> centroids;
    double bic = 0.0;
};

/** Lloyd's algorithm with deterministic seeding. */
Clustering kmeans(const std::vector<FeatureVector> &data, uint32_t k,
                  uint64_t seed = 1, uint32_t iterations = 60);

/** Bayesian information criterion for a clustering (higher better). */
double bicScore(const std::vector<FeatureVector> &data,
                const Clustering &clustering);

/** A chosen simulation point. */
struct SimPoint
{
    uint32_t interval = 0;   ///< interval index to simulate
    double weight = 0.0;     ///< fraction of execution it represents
};

/**
 * Full SimPoint selection: cluster the BBVs for k = 1..maxK, keep the
 * best BIC, return the interval closest to each centroid with its
 * cluster's weight.
 */
std::vector<SimPoint> pickSimPoints(const BbvData &bbvs,
                                    uint32_t maxK = 10,
                                    uint64_t seed = 1);

/** Weighted metrics from simulating the chosen points. */
struct SampledResult
{
    double ipc = 0.0;
    double epc = 0.0;
    uint64_t simulatedInstructions = 0;
};

/**
 * Execution-driven simulation of each simulation point (with
 * functional cache/predictor warming during the fast-forward),
 * combined by weight. CPI and power are weighted per the SimPoint
 * methodology.
 */
SampledResult simulateSimPoints(const isa::Program &prog,
                                const cpu::CoreConfig &cfg,
                                const std::vector<SimPoint> &points,
                                uint64_t intervalLength);

} // namespace ssim::sampling

#endif // SSIM_SAMPLING_SIMPOINT_HH
