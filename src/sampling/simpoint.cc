#include "simpoint.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/statsim.hh"
#include "isa/emulator.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ssim::sampling
{

BbvData
collectBbvs(const isa::Program &prog, uint64_t intervalLength,
            uint32_t projectedDims, uint64_t seed)
{
    if (intervalLength == 0) {
        throw Error(ErrorCategory::InvalidArgument,
                    "BBV interval length must be >= 1 (got 0)");
    }
    BbvData out;
    out.intervalLength = intervalLength;

    // Deterministic random projection matrix: blocks x dims.
    Rng rng(seed);
    const size_t numBlocks = prog.numBlocks();
    std::vector<double> projection(numBlocks * projectedDims);
    for (double &p : projection)
        p = rng.uniform();

    isa::Emulator emu(prog);
    std::vector<uint64_t> counts(numBlocks, 0);
    uint64_t inInterval = 0;

    auto flush = [&]() {
        if (inInterval == 0)
            return;
        FeatureVector v(projectedDims, 0.0);
        for (size_t b = 0; b < numBlocks; ++b) {
            if (counts[b] == 0)
                continue;
            const double weight = static_cast<double>(counts[b]) /
                static_cast<double>(inInterval);
            for (uint32_t d = 0; d < projectedDims; ++d)
                v[d] += weight * projection[b * projectedDims + d];
        }
        out.vectors.push_back(std::move(v));
        std::fill(counts.begin(), counts.end(), 0);
        inInterval = 0;
    };

    while (!emu.halted()) {
        const uint32_t pc = emu.pc();
        if (prog.isLeader(pc))
            ++counts[prog.blockOf(pc)];
        emu.step();
        if (++inInterval >= intervalLength)
            flush();
    }
    flush();
    return out;
}

namespace
{

double
sqDist(const FeatureVector &a, const FeatureVector &b)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

Clustering
kmeans(const std::vector<FeatureVector> &data, uint32_t k,
       uint64_t seed, uint32_t iterations)
{
    Clustering out;
    out.k = k;
    if (data.empty() || k == 0)
        return out;
    k = std::min<uint32_t>(k, static_cast<uint32_t>(data.size()));
    out.k = k;

    // k-means++-style seeding, deterministic.
    Rng rng(seed);
    out.centroids.clear();
    out.centroids.push_back(data[rng.below(data.size())]);
    while (out.centroids.size() < k) {
        std::vector<double> d2(data.size());
        double total = 0.0;
        for (size_t i = 0; i < data.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : out.centroids)
                best = std::min(best, sqDist(data[i], c));
            d2[i] = best;
            total += best;
        }
        size_t pick = 0;
        if (total > 0.0) {
            double u = rng.uniform() * total;
            for (size_t i = 0; i < data.size(); ++i) {
                u -= d2[i];
                if (u <= 0.0) {
                    pick = i;
                    break;
                }
            }
        } else {
            pick = rng.below(data.size());
        }
        out.centroids.push_back(data[pick]);
    }

    out.assignment.assign(data.size(), 0);
    const size_t dims = data[0].size();
    for (uint32_t iter = 0; iter < iterations; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < data.size(); ++i) {
            uint32_t best = 0;
            double bestD = std::numeric_limits<double>::max();
            for (uint32_t c = 0; c < k; ++c) {
                const double d = sqDist(data[i], out.centroids[c]);
                if (d < bestD) {
                    bestD = d;
                    best = c;
                }
            }
            if (out.assignment[i] != best) {
                out.assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        std::vector<FeatureVector> sums(
            k, FeatureVector(dims, 0.0));
        std::vector<uint64_t> counts(k, 0);
        for (size_t i = 0; i < data.size(); ++i) {
            const uint32_t c = out.assignment[i];
            ++counts[c];
            for (size_t d = 0; d < dims; ++d)
                sums[c][d] += data[i][d];
        }
        for (uint32_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;  // keep the old centroid for empty clusters
            for (size_t d = 0; d < dims; ++d)
                out.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }
        if (!changed)
            break;
    }
    out.bic = bicScore(data, out);
    return out;
}

double
bicScore(const std::vector<FeatureVector> &data,
         const Clustering &clustering)
{
    // Pelleg & Moore's x-means BIC with identical spherical variance,
    // the formulation the SimPoint tool uses.
    const size_t n = data.size();
    if (n == 0 || clustering.k == 0)
        return -std::numeric_limits<double>::max();
    const size_t dims = data[0].size();
    const uint32_t k = clustering.k;

    double distortion = 0.0;
    std::vector<uint64_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
        const uint32_t c = clustering.assignment[i];
        ++counts[c];
        distortion += sqDist(data[i], clustering.centroids[c]);
    }
    const double denom = static_cast<double>(n) - k;
    const double variance = denom > 0.0
        ? std::max(distortion / (denom * dims), 1e-12) : 1e-12;

    double logLikelihood = 0.0;
    for (uint32_t c = 0; c < k; ++c) {
        const double nc = static_cast<double>(counts[c]);
        if (nc <= 0.0)
            continue;
        logLikelihood += nc * std::log(nc / static_cast<double>(n));
    }
    logLikelihood -= static_cast<double>(n) * dims / 2.0 *
        std::log(2.0 * M_PI * variance);
    logLikelihood -= distortion / (2.0 * variance);

    const double numParams = k * (dims + 1.0);
    return logLikelihood -
        numParams / 2.0 * std::log(static_cast<double>(n));
}

std::vector<SimPoint>
pickSimPoints(const BbvData &bbvs, uint32_t maxK, uint64_t seed)
{
    if (bbvs.vectors.empty())
        return {};

    Clustering best;
    double bestBic = -std::numeric_limits<double>::max();
    for (uint32_t k = 1; k <= maxK; ++k) {
        const Clustering c = kmeans(bbvs.vectors, k, seed + k);
        if (c.bic > bestBic) {
            bestBic = c.bic;
            best = c;
        }
    }

    std::vector<SimPoint> points;
    const size_t n = bbvs.vectors.size();
    for (uint32_t c = 0; c < best.k; ++c) {
        uint64_t count = 0;
        uint32_t rep = 0;
        double repDist = std::numeric_limits<double>::max();
        for (size_t i = 0; i < n; ++i) {
            if (best.assignment[i] != c)
                continue;
            ++count;
            const double d =
                sqDist(bbvs.vectors[i], best.centroids[c]);
            if (d < repDist) {
                repDist = d;
                rep = static_cast<uint32_t>(i);
            }
        }
        if (count == 0)
            continue;
        points.push_back({rep, static_cast<double>(count) /
                               static_cast<double>(n)});
    }
    return points;
}

SampledResult
simulateSimPoints(const isa::Program &prog, const cpu::CoreConfig &cfg,
                  const std::vector<SimPoint> &points,
                  uint64_t intervalLength)
{
    SampledResult out;
    double weightedCpi = 0.0;
    double weightedEpc = 0.0;
    double totalWeight = 0.0;
    for (const SimPoint &p : points) {
        cpu::EdsOptions opts;
        opts.skipInsts =
            static_cast<uint64_t>(p.interval) * intervalLength;
        opts.maxInsts = intervalLength;
        opts.warmupDuringSkip = true;
        const core::SimResult res =
            core::runExecutionDriven(prog, cfg, opts);
        if (res.ipc > 0.0) {
            weightedCpi += p.weight / res.ipc;
            weightedEpc += p.weight * res.epc;
            totalWeight += p.weight;
            out.simulatedInstructions += res.stats.committed;
        }
    }
    if (totalWeight > 0.0 && weightedCpi > 0.0) {
        out.ipc = totalWeight / weightedCpi;
        out.epc = weightedEpc / totalWeight;
    }
    return out;
}

} // namespace ssim::sampling
