/**
 * @file
 * Chrome trace_event exporter: timelines loadable in chrome://tracing
 * and Perfetto (https://ui.perfetto.dev). Two producers use it:
 *
 *  - the sweep engine, which records one track (tid) per worker with a
 *    complete ('X') slice per point attempt and instant ('i') markers
 *    for timeouts, retries, and failures from the watchdog; and
 *  - the simulator, which records windowed pipeline activity as
 *    counter ('C') series — interval IPC and per-stage throughput —
 *    with the cycle number as the (virtual) microsecond timestamp.
 *
 * The JSON object format is used (not the bare array) so the run
 * manifest rides along in otherData and Perfetto still accepts the
 * file. Events are buffered in memory and written once at the end:
 * sweeps emit a few events per point, pipeline windows are tens of
 * thousands of cycles wide, so buffers stay small relative to the
 * simulation itself.
 *
 * Argument values are attached as pre-rendered JSON tokens (see
 * TraceArg helpers); the exporter never re-renders numbers, keeping
 * the %.17g contract in one place (util/json_writer).
 */

#ifndef SSIM_OBS_EXPORT_TRACE_HH
#define SSIM_OBS_EXPORT_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hh"
#include "util/error.hh"

namespace ssim::obs
{

/** One key plus a pre-rendered JSON token for an event's args. */
struct TraceArg
{
    std::string key;
    std::string token;   ///< raw JSON: "\"text\"", "1.5", "42"

    static TraceArg str(std::string key, const std::string &value);
    static TraceArg num(std::string key, double value);
    static TraceArg u64(std::string key, uint64_t value);
};

/** One trace_event record; see the Chrome trace-event format spec. */
struct TraceEvent
{
    char phase = 'X';        ///< X complete, i instant, C counter, M meta
    std::string name;
    std::string category;
    double tsUs = 0.0;       ///< event start, microseconds
    double durUs = 0.0;      ///< X only: slice duration
    uint32_t pid = 0;
    uint32_t tid = 0;
    std::vector<TraceArg> args;
};

/**
 * Event buffer with append helpers. Thread-safe: sweep workers append
 * concurrently from their own threads.
 */
class TraceLog
{
  public:
    /** Name a track; emitted as a thread_name metadata event. */
    void threadName(uint32_t tid, const std::string &name,
                    uint32_t pid = 0);
    /** Name the process row; emitted as process_name metadata. */
    void processName(uint32_t pid, const std::string &name);

    /** Complete slice ('X'): work spanning [tsUs, tsUs + durUs). */
    void complete(std::string name, std::string category, double tsUs,
                  double durUs, uint32_t tid,
                  std::vector<TraceArg> args = {});

    /** Instant marker ('i'), thread-scoped. */
    void instant(std::string name, std::string category, double tsUs,
                 uint32_t tid, std::vector<TraceArg> args = {});

    /** Counter sample ('C'): one series per arg, stacked per name. */
    void counter(std::string name, double tsUs, uint32_t tid,
                 std::vector<TraceArg> series);

    size_t size() const;

    /** Render the full JSON object ({"traceEvents":[...],...}). */
    std::string render(const RunManifest &manifest) const;

    /** Render and atomically write to @p path. */
    Expected<void> write(const std::string &path,
                         const RunManifest &manifest) const;

  private:
    void push(TraceEvent e);

    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
};

} // namespace ssim::obs

#endif // SSIM_OBS_EXPORT_TRACE_HH
