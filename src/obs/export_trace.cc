#include "export_trace.hh"

#include <ostream>

#include "util/journal.hh"
#include "util/json_writer.hh"

namespace ssim::obs
{

namespace json = ssim::util::json;

TraceArg
TraceArg::str(std::string key, const std::string &value)
{
    std::string token;
    json::appendEscaped(token, value);
    return TraceArg{std::move(key), std::move(token)};
}

TraceArg
TraceArg::num(std::string key, double value)
{
    return TraceArg{std::move(key), json::doubleToken(value)};
}

TraceArg
TraceArg::u64(std::string key, uint64_t value)
{
    return TraceArg{std::move(key), std::to_string(value)};
}

void
TraceLog::push(TraceEvent e)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
}

void
TraceLog::threadName(uint32_t tid, const std::string &name, uint32_t pid)
{
    TraceEvent e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.args.push_back(TraceArg::str("name", name));
    push(std::move(e));
}

void
TraceLog::processName(uint32_t pid, const std::string &name)
{
    TraceEvent e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.args.push_back(TraceArg::str("name", name));
    push(std::move(e));
}

void
TraceLog::complete(std::string name, std::string category, double tsUs,
                   double durUs, uint32_t tid,
                   std::vector<TraceArg> args)
{
    TraceEvent e;
    e.phase = 'X';
    e.name = std::move(name);
    e.category = std::move(category);
    e.tsUs = tsUs;
    e.durUs = durUs;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceLog::instant(std::string name, std::string category, double tsUs,
                  uint32_t tid, std::vector<TraceArg> args)
{
    TraceEvent e;
    e.phase = 'i';
    e.name = std::move(name);
    e.category = std::move(category);
    e.tsUs = tsUs;
    e.tid = tid;
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceLog::counter(std::string name, double tsUs, uint32_t tid,
                  std::vector<TraceArg> series)
{
    TraceEvent e;
    e.phase = 'C';
    e.name = std::move(name);
    e.tsUs = tsUs;
    e.tid = tid;
    e.args = std::move(series);
    push(std::move(e));
}

size_t
TraceLog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

namespace
{

void
appendEvent(std::string &out, const TraceEvent &e)
{
    json::appendComma(out);
    out += '{';
    json::appendField(out, "name", e.name);
    if (!e.category.empty())
        json::appendField(out, "cat", e.category);
    json::appendKey(out, "ph");
    out += '"';
    out += e.phase;
    out += '"';
    if (e.phase != 'M') {
        json::appendDouble(out, "ts", e.tsUs);
        if (e.phase == 'X')
            json::appendDouble(out, "dur", e.durUs);
        if (e.phase == 'i')
            json::appendField(out, "s", "t");   // thread-scoped instant
    }
    json::appendU64(out, "pid", e.pid);
    json::appendU64(out, "tid", e.tid);
    if (!e.args.empty()) {
        json::appendKey(out, "args");
        out += '{';
        for (const TraceArg &a : e.args) {
            json::appendKey(out, a.key.c_str());
            out += a.token;
        }
        out += '}';
    }
    out += '}';
}

} // namespace

std::string
TraceLog::render(const RunManifest &manifest) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out += '{';
    json::appendKey(out, "traceEvents");
    out += '[';
    for (const TraceEvent &e : events_)
        appendEvent(out, e);
    out += ']';
    json::appendField(out, "displayTimeUnit", "ms");
    json::appendKey(out, "otherData");
    out += '{';
    json::appendField(out, "format", "ssim-trace");
    json::appendU64(out, "version", 1);
    json::appendKey(out, "manifest");
    manifest.appendJson(out);
    out += "}}\n";
    return out;
}

Expected<void>
TraceLog::write(const std::string &path,
                const RunManifest &manifest) const
{
    std::string doc = render(manifest);
    return util::atomicWriteFile(
        path, [&](std::ostream &os) { os << doc; });
}

} // namespace ssim::obs
