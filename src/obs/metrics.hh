/**
 * @file
 * Metrics registry: typed counters, gauges, and fixed-bucket
 * histograms that components register by hierarchical name
 * (`core.ruu.occupancy`, `sweep.points.ok`). The registry is the
 * single publication surface the exporters (obs/export_json,
 * obs/export_trace) read from, so every artifact the simulator emits
 * draws from one coherent namespace.
 *
 * Naming scheme: dot-separated lowercase segments, each of
 * `[a-z0-9_-]+`. Registering the same name twice with the same kind
 * (and, for histograms, the same bucket bounds) returns the existing
 * instrument; any mismatch throws ssim::Error (InvalidArgument) —
 * silent aliasing of two different meanings under one name is how
 * dashboards lie.
 *
 * Overhead contract: nothing in the simulator's cycle loop touches
 * the registry. Hot-path producers (the out-of-order core, the
 * frontends) accumulate into plain struct fields or into the
 * compile-time-inlined telemetry cells in cpu/pipeline/telemetry.hh,
 * and *publication* — copying those cells into registry instruments —
 * happens once, after the run. With no registry attached the only
 * residual cost is a handful of integer adds per cycle, which
 * bench_throughput's instrumented-vs-disabled pair bounds at <1%.
 *
 * Thread safety: registration and snapshot() are mutex-guarded.
 * Updating an instrument (inc/set/observe) is NOT synchronized —
 * each simulation run owns its instruments, and concurrent sweep
 * workers use one registry per point or publish under the engine
 * lock.
 */

#ifndef SSIM_OBS_METRICS_HH
#define SSIM_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.hh"

namespace ssim::obs
{

/** The three instrument types. */
enum class InstrumentKind : uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

/** Stable name for an instrument kind ("counter", ...). */
const char *instrumentKindName(InstrumentKind kind);

/** Monotonic event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { value_ += n; }
    /** Publication helper: adopt an externally accumulated total. */
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Point-in-time value (occupancy, rate, ETA). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram. Buckets are defined by strictly increasing
 * upper bounds; a sample lands in the first bucket whose bound is
 * >= the sample (closed upper edge), and samples above the last bound
 * land in the implicit overflow bucket, so bucketCounts() has
 * bounds().size() + 1 entries.
 */
class Histogram
{
  public:
    /** @throws ssim::Error (InvalidArgument) on empty or non-increasing bounds. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);
    /** Bulk publication: add @p n samples to bucket @p bucket. */
    void addToBucket(size_t bucket, uint64_t n, double sumDelta);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    const std::vector<double> &bounds() const { return bounds_; }
    const std::vector<uint64_t> &bucketCounts() const { return counts_; }

    /** Fold @p other in. @throws InvalidArgument on bounds mismatch. */
    void merge(const Histogram &other);

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;   ///< bounds_.size() + 1 (overflow last)
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/** One exported instrument value (histograms copied by value). */
struct SnapshotEntry
{
    std::string name;
    InstrumentKind kind = InstrumentKind::Counter;
    uint64_t counterValue = 0;
    double gaugeValue = 0.0;
    std::vector<double> histBounds;
    std::vector<uint64_t> histCounts;
    double histSum = 0.0;
    uint64_t histCount = 0;
};

/** Consistent, name-sorted copy of every instrument. */
struct Snapshot
{
    std::vector<SnapshotEntry> entries;
};

class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or re-open) an instrument. References stay valid for
     * the registry's lifetime.
     * @throws ssim::Error (InvalidArgument) on an invalid name or a
     *         kind/bounds collision with an existing instrument.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    /**
     * Register a computed gauge: @p fn is evaluated at snapshot time.
     * Used for live values (sweep ETA, progress fractions) that would
     * otherwise need a refresh call before every export.
     */
    void gaugeFn(const std::string &name, std::function<double()> fn);

    size_t size() const;

    /** Name-sorted value copy; computed gauges are evaluated here. */
    Snapshot snapshot() const;

    /** Dot-separated lowercase segments of [a-z0-9_-]+. */
    static bool validName(const std::string &name);

  private:
    struct Slot
    {
        InstrumentKind kind = InstrumentKind::Counter;
        Counter counter;
        Gauge gauge;
        std::function<double()> gaugeFn;   ///< null for plain gauges
        std::vector<double> histBounds;    ///< empty unless histogram
        Histogram *histogram = nullptr;    ///< owned via histograms_
    };

    Slot &reserve(const std::string &name, InstrumentKind kind);

    mutable std::mutex mu_;
    // std::map: stable node addresses (references survive inserts)
    // and sorted iteration (deterministic exports) in one structure.
    std::map<std::string, Slot> slots_;
    std::vector<std::unique_ptr<Histogram>> histograms_;
};

/**
 * Evenly spaced occupancy bounds for a structure of @p capacity
 * entries: at most @p buckets buckets covering [0, capacity].
 */
std::vector<double> occupancyBounds(uint64_t capacity,
                                    uint32_t buckets = 8);

} // namespace ssim::obs

#endif // SSIM_OBS_METRICS_HH
