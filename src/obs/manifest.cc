#include "manifest.hh"

#include "util/json_writer.hh"

#ifndef SSIM_GIT_DESCRIBE
#define SSIM_GIT_DESCRIBE "unknown"
#endif

namespace ssim::obs
{

namespace json = ssim::util::json;

std::string
buildVersion()
{
    return SSIM_GIT_DESCRIBE;
}

RunManifest
makeManifest(const std::string &command)
{
    RunManifest m;
    m.buildVersion = buildVersion();
    m.command = command;
    return m;
}

void
RunManifest::appendJson(std::string &out) const
{
    out += '{';
    json::appendField(out, "tool", tool);
    json::appendField(out, "build_version", buildVersion);
    json::appendField(out, "command", command);
    if (!workload.empty())
        json::appendField(out, "workload", workload);
    json::appendHex64(out, "config_hash", configHash);
    if (hasProfileChecksum)
        json::appendHex64(out, "profile_checksum", profileChecksum);
    json::appendU64(out, "seed", seed);
    out += '}';
}

} // namespace ssim::obs
