#include "export_json.hh"

#include <ostream>

#include "util/journal.hh"
#include "util/json_writer.hh"

namespace ssim::obs
{

namespace json = ssim::util::json;

namespace
{

void
appendHistogram(std::string &out, const SnapshotEntry &e)
{
    out += '{';
    json::appendKey(out, "bounds");
    out += '[';
    for (double b : e.histBounds) {
        json::appendComma(out);
        out += json::doubleToken(b);
    }
    out += ']';
    json::appendKey(out, "counts");
    out += '[';
    for (uint64_t c : e.histCounts) {
        json::appendComma(out);
        out += std::to_string(c);
    }
    out += ']';
    json::appendDouble(out, "sum", e.histSum);
    json::appendU64(out, "count", e.histCount);
    out += '}';
}

} // namespace

std::string
renderStatsJson(const Snapshot &snap, const RunManifest &manifest)
{
    std::string out;
    out += '{';
    json::appendField(out, "format", "ssim-stats");
    json::appendU64(out, "version", 1);
    json::appendKey(out, "manifest");
    manifest.appendJson(out);
    json::appendKey(out, "metrics");
    out += '{';
    for (const SnapshotEntry &e : snap.entries) {
        json::appendKey(out, e.name.c_str());
        switch (e.kind) {
          case InstrumentKind::Counter:
            out += std::to_string(e.counterValue);
            break;
          case InstrumentKind::Gauge:
            out += json::doubleToken(e.gaugeValue);
            break;
          case InstrumentKind::Histogram:
            appendHistogram(out, e);
            break;
        }
    }
    out += "}}\n";
    return out;
}

Expected<void>
writeStatsJson(const std::string &path, const Snapshot &snap,
               const RunManifest &manifest)
{
    std::string doc = renderStatsJson(snap, manifest);
    return util::atomicWriteFile(
        path, [&](std::ostream &os) { os << doc; });
}

} // namespace ssim::obs
