/**
 * @file
 * --stats-json exporter: renders a registry snapshot plus the run
 * manifest as one machine-readable JSON document.
 *
 * Output layout:
 *
 *   {"format":"ssim-stats","version":1,
 *    "manifest":{...},
 *    "metrics":{
 *      "core.commit.ipc":1.23...,                       // gauge
 *      "core.stall.ruu_full":12345,                     // counter
 *      "core.ruu.occupancy":{"bounds":[...],            // histogram
 *                            "counts":[...],
 *                            "sum":...,"count":...}}}
 *
 * Rendering reuses util/json_writer (%.17g doubles, hex64 hashes, no
 * whitespace), so two identical seeded runs produce byte-identical
 * files — asserted by the golden-stability ctest.
 */

#ifndef SSIM_OBS_EXPORT_JSON_HH
#define SSIM_OBS_EXPORT_JSON_HH

#include <string>

#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "util/error.hh"

namespace ssim::obs
{

/** Render @p snap + @p manifest as the ssim-stats JSON document. */
std::string renderStatsJson(const Snapshot &snap,
                            const RunManifest &manifest);

/** Render and atomically write to @p path (tmp + rename). */
Expected<void> writeStatsJson(const std::string &path,
                              const Snapshot &snap,
                              const RunManifest &manifest);

} // namespace ssim::obs

#endif // SSIM_OBS_EXPORT_JSON_HH
