/**
 * @file
 * Run manifest: the provenance block stamped into every export
 * (--stats-json, --trace, sweep heartbeat) so an artifact found on
 * disk months later is attributable to an exact run — which binary
 * (git describe), which configuration (FNV-1a config hash), which
 * profile (checksum), which seed.
 *
 * Wall-clock timestamps are deliberately absent: the --stats-json
 * golden test requires two identical seeded runs to produce
 * byte-identical output, and a timestamp is the canonical way to
 * break that. Provenance here means *inputs*, which are
 * deterministic, not *when*, which is not.
 */

#ifndef SSIM_OBS_MANIFEST_HH
#define SSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>

namespace ssim::obs
{

struct RunManifest
{
    std::string tool = "ssim";
    std::string buildVersion;      ///< git describe, from buildVersion()
    std::string command;           ///< CLI subcommand ("simulate", "sweep")
    std::string workload;          ///< workload name, empty if n/a
    uint64_t configHash = 0;       ///< FNV-1a over the CoreConfig
    uint64_t profileChecksum = 0;  ///< profile payload checksum, 0 if n/a
    uint64_t seed = 0;             ///< RNG seed for the run
    bool hasProfileChecksum = false;

    /** Append this manifest as a JSON object (no surrounding key). */
    void appendJson(std::string &out) const;
};

/** The `git describe` string baked into this binary at build time. */
std::string buildVersion();

/** A manifest pre-filled with the build version. */
RunManifest makeManifest(const std::string &command);

} // namespace ssim::obs

#endif // SSIM_OBS_MANIFEST_HH
