#include "metrics.hh"

#include <algorithm>
#include <memory>

namespace ssim::obs
{

const char *
instrumentKindName(InstrumentKind kind)
{
    switch (kind) {
      case InstrumentKind::Counter: return "counter";
      case InstrumentKind::Gauge: return "gauge";
      case InstrumentKind::Histogram: return "histogram";
    }
    return "unknown";
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty()) {
        throw Error(ErrorCategory::InvalidArgument,
                    "histogram needs at least one bucket bound");
    }
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i] > bounds_[i - 1])) {
            throw Error(ErrorCategory::InvalidArgument,
                        "histogram bounds must be strictly increasing");
        }
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double x)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
    sum_ += x;
    count_ += 1;
}

void
Histogram::addToBucket(size_t bucket, uint64_t n, double sumDelta)
{
    if (bucket >= counts_.size()) {
        throw Error(ErrorCategory::InvalidArgument,
                    "histogram bucket index out of range");
    }
    counts_[bucket] += n;
    count_ += n;
    sum_ += sumDelta;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bounds_ != bounds_) {
        throw Error(ErrorCategory::InvalidArgument,
                    "cannot merge histograms with different bounds");
    }
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    sum_ += other.sum_;
    count_ += other.count_;
}

bool
Registry::validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prevDot = false;
    for (char c : name) {
        if (c == '.') {
            if (prevDot)
                return false;
            prevDot = true;
            continue;
        }
        prevDot = false;
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

Registry::Slot &
Registry::reserve(const std::string &name, InstrumentKind kind)
{
    if (!validName(name)) {
        throw Error(ErrorCategory::InvalidArgument,
                    "invalid metric name '" + name +
                        "' (want dot-separated [a-z0-9_-] segments)");
    }
    auto [it, inserted] = slots_.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        throw Error(ErrorCategory::InvalidArgument,
                    "metric '" + name + "' already registered as " +
                        instrumentKindName(it->second.kind) +
                        ", cannot re-register as " +
                        instrumentKindName(kind));
    }
    return it->second;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return reserve(name, InstrumentKind::Counter).counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    Slot &slot = reserve(name, InstrumentKind::Gauge);
    if (slot.gaugeFn) {
        throw Error(ErrorCategory::InvalidArgument,
                    "metric '" + name +
                        "' is a computed gauge, cannot re-open as plain");
    }
    return slot.gauge;
}

void
Registry::gaugeFn(const std::string &name, std::function<double()> fn)
{
    if (!fn) {
        throw Error(ErrorCategory::InvalidArgument,
                    "computed gauge '" + name + "' needs a callable");
    }
    std::lock_guard<std::mutex> lock(mu_);
    Slot &slot = reserve(name, InstrumentKind::Gauge);
    if (slot.gaugeFn) {
        throw Error(ErrorCategory::InvalidArgument,
                    "computed gauge '" + name + "' already registered");
    }
    slot.gaugeFn = std::move(fn);
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    Slot &slot = reserve(name, InstrumentKind::Histogram);
    if (slot.histogram) {
        if (slot.histBounds != bounds) {
            throw Error(ErrorCategory::InvalidArgument,
                        "histogram '" + name +
                            "' already registered with different bounds");
        }
        return *slot.histogram;
    }
    histograms_.push_back(std::make_unique<Histogram>(bounds));
    slot.histBounds = std::move(bounds);
    slot.histogram = histograms_.back().get();
    return *slot.histogram;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.entries.reserve(slots_.size());
    for (const auto &[name, slot] : slots_) {
        SnapshotEntry e;
        e.name = name;
        e.kind = slot.kind;
        switch (slot.kind) {
          case InstrumentKind::Counter:
            e.counterValue = slot.counter.value();
            break;
          case InstrumentKind::Gauge:
            e.gaugeValue =
                slot.gaugeFn ? slot.gaugeFn() : slot.gauge.value();
            break;
          case InstrumentKind::Histogram:
            e.histBounds = slot.histogram->bounds();
            e.histCounts = slot.histogram->bucketCounts();
            e.histSum = slot.histogram->sum();
            e.histCount = slot.histogram->count();
            break;
        }
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

std::vector<double>
occupancyBounds(uint64_t capacity, uint32_t buckets)
{
    if (capacity == 0 || buckets == 0) {
        throw Error(ErrorCategory::InvalidArgument,
                    "occupancyBounds needs capacity > 0 and buckets > 0");
    }
    uint64_t n = std::min<uint64_t>(buckets, capacity);
    std::vector<double> bounds;
    bounds.reserve(n);
    for (uint64_t i = 1; i <= n; ++i) {
        // Round up so the final bound is exactly `capacity` and
        // intermediate edges land on integers.
        bounds.push_back(
            static_cast<double>((capacity * i + n - 1) / n));
    }
    return bounds;
}

} // namespace ssim::obs
