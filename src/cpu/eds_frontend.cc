#include "eds_frontend.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace ssim::cpu
{

EdsFrontend::EdsFrontend(const isa::Program &prog, const CoreConfig &cfg,
                         EdsOptions opts)
    : prog_(&prog), cfg_(cfg), opts_(opts), emu_(prog),
      bpred_(cfg.bpred), mem_(cfg)
{
    fastForward();
    fetchPc_ = emu_.pc();
}

void
EdsFrontend::fastForward()
{
    uint64_t line = ~0ull;
    for (uint64_t i = 0; i < opts_.skipInsts && !emu_.halted(); ++i) {
        const uint32_t pc = emu_.pc();
        const isa::Instruction &inst = prog_->text[pc];
        if (opts_.warmupDuringSkip) {
            const uint64_t thisLine =
                isa::instAddr(pc) / cfg_.il1.lineBytes;
            if (thisLine != line) {
                line = thisLine;
                mem_.instAccess(isa::instAddr(pc));
            }
        }
        const bool ctrl = isa::isControlFlow(inst.op);
        BranchPrediction pred;
        if (opts_.warmupDuringSkip && ctrl && !cfg_.perfectBpred)
            pred = bpred_.predict(pc, inst);
        const isa::ExecutedInst rec = emu_.step();
        if (opts_.warmupDuringSkip) {
            if (rec.isMem)
                mem_.dataAccess(rec.memAddr, isa::isStore(inst.op));
            if (ctrl && !cfg_.perfectBpred)
                bpred_.update(pc, inst, rec.taken, rec.nextPc);
        }
    }
}

void
EdsFrontend::fetchCycle(FetchQueue &ifq, uint32_t maxSlots,
                        uint64_t cycle, SimStats &stats)
{
    if (fetchDone_ || wrongPathStalled_)
        return;
    if (fetchTel_.stalled(cycle, stats))
        return;

    // The front end runs at fetchSpeed times the core width
    // (sim-outorder's -fetch:speed), which keeps the IFQ full.
    uint32_t budget = fetchTel_.budget(maxSlots);
    uint32_t takenSeen = 0;

    while (budget > 0) {
        if (fetchPc_ >= prog_->text.size()) {
            panicIf(!wrongPathFetch_,
                    "correct-path fetch ran off the text segment");
            wrongPathStalled_ = true;
            return;
        }
        const isa::Instruction &inst = prog_->text[fetchPc_];
        if (wrongPathFetch_ && inst.op == isa::Opcode::HALT) {
            wrongPathStalled_ = true;
            return;
        }

        // I-cache / I-TLB access on each fetch-line change.
        uint32_t extraStall = 0;
        if (!cfg_.perfectCaches) {
            const uint64_t addr = isa::instAddr(fetchPc_);
            const uint64_t thisLine = addr / cfg_.il1.lineBytes;
            if (thisLine != lastFetchLine_) {
                lastFetchLine_ = thisLine;
                const MemAccessResult res = mem_.instAccess(addr);
                stats.touch(PowerUnit::ICache, cycle);
                stats.touch(PowerUnit::ITlb, cycle);
                if (res.l1Miss)
                    stats.touch(PowerUnit::L2, cycle);
                extraStall = res.latency - cfg_.il1.latency;
            }
        }

        // Build the record in its IFQ slot: every path from here
        // delivers exactly one instruction.
        DynInst &di = ifq.push();
        di.seq = nextSeq_++;
        di.pc = fetchPc_;
        di.op = inst.op;
        di.cls = isa::classOf(inst.op);
        di.numSrcs = static_cast<uint8_t>(isa::numSrcRegs(inst));
        di.hasDest = isa::destReg(inst).valid();
        di.isLoad = isa::isLoad(inst.op);
        di.isStore = isa::isStore(inst.op);
        di.isCtrl = isa::isControlFlow(inst.op);
        di.wrongPath = wrongPathFetch_;

        uint32_t next = fetchPc_ + 1;

        if (di.isCtrl) {
            BranchPrediction pred;
            if (!cfg_.perfectBpred) {
                pred = bpred_.predict(fetchPc_, inst);
                stats.touch(PowerUnit::Bpred, cycle);
            }
            if (!wrongPathFetch_) {
                panicIf(emu_.pc() != fetchPc_,
                        "fetch/execute desynchronized");
                const isa::ExecutedInst rec = emu_.step();
                di.taken = rec.taken;
                di.actualNext = rec.nextPc;
                if (cfg_.perfectBpred) {
                    pred.predTaken = rec.taken;
                    pred.targetValid = true;
                    pred.predTarget = rec.nextPc;
                    pred.fetchNext = rec.nextPc;
                }
                if (inst.op == isa::Opcode::HALT) {
                    di.outcome = BranchOutcome::Correct;
                    fetchDone_ = true;
                    ++stats.fetched;
                    return;
                }
                di.outcome = BranchUnit::classify(
                    inst, pred, rec.taken, rec.nextPc, fetchPc_ + 1);
                if (di.outcome == BranchOutcome::Correct) {
                    next = rec.nextPc;
                } else {
                    // Fetch continues down the (wrong) predicted path
                    // until the event is handled at dispatch
                    // (redirect) or resolution (mispredict).
                    next = pred.fetchNext;
                    wrongPathFetch_ = true;
                    rasCkpt_ = bpred_.rasState();
                }
            } else {
                di.outcome = BranchOutcome::Correct;
                next = cfg_.perfectBpred ? fetchPc_ + 1 : pred.fetchNext;
            }
            if (next != fetchPc_ + 1)
                ++takenSeen;
        } else if (!wrongPathFetch_) {
            panicIf(emu_.pc() != fetchPc_,
                    "fetch/execute desynchronized");
            const isa::ExecutedInst rec = emu_.step();
            di.memAddr = rec.memAddr;
            di.memBytes = rec.memBytes;
        }

        if (!di.wrongPath &&
            ++correctPathDelivered_ >= opts_.maxInsts) {
            fetchDone_ = true;
        }

        ++stats.fetched;
        fetchPc_ = next;
        --budget;

        if (fetchDone_)
            return;
        if (takenSeen >= cfg_.fetchSpeed)
            return;
        if (extraStall > 0) {
            fetchTel_.icacheStall(cycle, extraStall);
            return;
        }
    }
}

void
EdsFrontend::fillDeps(DynInst &di) const
{
    const isa::Instruction &inst = prog_->text[di.pc];
    for (int s = 0; s < di.numSrcs; ++s) {
        const isa::RegRef r = isa::srcReg(inst, s);
        if (!r.valid() ||
            (r.space == isa::RegSpace::Int && r.index == isa::RegZero)) {
            di.srcProducer[s] = 0;
            continue;
        }
        di.srcProducer[s] =
            renameMap_[static_cast<int>(r.space)][r.index];
    }
}

void
EdsFrontend::updateRenameMap(const DynInst &di)
{
    const isa::Instruction &inst = prog_->text[di.pc];
    const isa::RegRef d = isa::destReg(inst);
    if (!d.valid() ||
        (d.space == isa::RegSpace::Int && d.index == isa::RegZero)) {
        return;
    }
    renameMap_[static_cast<int>(d.space)][d.index] = di.seq;
}

DispatchAction
EdsFrontend::atDispatch(DynInst &di, uint64_t cycle, SimStats &stats)
{
    fillDeps(di);
    updateRenameMap(di);

    if (di.wrongPath || !di.isCtrl)
        return DispatchAction::None;

    const isa::Instruction &inst = prog_->text[di.pc];
    if (!cfg_.perfectBpred && inst.op != isa::Opcode::HALT) {
        // Dispatch-time speculative update (section 2.1.3).
        bpred_.update(di.pc, inst, di.taken, di.actualNext);
        stats.touch(PowerUnit::Bpred, cycle);
    }

    if (di.outcome == BranchOutcome::FetchRedirect) {
        wrongPathFetch_ = false;
        wrongPathStalled_ = false;
        fetchPc_ = di.actualNext;
        fetchTel_.redirect(cycle);
        bpred_.repairRas(rasCkpt_);
        lastFetchLine_ = ~0ull;
        return DispatchAction::SquashIfq;
    }
    if (di.outcome == BranchOutcome::Mispredict) {
        std::memcpy(renameCkpt_, renameMap_, sizeof(renameMap_));
        return DispatchAction::EnterWrongPath;
    }
    return DispatchAction::None;
}

void
EdsFrontend::recover(const DynInst &branch, uint64_t cycle)
{
    wrongPathFetch_ = false;
    wrongPathStalled_ = false;
    fetchPc_ = branch.actualNext;
    fetchTel_.mispredictRecovery(cycle);
    std::memcpy(renameMap_, renameCkpt_, sizeof(renameMap_));
    bpred_.repairRas(rasCkpt_);
    lastFetchLine_ = ~0ull;
}

MemEvent
EdsFrontend::loadAccess(const DynInst &di)
{
    MemEvent ev;
    if (cfg_.perfectCaches || di.memAddr == 0) {
        ev.latency = cfg_.dl1.latency;
        return ev;
    }
    const MemAccessResult res = mem_.dataAccess(di.memAddr, false);
    ev.l1Miss = res.l1Miss;
    ev.l2Access = res.l1Miss;
    ev.l2Miss = res.l2Miss;
    ev.tlbMiss = res.tlbMiss;
    ev.latency = res.latency;
    return ev;
}

MemEvent
EdsFrontend::storeAccess(const DynInst &di)
{
    MemEvent ev;
    if (cfg_.perfectCaches || di.memAddr == 0) {
        ev.latency = cfg_.dl1.latency;
        return ev;
    }
    const MemAccessResult res = mem_.dataAccess(di.memAddr, true);
    ev.l1Miss = res.l1Miss;
    ev.l2Access = res.l1Miss;
    ev.l2Miss = res.l2Miss;
    ev.tlbMiss = res.tlbMiss;
    ev.latency = res.latency;
    return ev;
}

bool
EdsFrontend::done() const
{
    return fetchDone_;
}

} // namespace ssim::cpu
