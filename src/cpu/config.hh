/**
 * @file
 * Microarchitecture configuration (the knobs of Table 2) and presets.
 *
 * Every structure the paper sweeps in its evaluation — RUU/LSQ size,
 * pipeline widths, IFQ size, branch predictor sizes, cache sizes — is
 * a field here so the experiment harness can express each design point
 * as a plain value.
 */

#ifndef SSIM_CPU_CONFIG_HH
#define SSIM_CPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/error.hh"

namespace ssim::cpu
{

/** Set-associative cache parameters. */
struct CacheConfig
{
    uint32_t sizeBytes = 0;
    uint32_t assoc = 1;
    uint32_t lineBytes = 32;
    uint32_t latency = 1;     ///< hit latency in cycles

    uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }

    /** Return a copy scaled by a power-of-two factor (sets scale). */
    CacheConfig scaled(double factor) const;

    /**
     * @throws ssim::Error (InvalidConfig) when the geometry is
     *         degenerate; @p name labels the cache in the message
     *         ("il1", "dl1", "l2").
     */
    void validate(const std::string &name) const;
};

/** TLB parameters. */
struct TlbConfig
{
    uint32_t entries = 32;
    uint32_t assoc = 8;
    uint32_t pageBytes = 4096;
    uint32_t missPenalty = 30;  ///< cycles added on a TLB miss
};

/** Direction predictor flavours. */
enum class BpredKind : uint8_t
{
    Hybrid,    ///< bimodal + two-level local with a chooser (Table 2)
    Bimodal,
    TwoLevel,
    Taken,     ///< static predict-taken
    Perfect,   ///< oracle (used for Figure 4's perfect-bpred runs)
};

/** Branch predictor parameters. */
struct BpredConfig
{
    BpredKind kind = BpredKind::Hybrid;
    uint32_t bimodalEntries = 8192;
    uint32_t l1Entries = 8192;      ///< two-level: history table entries
    uint32_t l2Entries = 8192;      ///< two-level: pattern table entries
    uint32_t historyBits = 13;      ///< two-level local history length
    bool xorPc = true;              ///< xor history with branch PC
    uint32_t chooserEntries = 8192;
    uint32_t btbEntries = 512;
    uint32_t btbAssoc = 4;
    uint32_t rasEntries = 64;

    /** Return a copy with all predictor tables scaled by 2^log2. */
    BpredConfig scaled(int log2Factor) const;
};

/** Functional-unit latencies (cycles) and counts. */
struct FuConfig
{
    uint32_t intAluCount = 8;
    uint32_t ldStCount = 4;
    uint32_t fpAluCount = 2;
    uint32_t intMultCount = 2;
    uint32_t fpMultCount = 2;

    uint32_t intAluLat = 1;
    uint32_t intMultLat = 3;
    uint32_t intDivLat = 20;     ///< non-pipelined
    uint32_t fpAluLat = 2;
    uint32_t fpMultLat = 4;
    uint32_t fpDivLat = 12;      ///< non-pipelined
    uint32_t fpSqrtLat = 24;     ///< non-pipelined
    uint32_t agenLat = 1;        ///< address generation before cache
};

/** Complete core configuration. */
struct CoreConfig
{
    std::string name = "baseline";

    // Pipeline shape.
    uint32_t ifqSize = 32;
    uint32_t ruuSize = 128;
    uint32_t lsqSize = 32;
    uint32_t decodeWidth = 8;
    uint32_t issueWidth = 8;
    uint32_t commitWidth = 8;
    uint32_t fetchSpeed = 2;    ///< taken-branch-limited accesses/cycle

    // Recovery penalties (cycles of fetch stall).
    uint32_t mispredictPenalty = 14;
    uint32_t redirectPenalty = 2;

    // Memory system.
    CacheConfig il1{8 * 1024, 2, 32, 1};
    CacheConfig dl1{16 * 1024, 4, 32, 2};
    CacheConfig l2{1024 * 1024, 4, 64, 20};
    TlbConfig itlb;
    TlbConfig dtlb;
    uint32_t memLatency = 150;

    BpredConfig bpred;
    FuConfig fu;

    // Idealizations used by the evaluation (Figures 4 and 5).
    bool perfectCaches = false;
    bool perfectBpred = false;

    /**
     * In-order issue (the paper's section 2.1.1 extension note):
     * instructions issue strictly in program order, stalling at the
     * first non-ready instruction. Register renaming is still
     * assumed, so the RAW-only dependency profile remains sufficient.
     */
    bool inOrderIssue = false;

    /** The paper's baseline 8-way configuration (Table 2). */
    static CoreConfig baseline();

    /**
     * A SimpleScalar-like default configuration (4-wide, 16-entry RUU,
     * 8-entry LSQ, smaller predictor), used for the HLS comparison
     * (section 4.3 uses SimpleScalar's baseline rather than Table 2).
     */
    static CoreConfig simpleScalarDefault();

    /**
     * Check every knob for values the pipeline, cache, predictor and
     * power models cannot operate on (zero widths or queue sizes, an
     * LSQ larger than the RUU, degenerate cache geometry, empty
     * predictor tables). Called at every library API entry point so a
     * bad design point in a sweep fails with a recoverable,
     * actionable error instead of corrupting the run.
     *
     * @throws ssim::Error (InvalidConfig) naming the offending knob
     *         and configuration.
     */
    void validate() const;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_CONFIG_HH
