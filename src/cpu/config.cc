#include "config.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ssim::cpu
{

CacheConfig
CacheConfig::scaled(double factor) const
{
    CacheConfig c = *this;
    c.sizeBytes = static_cast<uint32_t>(
        std::max(1.0, std::round(sizeBytes * factor)));
    // Keep at least one set.
    c.sizeBytes = std::max(c.sizeBytes, c.assoc * c.lineBytes);
    return c;
}

BpredConfig
BpredConfig::scaled(int log2Factor) const
{
    BpredConfig b = *this;
    auto scale = [log2Factor](uint32_t v) {
        if (log2Factor >= 0)
            return std::max<uint32_t>(4, v << log2Factor);
        return std::max<uint32_t>(4, v >> (-log2Factor));
    };
    b.bimodalEntries = scale(bimodalEntries);
    b.l1Entries = scale(l1Entries);
    b.l2Entries = scale(l2Entries);
    b.chooserEntries = scale(chooserEntries);
    b.historyBits = static_cast<uint32_t>(
        std::max(4.0, std::log2(static_cast<double>(b.l2Entries))));
    return b;
}

namespace
{

/** Raise an InvalidConfig error naming the offending knob. */
[[noreturn]] void
badKnob(const std::string &config, const std::string &knob,
        const std::string &problem)
{
    throw Error(ErrorCategory::InvalidConfig,
                "configuration '" + config + "': " + knob + " " +
                problem);
}

void
requireNonZero(const std::string &config, const std::string &knob,
               uint64_t value)
{
    if (value == 0)
        badKnob(config, knob, "must be at least 1 (got 0)");
}

} // namespace

void
CacheConfig::validate(const std::string &name) const
{
    requireNonZero(name, name + ".assoc", assoc);
    requireNonZero(name, name + ".lineBytes", lineBytes);
    requireNonZero(name, name + ".latency", latency);
    if (sizeBytes < assoc * lineBytes) {
        badKnob(name, name + ".sizeBytes",
                "= " + std::to_string(sizeBytes) +
                " holds less than one set (assoc " +
                std::to_string(assoc) + " x line " +
                std::to_string(lineBytes) + " bytes)");
    }
}

void
CoreConfig::validate() const
{
    requireNonZero(name, "decodeWidth", decodeWidth);
    requireNonZero(name, "issueWidth", issueWidth);
    requireNonZero(name, "commitWidth", commitWidth);
    requireNonZero(name, "ifqSize", ifqSize);
    requireNonZero(name, "ruuSize", ruuSize);
    requireNonZero(name, "lsqSize", lsqSize);
    requireNonZero(name, "fetchSpeed", fetchSpeed);
    requireNonZero(name, "memLatency", memLatency);
    if (lsqSize > ruuSize) {
        badKnob(name, "lsqSize",
                "= " + std::to_string(lsqSize) +
                " exceeds ruuSize = " + std::to_string(ruuSize) +
                " (every LSQ entry needs an RUU entry)");
    }

    il1.validate(name + ".il1");
    dl1.validate(name + ".dl1");
    l2.validate(name + ".l2");

    requireNonZero(name, "itlb.entries", itlb.entries);
    requireNonZero(name, "itlb.assoc", itlb.assoc);
    requireNonZero(name, "itlb.pageBytes", itlb.pageBytes);
    requireNonZero(name, "dtlb.entries", dtlb.entries);
    requireNonZero(name, "dtlb.assoc", dtlb.assoc);
    requireNonZero(name, "dtlb.pageBytes", dtlb.pageBytes);

    if (bpred.kind != BpredKind::Taken &&
        bpred.kind != BpredKind::Perfect) {
        requireNonZero(name, "bpred.bimodalEntries",
                       bpred.bimodalEntries);
        requireNonZero(name, "bpred.l1Entries", bpred.l1Entries);
        requireNonZero(name, "bpred.l2Entries", bpred.l2Entries);
        requireNonZero(name, "bpred.chooserEntries",
                       bpred.chooserEntries);
        if (bpred.historyBits == 0 || bpred.historyBits > 30) {
            badKnob(name, "bpred.historyBits",
                    "= " + std::to_string(bpred.historyBits) +
                    " outside the supported range [1, 30]");
        }
    }
    requireNonZero(name, "bpred.btbEntries", bpred.btbEntries);
    requireNonZero(name, "bpred.btbAssoc", bpred.btbAssoc);
    requireNonZero(name, "bpred.rasEntries", bpred.rasEntries);

    requireNonZero(name, "fu.intAluCount", fu.intAluCount);
    requireNonZero(name, "fu.ldStCount", fu.ldStCount);
    requireNonZero(name, "fu.fpAluCount", fu.fpAluCount);
    requireNonZero(name, "fu.intMultCount", fu.intMultCount);
    requireNonZero(name, "fu.fpMultCount", fu.fpMultCount);
}

CoreConfig
CoreConfig::baseline()
{
    CoreConfig cfg;
    cfg.name = "baseline8w";
    return cfg;
}

CoreConfig
CoreConfig::simpleScalarDefault()
{
    CoreConfig cfg;
    cfg.name = "simplescalar";
    cfg.ifqSize = 4;
    cfg.ruuSize = 16;
    cfg.lsqSize = 8;
    cfg.decodeWidth = 4;
    cfg.issueWidth = 4;
    cfg.commitWidth = 4;
    cfg.fetchSpeed = 1;
    cfg.mispredictPenalty = 3;
    cfg.il1 = {16 * 1024, 1, 32, 1};
    cfg.dl1 = {16 * 1024, 4, 32, 1};
    cfg.l2 = {256 * 1024, 4, 64, 6};
    cfg.memLatency = 18;
    cfg.bpred.kind = BpredKind::Bimodal;
    cfg.bpred.bimodalEntries = 2048;
    cfg.bpred.btbEntries = 512;
    cfg.bpred.btbAssoc = 4;
    cfg.bpred.rasEntries = 8;
    cfg.fu.intAluCount = 4;
    cfg.fu.ldStCount = 2;
    cfg.fu.fpAluCount = 4;
    cfg.fu.intMultCount = 1;
    cfg.fu.fpMultCount = 1;
    return cfg;
}

} // namespace ssim::cpu
