#include "config.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ssim::cpu
{

CacheConfig
CacheConfig::scaled(double factor) const
{
    CacheConfig c = *this;
    c.sizeBytes = static_cast<uint32_t>(
        std::max(1.0, std::round(sizeBytes * factor)));
    // Keep at least one set.
    c.sizeBytes = std::max(c.sizeBytes, c.assoc * c.lineBytes);
    return c;
}

BpredConfig
BpredConfig::scaled(int log2Factor) const
{
    BpredConfig b = *this;
    auto scale = [log2Factor](uint32_t v) {
        if (log2Factor >= 0)
            return std::max<uint32_t>(4, v << log2Factor);
        return std::max<uint32_t>(4, v >> (-log2Factor));
    };
    b.bimodalEntries = scale(bimodalEntries);
    b.l1Entries = scale(l1Entries);
    b.l2Entries = scale(l2Entries);
    b.chooserEntries = scale(chooserEntries);
    b.historyBits = static_cast<uint32_t>(
        std::max(4.0, std::log2(static_cast<double>(b.l2Entries))));
    return b;
}

CoreConfig
CoreConfig::baseline()
{
    CoreConfig cfg;
    cfg.name = "baseline8w";
    return cfg;
}

CoreConfig
CoreConfig::simpleScalarDefault()
{
    CoreConfig cfg;
    cfg.name = "simplescalar";
    cfg.ifqSize = 4;
    cfg.ruuSize = 16;
    cfg.lsqSize = 8;
    cfg.decodeWidth = 4;
    cfg.issueWidth = 4;
    cfg.commitWidth = 4;
    cfg.fetchSpeed = 1;
    cfg.mispredictPenalty = 3;
    cfg.il1 = {16 * 1024, 1, 32, 1};
    cfg.dl1 = {16 * 1024, 4, 32, 1};
    cfg.l2 = {256 * 1024, 4, 64, 6};
    cfg.memLatency = 18;
    cfg.bpred.kind = BpredKind::Bimodal;
    cfg.bpred.bimodalEntries = 2048;
    cfg.bpred.btbEntries = 512;
    cfg.bpred.btbAssoc = 4;
    cfg.bpred.rasEntries = 8;
    cfg.fu.intAluCount = 4;
    cfg.fu.ldStCount = 2;
    cfg.fu.fpAluCount = 4;
    cfg.fu.intMultCount = 1;
    cfg.fu.fpMultCount = 1;
    return cfg;
}

} // namespace ssim::cpu
