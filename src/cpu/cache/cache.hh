/**
 * @file
 * Set-associative cache and TLB tag models.
 *
 * These are tag-only models: they track which lines are resident (LRU
 * replacement) and report hit/miss; data contents live in the
 * functional emulator. Both the execution-driven simulator and the
 * cache profiler (the sim-cache analogue) use the same classes.
 */

#ifndef SSIM_CPU_CACHE_CACHE_HH
#define SSIM_CPU_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cpu/config.hh"

namespace ssim::cpu
{

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line containing @p addr; allocate on miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Probe without allocating or touching LRU state. */
    bool probe(uint64_t addr) const;

    /** Invalidate all lines. */
    void flush();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

    /** Miss rate over all accesses so far. */
    double missRate() const;

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
    };

    uint64_t lineAddr(uint64_t addr) const { return addr / lineBytes_; }
    uint32_t setOf(uint64_t lineAddress) const
    {
        return static_cast<uint32_t>(lineAddress) & setMask_;
    }

    CacheConfig cfg_;
    std::vector<Line> lines_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t setMask_;
    uint32_t lineBytes_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** TLB: a Cache over page numbers. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /** Access the page containing @p addr. @return true on hit. */
    bool access(uint64_t addr);

    uint64_t hits() const { return tags_.hits(); }
    uint64_t misses() const { return tags_.misses(); }
    double missRate() const { return tags_.missRate(); }

  private:
    Cache tags_;
    uint32_t pageBytes_;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_CACHE_CACHE_HH
