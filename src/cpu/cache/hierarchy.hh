/**
 * @file
 * The memory hierarchy of Table 2: split L1 I/D caches, a unified L2
 * (with instruction/data misses accounted separately, as the paper's
 * six cache probabilities require), and separate I/D TLBs.
 */

#ifndef SSIM_CPU_CACHE_HIERARCHY_HH
#define SSIM_CPU_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache.hh"
#include "cpu/config.hh"

namespace ssim::cpu
{

/** Result of one access through the hierarchy. */
struct MemAccessResult
{
    bool l1Miss = false;
    bool l2Miss = false;
    bool tlbMiss = false;
    uint32_t latency = 0;   ///< total access latency in cycles
};

/**
 * Two-level hierarchy with TLBs.
 *
 * Latency model (matching the serial lookup of sim-outorder):
 * L1 hit -> L1 latency; L1 miss -> + L2 latency; L2 miss -> + memory
 * latency; TLB miss -> + TLB penalty.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const CoreConfig &cfg);

    /** Instruction fetch access at byte address @p addr. */
    MemAccessResult instAccess(uint64_t addr);

    /** Data access (load or store) at byte address @p addr. */
    MemAccessResult dataAccess(uint64_t addr, bool isStore);

    // Separate L2 miss accounting for instructions vs data
    // (the unified L2 with split statistics of section 2.1.2).
    uint64_t l2InstAccesses() const { return l2InstAcc_; }
    uint64_t l2InstMisses() const { return l2InstMiss_; }
    uint64_t l2DataAccesses() const { return l2DataAcc_; }
    uint64_t l2DataMisses() const { return l2DataMiss_; }

    const Cache &il1() const { return il1_; }
    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }

  private:
    CoreConfig cfg_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
    uint64_t l2InstAcc_ = 0;
    uint64_t l2InstMiss_ = 0;
    uint64_t l2DataAcc_ = 0;
    uint64_t l2DataMiss_ = 0;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_CACHE_HIERARCHY_HH
