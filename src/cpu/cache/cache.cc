#include "cache.hh"

#include <bit>

#include "util/logging.hh"

namespace ssim::cpu
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), assoc_(cfg.assoc), lineBytes_(cfg.lineBytes)
{
    panicIf(cfg.lineBytes == 0 || cfg.assoc == 0, "degenerate cache");
    sets_ = std::bit_floor(std::max(1u, cfg.numSets()));
    setMask_ = sets_ - 1;
    lines_.resize(static_cast<size_t>(sets_) * assoc_);
}

bool
Cache::access(uint64_t addr)
{
    const uint64_t la = lineAddr(addr);
    const uint32_t base = setOf(la) * assoc_;
    Line *victim = &lines_[base];
    for (uint32_t w = 0; w < assoc_; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == la) {
            line.lru = ++tick_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = la;
    victim->lru = ++tick_;
    ++misses_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t la = lineAddr(addr);
    const uint32_t base = setOf(la) * assoc_;
    for (uint32_t w = 0; w < assoc_; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == la)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

double
Cache::missRate() const
{
    const uint64_t total = hits_ + misses_;
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(total);
}

Tlb::Tlb(const TlbConfig &cfg)
    : tags_(CacheConfig{cfg.entries * cfg.pageBytes, cfg.assoc,
                        cfg.pageBytes, cfg.missPenalty}),
      pageBytes_(cfg.pageBytes)
{
}

bool
Tlb::access(uint64_t addr)
{
    return tags_.access(addr);
}

} // namespace ssim::cpu
