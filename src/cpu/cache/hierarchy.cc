#include "hierarchy.hh"

namespace ssim::cpu
{

MemoryHierarchy::MemoryHierarchy(const CoreConfig &cfg)
    : cfg_(cfg), il1_(cfg.il1), dl1_(cfg.dl1), l2_(cfg.l2),
      itlb_(cfg.itlb), dtlb_(cfg.dtlb)
{
}

MemAccessResult
MemoryHierarchy::instAccess(uint64_t addr)
{
    MemAccessResult res;
    res.latency = cfg_.il1.latency;
    res.tlbMiss = !itlb_.access(addr);
    if (res.tlbMiss)
        res.latency += cfg_.itlb.missPenalty;
    res.l1Miss = !il1_.access(addr);
    if (res.l1Miss) {
        ++l2InstAcc_;
        res.latency += cfg_.l2.latency;
        res.l2Miss = !l2_.access(addr);
        if (res.l2Miss) {
            ++l2InstMiss_;
            res.latency += cfg_.memLatency;
        }
    }
    return res;
}

MemAccessResult
MemoryHierarchy::dataAccess(uint64_t addr, bool isStore)
{
    (void)isStore;  // write-allocate: stores behave like loads here
    MemAccessResult res;
    res.latency = cfg_.dl1.latency;
    res.tlbMiss = !dtlb_.access(addr);
    if (res.tlbMiss)
        res.latency += cfg_.dtlb.missPenalty;
    res.l1Miss = !dl1_.access(addr);
    if (res.l1Miss) {
        ++l2DataAcc_;
        res.latency += cfg_.l2.latency;
        res.l2Miss = !l2_.access(addr);
        if (res.l2Miss) {
            ++l2DataMiss_;
            res.latency += cfg_.memLatency;
        }
    }
    return res;
}

} // namespace ssim::cpu
