#include "branch_unit.hh"

#include <bit>

#include "util/logging.hh"

namespace ssim::cpu
{

Btb::Btb(uint32_t entries, uint32_t assoc)
    : assoc_(assoc)
{
    panicIf(entries == 0 || assoc == 0, "empty BTB");
    sets_ = std::bit_floor(std::max(1u, entries / assoc));
    setMask_ = sets_ - 1;
    entries_.resize(sets_ * assoc_);
}

bool
Btb::lookup(uint32_t pc, uint32_t &target) const
{
    const uint32_t base = setOf(pc) * assoc_;
    for (uint32_t w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.pc == pc) {
            target = e.target;
            const_cast<Entry &>(e).lru = ++tick_;
            return true;
        }
    }
    return false;
}

void
Btb::update(uint32_t pc, uint32_t target)
{
    const uint32_t base = setOf(pc) * assoc_;
    Entry *victim = &entries_[base];
    for (uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lru = ++tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = ++tick_;
}

Ras::Ras(uint32_t entries)
    : stack_(std::max(1u, entries), 0)
{
}

void
Ras::push(uint32_t returnPc)
{
    stack_[top_] = returnPc;
    top_ = (top_ + 1) % stack_.size();
    if (depth_ < stack_.size())
        ++depth_;
}

uint32_t
Ras::pop()
{
    if (depth_ == 0)
        return 0;
    top_ = (top_ + static_cast<uint32_t>(stack_.size()) - 1) %
        stack_.size();
    --depth_;
    return stack_[top_];
}

BranchUnit::BranchUnit(const BpredConfig &cfg)
    : direction_(makeDirectionPredictor(cfg)),
      btb_(cfg.btbEntries, cfg.btbAssoc),
      ras_(cfg.rasEntries)
{
}

BranchPrediction
BranchUnit::predict(uint32_t pc, const isa::Instruction &inst)
{
    using namespace isa;
    panicIf(!isControlFlow(inst.op), "predicting a non-branch");

    BranchPrediction pred;
    const Ras::State rasBefore = ras_.save();
    pred.rasTop = static_cast<int>(rasBefore.top);

    const uint32_t fallThrough = pc + 1;

    if (isCondBranch(inst.op)) {
        pred.predTaken = direction_->predict(pc);
        uint32_t target;
        if (btb_.lookup(pc, target)) {
            pred.targetValid = true;
            pred.predTarget = target;
        }
        pred.fetchNext = (pred.predTaken && pred.targetValid)
            ? pred.predTarget : fallThrough;
    } else if (isDirectJump(inst.op)) {
        pred.predTaken = true;
        uint32_t target;
        if (btb_.lookup(pc, target)) {
            pred.targetValid = true;
            pred.predTarget = target;
        }
        pred.fetchNext = pred.targetValid ? pred.predTarget
            : fallThrough;
        if (isCall(inst.op))
            ras_.push(fallThrough);
    } else if (isReturn(inst.op)) {
        pred.predTaken = true;
        if (!ras_.empty()) {
            pred.targetValid = true;
            pred.predTarget = ras_.pop();
        }
        pred.fetchNext = pred.targetValid ? pred.predTarget
            : fallThrough;
    } else if (isIndirectBranch(inst.op)) {
        // JR / ICALL: target from the BTB.
        pred.predTaken = true;
        uint32_t target;
        if (btb_.lookup(pc, target)) {
            pred.targetValid = true;
            pred.predTarget = target;
        }
        pred.fetchNext = pred.targetValid ? pred.predTarget
            : fallThrough;
        if (isCall(inst.op))
            ras_.push(fallThrough);
    } else {
        // HALT: fetch stops; treat as fall-through.
        pred.fetchNext = fallThrough;
    }
    return pred;
}

void
BranchUnit::update(uint32_t pc, const isa::Instruction &inst, bool taken,
                   uint32_t actualNext)
{
    using namespace isa;
    if (isCondBranch(inst.op))
        direction_->update(pc, taken);
    if (taken && inst.op != Opcode::HALT)
        btb_.update(pc, actualNext);
}

BranchOutcome
BranchUnit::classify(const isa::Instruction &inst,
                     const BranchPrediction &pred, bool actualTaken,
                     uint32_t actualNext, uint32_t fallThrough)
{
    using namespace isa;

    if (inst.op == Opcode::HALT)
        return BranchOutcome::Correct;

    if (pred.fetchNext == actualNext)
        return BranchOutcome::Correct;

    if (isCondBranch(inst.op)) {
        if (pred.predTaken != actualTaken)
            return BranchOutcome::Mispredict;
        // Direction right but fetch went the wrong way: the taken
        // target was missing from the BTB.
        return BranchOutcome::FetchRedirect;
    }
    if (isDirectJump(inst.op)) {
        // Direction is trivially correct; only the target was missing.
        return BranchOutcome::FetchRedirect;
    }
    // Indirect branches (JR/ICALL/RET): any target miss is a full
    // misprediction (section 2.1.2).
    (void)fallThrough;
    return BranchOutcome::Mispredict;
}

} // namespace ssim::cpu
