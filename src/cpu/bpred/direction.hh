/**
 * @file
 * Direction predictors: bimodal, two-level local, and the hybrid
 * selector of Table 2 (8K bimodal + 8Kx8K local, local history XORed
 * with the branch PC, chosen by an 8K-entry meta predictor).
 *
 * Direction predictors only see conditional branches; target
 * prediction is the BTB/RAS's job (see branch_unit.hh).
 */

#ifndef SSIM_CPU_BPRED_DIRECTION_HH
#define SSIM_CPU_BPRED_DIRECTION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/config.hh"

namespace ssim::cpu
{

/** Two-bit saturating counter. */
class SatCounter2
{
  public:
    explicit SatCounter2(uint8_t initial = 1) : value_(initial) {}

    bool taken() const { return value_ >= 2; }

    void update(bool t)
    {
        if (t) {
            if (value_ < 3)
                ++value_;
        } else {
            if (value_ > 0)
                --value_;
        }
    }

    uint8_t raw() const { return value_; }

  private:
    uint8_t value_;
};

/**
 * Interface for conditional-branch direction predictors.
 *
 * The update() carries the prediction made earlier so that hybrid
 * predictors can train their chooser on which component was right.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(uint32_t pc) = 0;

    /** Train with the resolved outcome. */
    virtual void update(uint32_t pc, bool taken) = 0;
};

/** One table of 2-bit counters indexed by PC. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(uint32_t entries);

    bool predict(uint32_t pc) override;
    void update(uint32_t pc, bool taken) override;

  private:
    uint32_t index(uint32_t pc) const { return pc & mask_; }

    std::vector<SatCounter2> table_;
    uint32_t mask_;
};

/**
 * Two-level local predictor: a per-branch history table feeding a
 * pattern history table of 2-bit counters; the history may be XORed
 * with the branch PC before indexing (Table 2 does).
 */
class TwoLevelPredictor : public DirectionPredictor
{
  public:
    TwoLevelPredictor(uint32_t l1Entries, uint32_t l2Entries,
                      uint32_t historyBits, bool xorPc);

    bool predict(uint32_t pc) override;
    void update(uint32_t pc, bool taken) override;

  private:
    uint32_t l2Index(uint32_t pc) const;

    std::vector<uint32_t> historyTable_;
    std::vector<SatCounter2> patternTable_;
    uint32_t l1Mask_;
    uint32_t l2Mask_;
    uint32_t historyMask_;
    bool xorPc_;
};

/**
 * Hybrid predictor: chooser of 2-bit counters selects between two
 * component predictors per lookup; both components always train.
 */
class HybridPredictor : public DirectionPredictor
{
  public:
    HybridPredictor(std::unique_ptr<DirectionPredictor> a,
                    std::unique_ptr<DirectionPredictor> b,
                    uint32_t chooserEntries);

    bool predict(uint32_t pc) override;
    void update(uint32_t pc, bool taken) override;

  private:
    std::unique_ptr<DirectionPredictor> a_;
    std::unique_ptr<DirectionPredictor> b_;
    std::vector<SatCounter2> chooser_;
    uint32_t mask_;
};

/** Static predict-taken. */
class TakenPredictor : public DirectionPredictor
{
  public:
    bool predict(uint32_t) override { return true; }
    void update(uint32_t, bool) override {}
};

/** Build the direction predictor described by @p cfg. */
std::unique_ptr<DirectionPredictor> makeDirectionPredictor(
    const BpredConfig &cfg);

} // namespace ssim::cpu

#endif // SSIM_CPU_BPRED_DIRECTION_HH
