/**
 * @file
 * The complete front-end branch unit: direction predictor + BTB + RAS,
 * plus the outcome classification the paper's branch characteristics
 * are built from (section 2.1.2):
 *
 *  - correct:   fetch followed the architecturally correct path;
 *  - redirect:  a BTB miss on a *direct* branch with a correct
 *               taken/not-taken prediction (fixed cheaply at decode);
 *  - mispredict: a wrong direction on a conditional branch, or a
 *               missing/wrong target for an indirect branch.
 *
 * The same unit is used by the execution-driven frontend and by the
 * branch profiler, so profiled characteristics and simulated behaviour
 * agree by construction.
 */

#ifndef SSIM_CPU_BPRED_BRANCH_UNIT_HH
#define SSIM_CPU_BPRED_BRANCH_UNIT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/bpred/direction.hh"
#include "cpu/config.hh"
#include "isa/isa.hh"

namespace ssim::cpu
{

/** What the fetch engine does with a control-flow instruction. */
struct BranchPrediction
{
    bool predTaken = false;    ///< predicted direction
    bool targetValid = false;  ///< BTB/RAS produced a target
    uint32_t predTarget = 0;   ///< predicted target (instruction index)
    uint32_t fetchNext = 0;    ///< PC fetch will follow
    int rasTop = 0;            ///< RAS top-of-stack before this branch
};

/** Outcome classes used for the paper's three branch probabilities. */
enum class BranchOutcome : uint8_t
{
    Correct,
    FetchRedirect,
    Mispredict,
};

/** Branch target buffer: set-associative, LRU, taken branches only. */
class Btb
{
  public:
    Btb(uint32_t entries, uint32_t assoc);

    /** Look up a target for @p pc. Returns false on miss. */
    bool lookup(uint32_t pc, uint32_t &target) const;

    /** Insert/refresh the mapping pc -> target. */
    void update(uint32_t pc, uint32_t target);

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t pc = 0;
        uint32_t target = 0;
        uint64_t lru = 0;
    };

    uint32_t setOf(uint32_t pc) const { return pc & setMask_; }

    std::vector<Entry> entries_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t setMask_;
    mutable uint64_t tick_ = 0;
};

/** Return address stack with top-of-stack pointer repair. */
class Ras
{
  public:
    explicit Ras(uint32_t entries);

    void push(uint32_t returnPc);
    uint32_t pop();
    bool empty() const { return depth_ == 0; }

    /** Snapshot for repair on misprediction recovery. */
    struct State { uint32_t top; uint32_t depth; };
    State save() const { return {top_, depth_}; }
    void restore(State s) { top_ = s.top; depth_ = s.depth; }

  private:
    std::vector<uint32_t> stack_;
    uint32_t top_ = 0;    ///< index of the next free slot
    uint32_t depth_ = 0;  ///< valid entries (saturates at capacity)
};

/**
 * Composite branch unit.
 *
 * predict() is called at fetch (it speculatively pushes/pops the RAS);
 * update() is called at dispatch for correct-path branches only
 * (dispatch-time speculative update, the most aggressive scheme in
 * SimpleScalar and the one Table 2 configures).
 */
class BranchUnit
{
  public:
    explicit BranchUnit(const BpredConfig &cfg);

    /**
     * Predict the control flow of @p inst at @p pc.
     * Non-control-flow instructions must not be passed in.
     */
    BranchPrediction predict(uint32_t pc, const isa::Instruction &inst);

    /** Train direction predictor and BTB with the resolved outcome. */
    void update(uint32_t pc, const isa::Instruction &inst, bool taken,
                uint32_t actualNext);

    /** Repair the RAS top-of-stack after a misprediction recovery. */
    void repairRas(Ras::State state) { ras_.restore(state); }

    /** Snapshot the RAS for later repair. */
    Ras::State rasState() const { return ras_.save(); }

    /**
     * Classify a prediction against the architected outcome
     * (shared by the EDS frontend and the branch profiler).
     */
    static BranchOutcome classify(const isa::Instruction &inst,
                                  const BranchPrediction &pred,
                                  bool actualTaken, uint32_t actualNext,
                                  uint32_t fallThrough);

  private:
    std::unique_ptr<DirectionPredictor> direction_;
    Btb btb_;
    Ras ras_;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_BPRED_BRANCH_UNIT_HH
