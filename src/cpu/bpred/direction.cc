#include "direction.hh"

#include <bit>

#include "util/logging.hh"

namespace ssim::cpu
{

namespace
{

/** Round @p v down to a power of two (minimum 1) for masking. */
uint32_t
maskFor(uint32_t entries)
{
    panicIf(entries == 0, "predictor table with zero entries");
    return std::bit_floor(entries) - 1;
}

} // namespace

BimodalPredictor::BimodalPredictor(uint32_t entries)
    : table_(std::bit_floor(entries), SatCounter2(1)),
      mask_(maskFor(entries))
{
}

bool
BimodalPredictor::predict(uint32_t pc)
{
    return table_[index(pc)].taken();
}

void
BimodalPredictor::update(uint32_t pc, bool taken)
{
    table_[index(pc)].update(taken);
}

TwoLevelPredictor::TwoLevelPredictor(uint32_t l1Entries,
                                     uint32_t l2Entries,
                                     uint32_t historyBits, bool xorPc)
    : historyTable_(std::bit_floor(l1Entries), 0),
      patternTable_(std::bit_floor(l2Entries), SatCounter2(1)),
      l1Mask_(maskFor(l1Entries)),
      l2Mask_(maskFor(l2Entries)),
      historyMask_((1u << historyBits) - 1),
      xorPc_(xorPc)
{
}

uint32_t
TwoLevelPredictor::l2Index(uint32_t pc) const
{
    uint32_t history = historyTable_[pc & l1Mask_] & historyMask_;
    if (xorPc_)
        history ^= pc;
    return history & l2Mask_;
}

bool
TwoLevelPredictor::predict(uint32_t pc)
{
    return patternTable_[l2Index(pc)].taken();
}

void
TwoLevelPredictor::update(uint32_t pc, bool taken)
{
    patternTable_[l2Index(pc)].update(taken);
    uint32_t &hist = historyTable_[pc & l1Mask_];
    hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask_;
}

HybridPredictor::HybridPredictor(std::unique_ptr<DirectionPredictor> a,
                                 std::unique_ptr<DirectionPredictor> b,
                                 uint32_t chooserEntries)
    : a_(std::move(a)), b_(std::move(b)),
      chooser_(std::bit_floor(chooserEntries), SatCounter2(1)),
      mask_(maskFor(chooserEntries))
{
}

bool
HybridPredictor::predict(uint32_t pc)
{
    const bool useA = chooser_[pc & mask_].taken();
    const bool predA = a_->predict(pc);
    const bool predB = b_->predict(pc);
    return useA ? predA : predB;
}

void
HybridPredictor::update(uint32_t pc, bool taken)
{
    const bool predA = a_->predict(pc);
    const bool predB = b_->predict(pc);
    // Train the chooser toward the component that was right.
    if (predA != predB)
        chooser_[pc & mask_].update(predA == taken);
    a_->update(pc, taken);
    b_->update(pc, taken);
}

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const BpredConfig &cfg)
{
    switch (cfg.kind) {
      case BpredKind::Bimodal:
        return std::make_unique<BimodalPredictor>(cfg.bimodalEntries);
      case BpredKind::TwoLevel:
        return std::make_unique<TwoLevelPredictor>(
            cfg.l1Entries, cfg.l2Entries, cfg.historyBits, cfg.xorPc);
      case BpredKind::Hybrid:
        return std::make_unique<HybridPredictor>(
            std::make_unique<TwoLevelPredictor>(
                cfg.l1Entries, cfg.l2Entries, cfg.historyBits,
                cfg.xorPc),
            std::make_unique<BimodalPredictor>(cfg.bimodalEntries),
            cfg.chooserEntries);
      case BpredKind::Taken:
        return std::make_unique<TakenPredictor>();
      case BpredKind::Perfect:
        // Perfect prediction is handled by the frontends, which bypass
        // the predictor entirely; a static component keeps the object
        // model uniform.
        return std::make_unique<TakenPredictor>();
      default:
        panic("unknown BpredKind");
    }
}

} // namespace ssim::cpu
