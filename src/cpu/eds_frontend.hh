/**
 * @file
 * Execution-driven frontend: couples the functional emulator with real
 * branch predictors and a real cache hierarchy, and follows predicted
 * (hence possibly wrong) paths.
 *
 * Semantics (mirroring sim-outorder):
 *  - fetch follows the predicted next PC; the architecturally correct
 *    path is executed functionally as correct-path instructions are
 *    fetched, which is when mispredictions become known internally —
 *    the *timing* of redirects (dispatch) and misprediction recoveries
 *    (branch resolution at writeback) is unchanged;
 *  - the branch predictor is looked up at fetch and updated at
 *    dispatch (dispatch-time speculative update, Table 2), so lookups
 *    naturally see the delayed state the paper's section 2.1.3 models;
 *  - wrong-path instructions are fetched from the real static program
 *    at predicted PCs, access the I-cache, occupy pipeline resources,
 *    and are squashed on recovery; their loads do not access the
 *    D-cache (no functional wrong-path state is maintained).
 */

#ifndef SSIM_CPU_EDS_FRONTEND_HH
#define SSIM_CPU_EDS_FRONTEND_HH

#include <cstdint>

#include "cpu/bpred/branch_unit.hh"
#include "cpu/cache/hierarchy.hh"
#include "cpu/config.hh"
#include "cpu/pipeline/frontend.hh"
#include "cpu/pipeline/telemetry.hh"
#include "isa/emulator.hh"
#include "isa/program.hh"

namespace ssim::cpu
{

/** Sampling controls for execution-driven runs. */
struct EdsOptions
{
    uint64_t skipInsts = 0;       ///< fast-forward before timing
    uint64_t maxInsts = ~0ull;    ///< stop fetching after this many
    bool warmupDuringSkip = true; ///< warm caches/bpred while skipping
};

/** Execution-driven instruction source. */
class EdsFrontend : public Frontend
{
  public:
    EdsFrontend(const isa::Program &prog, const CoreConfig &cfg,
                EdsOptions opts = {});

    void fetchCycle(FetchQueue &ifq, uint32_t maxSlots,
                    uint64_t cycle, SimStats &stats) override;
    DispatchAction atDispatch(DynInst &di, uint64_t cycle,
                              SimStats &stats) override;
    void recover(const DynInst &branch, uint64_t cycle) override;
    MemEvent loadAccess(const DynInst &di) override;
    MemEvent storeAccess(const DynInst &di) override;
    bool done() const override;
    uint64_t fetchStallUntil() const override
    {
        return fetchTel_.stallUntil();
    }

    /** The hierarchy, for inspecting miss rates in tests. */
    const MemoryHierarchy &hierarchy() const { return mem_; }

  private:
    void fillDeps(DynInst &di) const;
    void updateRenameMap(const DynInst &di);
    void fastForward();

    const isa::Program *prog_;
    CoreConfig cfg_;
    EdsOptions opts_;
    isa::Emulator emu_;
    BranchUnit bpred_;
    MemoryHierarchy mem_;

    /** Shared fetch-stall gate (see cpu/pipeline/telemetry.hh). */
    FetchTelemetry fetchTel_{cfg_};

    uint64_t nextSeq_ = 1;
    uint32_t fetchPc_ = 0;
    bool wrongPathFetch_ = false;
    bool wrongPathStalled_ = false;
    bool fetchDone_ = false;
    uint64_t correctPathDelivered_ = 0;
    uint64_t lastFetchLine_ = ~0ull;

    /** Rename map: architectural register -> seq of last writer. */
    uint64_t renameMap_[2][isa::NumIntRegs] = {};
    uint64_t renameCkpt_[2][isa::NumIntRegs] = {};
    Ras::State rasCkpt_{0, 0};
};

} // namespace ssim::cpu

#endif // SSIM_CPU_EDS_FRONTEND_HH
