/**
 * @file
 * Functional unit pool: counts, latencies, and pipelining per Table 2
 * (8 integer ALUs, 4 load/store units, 2 FP adders, 2 integer and 2 FP
 * multiply/divide units). Divides and square roots occupy their unit
 * for the full latency (non-pipelined); everything else is pipelined.
 */

#ifndef SSIM_CPU_PIPELINE_FU_POOL_HH
#define SSIM_CPU_PIPELINE_FU_POOL_HH

#include <cstdint>
#include <vector>

#include "cpu/config.hh"
#include "cpu/pipeline/sim_stats.hh"
#include "isa/isa.hh"

namespace ssim::cpu
{

/** Functional unit classes. */
enum class FuType : uint8_t
{
    IntAlu,
    LdSt,
    FpAlu,
    IntMult,
    FpMult,
    NumTypes
};

/** Map an instruction class onto the unit that executes it. */
FuType fuTypeFor(isa::InstClass cls);

/** Execution latency of an instruction class (loads add cache time). */
uint32_t fuLatencyFor(isa::InstClass cls, const FuConfig &cfg);

/** True for classes that occupy their unit for the whole latency. */
bool fuNonPipelined(isa::InstClass cls);

/** Power unit charged for executing an instruction class. */
PowerUnit fuPowerUnitFor(isa::InstClass cls);

/**
 * Per-cycle FU arbiter. beginCycle() publishes the current cycle;
 * acquire() claims a unit of the given type for an instruction class.
 *
 * Issue-slot accounting is lazy: instead of zeroing every type's
 * usedThisCycle in beginCycle() (a fixed per-cycle cost even on idle
 * cycles), each type carries the cycle stamp its counter belongs to
 * and resets on first acquire of a newer cycle. Only the two types
 * that can host non-pipelined ops (IntMult hosts IntDiv, FpMult hosts
 * FpDiv/FpSqrt — see fuTypeFor/fuNonPipelined) keep per-unit
 * busyUntil timestamps; the purely pipelined types (IntAlu, LdSt,
 * FpAlu) never block across cycles, so a bare counter compare is
 * exactly equivalent to the old busyUntil scan for them.
 */
class FuPool
{
  public:
    explicit FuPool(const FuConfig &cfg);

    /** Start a new cycle (O(1): records the stamp only). */
    void beginCycle(uint64_t cycle) { cycle_ = cycle; }

    /**
     * Try to claim a unit for @p cls in the current cycle.
     * @return true on success.
     */
    bool acquire(isa::InstClass cls);

  private:
    struct TypeState
    {
        uint32_t count = 0;
        uint32_t usedThisCycle = 0;
        uint64_t stamp = ~0ull;   ///< cycle usedThisCycle belongs to
        bool hasNonPipelined = false;
        std::vector<uint64_t> busyUntil;  ///< for non-pipelined ops
    };

    FuConfig cfg_;
    TypeState types_[static_cast<int>(FuType::NumTypes)];
    uint64_t cycle_ = 0;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_FU_POOL_HH
