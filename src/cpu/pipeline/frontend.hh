/**
 * @file
 * The frontend interface that decouples the out-of-order core from the
 * instruction source.
 *
 * Two implementations exist:
 *  - EdsFrontend (execution-driven): functional emulator + branch
 *    predictors + caches, following predicted (possibly wrong) paths;
 *  - StsFrontend (synthetic trace): replays a statistically generated
 *    trace using its annotated hit/miss/mispredict flags, modeling no
 *    predictors and no caches (section 2.3 of the paper).
 */

#ifndef SSIM_CPU_PIPELINE_FRONTEND_HH
#define SSIM_CPU_PIPELINE_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "dyninst.hh"
#include "sim_stats.hh"
#include "util/logging.hh"

namespace ssim::cpu
{

/**
 * The fixed-capacity FIFO between fetch and dispatch. The IFQ is
 * small and bounded by ifqSize, so this is a flat ring over
 * power-of-two storage — no deque block management on the hottest
 * producer/consumer path — and push() hands out the slot itself so
 * frontends build each DynInst in place instead of copying one in.
 */
class FetchQueue
{
  public:
    explicit FetchQueue(uint32_t capacity) : capacity_(capacity)
    {
        uint32_t storage = 1;
        while (storage < capacity)
            storage <<= 1;
        buf_.resize(storage);
        mask_ = storage - 1;
    }

    /**
     * Claim the next slot, cleared to a default DynInst. The caller
     * must respect the maxSlots budget handed to fetchCycle(); the
     * panic is the backstop for a frontend overrunning it.
     */
    DynInst &
    push()
    {
        panicIf(size() >= capacity_, "IFQ overrun");
        DynInst &slot = buf_[static_cast<uint32_t>(tail_) & mask_];
        slot = DynInst{};
        ++tail_;
        return slot;
    }

    DynInst &front() { return buf_[static_cast<uint32_t>(head_) & mask_]; }
    void pop_front() { ++head_; }
    void clear() { head_ = tail_; }
    bool empty() const { return head_ == tail_; }
    size_t size() const { return static_cast<size_t>(tail_ - head_); }

  private:
    std::vector<DynInst> buf_;
    uint32_t mask_ = 0;
    uint32_t capacity_ = 0;
    uint64_t head_ = 0;  ///< absolute position of the oldest entry
    uint64_t tail_ = 0;  ///< absolute position one past the youngest
};

/** What the core must do after dispatching an instruction. */
enum class DispatchAction : uint8_t
{
    None,
    /**
     * Fetch redirection: the remaining (younger) IFQ contents are on
     * a stale path; the core drops them. The frontend has already
     * redirected its fetch PC and charged the redirect penalty.
     */
    SquashIfq,
    /**
     * Full misprediction: subsequently fetched instructions are
     * wrong-path until the core calls recover() when this branch
     * resolves at writeback.
     */
    EnterWrongPath,
};

/** Instruction source driving the core. */
class Frontend
{
  public:
    virtual ~Frontend() = default;

    /**
     * Fetch up to @p maxSlots instructions into @p ifq for this cycle,
     * honouring taken-branch limits and I-cache miss stalls.
     */
    virtual void fetchCycle(FetchQueue &ifq, uint32_t maxSlots,
                            uint64_t cycle, SimStats &stats) = 0;

    /**
     * Notification that @p di is entering the window. The frontend
     * finalizes the record (functional execution / flag application,
     * dependency resolution, predictor update) and reports events.
     */
    virtual DispatchAction atDispatch(DynInst &di, uint64_t cycle,
                                      SimStats &stats) = 0;

    /**
     * The mispredicted branch @p branch resolved at @p cycle: restore
     * the correct path and charge the misprediction penalty.
     */
    virtual void recover(const DynInst &branch, uint64_t cycle) = 0;

    /** Timing and miss classification of a load issued now. */
    virtual MemEvent loadAccess(const DynInst &di) = 0;

    /** A store reached commit (EDS writes the D-cache here). */
    virtual MemEvent storeAccess(const DynInst &di) = 0;

    /** No further instructions will ever be produced. */
    virtual bool done() const = 0;

    /**
     * Probe for the core's idle-cycle fast-forward: the cycle at which
     * the frontend's pending fetch stall (redirect, mispredict
     * recovery, I-cache miss) expires. The core uses it to cap a
     * fast-forwarded span so per-cycle fetch-stall charges replicate
     * for exactly the cycles the stall would have covered. Returning 0
     * ("no stall known") is always safe — it merely prevents skipping
     * across fetch-stalled cycles.
     */
    virtual uint64_t fetchStallUntil() const { return 0; }
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_FRONTEND_HH
