/**
 * @file
 * The frontend interface that decouples the out-of-order core from the
 * instruction source.
 *
 * Two implementations exist:
 *  - EdsFrontend (execution-driven): functional emulator + branch
 *    predictors + caches, following predicted (possibly wrong) paths;
 *  - StsFrontend (synthetic trace): replays a statistically generated
 *    trace using its annotated hit/miss/mispredict flags, modeling no
 *    predictors and no caches (section 2.3 of the paper).
 */

#ifndef SSIM_CPU_PIPELINE_FRONTEND_HH
#define SSIM_CPU_PIPELINE_FRONTEND_HH

#include <deque>

#include "dyninst.hh"
#include "sim_stats.hh"

namespace ssim::cpu
{

/** What the core must do after dispatching an instruction. */
enum class DispatchAction : uint8_t
{
    None,
    /**
     * Fetch redirection: the remaining (younger) IFQ contents are on
     * a stale path; the core drops them. The frontend has already
     * redirected its fetch PC and charged the redirect penalty.
     */
    SquashIfq,
    /**
     * Full misprediction: subsequently fetched instructions are
     * wrong-path until the core calls recover() when this branch
     * resolves at writeback.
     */
    EnterWrongPath,
};

/** Instruction source driving the core. */
class Frontend
{
  public:
    virtual ~Frontend() = default;

    /**
     * Fetch up to @p maxSlots instructions into @p ifq for this cycle,
     * honouring taken-branch limits and I-cache miss stalls.
     */
    virtual void fetchCycle(std::deque<DynInst> &ifq, uint32_t maxSlots,
                            uint64_t cycle, SimStats &stats) = 0;

    /**
     * Notification that @p di is entering the window. The frontend
     * finalizes the record (functional execution / flag application,
     * dependency resolution, predictor update) and reports events.
     */
    virtual DispatchAction atDispatch(DynInst &di, uint64_t cycle,
                                      SimStats &stats) = 0;

    /**
     * The mispredicted branch @p branch resolved at @p cycle: restore
     * the correct path and charge the misprediction penalty.
     */
    virtual void recover(const DynInst &branch, uint64_t cycle) = 0;

    /** Timing and miss classification of a load issued now. */
    virtual MemEvent loadAccess(const DynInst &di) = 0;

    /** A store reached commit (EDS writes the D-cache here). */
    virtual MemEvent storeAccess(const DynInst &di) = 0;

    /** No further instructions will ever be produced. */
    virtual bool done() const = 0;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_FRONTEND_HH
