#include "ooo_core.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>

#include "cpu/pipeline/telemetry.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::cpu
{

OoOCore::OoOCore(const CoreConfig &cfg, Frontend &frontend)
    : cfg_(cfg), frontend_(&frontend), fuPool_(cfg.fu),
      ifq_(cfg.ifqSize)
{
    if (cfg.ruuSize == 0 || cfg.lsqSize == 0 || cfg.ifqSize == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "configuration '" + cfg.name +
                    "': zero-sized pipeline structure (ruuSize, "
                    "lsqSize and ifqSize must all be >= 1)");
    }
    if (cfg.lsqSize > cfg.ruuSize) {
        throw Error(ErrorCategory::InvalidConfig,
                    "configuration '" + cfg.name + "': lsqSize = " +
                    std::to_string(cfg.lsqSize) + " exceeds ruuSize "
                    "= " + std::to_string(cfg.ruuSize) +
                    " (every LSQ entry needs an RUU entry)");
    }
    ruu_.resize(cfg.ruuSize);
    seqAt_.assign(cfg.ruuSize, 0);
    lsq_.resize(cfg.lsqSize);
    if ((cfg.ruuSize & (cfg.ruuSize - 1)) == 0)
        ruuMask_ = cfg.ruuSize - 1;
    if ((cfg.lsqSize & (cfg.lsqSize - 1)) == 0)
        lsqMask_ = cfg.lsqSize - 1;
    readyBits_.assign((cfg.ruuSize + 63) / 64, 0);
    const char *ref = std::getenv("SSIM_SCHED_REFERENCE");
    reference_ = ref && *ref && *ref != '0';
}

bool
OoOCore::drained() const
{
    return frontend_->done() && ifq_.empty() && ruuCount_ == 0;
}

const SimStats &
OoOCore::run(uint64_t maxCycles)
{
    uint64_t lastCommitted = stats_.committed;
    uint64_t cyclesSinceProgress = 0;
    // Fast-forward arming: the previous executed cycle was zero-work
    // and charged these stall causes.
    bool prevIdle = false;
    std::array<uint64_t, NumStallCauses> prevDelta{};
    const bool allowSkip = !reference_;
    constexpr int kFetchRedirect =
        static_cast<int>(StallCause::FetchRedirect);
    constexpr int kMispredict =
        static_cast<int>(StallCause::MispredictRecovery);
    constexpr int kIcacheMiss =
        static_cast<int>(StallCause::IcacheMiss);
    constexpr int kICache = static_cast<int>(PowerUnit::ICache);
    constexpr int kITlb = static_cast<int>(PowerUnit::ITlb);
    constexpr int kBpred = static_cast<int>(PowerUnit::Bpred);

    while (!drained() && now_ < maxCycles) {
        // All four progress counters are increment-only, so one sum
        // detects movement in any of them.
        const uint64_t work0 = stats_.committed + stats_.issued +
            stats_.dispatched + stats_.fetched;
        const uint64_t fetchTouches0 = stats_.unitAccesses[kICache] +
            stats_.unitAccesses[kITlb] + stats_.unitAccesses[kBpred];
        const size_t completions0 = completions_.size();
        const std::array<uint64_t, NumStallCauses> stalls0 =
            stats_.stallCycles;

        cycle();

        if (stats_.committed != lastCommitted) {
            lastCommitted = stats_.committed;
            cyclesSinceProgress = 0;
        } else {
            // Count *executed* cycles rather than elapsed time so a
            // legitimate fast-forward over a long memory stall cannot
            // trip the watchdog, while a genuinely wedged pipeline
            // (which executes every cycle) still does.
            panicIf(++cyclesSinceProgress > 200000,
                    "pipeline made no progress for 200k cycles");
        }

        // A cycle is skippable groundwork only if it moved nothing:
        // no commit/issue/dispatch/fetch, no completion popped (a
        // stale pop changes the event heap), and no fetch-side power
        // touches (zero-fetch cycles touch nothing today; the check
        // guards the invariant against future frontend changes).
        const bool zeroWork = stats_.committed + stats_.issued +
                stats_.dispatched + stats_.fetched == work0 &&
            completions_.size() == completions0 &&
            stats_.unitAccesses[kICache] + stats_.unitAccesses[kITlb] +
                stats_.unitAccesses[kBpred] == fetchTouches0;
        if (!allowSkip || !zeroWork || completions_.empty()) {
            prevIdle = false;
            continue;
        }

        std::array<uint64_t, NumStallCauses> delta;
        for (int i = 0; i < NumStallCauses; ++i)
            delta[i] = stats_.stallCycles[i] - stalls0[i];
        if (!prevIdle || delta != prevDelta) {
            // First idle cycle, or the charge pattern is still
            // settling (one-shot frontend latches — e.g. a trace
            // exhausting — flip on the first idle cycle): require two
            // consecutive identical zero-work cycles before jumping.
            prevIdle = true;
            prevDelta = delta;
            continue;
        }

        // Steady idle state: nothing can change before the next
        // completion event, except a pending fetch stall expiring —
        // cap the jump at whichever comes first. The skipped span
        // replays this cycle's accounting arithmetically.
        uint64_t target = completions_.top().when;
        if (delta[kFetchRedirect] || delta[kMispredict] ||
            delta[kIcacheMiss]) {
            const uint64_t stallEnd = frontend_->fetchStallUntil();
            if (stallEnd < target)
                target = stallEnd;
        }
        if (target > maxCycles)
            target = maxCycles;
        if (target <= now_)
            continue;

        const uint64_t span = target - now_;
        stats_.cycles += span;
        stats_.ruuOccAccum += span * ruuCount_;
        stats_.lsqOccAccum += span * lsqCount_;
        stats_.ifqOccAccum += span * ifq_.size();
        for (int i = 0; i < NumStallCauses; ++i)
            stats_.stallCycles[i] += span * delta[i];
        if (telemetry_) {
            telemetry_->sampleSpan(now_, span, ruuCount_, lsqCount_,
                                   ifq_.size(), stats_.committed);
        }
        now_ = target;
        sched_.skippedCycles += span;
        ++sched_.ffSpans;
        prevIdle = false;  // the next executed cycle pops an event
    }
    return stats_;
}

void
OoOCore::cycle()
{
    fuPool_.beginCycle(now_);
    if (profile_) [[unlikely]] {
        using clock = std::chrono::steady_clock;
        auto timed = [&](StageCost::Stage s, auto &&stage) {
            const auto t0 = clock::now();
            stage();
            stageCost_.seconds[s] +=
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
        };
        timed(StageCost::Commit, [&] { commitStage(); });
        timed(StageCost::Writeback, [&] { writebackStage(); });
        timed(StageCost::Issue, [&] { issueStage(); });
        timed(StageCost::Dispatch, [&] { dispatchStage(); });
        timed(StageCost::Fetch, [&] { fetchStage(); });
        ++stageCost_.profiledCycles;
    } else {
        commitStage();
        writebackStage();
        issueStage();
        dispatchStage();
        fetchStage();
    }

    stats_.ruuOccAccum += ruuCount_;
    stats_.lsqOccAccum += lsqCount_;
    stats_.ifqOccAccum += ifq_.size();
    if (telemetry_) {
        telemetry_->sample(now_, ruuCount_, lsqCount_, ifq_.size(),
                           stats_.committed);
    }
    ++now_;
    ++stats_.cycles;
}

void
OoOCore::commitStage()
{
    uint32_t committed = 0;
    while (committed < cfg_.commitWidth && ruuCount_ > 0) {
        RuuEntry &e = ruu_[ruuIndex(ruuHead_)];
        if (!e.completed)
            break;
        panicIf(e.di.wrongPath, "wrong-path instruction at commit");

        if (e.di.isStore) {
            const MemEvent ev = frontend_->storeAccess(e.di);
            accountMemEvent(ev);
            ++stats_.stores;
        }
        if (e.di.isLoad)
            ++stats_.loads;
        if (e.di.hasDest)
            stats_.touch(PowerUnit::RegFile, now_);
        if (e.di.isCtrl) {
            ++stats_.branches;
            if (e.di.taken)
                ++stats_.takenBranches;
            if (e.di.outcome == BranchOutcome::Mispredict)
                ++stats_.mispredicts;
            else if (e.di.outcome == BranchOutcome::FetchRedirect)
                ++stats_.fetchRedirects;
        }

        if (e.lsqIdx >= 0) {
            LsqEntry &le = lsq_[lsqIndex(lsqHead_)];
            if (le.isStore && le.addr != 0)
                indexStoreRemove(le.addr, le.bytes);
            le.valid = false;
            ++lsqHead_;
            --lsqCount_;
        }
        e.valid = false;
        ++ruuHead_;
        --ruuCount_;
        ++stats_.committed;
        ++committed;
    }
}

int32_t
OoOCore::findRuuBySeq(uint64_t seq) const
{
    uint64_t lo = ruuHead_;
    uint64_t hi = ruuTail_;
    if (lo == hi)
        return -1;
    if (seq < seqAt_[ruuIndex(lo)] || seq > seqAt_[ruuIndex(hi - 1)])
        return -1;
    while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        const uint64_t s = seqAt_[ruuIndex(mid)];
        if (s == seq)
            return static_cast<int32_t>(ruuIndex(mid));
        if (s < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return -1;
}

void
OoOCore::readyInsert(uint64_t seq, uint32_t idx)
{
    readySetBit(idx);
    if (reference_) [[unlikely]]
        readyVec_.emplace_back(seq, idx);
}

void
OoOCore::wake(RuuEntry &producer)
{
    for (const auto &[idx, seq] : producer.consumers) {
        RuuEntry &c = ruu_[idx];
        if (!c.valid || c.di.seq != seq)
            continue;  // consumer was squashed
        panicIf(c.srcsPending == 0, "waking a ready instruction");
        if (--c.srcsPending == 0 && !c.issued) {
            ++sched_.wakeups;
            readyInsert(c.di.seq, idx);
        }
    }
    producer.consumers.clear();
}

void
OoOCore::writebackStage()
{
    while (!completions_.empty() && completions_.top().when <= now_) {
        const Completion ev = completions_.top();
        completions_.pop();
        RuuEntry &e = ruu_[ev.ruuIdx];
        if (!e.valid || e.di.seq != ev.seq)
            continue;  // squashed in flight
        e.completed = true;
        stats_.touch(PowerUnit::ResultBus, now_);
        if (e.di.hasDest)
            stats_.touch(PowerUnit::Ruu, now_);
        wake(e);

        if (e.di.isCtrl && !e.di.wrongPath &&
            e.di.outcome == BranchOutcome::Mispredict) {
            recoverFrom(e);
        }
    }
}

uint64_t
OoOCore::granuleMask(uint64_t addr, uint8_t bytes)
{
    // A zero-length record still participates in the strict-
    // inequality overlap predicate through its start byte; widen it
    // to one byte so the mask stays a superset of any overlap.
    const uint64_t len = bytes ? bytes : 1;
    const uint64_t g0 = addr >> 3;
    const uint64_t g1 = (addr + len - 1) >> 3;
    if (g1 - g0 >= 63)
        return ~0ull;
    uint64_t m = 0;
    for (uint64_t g = g0; g <= g1; ++g)
        m |= 1ull << (g & 63);
    return m;
}

void
OoOCore::indexStoreAdd(uint64_t addr, uint8_t bytes)
{
    ++pendingStores_;
    uint64_t m = granuleMask(addr, bytes);
    while (m) {
        const int b = std::countr_zero(m);
        m &= m - 1;
        if (storeGranuleRefs_[b]++ == 0)
            storeBitmap_ |= 1ull << b;
    }
}

void
OoOCore::indexStoreRemove(uint64_t addr, uint8_t bytes)
{
    panicIf(pendingStores_ == 0, "store index underflow");
    --pendingStores_;
    uint64_t m = granuleMask(addr, bytes);
    while (m) {
        const int b = std::countr_zero(m);
        m &= m - 1;
        panicIf(storeGranuleRefs_[b] == 0, "granule refcount underflow");
        if (--storeGranuleRefs_[b] == 0)
            storeBitmap_ &= ~(1ull << b);
    }
}

bool
OoOCore::loadScanOlderStores(const LsqEntry &load,
                             bool &forwarded) const
{
    // Scan older stores, youngest first, for an overlap.
    for (uint64_t pos = lsqTail_; pos-- > lsqHead_;) {
        const LsqEntry &st = lsq_[lsqIndex(pos)];
        if (!st.valid || !st.isStore || st.seq >= load.seq)
            continue;
        if (st.addr == 0)
            continue;
        const bool overlap = st.addr < load.addr + load.bytes &&
            load.addr < st.addr + st.bytes;
        if (!overlap)
            continue;
        const RuuEntry &producer = ruu_[st.ruuIdx];
        if (!producer.completed)
            return false;  // store data not ready yet
        forwarded = true;
        return true;
    }
    return true;
}

bool
OoOCore::loadMayIssue(const LsqEntry &load, bool &forwarded)
{
    forwarded = false;
    if (load.addr == 0)
        return true;  // synthetic or wrong-path load: flags only
    if (!reference_) {
        // The granule index answers the common no-alias case in O(1):
        // a miss proves no pending store's byte interval can overlap
        // the load's (shared byte => shared granule => shared bit).
        if (pendingStores_ == 0 ||
            !(storeBitmap_ & granuleMask(load.addr, load.bytes))) {
            ++sched_.disambIndexHits;
            return true;
        }
        ++sched_.disambIndexScans;
    }
    return loadScanOlderStores(load, forwarded);
}

bool
OoOCore::tryIssue(RuuEntry &e, uint32_t idx)
{
    bool forwarded = false;
    if (e.di.isLoad && e.lsqIdx >= 0 &&
        !loadMayIssue(lsq_[e.lsqIdx], forwarded)) {
        issueBlock_ = StallCause::LoadBlocked;
        return false;
    }
    if (!fuPool_.acquire(e.di.cls)) {
        issueBlock_ = StallCause::FuContention;
        return false;
    }

    uint32_t latency = fuLatencyFor(e.di.cls, cfg_.fu);
    if (e.di.isLoad) {
        stats_.touch(PowerUnit::Lsq, now_);
        if (forwarded) {
            latency += 1;  // store buffer bypass
        } else {
            const MemEvent ev = frontend_->loadAccess(e.di);
            accountMemEvent(ev);
            latency += ev.latency;
        }
    } else if (e.di.isStore) {
        stats_.touch(PowerUnit::Lsq, now_);
    }

    e.issued = true;
    completions_.push({now_ + latency, idx, e.di.seq});
    ++stats_.issued;
    stats_.touch(PowerUnit::IssueSel, now_);
    stats_.touch(PowerUnit::Ruu, now_);  // operand read
    stats_.touch(fuPowerUnitFor(e.di.cls), now_);
    return true;
}

void
OoOCore::issueStage()
{
    if (cfg_.inOrderIssue) {
        issueStageInOrder();
        return;
    }
    if (reference_) [[unlikely]] {
        issueStageReference();
        return;
    }
    if (readyCount_ == 0)
        return;

    uint32_t issuedNow = 0;
    bool sawBlock = false;
    StallCause blockCause = StallCause::FuContention;

    // Visit one ready slot; false stops the walk (width exhausted).
    auto visit = [&](uint32_t idx) {
        if (issuedNow >= cfg_.issueWidth)
            return false;
        RuuEntry &e = ruu_[idx];
        if (!tryIssue(e, idx)) {
            // Blocked entries stay ready; record the first cause.
            if (!sawBlock) {
                sawBlock = true;
                blockCause = issueBlock_;
            }
            return true;
        }
        readyClearBit(idx);
        ++issuedNow;
        return true;
    };
    // Walk set bits over slots [lo, hi); false propagates a stop.
    auto scanRange = [&](uint32_t lo, uint32_t hi) {
        if (lo >= hi)
            return true;
        uint32_t wi = lo >> 6;
        const uint32_t wiLast = (hi - 1) >> 6;
        uint64_t word = readyBits_[wi] & (~0ull << (lo & 63));
        for (;;) {
            if (wi == wiLast && (hi & 63) != 0)
                word &= (1ull << (hi & 63)) - 1;
            while (word) {
                const uint32_t idx = (wi << 6) +
                    static_cast<uint32_t>(std::countr_zero(word));
                word &= word - 1;
                if (!visit(idx))
                    return false;
            }
            if (wi == wiLast)
                return true;
            word = readyBits_[++wi];
        }
    };
    // Ring-position order is age order: slots from the head slot to
    // the end, then the wrapped prefix (see readyBits_ in the header).
    const uint32_t start = ruuIndex(ruuHead_);
    if (scanRange(start, cfg_.ruuSize))
        scanRange(0, start);

    // A zero-issue cycle with ready work is a structural stall;
    // charge the first blocking reason seen.
    if (issuedNow == 0 && sawBlock)
        stats_.stall(blockCause);
}

void
OoOCore::issueStageReference()
{
    // The pre-event-driven issue loop, verbatim: sort the ready
    // vector and compact it in place. Kept as the equivalence oracle
    // behind SSIM_SCHED_REFERENCE.
    if (readyVec_.empty())
        return;
    std::sort(readyVec_.begin(), readyVec_.end());

    uint32_t issuedNow = 0;
    size_t keep = 0;
    bool sawBlock = false;
    StallCause blockCause = StallCause::FuContention;
    for (size_t i = 0; i < readyVec_.size(); ++i) {
        const auto [seq, idx] = readyVec_[i];
        RuuEntry &e = ruu_[idx];
        if (!e.valid || e.di.seq != seq || e.issued)
            continue;  // squashed or stale
        if (issuedNow >= cfg_.issueWidth) {
            readyVec_[keep++] = readyVec_[i];
            continue;
        }
        if (!tryIssue(e, idx)) {
            if (!sawBlock) {
                sawBlock = true;
                blockCause = issueBlock_;
            }
            readyVec_[keep++] = readyVec_[i];
            continue;
        }
        readyClearBit(idx);
        ++issuedNow;
    }
    readyVec_.resize(keep);
    if (issuedNow == 0 && sawBlock)
        stats_.stall(blockCause);
}

void
OoOCore::issueStageInOrder()
{
    // Strict program-order issue: walk from the oldest non-issued
    // instruction and stop at the first that cannot issue this cycle.
    // The cursor makes a window full of in-flight instructions cost
    // O(1) per cycle instead of re-walking the issued prefix (this
    // also removed the old unconditional readyList_.clear(): the
    // ready bitmap is slot-indexed and cleared per issue, so there is
    // nothing to flush per cycle).
    if (reference_) [[unlikely]]
        readyVec_.clear();   // the ready vector is unused in this mode
    if (inorderNext_ < ruuHead_)
        inorderNext_ = ruuHead_;
    uint32_t issuedNow = 0;
    for (uint64_t pos = inorderNext_;
         pos < ruuTail_ && issuedNow < cfg_.issueWidth; ++pos) {
        RuuEntry &e = ruu_[ruuIndex(pos)];
        if (e.issued) {
            if (pos == inorderNext_)
                ++inorderNext_;
            continue;
        }
        if (e.srcsPending > 0)
            break;   // head-of-line blocking: operands pending
        if (!tryIssue(e, ruuIndex(pos))) {
            if (issuedNow == 0)
                stats_.stall(issueBlock_);
            break;   // head-of-line blocking: structural
        }
        readyClearBit(ruuIndex(pos));
        if (pos == inorderNext_)
            ++inorderNext_;
        ++issuedNow;
    }
}

void
OoOCore::dispatchStage()
{
    uint32_t dispatched = 0;
    bool windowBlocked = false;
    StallCause blockCause = StallCause::RuuFull;
    while (dispatched < cfg_.decodeWidth && !ifq_.empty()) {
        DynInst &head = ifq_.front();
        const bool needsLsq = head.needsLsq();
        if (ruuFull() || (needsLsq && lsqFull())) {
            windowBlocked = true;
            blockCause = ruuFull() ? StallCause::RuuFull
                                   : StallCause::LsqFull;
            break;
        }

        // Land the record straight in its RUU slot (the slot is dead
        // until ruuTail_ advances) instead of staging a local copy.
        const uint32_t idx = ruuIndex(ruuTail_);
        RuuEntry &e = ruu_[idx];
        e.di = head;
        seqAt_[idx] = head.seq;
        ifq_.pop_front();

        const DispatchAction action =
            frontend_->atDispatch(e.di, now_, stats_);

        const DynInst &di = e.di;
        e.valid = true;
        e.issued = false;
        e.completed = false;
        e.srcsPending = 0;
        e.lsqIdx = -1;
        e.consumers.clear();

        for (int s = 0; s < di.numSrcs; ++s) {
            const uint64_t prodSeq = di.srcProducer[s];
            if (prodSeq == 0)
                continue;
            const int32_t pidx = findRuuBySeq(prodSeq);
            if (pidx < 0)
                continue;  // producer already committed or squashed
            RuuEntry &producer = ruu_[static_cast<uint32_t>(pidx)];
            if (producer.completed)
                continue;
            ++e.srcsPending;
            producer.consumers.emplace_back(idx, di.seq);
        }

        if (needsLsq) {
            const uint32_t li = lsqIndex(lsqTail_);
            lsq_[li] = {di.seq, idx, true, di.isStore, di.memAddr,
                        di.memBytes};
            e.lsqIdx = static_cast<int>(li);
            ++lsqTail_;
            ++lsqCount_;
            if (di.isStore && di.memAddr != 0)
                indexStoreAdd(di.memAddr, di.memBytes);
        }

        ++ruuTail_;
        ++ruuCount_;
        if (e.srcsPending == 0)
            readyInsert(di.seq, idx);

        ++dispatched;
        ++stats_.dispatched;
        stats_.touch(PowerUnit::Rename, now_);

        if (action == DispatchAction::SquashIfq) {
            stats_.ifqSquashed += ifq_.size();
            ifq_.clear();
            break;
        }
    }
    // Charge zero-progress cycles: a blocked window beats starvation,
    // and drain cycles (frontend exhausted, IFQ empty) count as
    // neither.
    if (dispatched == 0) {
        if (windowBlocked)
            stats_.stall(blockCause);
        else if (ifq_.empty() && !frontend_->done())
            stats_.stall(StallCause::FetchStarved);
    }
}

void
OoOCore::fetchStage()
{
    if (ifq_.size() >= cfg_.ifqSize)
        return;
    const uint32_t slots =
        cfg_.ifqSize - static_cast<uint32_t>(ifq_.size());
    frontend_->fetchCycle(ifq_, slots, now_, stats_);
}

void
OoOCore::recoverFrom(const RuuEntry &branch)
{
    const uint64_t branchSeq = branch.di.seq;

    // Squash RUU entries younger than the branch.
    while (ruuCount_ > 0) {
        const uint32_t idx = ruuIndex(ruuTail_ - 1);
        RuuEntry &e = ruu_[idx];
        if (e.di.seq <= branchSeq)
            break;
        readyClearBit(idx);
        e.valid = false;
        --ruuTail_;
        --ruuCount_;
        ++stats_.ruuSquashed;
    }
    // Squash LSQ entries younger than the branch.
    while (lsqCount_ > 0) {
        LsqEntry &e = lsq_[lsqIndex(lsqTail_ - 1)];
        if (e.seq <= branchSeq)
            break;
        if (e.isStore && e.addr != 0)
            indexStoreRemove(e.addr, e.bytes);
        e.valid = false;
        --lsqTail_;
        --lsqCount_;
    }
    if (inorderNext_ > ruuTail_)
        inorderNext_ = ruuTail_;
    if (reference_) [[unlikely]] {
        // Drop stale ready entries.
        std::erase_if(readyVec_, [branchSeq](const auto &p) {
            return p.first > branchSeq;
        });
    }

    stats_.ifqSquashed += ifq_.size();
    ifq_.clear();
    frontend_->recover(branch.di, now_);
}

void
OoOCore::accountMemEvent(const MemEvent &ev)
{
    stats_.touch(PowerUnit::DCache, now_);
    stats_.touch(PowerUnit::DTlb, now_);
    if (ev.l2Access)
        stats_.touch(PowerUnit::L2, now_);
}

} // namespace ssim::cpu
