#include "ooo_core.hh"

#include <algorithm>

#include "cpu/pipeline/telemetry.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ssim::cpu
{

OoOCore::OoOCore(const CoreConfig &cfg, Frontend &frontend)
    : cfg_(cfg), frontend_(&frontend), fuPool_(cfg.fu)
{
    if (cfg.ruuSize == 0 || cfg.lsqSize == 0 || cfg.ifqSize == 0) {
        throw Error(ErrorCategory::InvalidConfig,
                    "configuration '" + cfg.name +
                    "': zero-sized pipeline structure (ruuSize, "
                    "lsqSize and ifqSize must all be >= 1)");
    }
    if (cfg.lsqSize > cfg.ruuSize) {
        throw Error(ErrorCategory::InvalidConfig,
                    "configuration '" + cfg.name + "': lsqSize = " +
                    std::to_string(cfg.lsqSize) + " exceeds ruuSize "
                    "= " + std::to_string(cfg.ruuSize) +
                    " (every LSQ entry needs an RUU entry)");
    }
    ruu_.resize(cfg.ruuSize);
    lsq_.resize(cfg.lsqSize);
}

bool
OoOCore::drained() const
{
    return frontend_->done() && ifq_.empty() && ruuCount_ == 0;
}

const SimStats &
OoOCore::run(uint64_t maxCycles)
{
    uint64_t lastCommitted = 0;
    uint64_t lastProgress = 0;
    while (!drained() && now_ < maxCycles) {
        cycle();
        if (stats_.committed != lastCommitted) {
            lastCommitted = stats_.committed;
            lastProgress = now_;
        }
        panicIf(now_ - lastProgress > 200000,
                "pipeline made no progress for 200k cycles");
    }
    return stats_;
}

void
OoOCore::cycle()
{
    fuPool_.beginCycle(now_);
    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();

    stats_.ruuOccAccum += ruuCount_;
    stats_.lsqOccAccum += lsqCount_;
    stats_.ifqOccAccum += ifq_.size();
    if (telemetry_) {
        telemetry_->sample(now_, ruuCount_, lsqCount_, ifq_.size(),
                           stats_.committed);
    }
    ++now_;
    ++stats_.cycles;
}

void
OoOCore::commitStage()
{
    uint32_t committed = 0;
    while (committed < cfg_.commitWidth && ruuCount_ > 0) {
        RuuEntry &e = ruu_[ruuIndex(ruuHead_)];
        if (!e.completed)
            break;
        panicIf(e.di.wrongPath, "wrong-path instruction at commit");

        if (e.di.isStore) {
            const MemEvent ev = frontend_->storeAccess(e.di);
            accountMemEvent(ev);
            ++stats_.stores;
        }
        if (e.di.isLoad)
            ++stats_.loads;
        if (e.di.hasDest)
            stats_.touch(PowerUnit::RegFile, now_);
        if (e.di.isCtrl) {
            ++stats_.branches;
            if (e.di.taken)
                ++stats_.takenBranches;
            if (e.di.outcome == BranchOutcome::Mispredict)
                ++stats_.mispredicts;
            else if (e.di.outcome == BranchOutcome::FetchRedirect)
                ++stats_.fetchRedirects;
        }

        if (e.lsqIdx >= 0) {
            lsq_[lsqIndex(lsqHead_)].valid = false;
            ++lsqHead_;
            --lsqCount_;
        }
        seqToRuu_.erase(e.di.seq);
        e.valid = false;
        ++ruuHead_;
        --ruuCount_;
        ++stats_.committed;
        ++committed;
    }
}

void
OoOCore::wake(RuuEntry &producer)
{
    for (const auto &[idx, seq] : producer.consumers) {
        RuuEntry &c = ruu_[idx];
        if (!c.valid || c.di.seq != seq)
            continue;  // consumer was squashed
        panicIf(c.srcsPending == 0, "waking a ready instruction");
        if (--c.srcsPending == 0 && !c.issued)
            readyList_.emplace_back(c.di.seq, idx);
    }
    producer.consumers.clear();
}

void
OoOCore::writebackStage()
{
    while (!completions_.empty() && completions_.top().when <= now_) {
        const Completion ev = completions_.top();
        completions_.pop();
        RuuEntry &e = ruu_[ev.ruuIdx];
        if (!e.valid || e.di.seq != ev.seq)
            continue;  // squashed in flight
        e.completed = true;
        stats_.touch(PowerUnit::ResultBus, now_);
        if (e.di.hasDest)
            stats_.touch(PowerUnit::Ruu, now_);
        wake(e);

        if (e.di.isCtrl && !e.di.wrongPath &&
            e.di.outcome == BranchOutcome::Mispredict) {
            recoverFrom(e);
        }
    }
}

bool
OoOCore::loadMayIssue(const LsqEntry &load, bool &forwarded) const
{
    forwarded = false;
    if (load.addr == 0)
        return true;  // synthetic or wrong-path load: flags only

    // Scan older stores, youngest first, for an overlap.
    for (uint64_t pos = lsqTail_; pos-- > lsqHead_;) {
        const LsqEntry &st = lsq_[lsqIndex(pos)];
        if (!st.valid || !st.isStore || st.seq >= load.seq)
            continue;
        if (st.addr == 0)
            continue;
        const bool overlap = st.addr < load.addr + load.bytes &&
            load.addr < st.addr + st.bytes;
        if (!overlap)
            continue;
        const RuuEntry &producer = ruu_[st.ruuIdx];
        if (!producer.completed)
            return false;  // store data not ready yet
        forwarded = true;
        return true;
    }
    return true;
}

bool
OoOCore::tryIssue(RuuEntry &e, uint32_t idx)
{
    bool forwarded = false;
    if (e.di.isLoad && e.lsqIdx >= 0 &&
        !loadMayIssue(lsq_[e.lsqIdx], forwarded)) {
        issueBlock_ = StallCause::LoadBlocked;
        return false;
    }
    if (!fuPool_.acquire(e.di.cls)) {
        issueBlock_ = StallCause::FuContention;
        return false;
    }

    uint32_t latency = fuLatencyFor(e.di.cls, cfg_.fu);
    if (e.di.isLoad) {
        stats_.touch(PowerUnit::Lsq, now_);
        if (forwarded) {
            latency += 1;  // store buffer bypass
        } else {
            const MemEvent ev = frontend_->loadAccess(e.di);
            accountMemEvent(ev);
            latency += ev.latency;
        }
    } else if (e.di.isStore) {
        stats_.touch(PowerUnit::Lsq, now_);
    }

    e.issued = true;
    completions_.push({now_ + latency, idx, e.di.seq});
    ++stats_.issued;
    stats_.touch(PowerUnit::IssueSel, now_);
    stats_.touch(PowerUnit::Ruu, now_);  // operand read
    stats_.touch(fuPowerUnitFor(e.di.cls), now_);
    return true;
}

void
OoOCore::issueStage()
{
    if (cfg_.inOrderIssue) {
        issueStageInOrder();
        return;
    }
    if (readyList_.empty())
        return;
    std::sort(readyList_.begin(), readyList_.end());

    uint32_t issuedNow = 0;
    size_t keep = 0;
    bool sawBlock = false;
    StallCause blockCause = StallCause::FuContention;
    for (size_t i = 0; i < readyList_.size(); ++i) {
        const auto [seq, idx] = readyList_[i];
        RuuEntry &e = ruu_[idx];
        if (!e.valid || e.di.seq != seq || e.issued)
            continue;  // squashed or stale
        if (issuedNow >= cfg_.issueWidth) {
            readyList_[keep++] = readyList_[i];
            continue;
        }
        if (!tryIssue(e, idx)) {
            if (!sawBlock) {
                sawBlock = true;
                blockCause = issueBlock_;
            }
            readyList_[keep++] = readyList_[i];
            continue;
        }
        ++issuedNow;
    }
    readyList_.resize(keep);
    // A zero-issue cycle with ready work is a structural stall;
    // charge the first blocking reason seen.
    if (issuedNow == 0 && sawBlock)
        stats_.stall(blockCause);
}

void
OoOCore::issueStageInOrder()
{
    // Strict program-order issue: walk from the oldest instruction
    // and stop at the first that cannot issue this cycle.
    readyList_.clear();   // the ready list is unused in this mode
    uint32_t issuedNow = 0;
    for (uint64_t pos = ruuHead_;
         pos < ruuTail_ && issuedNow < cfg_.issueWidth; ++pos) {
        RuuEntry &e = ruu_[ruuIndex(pos)];
        if (!e.valid)
            continue;
        if (e.issued)
            continue;
        if (e.srcsPending > 0)
            break;   // head-of-line blocking: operands pending
        if (!tryIssue(e, ruuIndex(pos))) {
            if (issuedNow == 0)
                stats_.stall(issueBlock_);
            break;   // head-of-line blocking: structural
        }
        ++issuedNow;
    }
}

void
OoOCore::dispatchStage()
{
    uint32_t dispatched = 0;
    bool windowBlocked = false;
    StallCause blockCause = StallCause::RuuFull;
    while (dispatched < cfg_.decodeWidth && !ifq_.empty()) {
        DynInst &head = ifq_.front();
        const bool needsLsq = head.isLoad || head.isStore;
        if (ruuFull() || (needsLsq && lsqFull())) {
            windowBlocked = true;
            blockCause = ruuFull() ? StallCause::RuuFull
                                   : StallCause::LsqFull;
            break;
        }

        DynInst di = head;
        ifq_.pop_front();

        const DispatchAction action =
            frontend_->atDispatch(di, now_, stats_);

        const uint32_t idx = ruuIndex(ruuTail_);
        RuuEntry &e = ruu_[idx];
        e.di = di;
        e.valid = true;
        e.issued = false;
        e.completed = false;
        e.srcsPending = 0;
        e.lsqIdx = -1;
        e.consumers.clear();

        for (int s = 0; s < di.numSrcs; ++s) {
            const uint64_t prodSeq = di.srcProducer[s];
            if (prodSeq == 0)
                continue;
            auto it = seqToRuu_.find(prodSeq);
            if (it == seqToRuu_.end())
                continue;  // producer already committed
            RuuEntry &producer = ruu_[it->second];
            if (!producer.valid || producer.di.seq != prodSeq ||
                producer.completed) {
                continue;
            }
            ++e.srcsPending;
            producer.consumers.emplace_back(idx, di.seq);
        }

        if (needsLsq) {
            const uint32_t li = lsqIndex(lsqTail_);
            lsq_[li] = {di.seq, idx, true, di.isStore, di.memAddr,
                        di.memBytes};
            e.lsqIdx = static_cast<int>(li);
            ++lsqTail_;
            ++lsqCount_;
        }

        seqToRuu_[di.seq] = idx;
        ++ruuTail_;
        ++ruuCount_;
        if (e.srcsPending == 0)
            readyList_.emplace_back(di.seq, idx);

        ++dispatched;
        ++stats_.dispatched;
        stats_.touch(PowerUnit::Rename, now_);

        if (action == DispatchAction::SquashIfq) {
            stats_.ifqSquashed += ifq_.size();
            ifq_.clear();
            break;
        }
    }
    // Charge zero-progress cycles: a blocked window beats starvation,
    // and drain cycles (frontend exhausted, IFQ empty) count as
    // neither.
    if (dispatched == 0) {
        if (windowBlocked)
            stats_.stall(blockCause);
        else if (ifq_.empty() && !frontend_->done())
            stats_.stall(StallCause::FetchStarved);
    }
}

void
OoOCore::fetchStage()
{
    if (ifq_.size() >= cfg_.ifqSize)
        return;
    const uint32_t slots =
        cfg_.ifqSize - static_cast<uint32_t>(ifq_.size());
    frontend_->fetchCycle(ifq_, slots, now_, stats_);
}

void
OoOCore::recoverFrom(const RuuEntry &branch)
{
    const uint64_t branchSeq = branch.di.seq;

    // Squash RUU entries younger than the branch.
    while (ruuCount_ > 0) {
        RuuEntry &e = ruu_[ruuIndex(ruuTail_ - 1)];
        if (e.di.seq <= branchSeq)
            break;
        seqToRuu_.erase(e.di.seq);
        e.valid = false;
        --ruuTail_;
        --ruuCount_;
        ++stats_.ruuSquashed;
    }
    // Squash LSQ entries younger than the branch.
    while (lsqCount_ > 0) {
        LsqEntry &e = lsq_[lsqIndex(lsqTail_ - 1)];
        if (e.seq <= branchSeq)
            break;
        e.valid = false;
        --lsqTail_;
        --lsqCount_;
    }
    // Drop stale ready entries.
    std::erase_if(readyList_, [branchSeq](const auto &p) {
        return p.first > branchSeq;
    });

    stats_.ifqSquashed += ifq_.size();
    ifq_.clear();
    frontend_->recover(branch.di, now_);
}

void
OoOCore::accountMemEvent(const MemEvent &ev)
{
    stats_.touch(PowerUnit::DCache, now_);
    stats_.touch(PowerUnit::DTlb, now_);
    if (ev.l2Access)
        stats_.touch(PowerUnit::L2, now_);
}

} // namespace ssim::cpu
