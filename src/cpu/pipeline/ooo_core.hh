/**
 * @file
 * Superscalar out-of-order core in the style of SimpleScalar's
 * sim-outorder: instruction fetch queue (IFQ), register update unit
 * (RUU, a unified window/reorder structure), load/store queue (LSQ),
 * functional unit pool, and a five-stage cycle loop
 * (commit <- writeback <- issue <- dispatch <- fetch).
 *
 * The core is frontend-agnostic: the execution-driven frontend and the
 * synthetic-trace frontend both drive it (section 2.3: "the synthetic
 * trace simulator is a modified version of sim-outorder").
 */

#ifndef SSIM_CPU_PIPELINE_OOO_CORE_HH
#define SSIM_CPU_PIPELINE_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cpu/config.hh"
#include "cpu/pipeline/dyninst.hh"
#include "cpu/pipeline/frontend.hh"
#include "cpu/pipeline/fu_pool.hh"
#include "cpu/pipeline/sim_stats.hh"

namespace ssim::cpu
{

class PipelineTelemetry;

/** The cycle-accurate out-of-order engine. */
class OoOCore
{
  public:
    OoOCore(const CoreConfig &cfg, Frontend &frontend);

    /**
     * Attach an optional per-cycle sampler (occupancy distributions,
     * windowed IPC). Costs one pointer test per cycle when null.
     * @p t must outlive the run.
     */
    void attachTelemetry(PipelineTelemetry *t) { telemetry_ = t; }

    /**
     * Run until the frontend is exhausted and the pipeline drains,
     * or until @p maxCycles elapse.
     * @return the collected statistics.
     */
    const SimStats &run(uint64_t maxCycles = ~0ull);

    /** Simulate one clock cycle. */
    void cycle();

    /** True when no work remains anywhere in the machine. */
    bool drained() const;

    const SimStats &stats() const { return stats_; }

  private:
    struct RuuEntry
    {
        DynInst di;
        bool valid = false;
        bool issued = false;
        bool completed = false;
        uint8_t srcsPending = 0;
        int lsqIdx = -1;
        /** Dependents to wake: (ruu index, seq for validation). */
        std::vector<std::pair<uint32_t, uint64_t>> consumers;
    };

    struct LsqEntry
    {
        uint64_t seq = 0;
        uint32_t ruuIdx = 0;
        bool valid = false;
        bool isStore = false;
        uint64_t addr = 0;
        uint8_t bytes = 0;
    };

    /** Pending completion event. */
    struct Completion
    {
        uint64_t when;
        uint32_t ruuIdx;
        uint64_t seq;
        bool operator>(const Completion &o) const { return when > o.when; }
    };

    void commitStage();
    void writebackStage();
    void issueStage();
    void issueStageInOrder();
    void dispatchStage();
    void fetchStage();

    /** Try to issue one entry; returns false if it must wait. */
    bool tryIssue(RuuEntry &e, uint32_t idx);

    bool ruuFull() const { return ruuCount_ == cfg_.ruuSize; }
    bool lsqFull() const { return lsqCount_ == cfg_.lsqSize; }
    uint32_t ruuIndex(uint64_t pos) const { return pos % cfg_.ruuSize; }
    uint32_t lsqIndex(uint64_t pos) const { return pos % cfg_.lsqSize; }

    /** Squash everything younger than @p branch and restart fetch. */
    void recoverFrom(const RuuEntry &branch);

    /** True if the load at @p lsqIdx may issue; sets forwarding. */
    bool loadMayIssue(const LsqEntry &load, bool &forwarded) const;

    void wake(RuuEntry &producer);
    void accountMemEvent(const MemEvent &ev);

    CoreConfig cfg_;
    Frontend *frontend_;
    FuPool fuPool_;
    SimStats stats_;
    PipelineTelemetry *telemetry_ = nullptr;
    /** Why the most recent tryIssue() refused (valid after false). */
    StallCause issueBlock_ = StallCause::FuContention;

    std::deque<DynInst> ifq_;

    std::vector<RuuEntry> ruu_;
    uint64_t ruuHead_ = 0;   ///< absolute position of oldest entry
    uint64_t ruuTail_ = 0;   ///< absolute position one past youngest
    uint32_t ruuCount_ = 0;

    std::vector<LsqEntry> lsq_;
    uint64_t lsqHead_ = 0;
    uint64_t lsqTail_ = 0;
    uint32_t lsqCount_ = 0;

    std::unordered_map<uint64_t, uint32_t> seqToRuu_;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;
    /** Ready-to-issue candidates: (seq, ruu index). */
    std::vector<std::pair<uint64_t, uint32_t>> readyList_;

    uint64_t now_ = 0;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_OOO_CORE_HH
