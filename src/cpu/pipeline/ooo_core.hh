/**
 * @file
 * Superscalar out-of-order core in the style of SimpleScalar's
 * sim-outorder: instruction fetch queue (IFQ), register update unit
 * (RUU, a unified window/reorder structure), load/store queue (LSQ),
 * functional unit pool, and a five-stage cycle loop
 * (commit <- writeback <- issue <- dispatch <- fetch).
 *
 * The core is frontend-agnostic: the execution-driven frontend and the
 * synthetic-trace frontend both drive it (section 2.3: "the synthetic
 * trace simulator is a modified version of sim-outorder").
 *
 * Scheduling is event-driven (see DESIGN.md "OoO scheduler"): per-cycle
 * cost is proportional to work done, not to structure sizes, while
 * SimStats stays bit-identical to a cycle-by-cycle walk:
 *
 *  - idle cycles are fast-forwarded: after two consecutive executed
 *    cycles with zero work and identical stall charges, the span to
 *    the next completion event (capped by any pending fetch stall) is
 *    accounted arithmetically and skipped;
 *  - ready instructions live in an age-ordered bitmap over RUU slots
 *    maintained at dispatch/wake/issue/squash — no per-cycle sort;
 *  - store->load disambiguation answers the common no-alias case from
 *    a refcounted address-granule bitmap instead of scanning the LSQ;
 *  - producer lookup binary-searches the monotone seq order of the
 *    RUU ring instead of hashing.
 *
 * Setting SSIM_SCHED_REFERENCE=1 in the environment restores the
 * cycle-by-cycle reference behaviour (sorted ready vector, linear
 * disambiguation scan, no fast-forward) — the equivalence test
 * battery byte-compares SimStats between the two paths.
 */

#ifndef SSIM_CPU_PIPELINE_OOO_CORE_HH
#define SSIM_CPU_PIPELINE_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "cpu/config.hh"
#include "cpu/pipeline/dyninst.hh"
#include "cpu/pipeline/frontend.hh"
#include "cpu/pipeline/fu_pool.hh"
#include "cpu/pipeline/sim_stats.hh"

namespace ssim::cpu
{

class PipelineTelemetry;

/** Wall-clock cost attribution per pipeline stage (bench-only). */
struct StageCost
{
    enum Stage { Commit, Writeback, Issue, Dispatch, Fetch, NumStages };
    std::array<double, NumStages> seconds{};
    uint64_t profiledCycles = 0;
};

/** The cycle-accurate out-of-order engine. */
class OoOCore
{
  public:
    OoOCore(const CoreConfig &cfg, Frontend &frontend);

    /**
     * Attach an optional per-cycle sampler (occupancy distributions,
     * windowed IPC). Costs one pointer test per cycle when null.
     * Fast-forwarded spans are batched through sampleSpan(), so the
     * sampler's output stays identical to a cycle-by-cycle run.
     * @p t must outlive the run.
     */
    void attachTelemetry(PipelineTelemetry *t) { telemetry_ = t; }

    /**
     * Run until the frontend is exhausted and the pipeline drains,
     * or until @p maxCycles elapse.
     * @return the collected statistics.
     */
    const SimStats &run(uint64_t maxCycles = ~0ull);

    /** Simulate one clock cycle. */
    void cycle();

    /** True when no work remains anywhere in the machine. */
    bool drained() const;

    const SimStats &stats() const { return stats_; }

    /** Scheduler-internal counters (core.sched.*). */
    const SchedCounters &sched() const { return sched_; }

    /**
     * Time each stage of every executed cycle (two clock reads per
     * stage — bench use only, not for the hot path).
     */
    void enableStageProfile() { profile_ = true; }
    const StageCost &stageCost() const { return stageCost_; }

  private:
    struct RuuEntry
    {
        DynInst di;
        bool valid = false;
        bool issued = false;
        bool completed = false;
        uint8_t srcsPending = 0;
        int lsqIdx = -1;
        /** Dependents to wake: (ruu index, seq for validation). */
        std::vector<std::pair<uint32_t, uint64_t>> consumers;
    };

    struct LsqEntry
    {
        uint64_t seq = 0;
        uint32_t ruuIdx = 0;
        bool valid = false;
        bool isStore = false;
        uint64_t addr = 0;
        uint8_t bytes = 0;
    };

    /**
     * Pending completion event. The comparator orders by time only:
     * entries completing in the same cycle pop in whatever order the
     * heap yields, exactly as the pre-event-driven core did — a seq
     * tie-break here would reorder same-cycle writebacks and change
     * ResultBus/RUU touch attribution.
     */
    struct Completion
    {
        uint64_t when;
        uint32_t ruuIdx;
        uint64_t seq;
        bool operator>(const Completion &o) const { return when > o.when; }
    };

    void commitStage();
    void writebackStage();
    void issueStage();
    void issueStageReference();
    void issueStageInOrder();
    void dispatchStage();
    void fetchStage();

    /** Try to issue one entry; returns false if it must wait. */
    bool tryIssue(RuuEntry &e, uint32_t idx);

    bool ruuFull() const { return ruuCount_ == cfg_.ruuSize; }
    bool lsqFull() const { return lsqCount_ == cfg_.lsqSize; }
    // Ring position -> slot. The modulo is a hardware divide on the
    // hottest paths (every ring access, seven probes per producer
    // lookup), so power-of-two sizes — every shipped config — use a
    // mask instead.
    uint32_t
    ruuIndex(uint64_t pos) const
    {
        return ruuMask_ ? static_cast<uint32_t>(pos) & ruuMask_
                        : pos % cfg_.ruuSize;
    }
    uint32_t
    lsqIndex(uint64_t pos) const
    {
        return lsqMask_ ? static_cast<uint32_t>(pos) & lsqMask_
                        : pos % cfg_.lsqSize;
    }

    /** Squash everything younger than @p branch and restart fetch. */
    void recoverFrom(const RuuEntry &branch);

    /** True if the load at @p lsqIdx may issue; sets forwarding. */
    bool loadMayIssue(const LsqEntry &load, bool &forwarded);
    bool loadScanOlderStores(const LsqEntry &load,
                             bool &forwarded) const;

    void wake(RuuEntry &producer);
    void accountMemEvent(const MemEvent &ev);

    /**
     * RUU slot of the in-flight producer with sequence number @p seq,
     * or -1 if it already committed (or was squashed). Seq numbers of
     * live entries are strictly increasing along the ring positions
     * [ruuHead_, ruuTail_), so a binary search over positions replaces
     * the old unordered_map (in-flight seqs are sparse — IFQ squashes
     * leave gaps — so a direct-mapped table would collide).
     */
    int32_t findRuuBySeq(uint64_t seq) const;

    // --- age-ordered ready bitmap -------------------------------
    void readyInsert(uint64_t seq, uint32_t idx);
    void
    readySetBit(uint32_t idx)
    {
        uint64_t &w = readyBits_[idx >> 6];
        const uint64_t bit = 1ull << (idx & 63);
        if (!(w & bit)) {
            w |= bit;
            if (++readyCount_ > sched_.readyPeak)
                sched_.readyPeak = readyCount_;
        }
    }
    void
    readyClearBit(uint32_t idx)
    {
        uint64_t &w = readyBits_[idx >> 6];
        const uint64_t bit = 1ull << (idx & 63);
        if (w & bit) {
            w &= ~bit;
            --readyCount_;
        }
    }

    // --- store-address granule index ----------------------------
    /** Bits covered by [addr, addr + bytes) at 8-byte granularity. */
    static uint64_t granuleMask(uint64_t addr, uint8_t bytes);
    void indexStoreAdd(uint64_t addr, uint8_t bytes);
    void indexStoreRemove(uint64_t addr, uint8_t bytes);

    CoreConfig cfg_;
    Frontend *frontend_;
    /** Slot masks when the ring sizes are powers of two, else 0. */
    uint32_t ruuMask_ = 0;
    uint32_t lsqMask_ = 0;
    FuPool fuPool_;
    SimStats stats_;
    SchedCounters sched_;
    PipelineTelemetry *telemetry_ = nullptr;
    /** Why the most recent tryIssue() refused (valid after false). */
    StallCause issueBlock_ = StallCause::FuContention;

    FetchQueue ifq_;

    std::vector<RuuEntry> ruu_;
    /**
     * di.seq per RUU slot, maintained at dispatch: findRuuBySeq()'s
     * binary-search probes read this flat array instead of striding
     * across the much larger RuuEntry records.
     */
    std::vector<uint64_t> seqAt_;
    uint64_t ruuHead_ = 0;   ///< absolute position of oldest entry
    uint64_t ruuTail_ = 0;   ///< absolute position one past youngest
    uint32_t ruuCount_ = 0;

    std::vector<LsqEntry> lsq_;
    uint64_t lsqHead_ = 0;
    uint64_t lsqTail_ = 0;
    uint32_t lsqCount_ = 0;

    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;

    /**
     * Ready-to-issue candidates as a bitmap over RUU slots. Age order
     * falls out of the ring layout: walking slots from ruuIndex(
     * ruuHead_) with wrap visits live entries oldest-first, which is
     * exactly the (seq, idx) sort order the reference path uses —
     * dispatch is in-order and squashes peel from the tail, so ring
     * position order *is* seq order.
     */
    std::vector<uint64_t> readyBits_;
    uint32_t readyCount_ = 0;
    /** Reference path only: the old sorted (seq, idx) vector. */
    std::vector<std::pair<uint64_t, uint32_t>> readyVec_;

    /**
     * In-order issue cursor: absolute RUU position below which every
     * live entry has issued. Monotone except for squashes, which clamp
     * it back to the new tail.
     */
    uint64_t inorderNext_ = 0;

    /**
     * Pending-store address index: one bit per 8-byte granule modulo
     * 64, with a refcount per bit so overlapping stores compose. A
     * load whose granule mask misses the bitmap provably has no
     * older overlapping store (bitmap intersection is a superset of
     * byte-interval intersection); on a hit the exact LSQ scan runs
     * and returns the reference verdict.
     */
    uint64_t storeBitmap_ = 0;
    std::array<uint32_t, 64> storeGranuleRefs_{};
    uint32_t pendingStores_ = 0;

    /** SSIM_SCHED_REFERENCE=1: cycle-by-cycle reference behaviour. */
    bool reference_ = false;
    bool profile_ = false;
    StageCost stageCost_;

    uint64_t now_ = 0;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_OOO_CORE_HH
