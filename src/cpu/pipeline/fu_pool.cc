#include "fu_pool.hh"

#include "util/logging.hh"

namespace ssim::cpu
{

FuType
fuTypeFor(isa::InstClass cls)
{
    using isa::InstClass;
    switch (cls) {
      case InstClass::Load:
      case InstClass::Store:
        return FuType::LdSt;
      case InstClass::FpAlu:
      case InstClass::FpCondBranch:
        return FuType::FpAlu;
      case InstClass::IntMult:
      case InstClass::IntDiv:
        return FuType::IntMult;
      case InstClass::FpMult:
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
        return FuType::FpMult;
      default:
        return FuType::IntAlu;
    }
}

uint32_t
fuLatencyFor(isa::InstClass cls, const FuConfig &cfg)
{
    using isa::InstClass;
    switch (cls) {
      case InstClass::Load:
      case InstClass::Store:
        return cfg.agenLat;   // cache latency is added separately
      case InstClass::IntMult:
        return cfg.intMultLat;
      case InstClass::IntDiv:
        return cfg.intDivLat;
      case InstClass::FpAlu:
      case InstClass::FpCondBranch:
        return cfg.fpAluLat;
      case InstClass::FpMult:
        return cfg.fpMultLat;
      case InstClass::FpDiv:
        return cfg.fpDivLat;
      case InstClass::FpSqrt:
        return cfg.fpSqrtLat;
      default:
        return cfg.intAluLat;
    }
}

bool
fuNonPipelined(isa::InstClass cls)
{
    using isa::InstClass;
    return cls == InstClass::IntDiv || cls == InstClass::FpDiv ||
        cls == InstClass::FpSqrt;
}

PowerUnit
fuPowerUnitFor(isa::InstClass cls)
{
    switch (fuTypeFor(cls)) {
      case FuType::IntAlu:
      case FuType::LdSt:
        return PowerUnit::IntAlu;
      case FuType::IntMult:
        return PowerUnit::IntMult;
      case FuType::FpAlu:
        return PowerUnit::FpAlu;
      case FuType::FpMult:
        return PowerUnit::FpMult;
      default:
        return PowerUnit::IntAlu;
    }
}

FuPool::FuPool(const FuConfig &cfg)
    : cfg_(cfg)
{
    auto setup = [this](FuType t, uint32_t count, bool nonPipelined) {
        TypeState &st = types_[static_cast<int>(t)];
        st.count = count;
        st.hasNonPipelined = nonPipelined;
        st.busyUntil.assign(nonPipelined ? count : 0, 0);
    };
    // Only the multiply/divide units can be occupied across cycles:
    // IntDiv maps to IntMult and FpDiv/FpSqrt map to FpMult (see
    // fuTypeFor), and those are the only non-pipelined classes.
    setup(FuType::IntAlu, cfg.intAluCount, false);
    setup(FuType::LdSt, cfg.ldStCount, false);
    setup(FuType::FpAlu, cfg.fpAluCount, false);
    setup(FuType::IntMult, cfg.intMultCount, true);
    setup(FuType::FpMult, cfg.fpMultCount, true);
}

bool
FuPool::acquire(isa::InstClass cls)
{
    TypeState &st = types_[static_cast<int>(fuTypeFor(cls))];
    if (st.stamp != cycle_) {   // lazy per-cycle issue-slot reset
        st.stamp = cycle_;
        st.usedThisCycle = 0;
    }
    if (st.usedThisCycle >= st.count)
        return false;
    if (!st.hasNonPipelined) {
        // Pipelined-only type: every unit is free at cycle start, so
        // the slot counter alone decides.
        ++st.usedThisCycle;
        return true;
    }
    // Find a unit that is not occupied by a non-pipelined op.
    for (uint32_t i = 0; i < st.count; ++i) {
        if (st.busyUntil[i] <= cycle_) {
            ++st.usedThisCycle;
            if (fuNonPipelined(cls))
                st.busyUntil[i] = cycle_ + fuLatencyFor(cls, cfg_);
            else
                st.busyUntil[i] = cycle_ + 1;  // issue slot this cycle
            return true;
        }
    }
    return false;
}

} // namespace ssim::cpu
