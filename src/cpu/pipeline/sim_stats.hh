/**
 * @file
 * Timing and activity statistics collected by the out-of-order core.
 *
 * Activity counters are kept per power unit so the Wattch-style power
 * model (src/power) can apply cc3 clock gating afterwards: an idle
 * unit burns 10% of its maximum power, an active one scales linearly
 * with port utilisation. The core records, per unit, the total access
 * count and the number of cycles with at least one access.
 */

#ifndef SSIM_CPU_PIPELINE_SIM_STATS_HH
#define SSIM_CPU_PIPELINE_SIM_STATS_HH

#include <array>
#include <cstdint>

namespace ssim::cpu
{

/** Structures tracked for power estimation. */
enum class PowerUnit : uint8_t
{
    Bpred,
    ICache,
    ITlb,
    Rename,     ///< dispatch/decode logic
    IssueSel,   ///< selection + wakeup logic
    Ruu,        ///< window storage (operands, tags, results)
    Lsq,
    RegFile,
    IntAlu,
    IntMult,
    FpAlu,
    FpMult,
    DCache,
    DTlb,
    L2,
    ResultBus,
    NumUnits
};

constexpr int NumPowerUnits = static_cast<int>(PowerUnit::NumUnits);

/** Name of a power unit, for reports. */
const char *powerUnitName(PowerUnit u);

/**
 * Why a pipeline stage made zero progress in a cycle. Fetch-side
 * causes (redirect recovery, mispredict recovery, I-side miss) are
 * attributed by the shared FetchTelemetry gate; dispatch-side causes
 * (starved, window/LSQ full) and issue-side causes (FU contention,
 * load blocked on an older store) by the core's stages. At most one
 * cause is charged per stage per cycle — the first blocking reason —
 * so each counter reads as "cycles this stage was stalled because X".
 */
enum class StallCause : uint8_t
{
    FetchRedirect,       ///< fetch idle during redirect penalty
    MispredictRecovery,  ///< fetch idle during mispredict penalty
    IcacheMiss,          ///< fetch idle waiting for the I-side
    FetchStarved,        ///< dispatch had slots but the IFQ was empty
    RuuFull,             ///< dispatch blocked: no RUU entry
    LsqFull,             ///< dispatch blocked: no LSQ entry
    FuContention,        ///< issue blocked: no functional unit
    LoadBlocked,         ///< issue blocked: older store data pending
    NumCauses
};

constexpr int NumStallCauses = static_cast<int>(StallCause::NumCauses);

/** Stable metric-segment name of a cause ("ruu_full", ...). */
const char *stallCauseName(StallCause c);

/** Everything a simulation run reports. */
struct SimStats
{
    uint64_t cycles = 0;
    uint64_t committed = 0;
    uint64_t fetched = 0;
    uint64_t dispatched = 0;
    uint64_t issued = 0;

    uint64_t branches = 0;        ///< committed control-flow insts
    uint64_t takenBranches = 0;
    uint64_t mispredicts = 0;     ///< committed mispredicted branches
    uint64_t fetchRedirects = 0;

    uint64_t loads = 0;
    uint64_t stores = 0;

    // Speculation cleanup work (squashes happen in the core, so the
    // accounting lives here rather than in each frontend).
    uint64_t ifqSquashed = 0;   ///< IFQ entries dropped by squashes
    uint64_t ruuSquashed = 0;   ///< RUU entries dropped by recovery

    // Occupancy accumulators (divide by cycles for averages).
    uint64_t ruuOccAccum = 0;
    uint64_t lsqOccAccum = 0;
    uint64_t ifqOccAccum = 0;

    // Stall-cause breakdown, in cycles (see StallCause).
    std::array<uint64_t, NumStallCauses> stallCycles{};

    /** Charge one stalled cycle to @p cause. */
    void stall(StallCause cause)
    {
        ++stallCycles[static_cast<int>(cause)];
    }

    // Per-unit activity for the power model.
    std::array<uint64_t, NumPowerUnits> unitAccesses{};
    std::array<uint64_t, NumPowerUnits> unitActiveCycles{};
    std::array<uint64_t, NumPowerUnits> lastActiveCycle{};

    /** Record @p count accesses to @p unit during @p cycle. */
    void
    touch(PowerUnit u, uint64_t cycle, uint64_t count = 1)
    {
        const int i = static_cast<int>(u);
        unitAccesses[i] += count;
        // Cycle 0 needs the +1 bias so the first cycle registers.
        if (lastActiveCycle[i] != cycle + 1) {
            lastActiveCycle[i] = cycle + 1;
            ++unitActiveCycles[i];
        }
    }

    double ipc() const
    {
        return cycles ? static_cast<double>(committed) / cycles : 0.0;
    }

    double avgRuuOccupancy() const
    {
        return cycles ? static_cast<double>(ruuOccAccum) / cycles : 0.0;
    }

    double avgLsqOccupancy() const
    {
        return cycles ? static_cast<double>(lsqOccAccum) / cycles : 0.0;
    }

    double avgIfqOccupancy() const
    {
        return cycles ? static_cast<double>(ifqOccAccum) / cycles : 0.0;
    }

    /** Issued instructions per cycle ("execution bandwidth"). */
    double executionBandwidth() const
    {
        return cycles ? static_cast<double>(issued) / cycles : 0.0;
    }

    double mispredictsPerKilo() const
    {
        return committed
            ? 1000.0 * static_cast<double>(mispredicts) / committed
            : 0.0;
    }
};

/**
 * Scheduler-internal observability, kept deliberately *outside*
 * SimStats: SimStats is the architectural contract (the equivalence
 * battery byte-compares it between the event-driven scheduler and the
 * cycle-by-cycle reference), while these counters describe how the
 * scheduler did its work and legitimately differ between the two
 * paths. Published as core.sched.* (see publishSchedCounters).
 */
struct SchedCounters
{
    uint64_t wakeups = 0;         ///< consumers moved to ready
    uint64_t skippedCycles = 0;   ///< idle cycles fast-forwarded over
    uint64_t ffSpans = 0;         ///< fast-forward jumps taken
    uint64_t readyPeak = 0;       ///< ready-queue high-water mark
    uint64_t disambIndexHits = 0; ///< O(1) no-alias verdicts
    uint64_t disambIndexScans = 0;///< fallbacks to the full LSQ scan
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_SIM_STATS_HH
