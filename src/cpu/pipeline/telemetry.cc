#include "telemetry.hh"

#include <algorithm>

#include "cpu/cache/hierarchy.hh"

namespace ssim::cpu
{

PipelineTelemetry::OccTrack
PipelineTelemetry::makeTrack(uint32_t capacity)
{
    OccTrack t;
    t.bounds = obs::occupancyBounds(capacity);
    t.counts.assign(t.bounds.size() + 1, 0);
    // Precompute occupancy -> bucket so the per-cycle path is one
    // table load instead of a bound search. Occupancy never exceeds
    // the capacity, so the overflow bucket stays empty by design.
    t.bucketOf.resize(capacity + 1);
    for (uint32_t occ = 0; occ <= capacity; ++occ) {
        auto it = std::lower_bound(t.bounds.begin(), t.bounds.end(),
                                   static_cast<double>(occ));
        t.bucketOf[occ] =
            static_cast<uint8_t>(it - t.bounds.begin());
    }
    return t;
}

PipelineTelemetry::PipelineTelemetry(const CoreConfig &cfg,
                                     uint32_t windowCycles)
    : windowCycles_(windowCycles),
      ruu_(makeTrack(cfg.ruuSize)),
      lsq_(makeTrack(cfg.lsqSize)),
      ifq_(makeTrack(cfg.ifqSize))
{
    ruuBucketOf_ = ruu_.bucketOf.data();
    lsqBucketOf_ = lsq_.bucketOf.data();
    ifqBucketOf_ = ifq_.bucketOf.data();
    ruuBucketCounts_ = ruu_.counts.data();
    lsqBucketCounts_ = lsq_.counts.data();
    ifqBucketCounts_ = ifq_.counts.data();
}

void
PipelineTelemetry::closeWindow(uint64_t endCycle, uint64_t committed)
{
    IpcSample s;
    s.endCycle = endCycle;
    s.committed = committed - windowStartCommitted_;
    const uint64_t width = endCycle - windowStartCycle_;
    s.ipc = width ? static_cast<double>(s.committed) / width : 0.0;
    ipcSamples_.push_back(s);
    windowStartCycle_ = endCycle;
    windowStartCommitted_ = committed;
}

void
PipelineTelemetry::finish(uint64_t cycle, uint64_t committed)
{
    if (cycle > windowStartCycle_)
        closeWindow(cycle, committed);
}

void
PipelineTelemetry::publish(obs::Registry &reg,
                           const std::string &prefix) const
{
    auto publishTrack = [&](const char *what, const OccTrack &t,
                            uint64_t occSum) {
        obs::Histogram &h = reg.histogram(
            prefix + "." + what + ".occupancy", t.bounds);
        uint64_t remaining = occSum;
        for (size_t b = 0; b < t.counts.size(); ++b) {
            if (t.counts[b] == 0)
                continue;
            // The per-bucket sum is not tracked; attribute the whole
            // occupancy integral to the last populated bucket so the
            // histogram's total sum (hence the mean) stays exact.
            const bool last =
                std::all_of(t.counts.begin() + b + 1, t.counts.end(),
                            [](uint64_t c) { return c == 0; });
            h.addToBucket(b, t.counts[b],
                          last ? static_cast<double>(remaining) : 0.0);
            if (last)
                remaining = 0;
        }
    };
    publishTrack("ruu", ruu_, ruuOccSum_);
    publishTrack("lsq", lsq_, lsqOccSum_);
    publishTrack("ifq", ifq_, ifqOccSum_);

    if (!ipcSamples_.empty()) {
        // Window IPC distribution: fixed bounds up to 8 IPC cover any
        // configuration this simulator accepts.
        obs::Histogram &h = reg.histogram(
            prefix + ".ipc.window",
            {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0});
        for (const IpcSample &s : ipcSamples_)
            h.observe(s.ipc);
        reg.counter(prefix + ".ipc.windows").set(ipcSamples_.size());
    }
}

void
publishSimStats(obs::Registry &reg, const std::string &prefix,
                const SimStats &stats)
{
    auto c = [&](const char *name, uint64_t v) {
        reg.counter(prefix + "." + name).set(v);
    };
    auto g = [&](const char *name, double v) {
        reg.gauge(prefix + "." + name).set(v);
    };

    c("cycles", stats.cycles);
    c("commit.insts", stats.committed);
    c("fetch.insts", stats.fetched);
    c("dispatch.insts", stats.dispatched);
    c("issue.insts", stats.issued);
    c("commit.branches", stats.branches);
    c("commit.taken-branches", stats.takenBranches);
    c("commit.mispredicts", stats.mispredicts);
    c("fetch.redirects", stats.fetchRedirects);
    c("commit.loads", stats.loads);
    c("commit.stores", stats.stores);
    c("squash.ifq-insts", stats.ifqSquashed);
    c("squash.ruu-insts", stats.ruuSquashed);

    g("commit.ipc", stats.ipc());
    g("issue.bandwidth", stats.executionBandwidth());
    g("commit.mispredicts-per-kilo", stats.mispredictsPerKilo());
    g("ruu.occupancy-avg", stats.avgRuuOccupancy());
    g("lsq.occupancy-avg", stats.avgLsqOccupancy());
    g("ifq.occupancy-avg", stats.avgIfqOccupancy());

    for (int i = 0; i < NumStallCauses; ++i) {
        c((std::string("stall.") +
           stallCauseName(static_cast<StallCause>(i))).c_str(),
          stats.stallCycles[i]);
    }

    for (int i = 0; i < NumPowerUnits; ++i) {
        const std::string unit =
            std::string("unit.") +
            powerUnitName(static_cast<PowerUnit>(i));
        c((unit + ".accesses").c_str(), stats.unitAccesses[i]);
        c((unit + ".active-cycles").c_str(),
          stats.unitActiveCycles[i]);
    }
}

void
publishSchedCounters(obs::Registry &reg, const std::string &prefix,
                     const SchedCounters &sched)
{
    auto c = [&](const char *name, uint64_t v) {
        reg.counter(prefix + "." + name).set(v);
    };
    c("wakeups", sched.wakeups);
    c("skipped-cycles", sched.skippedCycles);
    c("ff-spans", sched.ffSpans);
    c("ready-peak", sched.readyPeak);
    c("disamb.index-hits", sched.disambIndexHits);
    c("disamb.index-scans", sched.disambIndexScans);
}

void
publishHierarchy(obs::Registry &reg, const std::string &prefix,
                 const MemoryHierarchy &mem)
{
    auto cache = [&](const char *name, uint64_t hits,
                     uint64_t misses) {
        reg.counter(prefix + "." + name + ".hits").set(hits);
        reg.counter(prefix + "." + name + ".misses").set(misses);
    };
    cache("il1", mem.il1().hits(), mem.il1().misses());
    cache("dl1", mem.dl1().hits(), mem.dl1().misses());
    cache("l2", mem.l2().hits(), mem.l2().misses());
    cache("itlb", mem.itlb().hits(), mem.itlb().misses());
    cache("dtlb", mem.dtlb().hits(), mem.dtlb().misses());
    reg.counter(prefix + ".l2.inst-misses").set(mem.l2InstMisses());
    reg.counter(prefix + ".l2.data-misses").set(mem.l2DataMisses());
}

} // namespace ssim::cpu
