/**
 * @file
 * The dynamic instruction record flowing through the pipeline.
 *
 * Both frontends produce DynInsts: the execution-driven frontend fills
 * them from functional execution plus real predictor/cache lookups;
 * the synthetic-trace frontend fills them from the annotated flags of
 * the synthetic trace. The out-of-order core is agnostic.
 */

#ifndef SSIM_CPU_PIPELINE_DYNINST_HH
#define SSIM_CPU_PIPELINE_DYNINST_HH

#include <cstdint>

#include "cpu/bpred/branch_unit.hh"
#include "isa/isa.hh"

namespace ssim::cpu
{

/** Maximum register source operands per instruction. */
constexpr int MaxSrcs = 2;

/** Summary of a data-side memory access for the timing model. */
struct MemEvent
{
    bool l1Miss = false;
    bool l2Access = false;
    bool l2Miss = false;
    bool tlbMiss = false;
    uint32_t latency = 0;
};

/** One in-flight instruction. */
struct DynInst
{
    uint64_t seq = 0;          ///< global fetch-order sequence number
    uint32_t pc = 0;           ///< instruction index (synthetic: pseudo)
    isa::Opcode op = isa::Opcode::NOP;
    isa::InstClass cls = isa::InstClass::IntAlu;

    uint8_t numSrcs = 0;
    /** Sequence numbers of producing instructions; 0 = no dependency. */
    uint64_t srcProducer[MaxSrcs] = {0, 0};
    bool hasDest = false;

    bool isLoad = false;
    bool isStore = false;
    bool isCtrl = false;
    bool wrongPath = false;

    /** Memory ops occupy an LSQ entry alongside their RUU entry. */
    bool needsLsq() const { return isLoad || isStore; }

    // Control flow (valid when isCtrl).
    bool taken = false;
    BranchOutcome outcome = BranchOutcome::Correct;
    int rasTop = 0;            ///< RAS repair token (EDS only)
    uint32_t actualNext = 0;   ///< architected next PC (EDS only)

    // Memory (valid when isLoad/isStore).
    uint64_t memAddr = 0;      ///< 0 for synthetic / wrong-path ops
    uint8_t memBytes = 0;
    // Synthetic-trace cache annotations (loads; step 5 of the
    // generation algorithm).
    bool dl1Miss = false;
    bool dl2Miss = false;
    bool dtlbMiss = false;
};

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_DYNINST_HH
