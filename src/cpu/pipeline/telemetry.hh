/**
 * @file
 * Shared pipeline telemetry publishers.
 *
 * Three pieces live here:
 *
 *  - FetchTelemetry: the fetch-stall gate both frontends
 *    (cpu/eds_frontend, core/sts_frontend) previously implemented by
 *    hand with a private `stallUntil_` and copy-pasted redirect /
 *    recovery / I-miss penalty bookkeeping. The gate owns the stall
 *    window, knows *why* fetch is stalled, and charges each idle
 *    cycle to the right StallCause — one implementation, two users.
 *
 *  - PipelineTelemetry: opt-in per-cycle sampling of structure
 *    occupancies and windowed IPC. The hot path is O(1) and
 *    allocation-free — occupancy-to-bucket is a precomputed lookup
 *    table, a window boundary is one compare — because it runs inside
 *    OoOCore::cycle(). When no telemetry is attached the core pays a
 *    single pointer test per cycle; bench_throughput's
 *    instrumented-vs-disabled pair keeps that honest (<1%).
 *
 *  - publish*(): one-shot exporters that copy a finished run's
 *    SimStats / cache hierarchy / sampled telemetry into an
 *    obs::Registry under a hierarchical prefix. All registry work
 *    (string lookups, mutexes) happens here, after the run — never
 *    per cycle.
 */

#ifndef SSIM_CPU_PIPELINE_TELEMETRY_HH
#define SSIM_CPU_PIPELINE_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/config.hh"
#include "cpu/pipeline/sim_stats.hh"
#include "obs/metrics.hh"

namespace ssim::cpu
{

class MemoryHierarchy;

/**
 * The fetch-stall gate shared by the execution-driven and
 * synthetic-trace frontends. Timing-neutral with the frontends'
 * previous private bookkeeping: stalled() is exactly
 * `cycle < stallUntil` with the same update rules, plus cause
 * attribution into SimStats::stallCycles.
 */
class FetchTelemetry
{
  public:
    explicit FetchTelemetry(const CoreConfig &cfg) : cfg_(&cfg) {}

    /**
     * Gate for the top of fetchCycle(): true when fetch must idle
     * this cycle; the idle cycle is charged to the pending cause.
     */
    bool
    stalled(uint64_t cycle, SimStats &stats)
    {
        if (cycle >= stallUntil_)
            return false;
        stats.stall(cause_);
        return true;
    }

    /** Budget for one fetch cycle (sim-outorder's -fetch:speed). */
    uint32_t
    budget(uint32_t maxSlots) const
    {
        const uint32_t burst = cfg_->decodeWidth * cfg_->fetchSpeed;
        return maxSlots < burst ? maxSlots : burst;
    }

    /** I-side miss: fetch blocked for @p extraCycles after @p cycle. */
    void
    icacheStall(uint64_t cycle, uint32_t extraCycles)
    {
        stallUntil_ = cycle + extraCycles;
        cause_ = StallCause::IcacheMiss;
    }

    /** Dispatch-time fetch redirect: stall through redirectPenalty. */
    void
    redirect(uint64_t cycle)
    {
        const uint64_t until = cycle + cfg_->redirectPenalty;
        if (until > stallUntil_)
            stallUntil_ = until;
        cause_ = StallCause::FetchRedirect;
    }

    /** Resolution-time mispredict recovery: mispredictPenalty stall. */
    void
    mispredictRecovery(uint64_t cycle)
    {
        stallUntil_ = cycle + cfg_->mispredictPenalty;
        cause_ = StallCause::MispredictRecovery;
    }

    /**
     * First cycle at which fetch is no longer gated (cycles before
     * this are charged to the pending cause). Feeds the frontends'
     * Frontend::fetchStallUntil() probe.
     */
    uint64_t stallUntil() const { return stallUntil_; }

  private:
    const CoreConfig *cfg_;
    uint64_t stallUntil_ = 0;
    StallCause cause_ = StallCause::IcacheMiss;
};

/** One windowed IPC sample. */
struct IpcSample
{
    uint64_t endCycle = 0;     ///< window ends at this cycle (exclusive)
    uint64_t committed = 0;    ///< instructions committed in the window
    double ipc = 0.0;
};

/**
 * Opt-in per-cycle sampler attached to an OoOCore. Collects occupancy
 * distributions (fixed buckets, precomputed lookup) and interval IPC;
 * publish() copies the accumulated data into a registry.
 */
class PipelineTelemetry
{
  public:
    /**
     * @param windowCycles interval-IPC window width; 0 disables
     *        interval sampling (occupancies still collected).
     */
    PipelineTelemetry(const CoreConfig &cfg,
                      uint32_t windowCycles = 10000);

    /** Called by OoOCore once per cycle. O(1), allocation-free. */
    void
    sample(uint64_t cycle, uint32_t ruuOcc, uint32_t lsqOcc,
           size_t ifqOcc, uint64_t committed)
    {
        ++ruuBucketCounts_[ruuBucketOf_[ruuOcc]];
        ++lsqBucketCounts_[lsqBucketOf_[lsqOcc]];
        ++ifqBucketCounts_[ifqBucketOf_[ifqOcc]];
        ruuOccSum_ += ruuOcc;
        lsqOccSum_ += lsqOcc;
        ifqOccSum_ += ifqOcc;
        ++sampledCycles_;
        if (windowCycles_ && cycle - windowStartCycle_ + 1 >=
                                 windowCycles_) {
            closeWindow(cycle + 1, committed);
        }
    }

    /**
     * Batch-sample @p span consecutive cycles [cycle, cycle + span)
     * that all observe the same occupancies and committed count (the
     * core's idle-cycle fast-forward produces exactly such spans).
     * Bit-identical to calling sample() span times: bucket counts and
     * occupancy sums are linear in the number of samples, and every
     * interval-IPC window boundary inside the span closes with the
     * same end cycle and committed count a per-cycle walk would use.
     */
    void
    sampleSpan(uint64_t cycle, uint64_t span, uint32_t ruuOcc,
               uint32_t lsqOcc, size_t ifqOcc, uint64_t committed)
    {
        ruuBucketCounts_[ruuBucketOf_[ruuOcc]] += span;
        lsqBucketCounts_[lsqBucketOf_[lsqOcc]] += span;
        ifqBucketCounts_[ifqBucketOf_[ifqOcc]] += span;
        ruuOccSum_ += span * ruuOcc;
        lsqOccSum_ += span * lsqOcc;
        ifqOccSum_ += span * ifqOcc;
        sampledCycles_ += span;
        if (windowCycles_) {
            // sample() closes a window at cycle c when
            // c - windowStart + 1 >= windowCycles, with end c + 1.
            // The last cycle of this span is cycle + span - 1.
            while (windowStartCycle_ + windowCycles_ <= cycle + span)
                closeWindow(windowStartCycle_ + windowCycles_,
                            committed);
        }
    }

    /** Flush a final partial window (call once, after the run). */
    void finish(uint64_t cycle, uint64_t committed);

    const std::vector<IpcSample> &ipcSamples() const
    {
        return ipcSamples_;
    }

    /**
     * Copy occupancy histograms and interval-IPC data into @p reg
     * under @p prefix ("core.ruu.occupancy", "core.ipc.window", ...).
     */
    void publish(obs::Registry &reg, const std::string &prefix) const;

  private:
    void closeWindow(uint64_t endCycle, uint64_t committed);

    struct OccTrack
    {
        std::vector<double> bounds;
        std::vector<uint8_t> bucketOf;    ///< occupancy -> bucket
        std::vector<uint64_t> counts;     ///< bounds.size() + 1
    };
    static OccTrack makeTrack(uint32_t capacity);

    uint32_t windowCycles_;
    uint64_t windowStartCycle_ = 0;
    uint64_t windowStartCommitted_ = 0;
    std::vector<IpcSample> ipcSamples_;

    OccTrack ruu_, lsq_, ifq_;
    // Raw pointers into the OccTracks, hoisted for the hot loop.
    const uint8_t *ruuBucketOf_, *lsqBucketOf_, *ifqBucketOf_;
    uint64_t *ruuBucketCounts_, *lsqBucketCounts_, *ifqBucketCounts_;
    uint64_t ruuOccSum_ = 0, lsqOccSum_ = 0, ifqOccSum_ = 0;
    uint64_t sampledCycles_ = 0;
};

/**
 * Publish a finished run's SimStats into @p reg under @p prefix:
 * pipeline counters, derived rates, the stall-cause breakdown, and
 * per-power-unit activity.
 */
void publishSimStats(obs::Registry &reg, const std::string &prefix,
                     const SimStats &stats);

/** Publish cache/TLB hit-miss counters under @p prefix. */
void publishHierarchy(obs::Registry &reg, const std::string &prefix,
                      const MemoryHierarchy &mem);

/**
 * Publish the scheduler's internal counters under @p prefix
 * ("core.sched.wakeups", "core.sched.skipped-cycles", ...). The
 * values are deterministic for a fixed seed/config, so they ride the
 * byte-stable --stats-json contract like every other counter.
 */
void publishSchedCounters(obs::Registry &reg,
                          const std::string &prefix,
                          const SchedCounters &sched);

} // namespace ssim::cpu

#endif // SSIM_CPU_PIPELINE_TELEMETRY_HH
