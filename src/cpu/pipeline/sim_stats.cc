#include "sim_stats.hh"

namespace ssim::cpu
{

const char *
powerUnitName(PowerUnit u)
{
    switch (u) {
      case PowerUnit::Bpred:     return "bpred";
      case PowerUnit::ICache:    return "icache";
      case PowerUnit::ITlb:      return "itlb";
      case PowerUnit::Rename:    return "rename";
      case PowerUnit::IssueSel:  return "issue";
      case PowerUnit::Ruu:       return "ruu";
      case PowerUnit::Lsq:       return "lsq";
      case PowerUnit::RegFile:   return "regfile";
      case PowerUnit::IntAlu:    return "intalu";
      case PowerUnit::IntMult:   return "intmult";
      case PowerUnit::FpAlu:     return "fpalu";
      case PowerUnit::FpMult:    return "fpmult";
      case PowerUnit::DCache:    return "dcache";
      case PowerUnit::DTlb:      return "dtlb";
      case PowerUnit::L2:        return "l2";
      case PowerUnit::ResultBus: return "resultbus";
      default:                   return "?";
    }
}

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::FetchRedirect:      return "fetch_redirect";
      case StallCause::MispredictRecovery: return "mispredict_recovery";
      case StallCause::IcacheMiss:         return "icache_miss";
      case StallCause::FetchStarved:       return "fetch_starved";
      case StallCause::RuuFull:            return "ruu_full";
      case StallCause::LsqFull:            return "lsq_full";
      case StallCause::FuContention:       return "fu_contention";
      case StallCause::LoadBlocked:        return "load_blocked";
      default:                             return "?";
    }
}

} // namespace ssim::cpu
