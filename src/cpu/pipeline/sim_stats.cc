#include "sim_stats.hh"

namespace ssim::cpu
{

const char *
powerUnitName(PowerUnit u)
{
    switch (u) {
      case PowerUnit::Bpred:     return "bpred";
      case PowerUnit::ICache:    return "icache";
      case PowerUnit::ITlb:      return "itlb";
      case PowerUnit::Rename:    return "rename";
      case PowerUnit::IssueSel:  return "issue";
      case PowerUnit::Ruu:       return "ruu";
      case PowerUnit::Lsq:       return "lsq";
      case PowerUnit::RegFile:   return "regfile";
      case PowerUnit::IntAlu:    return "intalu";
      case PowerUnit::IntMult:   return "intmult";
      case PowerUnit::FpAlu:     return "fpalu";
      case PowerUnit::FpMult:    return "fpmult";
      case PowerUnit::DCache:    return "dcache";
      case PowerUnit::DTlb:      return "dtlb";
      case PowerUnit::L2:        return "l2";
      case PowerUnit::ResultBus: return "resultbus";
      default:                   return "?";
    }
}

} // namespace ssim::cpu
