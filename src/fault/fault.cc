#include "fault.hh"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/json_reader.hh"
#include "util/json_writer.hh"
#include "util/random.hh"

namespace ssim::fault
{

namespace
{

/**
 * Errno values a plan may name. The table is the handful of failures
 * the sites actually act out — an unknown name is a spec error, not a
 * silent zero.
 */
struct ErrnoName
{
    const char *name;
    int value;
};

constexpr ErrnoName ErrnoNames[] = {
    {"EIO", EIO},           {"ENOSPC", ENOSPC},
    {"EPIPE", EPIPE},       {"ECONNRESET", ECONNRESET},
    {"EINTR", EINTR},       {"EAGAIN", EAGAIN},
    {"EBADF", EBADF},       {"ENOENT", ENOENT},
    {"EACCES", EACCES},     {"EMFILE", EMFILE},
    {"ENOMEM", ENOMEM},     {"EDQUOT", EDQUOT},
};

int
errnoFromName(const std::string &name, const util::json::LineScanner &s)
{
    for (const auto &e : ErrnoNames)
        if (name == e.name)
            return e.value;
    throw s.fail("unknown errno name \"" + name + '"');
}

const char *
errnoToName(int err)
{
    for (const auto &e : ErrnoNames)
        if (err == e.value)
            return e.name;
    return nullptr;
}

Action
actionFromName(const std::string &name, const util::json::LineScanner &s)
{
    if (name == "fail")
        return Action::FailErrno;
    if (name == "short")
        return Action::ShortIo;
    if (name == "torn")
        return Action::TornIo;
    if (name == "crash")
        return Action::Crash;
    if (name == "stall")
        return Action::Stall;
    if (name == "drop")
        return Action::Drop;
    throw s.fail("unknown action \"" + name + '"');
}

/**
 * The process-wide plan. `armed` is the disarmed-site fast path: one
 * relaxed load decides that no installed plan exists, without taking
 * the mutex that guards the shared_ptr swap.
 */
std::atomic<bool> gArmed{false};
std::mutex gPlanMu;
std::shared_ptr<FaultPlan> gPlan;

} // namespace

const char *
actionName(Action action)
{
    switch (action) {
    case Action::None:
        return "none";
    case Action::FailErrno:
        return "fail";
    case Action::ShortIo:
        return "short";
    case Action::TornIo:
        return "torn";
    case Action::Crash:
        return "crash";
    case Action::Stall:
        return "stall";
    case Action::Drop:
        return "drop";
    }
    return "none";
}

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed) {}

FaultPlan::FaultPlan(const FaultPlan &other)
{
    std::lock_guard<std::mutex> lock(other.mu_);
    rules_ = other.rules_;
    seed_ = other.seed_;
    fires_ = other.fires_;
}

FaultPlan::FaultPlan(FaultPlan &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mu_);
    rules_ = std::move(other.rules_);
    seed_ = other.seed_;
    fires_ = other.fires_;
}

FaultPlan &
FaultPlan::operator=(const FaultPlan &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    rules_ = other.rules_;
    seed_ = other.seed_;
    fires_ = other.fires_;
    return *this;
}

FaultPlan &
FaultPlan::operator=(FaultPlan &&other) noexcept
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    rules_ = std::move(other.rules_);
    seed_ = other.seed_;
    fires_ = other.fires_;
    return *this;
}

void
FaultPlan::addRule(const Rule &rule)
{
    if (rule.site.empty()) {
        throw Error(ErrorCategory::InvalidConfig,
                    "fault rule has no site");
    }
    if (rule.action == Action::None) {
        throw Error(ErrorCategory::InvalidConfig,
                    "fault rule for site \"" + rule.site +
                        "\" has no action");
    }
    if (!(rule.probability >= 0.0 && rule.probability <= 1.0)) {
        throw Error(ErrorCategory::InvalidConfig,
                    "fault rule for site \"" + rule.site +
                        "\" has probability outside [0, 1]");
    }
    std::lock_guard<std::mutex> lk(mu_);
    RuleState state;
    state.rule = rule;
    // Every rule draws from its own splitmix64 stream so that
    // inserting or reordering one rule never shifts another rule's
    // Bernoulli sequence.
    state.rng = splitmix64(seed_ ^
                           (0x9e3779b97f4a7c15ULL *
                            (static_cast<uint64_t>(rules_.size()) + 1)));
    rules_.push_back(std::move(state));
}

Outcome
FaultPlan::hit(const std::string &site, const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    Outcome fired;
    for (auto &state : rules_) {
        const Rule &rule = state.rule;
        if (rule.site != site)
            continue;
        if (!rule.key.empty() && rule.key != key)
            continue;
        const uint64_t hit = ++state.hits;
        if (fired)
            continue; // counters still advance behind the winner
        if (rule.onHit != 0 && hit != rule.onHit)
            continue;
        if (rule.maxFires != 0 && state.fires >= rule.maxFires)
            continue;
        if (rule.probability < 1.0) {
            state.rng = splitmix64(state.rng);
            const double draw =
                static_cast<double>(state.rng >> 11) * 0x1.0p-53;
            if (draw >= rule.probability)
                continue;
        }
        ++state.fires;
        ++fires_;
        fired.action = rule.action;
        fired.err = rule.err;
        fired.bytes = rule.bytes;
        fired.ms = rule.ms;
    }
    return fired;
}

size_t
FaultPlan::ruleCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return rules_.size();
}

uint64_t
FaultPlan::totalFires() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return fires_;
}

std::vector<std::pair<std::string, uint64_t>>
FaultPlan::firesBySite() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto &state : rules_)
        if (state.fires > 0)
            out.emplace_back(state.rule.site, state.fires);
    return out;
}

std::string
FaultPlan::toJson() const
{
    namespace json = util::json;
    std::lock_guard<std::mutex> lk(mu_);
    std::string out = "{";
    json::appendU64(out, "seed", seed_);
    json::appendKey(out, "rules");
    out += '[';
    for (const auto &state : rules_) {
        const Rule &rule = state.rule;
        json::appendComma(out);
        out += '{';
        json::appendField(out, "site", rule.site);
        if (!rule.key.empty())
            json::appendField(out, "key", rule.key);
        json::appendField(out, "action", actionName(rule.action));
        if (rule.action == Action::FailErrno ||
            rule.action == Action::TornIo) {
            // The spec speaks errno names; an exotic programmatic
            // value outside the table falls back to the default EIO
            // on a round trip.
            if (const char *name = errnoToName(rule.err))
                json::appendField(out, "errno", name);
        }
        if (rule.bytes != 0)
            json::appendU64(out, "bytes", rule.bytes);
        if (rule.ms != 0)
            json::appendU64(out, "ms", rule.ms);
        if (rule.onHit != 0)
            json::appendU64(out, "on_hit", rule.onHit);
        if (rule.maxFires != 0)
            json::appendU64(out, "count", rule.maxFires);
        if (rule.probability < 1.0)
            json::appendDouble(out, "probability", rule.probability);
        out += '}';
    }
    out += "]}";
    return out;
}

FaultPlan
FaultPlan::cloneFresh() const
{
    std::lock_guard<std::mutex> lk(mu_);
    FaultPlan fresh(seed_);
    for (const auto &state : rules_)
        fresh.addRule(state.rule);
    return fresh;
}

namespace
{

Rule
parseRule(util::json::LineScanner &s)
{
    Rule rule;
    if (!s.consume('{'))
        throw s.fail("expected '{' to open a fault rule");
    if (s.consume('}'))
        return rule; // addRule rejects the empty rule with context
    for (;;) {
        const std::string key = s.parseString();
        if (!s.consume(':'))
            throw s.fail("expected ':' after \"" + key + '"');
        if (key == "site") {
            rule.site = s.parseString();
        } else if (key == "key") {
            rule.key = s.parseString();
        } else if (key == "action") {
            rule.action = actionFromName(s.parseString(), s);
        } else if (key == "errno") {
            rule.err = errnoFromName(s.parseString(), s);
        } else if (key == "bytes") {
            rule.bytes = s.parseU64();
        } else if (key == "ms") {
            rule.ms = s.parseU64();
        } else if (key == "on_hit") {
            rule.onHit = s.parseU64();
        } else if (key == "count") {
            rule.maxFires = s.parseU64();
        } else if (key == "probability") {
            rule.probability = s.parseDouble();
        } else {
            throw s.fail("unknown fault-rule key \"" + key + '"');
        }
        if (s.consume(','))
            continue;
        if (s.consume('}'))
            break;
        throw s.fail("expected ',' or '}' in fault rule");
    }
    return rule;
}

} // namespace

Expected<FaultPlan>
FaultPlan::parseJson(const std::string &text, const std::string &context)
{
    return tryInvoke([&]() -> FaultPlan {
        // The scanner is a one-line scanner (skipSpace eats only
        // spaces and tabs); a hand-written multi-line spec file
        // flattens to one line first.
        std::string flat = text;
        for (char &c : flat)
            if (c == '\n' || c == '\r')
                c = ' ';
        util::json::LineScanner s(flat, context, 1);
        uint64_t seed = 0;
        std::vector<Rule> rules;
        if (!s.consume('{'))
            throw s.fail("fault plan must be a JSON object");
        if (!s.consume('}')) {
            for (;;) {
                const std::string key = s.parseString();
                if (!s.consume(':'))
                    throw s.fail("expected ':' after \"" + key + '"');
                if (key == "seed") {
                    seed = s.parseU64();
                } else if (key == "rules") {
                    if (!s.consume('['))
                        throw s.fail("\"rules\" must be an array");
                    if (!s.consume(']')) {
                        for (;;) {
                            rules.push_back(parseRule(s));
                            if (s.consume(','))
                                continue;
                            if (s.consume(']'))
                                break;
                            throw s.fail("expected ',' or ']' in "
                                         "\"rules\"");
                        }
                    }
                } else {
                    throw s.fail("unknown fault-plan key \"" + key +
                                 '"');
                }
                if (s.consume(','))
                    continue;
                if (s.consume('}'))
                    break;
                throw s.fail("expected ',' or '}' in fault plan");
            }
        }
        if (!s.atEnd())
            throw s.fail("trailing characters after fault plan");
        FaultPlan plan(seed);
        for (const Rule &rule : rules)
            plan.addRule(rule);
        return plan;
    });
}

Expected<FaultPlan>
FaultPlan::loadSpec(const std::string &spec)
{
    size_t first = spec.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && spec[first] == '{')
        return parseJson(spec, "<inline>");
    std::ifstream in(spec, std::ios::binary);
    if (!in) {
        return Error(ErrorCategory::IoError,
                     "cannot open fault plan: " + spec, {spec, 0});
    }
    std::ostringstream body;
    body << in.rdbuf();
    return parseJson(body.str(), spec);
}

std::shared_ptr<FaultPlan>
FaultPlan::fromSweepEnv()
{
    auto plan = std::make_shared<FaultPlan>();
    bool any = false;
    if (const char *raw = std::getenv("SSIM_SWEEP_CRASH_AFTER")) {
        char *end = nullptr;
        const unsigned long long n = std::strtoull(raw, &end, 10);
        if (end != raw && *end == '\0' && n > 0) {
            Rule rule;
            rule.site = "sweep.journal.done";
            rule.action = Action::Crash;
            rule.onHit = n;
            plan->addRule(rule);
            any = true;
        }
    }
    if (const char *raw = std::getenv("SSIM_SWEEP_STALL_POINT")) {
        // <point-index>:<seconds>, matching the old ad-hoc parser:
        // malformed values are silently ignored.
        const std::string spec(raw);
        const size_t colon = spec.find(':');
        if (colon != std::string::npos) {
            char *end = nullptr;
            const unsigned long long idx =
                std::strtoull(spec.c_str(), &end, 10);
            const bool idxOk = end == spec.c_str() + colon;
            const double sec =
                std::strtod(spec.c_str() + colon + 1, &end);
            if (idxOk && *end == '\0' && sec >= 0.0) {
                Rule rule;
                rule.site = "sweep.point.start";
                rule.key = std::to_string(idx);
                rule.action = Action::Stall;
                rule.ms = static_cast<uint64_t>(sec * 1000.0);
                rule.onHit = 1;
                plan->addRule(rule);
                any = true;
            }
        }
    }
    return any ? plan : nullptr;
}

std::shared_ptr<FaultPlan>
FaultPlan::fromServeEnv()
{
    const char *raw = std::getenv("SSIM_SERVE_CRASH_ON");
    if (raw == nullptr || *raw == '\0')
        return nullptr;
    auto plan = std::make_shared<FaultPlan>();
    bool any = false;
    std::string id;
    const std::string spec(raw);
    for (size_t i = 0; i <= spec.size(); ++i) {
        if (i < spec.size() && spec[i] != ',') {
            id += spec[i];
            continue;
        }
        if (!id.empty()) {
            Rule rule;
            rule.site = "serve.request";
            rule.key = id;
            rule.action = Action::Crash;
            plan->addRule(rule);
            any = true;
        }
        id.clear();
    }
    return any ? plan : nullptr;
}

void
installPlan(std::shared_ptr<FaultPlan> plan)
{
    std::lock_guard<std::mutex> lk(gPlanMu);
    gPlan = std::move(plan);
    gArmed.store(gPlan != nullptr, std::memory_order_release);
}

void
clearPlan()
{
    installPlan(nullptr);
}

std::shared_ptr<FaultPlan>
installedPlan()
{
    if (!gArmed.load(std::memory_order_acquire))
        return nullptr;
    std::lock_guard<std::mutex> lk(gPlanMu);
    return gPlan;
}

bool
installPlanFromEnv()
{
    const char *raw = std::getenv("SSIM_FAULT_PLAN");
    if (raw == nullptr || *raw == '\0')
        return false;
    Expected<FaultPlan> plan = FaultPlan::loadSpec(raw);
    if (!plan)
        throw plan.error();
    installPlan(std::make_shared<FaultPlan>(std::move(plan.value())));
    return true;
}

namespace
{

/**
 * The dynamic SSIM_FSYNC_FAIL shim: the journal's fsync hook has
 * always been read per call (tests set and unset it around a single
 * atomicWriteFile), so the site keeps consulting the environment
 * whenever no plan covers it.
 */
bool
legacyFsyncFail()
{
    const char *raw = std::getenv("SSIM_FSYNC_FAIL");
    return raw != nullptr && *raw != '\0' && *raw != '0';
}

} // namespace

Outcome
point(const char *site, const std::string &key, FaultPlan *local)
{
    if (gArmed.load(std::memory_order_relaxed)) {
        std::shared_ptr<FaultPlan> plan = installedPlan();
        // An installed plan owns every site while installed: legacy
        // shims below are not consulted, so a chaos schedule is the
        // only fault source during its run.
        if (plan)
            return plan->hit(site, key);
    }
    if (local != nullptr)
        return local->hit(site, key);
    if (std::strcmp(site, "journal.fsync") == 0 && legacyFsyncFail()) {
        Outcome out;
        out.action = Action::FailErrno;
        out.err = EIO;
        return out;
    }
    return Outcome();
}

void
sleepFor(const Outcome &outcome)
{
    if (outcome.action == Action::Stall && outcome.ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(outcome.ms));
    }
}

void
crashHard()
{
    ::raise(SIGKILL);
    ::_exit(137); // unreachable; placate [[noreturn]]
}

} // namespace ssim::fault
