/**
 * @file
 * The `ssim chaos` invariant harness: many seeded fault schedules
 * against the crash-tolerance guarantees the sweep and serve engines
 * advertise, checked mechanically instead of by hand-placed tests.
 *
 * A *schedule* is one seeded experiment:
 *
 *  - sweep schedule: derive a FaultPlan from the schedule seed
 *    (crashes after journaled done records, crashes at point start,
 *    ENOSPC / torn / short journal appends, fsync failures), fork a
 *    child that runs a small synthetic sweep under the installed plan
 *    (crash actions SIGKILL the child), then resume the journal in
 *    the parent with no faults armed. Invariants: the resumed sweep
 *    settles every point `ok`; per-point metrics are byte-identical
 *    (%.17g) to the pure point function's output; the final journal
 *    holds no duplicated (event, point, attempt) record and exactly
 *    one `ok` done per point.
 *
 *  - serve schedule: derive a plan of keyed `serve.request` crash and
 *    fail rules, run an in-process Server over a synthetic predictor,
 *    submit a deterministic mix of predict requests and garbage
 *    lines. Invariants: exactly one typed response per submitted
 *    line; crash-keyed requests answer `worker-crashed` and
 *    fail-keyed ones `io-error`; the drain completes inside its
 *    budget; no serve.* gauge is negative and the live-worker gauge
 *    never exceeds the pool size.
 *
 * Every schedule folds its outcome into a deterministic digest
 * (journal records minus wall-clock fields; responses minus wall_ms),
 * and the harness re-runs the first few schedules verbatim to prove
 * the digest — i.e. the entire fault sequence and its outcome —
 * reproduces from the seed alone.
 */

#ifndef SSIM_FAULT_CHAOS_HH
#define SSIM_FAULT_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hh"

namespace ssim::fault
{

/** Which engines the schedules exercise. */
enum class ChaosMode : uint8_t
{
    All,     ///< alternate sweep / serve by schedule index
    Sweep,
    Serve,
};

struct ChaosOptions
{
    uint64_t seed = 1;        ///< base seed; schedules derive from it
    uint64_t schedules = 100; ///< how many schedules to run
    ChaosMode mode = ChaosMode::All;
    uint64_t points = 6;      ///< synthetic sweep size per schedule
    uint64_t requests = 24;   ///< serve requests per schedule
    uint64_t replayVerify = 3; ///< schedules re-run to prove replay
    std::string scratchDir = "."; ///< where per-schedule journals live
    /**
     * Optional fixed plan spec (inline JSON or a path): every
     * schedule runs under a fresh clone of this plan instead of a
     * generated one. Replay verification still applies.
     */
    std::string fixedPlanSpec;
    bool verbose = false;     ///< per-schedule progress on stderr

    /** @throws ssim::Error (InvalidConfig) on unusable knobs. */
    void validate() const;
};

struct ChaosReport
{
    uint64_t schedulesRun = 0;
    uint64_t sweepSchedules = 0;
    uint64_t serveSchedules = 0;
    uint64_t childCrashes = 0;   ///< sweep children killed by a fault
    uint64_t serveFaultsFired = 0;
    uint64_t replaysVerified = 0;
    /** Human-readable invariant violations; empty means success. */
    std::vector<std::string> violations;
};

/**
 * Run the harness. Violations are *collected*, not thrown — the
 * caller decides policy (the CLI prints them and exits with the
 * internal-error code). @throws ssim::Error only for harness-level
 * failures (bad options, unwritable scratch dir, unparsable fixed
 * plan).
 */
ChaosReport runChaos(const ChaosOptions &opts);

} // namespace ssim::fault

#endif // SSIM_FAULT_CHAOS_HH
