/**
 * @file
 * Process-wide deterministic fault-injection registry.
 *
 * Production code declares named *sites* at the exact places an I/O
 * or scheduling failure can strike — `fault::point("journal.fsync")`,
 * `fault::point("transport.write")`, `fault::point("serve.request",
 * requestId)` — and receives an Outcome telling it which failure to
 * act out, if any. A site costs one relaxed atomic load when nothing
 * is armed, so the hooks stay in release builds.
 *
 * What fires is decided by a FaultPlan: an ordered list of rules,
 * each naming a site (and optionally a key, e.g. a request id or a
 * point index), an action, and *when* to fire — on exactly the Nth
 * matching hit (`on_hit`), at most K times (`count`), or with a
 * seeded probability. Probability draws come from a per-rule
 * splitmix64 stream derived from the plan seed and the rule index,
 * so a plan replayed against the same deterministic hit sequence
 * (single worker, fixed inputs) fires the identical fault sequence —
 * the property the `ssim chaos` harness leans on to make every
 * schedule reproducible from its seed.
 *
 * Actions:
 *  - fail:  the operation reports failure with a chosen errno
 *  - short: the I/O is capped to `bytes` per call (the retry loop
 *           must finish the job)
 *  - torn:  the first `bytes` bytes are written, then the operation
 *           fails — a record torn mid-write(2)
 *  - crash: the process (or, at `serve.request`, the worker thread)
 *           dies on the spot
 *  - stall: the caller sleeps `ms` before proceeding
 *  - drop:  the peer vanishes (a transport write marks the client
 *           dead, as a mid-response disconnect would)
 *
 * Plans come from three places, in precedence order:
 *  1. an installed plan (installPlan / `--fault-plan FILE` /
 *     `SSIM_FAULT_PLAN=<file-or-inline-json>`), which owns every
 *     site while installed;
 *  2. a subsystem-local compatibility plan parsed from the legacy
 *     env hooks (`SSIM_SWEEP_CRASH_AFTER`, `SSIM_SWEEP_STALL_POINT`,
 *     `SSIM_SERVE_CRASH_ON`) at the same latch points the old ad-hoc
 *     parsers used (sweep-engine / Server construction);
 *  3. the dynamic `SSIM_FSYNC_FAIL` shim, consulted per call at the
 *     `journal.fsync` site exactly as the old hook was.
 *
 * Plan spec (whitespace-insensitive, one object):
 *
 *   {"seed":42,"rules":[
 *     {"site":"journal.append","action":"torn","bytes":7,"on_hit":3},
 *     {"site":"serve.request","key":"c1","action":"crash","count":1},
 *     {"site":"transport.write","action":"short","bytes":1,
 *      "probability":0.25},
 *     {"site":"sweep.point.start","key":"2","action":"stall","ms":50}
 *   ]}
 *
 * The fault-site catalog (name -> layer -> supported actions) lives
 * in DESIGN.md §"Fault injection".
 */

#ifndef SSIM_FAULT_FAULT_HH
#define SSIM_FAULT_FAULT_HH

#include <cerrno>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace ssim::fault
{

/** What a fired rule tells the site to act out. */
enum class Action : uint8_t
{
    None,        ///< nothing armed; proceed normally
    FailErrno,   ///< report failure with Outcome::err
    ShortIo,     ///< cap each I/O call to Outcome::bytes
    TornIo,      ///< write Outcome::bytes bytes, then fail
    Crash,       ///< die here (process or worker, site-defined)
    Stall,       ///< sleep Outcome::ms before proceeding
    Drop,        ///< the peer is gone; discard and mark dead
};

/** Wire/spec name of an action ("fail", "short", ...). */
const char *actionName(Action action);

/** The decision returned by a fault point. */
struct Outcome
{
    Action action = Action::None;
    int err = 0;         ///< FailErrno / TornIo errno value
    uint64_t bytes = 0;  ///< ShortIo / TornIo byte budget
    uint64_t ms = 0;     ///< Stall duration

    explicit operator bool() const { return action != Action::None; }
};

/** One arming rule of a FaultPlan. */
struct Rule
{
    std::string site;       ///< exact site name (required)
    std::string key;        ///< match only this hit key; "" = any
    Action action = Action::None;
    int err = EIO;          ///< for fail/torn
    uint64_t bytes = 0;     ///< for short/torn
    uint64_t ms = 0;        ///< for stall
    uint64_t onHit = 0;     ///< fire on exactly the Nth match; 0 = every
    uint64_t maxFires = 0;  ///< stop after this many firings; 0 = unlimited
    double probability = 1.0;  ///< seeded Bernoulli gate per match
};

/**
 * An armed set of rules plus their runtime state (hit counters, fire
 * counters, per-rule RNG streams). Thread-safe: hits from concurrent
 * workers serialize on an internal mutex. Evaluation is deterministic
 * in the hit sequence: same plan + same ordered hits = same firings.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(uint64_t seed);

    // Copy/move carry the full runtime state (the mutex itself is
    // per-instance, never shared).
    FaultPlan(const FaultPlan &other);
    FaultPlan(FaultPlan &&other) noexcept;
    FaultPlan &operator=(const FaultPlan &other);
    FaultPlan &operator=(FaultPlan &&other) noexcept;

    /**
     * Append a rule. @throws ssim::Error (InvalidConfig) on a rule
     * with no site, no action, or a probability outside [0, 1].
     */
    void addRule(const Rule &rule);

    /**
     * Record one hit at @p site with @p key and return the first
     * matching rule's outcome (every matching rule's hit counter
     * advances, fired or not).
     */
    Outcome hit(const std::string &site, const std::string &key);

    size_t ruleCount() const;
    uint64_t totalFires() const;

    /** (site, fires) for every rule that fired at least once. */
    std::vector<std::pair<std::string, uint64_t>> firesBySite() const;

    /** Render the rule set back as a one-line plan spec. */
    std::string toJson() const;

    /** A fresh plan with the same seed and rules, zeroed state. */
    FaultPlan cloneFresh() const;

    /**
     * Parse a plan spec (see the file comment). @p context names the
     * source in diagnostics (a path or "<inline>").
     * @throws nothing; errors come back as a failed Expected.
     */
    static Expected<FaultPlan> parseJson(const std::string &text,
                                         const std::string &context);

    /**
     * Load a spec that is either inline JSON (first non-space char
     * is '{') or a path to a spec file.
     */
    static Expected<FaultPlan> loadSpec(const std::string &spec);

    // --- legacy env compatibility shims ---------------------------

    /**
     * SSIM_SWEEP_CRASH_AFTER=<n>  -> {site:"sweep.journal.done",
     *   on_hit:n, action:crash}
     * SSIM_SWEEP_STALL_POINT=<i>:<sec> -> {site:"sweep.point.start",
     *   key:"<i>", on_hit:1, action:stall, ms:sec*1000}
     * Null when neither variable is set (or both malformed, matching
     * the old parsers' silent-ignore behavior).
     */
    static std::shared_ptr<FaultPlan> fromSweepEnv();

    /**
     * SSIM_SERVE_CRASH_ON=<id,id,...> -> one
     * {site:"serve.request", key:id, action:crash} rule per id.
     * Null when unset.
     */
    static std::shared_ptr<FaultPlan> fromServeEnv();

  private:
    struct RuleState
    {
        Rule rule;
        uint64_t hits = 0;
        uint64_t fires = 0;
        uint64_t rng = 0;
    };

    mutable std::mutex mu_;
    std::vector<RuleState> rules_;
    uint64_t seed_ = 0;
    uint64_t fires_ = 0;
};

// --- process-wide registry ----------------------------------------

/** Arm @p plan for every site in the process (null clears). */
void installPlan(std::shared_ptr<FaultPlan> plan);

/** Disarm the installed plan. */
void clearPlan();

/** The currently installed plan (null when disarmed). */
std::shared_ptr<FaultPlan> installedPlan();

/**
 * Install a plan from SSIM_FAULT_PLAN (a path or inline JSON).
 * Returns false when the variable is unset.
 * @throws ssim::Error when the spec does not parse.
 */
bool installPlanFromEnv();

/** RAII installer for tests and the chaos harness. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(FaultPlan plan)
    {
        installPlan(std::make_shared<FaultPlan>(std::move(plan)));
    }
    ~ScopedPlan() { clearPlan(); }
    ScopedPlan(const ScopedPlan &) = delete;
    ScopedPlan &operator=(const ScopedPlan &) = delete;
};

/**
 * Declare a fault site. Consults, in order: the installed plan, the
 * caller's @p local compatibility plan, and (for "journal.fsync"
 * only) the dynamic SSIM_FSYNC_FAIL shim. Returns Action::None — for
 * the cost of one atomic load and at most one string compare — when
 * nothing is armed.
 */
Outcome point(const char *site, const std::string &key = std::string(),
              FaultPlan *local = nullptr);

/** Sleep out a Stall outcome (no-op for anything else). */
void sleepFor(const Outcome &outcome);

/** Die as hard as SIGKILL: nothing below this line runs. */
[[noreturn]] void crashHard();

} // namespace ssim::fault

#endif // SSIM_FAULT_FAULT_HH
