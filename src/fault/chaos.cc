#include "chaos.hh"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>

#include "experiments/sweep.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/journal.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ssim::fault
{

namespace
{

namespace json = util::json;

/** Exit code a chaos child uses for a sweep-level throw. */
constexpr int ChildSweepThrew = 20;

uint64_t
scheduleSeedFor(uint64_t base, uint64_t index)
{
    return splitmix64(base ^ splitmix64(index + 1));
}

/** Uniform double in [0, 1) from one hash step. */
double
u01(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// --- sweep schedules ----------------------------------------------

/**
 * The synthetic point function: pure in (index, seed), instant, and
 * spread across several metrics so a byte-level comparison covers the
 * full %.17g surface.
 */
experiments::PointMetrics
syntheticPoint(size_t index, uint64_t seed)
{
    experiments::PointMetrics m;
    uint64_t h = splitmix64(seed ^ (0x51e57a7e + index));
    m.emplace_back("ipc", u01(h) * 4.0);
    h = splitmix64(h);
    m.emplace_back("epc", u01(h) * 2.0);
    h = splitmix64(h);
    m.emplace_back("miss-rate", u01(h));
    return m;
}

std::vector<experiments::SweepPoint>
syntheticPoints(uint64_t count)
{
    std::vector<experiments::SweepPoint> points(count);
    for (uint64_t i = 0; i < count; ++i) {
        points[i].name = "p" + std::to_string(i);
        points[i].configHash = splitmix64(0xC0FFEE ^ i);
    }
    return points;
}

/**
 * Derive a sweep fault plan from the schedule seed: one to three
 * rules, each bounded (count=1) so the single clean resume always
 * converges. Stall rules are deliberately absent — without a point
 * timeout they only burn wall time, and timeout nondeterminism would
 * poison the digest.
 */
FaultPlan
makeSweepPlan(uint64_t seed, uint64_t points)
{
    Rng rng(seed);
    FaultPlan plan(seed);
    const uint64_t n = 1 + rng.below(3);
    for (uint64_t i = 0; i < n; ++i) {
        Rule rule;
        rule.maxFires = 1;
        switch (rng.below(5)) {
        case 0:
            rule.site = "sweep.journal.done";
            rule.action = Action::Crash;
            rule.onHit = 1 + rng.below(points);
            break;
        case 1:
            rule.site = "sweep.point.start";
            rule.key = std::to_string(rng.below(points));
            rule.action = Action::Crash;
            rule.onHit = 1;
            break;
        case 2:
            // on_hit >= 2 keeps the sweep header intact: a journal
            // whose very first append fails has no header, which is a
            // legitimately unresumable file, not a resilience gap.
            rule.site = "journal.append";
            rule.action = Action::FailErrno;
            rule.err = ENOSPC;
            rule.onHit = 2 + rng.below(2 * points);
            break;
        case 3:
            rule.site = "journal.append";
            rule.action = Action::TornIo;
            rule.err = EIO;
            rule.bytes = 1 + rng.below(40);
            rule.onHit = 2 + rng.below(2 * points);
            break;
        default:
            rule.site = "journal.fsync";
            rule.action = Action::FailErrno;
            rule.err = EIO;
            rule.onHit = 1 + rng.below(4);
            break;
        }
        plan.addRule(rule);
    }
    return plan;
}

/** Digest field rendering for one journal record (no wall-clock). */
void
foldRecord(uint64_t &digest, const util::JournalRecord &rec)
{
    std::string key = rec.event;
    key += '|';
    key += std::to_string(rec.point);
    key += '|';
    key += std::to_string(rec.attempt);
    key += '|';
    key += rec.status;
    key += '|';
    key += rec.category;
    key += '|';
    key += rec.message;
    for (const util::JournalMetric &m : rec.metrics) {
        key += '|';
        key += m.name;
        key += '=';
        key += json::doubleToken(m.value);
    }
    digest = splitmix64(digest ^ util::fnv1a64(key));
}

struct ScheduleResult
{
    uint64_t digest = 0;
    bool childCrashed = false;
    uint64_t faultsFired = 0;
    std::vector<std::string> violations;
};

ScheduleResult
runSweepSchedule(uint64_t index, uint64_t seed, const FaultPlan &plan,
                 const ChaosOptions &opts)
{
    ScheduleResult result;
    const std::string tag =
        "schedule " + std::to_string(index) + " (sweep, seed " +
        std::to_string(seed) + "): ";
    const std::string journalPath =
        opts.scratchDir + "/chaos_sweep_" + std::to_string(index) +
        ".journal";
    std::remove(journalPath.c_str());
    std::remove((journalPath + ".tmp").c_str());

    const auto points = syntheticPoints(opts.points);
    const experiments::PointFn fn = syntheticPoint;

    experiments::SweepOptions sweepOpts;
    sweepOpts.jobs = 1;   // deterministic dispatch order
    sweepOpts.seed = seed;
    sweepOpts.maxRetries = 8;
    sweepOpts.journalPath = journalPath;

    // Phase 1: the faulted run, in a fork so crash actions SIGKILL a
    // disposable process — the real thing, not a simulation of it.
    const pid_t pid = ::fork();
    if (pid < 0) {
        throw Error(ErrorCategory::IoError,
                    std::string("chaos: fork failed: ") +
                        std::strerror(errno));
    }
    if (pid == 0) {
        installPlan(std::make_shared<FaultPlan>(plan.cloneFresh()));
        try {
            experiments::runSweep(points, fn, sweepOpts);
        } catch (...) {
            ::_exit(ChildSweepThrew);
        }
        ::_exit(0);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
        throw Error(ErrorCategory::IoError,
                    std::string("chaos: waitpid failed: ") +
                        std::strerror(errno));
    }
    if (WIFSIGNALED(status)) {
        result.childCrashed = true;
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        result.violations.push_back(
            tag + "faulted sweep child exited " +
            std::to_string(WEXITSTATUS(status)) +
            " instead of finishing or crashing");
        return result;
    }

    // Phase 2: one clean resume must converge to all-ok.
    sweepOpts.resume = true;
    experiments::SweepSummary summary;
    try {
        summary = experiments::runSweep(points, fn, sweepOpts);
    } catch (const Error &e) {
        result.violations.push_back(tag +
                                    "clean resume threw: " + e.what());
        return result;
    }

    for (size_t p = 0; p < summary.outcomes.size(); ++p) {
        const experiments::PointOutcome &o = summary.outcomes[p];
        if (o.status != experiments::PointStatus::Ok) {
            result.violations.push_back(
                tag + "point " + std::to_string(p) +
                " resumed to status '" +
                experiments::pointStatusName(o.status) + "', not ok");
            continue;
        }
        // Byte-identical metrics: render both sides with the %.17g
        // token the journal speaks.
        const experiments::PointMetrics expected =
            syntheticPoint(p, experiments::pointSeed(seed, p));
        std::string want;
        std::string got;
        for (const auto &[name, value] : expected)
            want += name + '=' + json::doubleToken(value) + ';';
        for (const auto &[name, value] : o.metrics)
            got += name + '=' + json::doubleToken(value) + ';';
        if (want != got) {
            result.violations.push_back(
                tag + "point " + std::to_string(p) +
                " metrics not byte-identical after resume (want " +
                want + ", got " + got + ")");
        }
    }

    // Journal invariants on the final file.
    Expected<std::vector<util::JournalRecord>> loaded =
        util::Journal::load(journalPath);
    if (!loaded) {
        result.violations.push_back(
            tag + "final journal unreadable: " + loaded.error().what());
        return result;
    }
    std::set<std::string> seen;
    std::vector<uint64_t> okDone(points.size(), 0);
    for (const util::JournalRecord &rec : loaded.value()) {
        if (rec.event == "sweep")
            continue;
        const std::string id = rec.event + '|' +
                               std::to_string(rec.point) + '|' +
                               std::to_string(rec.attempt);
        if (!seen.insert(id).second) {
            result.violations.push_back(tag + "journal record " + id +
                                        " duplicated");
        }
        if (rec.event == "done" && rec.status == "ok")
            ++okDone[rec.point];
    }
    for (size_t p = 0; p < points.size(); ++p) {
        if (okDone[p] != 1) {
            result.violations.push_back(
                tag + "point " + std::to_string(p) + " has " +
                std::to_string(okDone[p]) +
                " ok done records, expected exactly 1");
        }
    }

    uint64_t digest = 0xD16E57;
    for (const util::JournalRecord &rec : loaded.value())
        foldRecord(digest, rec);
    result.digest = digest;

    std::remove(journalPath.c_str());
    return result;
}

// --- serve schedules ----------------------------------------------

serve::Metrics
syntheticPredict(const serve::PredictRequest &req)
{
    serve::Metrics m;
    uint64_t h = splitmix64(req.seed ^ 0xABCDEF);
    m.emplace_back("ipc", u01(h) * 4.0);
    h = splitmix64(h);
    m.emplace_back("epc", u01(h) * 2.0);
    return m;
}

/**
 * Keyed crash/fail rules only: an unkeyed rule would fire on
 * whichever worker races to it first, and the replay digest demands
 * that each request's fate follow from its id alone.
 */
FaultPlan
makeServePlan(uint64_t seed, uint64_t requests)
{
    Rng rng(seed);
    FaultPlan plan(seed);
    const uint64_t n = 1 + rng.below(3);
    for (uint64_t i = 0; i < n; ++i) {
        Rule rule;
        rule.site = "serve.request";
        rule.key = "q" + std::to_string(rng.below(requests));
        rule.maxFires = 1;
        if (rng.below(2) == 0) {
            rule.action = Action::Crash;
        } else {
            rule.action = Action::FailErrno;
            rule.err = EIO;
        }
        plan.addRule(rule);
    }
    return plan;
}

/**
 * Strip the fields that carry wall-clock time so a replayed response
 * can be compared byte for byte ("wall_ms":12.5, "retry_after_ms").
 */
std::string
canonicalResponse(const std::string &line)
{
    std::string out;
    size_t i = 0;
    while (i < line.size()) {
        bool stripped = false;
        for (const char *key : {"\"wall_ms\":", "\"retry_after_ms\":"}) {
            const size_t len = std::strlen(key);
            if (line.compare(i, len, key) == 0) {
                i += len;
                while (i < line.size() && line[i] != ',' &&
                       line[i] != '}')
                    ++i;
                if (i < line.size() && line[i] == ',')
                    ++i;
                stripped = true;
                break;
            }
        }
        if (!stripped)
            out += line[i++];
    }
    return out;
}

ScheduleResult
runServeSchedule(uint64_t index, uint64_t seed, const FaultPlan &plan,
                 const ChaosOptions &opts)
{
    ScheduleResult result;
    const std::string tag =
        "schedule " + std::to_string(index) + " (serve, seed " +
        std::to_string(seed) + "): ";

    // The schedule's request mix, derived once so the replay submits
    // the identical lines: mostly predict requests, with a garbage
    // line every seventh slot (must still earn exactly one typed
    // response).
    std::vector<std::string> lines;
    std::set<std::string> crashIds;
    std::set<std::string> failIds;
    for (uint64_t i = 0; i < opts.requests; ++i) {
        if (i % 7 == 6) {
            lines.push_back("this is not a request #" +
                            std::to_string(i));
            continue;
        }
        std::string line = "{";
        json::appendField(line, "id", "q" + std::to_string(i));
        json::appendField(line, "type", "predict");
        json::appendField(line, "workload", "synthetic");
        json::appendU64(line, "seed", splitmix64(seed ^ i));
        line += '}';
        lines.push_back(std::move(line));
    }
    // Recover the plan's keyed intent for the outcome checks by
    // walking the serialized spec instead of exposing plan internals.
    {
        const std::string spec = plan.toJson();
        size_t pos = 0;
        while ((pos = spec.find("\"key\":\"", pos)) !=
               std::string::npos) {
            pos += 7;
            const size_t end = spec.find('"', pos);
            const std::string key = spec.substr(pos, end - pos);
            const size_t act = spec.find("\"action\":\"", end);
            // First rule per key wins, matching FaultPlan::hit's
            // first-match evaluation order.
            if (crashIds.count(key) == 0 && failIds.count(key) == 0) {
                if (act != std::string::npos &&
                    spec.compare(act + 10, 5, "crash") == 0)
                    crashIds.insert(key);
                else if (act != std::string::npos &&
                         spec.compare(act + 10, 4, "fail") == 0)
                    failIds.insert(key);
            }
            pos = end;
        }
    }

    auto runOnce = [&](uint64_t &faultsFired,
                       std::vector<std::vector<std::string>> &responses)
        -> bool {
        auto livePlan = std::make_shared<FaultPlan>(plan.cloneFresh());
        installPlan(livePlan);
        serve::ServeOptions serveOpts;
        serveOpts.workers = 2;
        serveOpts.queueCapacity = opts.requests + 1; // no shedding
        serveOpts.drainBudgetSeconds = 30.0;
        serveOpts.restartBackoffSeconds = 0.001;
        serveOpts.restartBackoffCapSeconds = 0.002;
        serve::Server server(syntheticPredict, serveOpts);
        server.start();
        responses.assign(lines.size(), {});
        std::mutex mu;
        for (size_t i = 0; i < lines.size(); ++i) {
            server.submitLine(lines[i],
                              [&responses, &mu, i](const std::string &l) {
                                  std::lock_guard<std::mutex> lk(mu);
                                  responses[i].push_back(l);
                              });
        }
        const bool drained = server.awaitDrain();
        const obs::Snapshot snap = server.metricsSnapshot();
        server.stop();
        clearPlan();
        faultsFired = livePlan->totalFires();

        if (!drained) {
            result.violations.push_back(
                tag + "drain did not complete inside the budget");
        }
        for (const obs::SnapshotEntry &e : snap.entries) {
            if (e.kind == obs::InstrumentKind::Gauge &&
                e.gaugeValue < 0.0) {
                result.violations.push_back(
                    tag + "gauge " + e.name + " went negative (" +
                    std::to_string(e.gaugeValue) + ")");
            }
            if (e.name == "serve.workers.live" &&
                e.gaugeValue >
                    static_cast<double>(serveOpts.workers)) {
                result.violations.push_back(
                    tag + "live workers (" +
                    std::to_string(e.gaugeValue) +
                    ") exceeded the pool size");
            }
        }
        return drained;
    };

    std::vector<std::vector<std::string>> responses;
    runOnce(result.faultsFired, responses);

    uint64_t digest = 0x5E44E;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (responses[i].size() != 1) {
            result.violations.push_back(
                tag + "line " + std::to_string(i) + " got " +
                std::to_string(responses[i].size()) +
                " responses, expected exactly 1");
            continue;
        }
        const std::string &resp = responses[i][0];
        const std::string canon = canonicalResponse(resp);
        digest ^= util::fnv1a64(std::to_string(i) + '|' + canon);

        // Garbage slots (i % 7 == 6) never submit an id, so a rule
        // keyed on that slot's would-be id can never fire.
        if (i % 7 == 6)
            continue;
        const std::string id = "q" + std::to_string(i);
        if (crashIds.count(id) > 0 &&
            resp.find("\"error\":\"worker-crashed\"") ==
                std::string::npos) {
            result.violations.push_back(
                tag + "crash-keyed request " + id +
                " did not answer worker-crashed: " + resp);
        } else if (crashIds.count(id) == 0 &&
                   failIds.count(id) > 0 &&
                   resp.find("\"error\":\"io-error\"") ==
                       std::string::npos) {
            result.violations.push_back(
                tag + "fail-keyed request " + id +
                " did not answer io-error: " + resp);
        }
    }
    result.digest = digest;

    // In-schedule replay: a second fresh server under a fresh clone
    // of the same plan must produce canonically identical responses.
    uint64_t replayFires = 0;
    std::vector<std::vector<std::string>> replayResponses;
    runOnce(replayFires, replayResponses);
    for (size_t i = 0; i < lines.size(); ++i) {
        if (responses[i].size() != 1 || replayResponses[i].size() != 1)
            continue;
        if (canonicalResponse(responses[i][0]) !=
            canonicalResponse(replayResponses[i][0])) {
            result.violations.push_back(
                tag + "line " + std::to_string(i) +
                " not byte-identical on replay: " + responses[i][0] +
                " vs " + replayResponses[i][0]);
        }
    }
    return result;
}

} // namespace

void
ChaosOptions::validate() const
{
    if (schedules == 0)
        throw Error(ErrorCategory::InvalidConfig,
                    "chaos schedules must be >= 1");
    if (points == 0 || points > 64)
        throw Error(ErrorCategory::InvalidConfig,
                    "chaos points must be in [1, 64]");
    if (requests == 0 || requests > 4096)
        throw Error(ErrorCategory::InvalidConfig,
                    "chaos requests must be in [1, 4096]");
    if (scratchDir.empty())
        throw Error(ErrorCategory::InvalidConfig,
                    "chaos scratch dir must not be empty");
}

ChaosReport
runChaos(const ChaosOptions &opts)
{
    opts.validate();
    struct stat st = {};
    if (::stat(opts.scratchDir.c_str(), &st) != 0 ||
        !S_ISDIR(st.st_mode)) {
        throw Error(ErrorCategory::IoError,
                    "chaos scratch dir is not a directory",
                    {opts.scratchDir, 0});
    }
    FaultPlan fixed;
    const bool haveFixed = !opts.fixedPlanSpec.empty();
    if (haveFixed) {
        Expected<FaultPlan> parsed =
            FaultPlan::loadSpec(opts.fixedPlanSpec);
        if (!parsed)
            throw parsed.error();
        fixed = std::move(parsed.value());
    }
    // The harness owns the process-wide registry for its run; an
    // SSIM_FAULT_PLAN installed by the CLI would otherwise leak into
    // every schedule.
    clearPlan();

    ChaosReport report;
    auto isSweep = [&](uint64_t index) {
        switch (opts.mode) {
        case ChaosMode::Sweep:
            return true;
        case ChaosMode::Serve:
            return false;
        case ChaosMode::All:
            break;
        }
        return index % 2 == 0;
    };

    auto runSchedule = [&](uint64_t index) -> ScheduleResult {
        const uint64_t seed = scheduleSeedFor(opts.seed, index);
        if (isSweep(index)) {
            const FaultPlan plan =
                haveFixed ? fixed.cloneFresh()
                          : makeSweepPlan(seed, opts.points);
            return runSweepSchedule(index, seed, plan, opts);
        }
        const FaultPlan plan = haveFixed
                                   ? fixed.cloneFresh()
                                   : makeServePlan(seed, opts.requests);
        return runServeSchedule(index, seed, plan, opts);
    };

    std::vector<uint64_t> digests(opts.schedules, 0);
    for (uint64_t i = 0; i < opts.schedules; ++i) {
        ScheduleResult r = runSchedule(i);
        ++report.schedulesRun;
        if (isSweep(i))
            ++report.sweepSchedules;
        else
            ++report.serveSchedules;
        if (r.childCrashed)
            ++report.childCrashes;
        report.serveFaultsFired += r.faultsFired;
        digests[i] = r.digest;
        for (std::string &v : r.violations)
            report.violations.push_back(std::move(v));
        if (opts.verbose) {
            inform("chaos: schedule " + std::to_string(i) + "/" +
                   std::to_string(opts.schedules) + " digest " +
                   json::hex64Token(digests[i]));
        }
    }

    // Cross-run replay: the first K schedules re-run from their seed
    // must land on the identical digest — the "re-running any single
    // seed reproduces the identical fault sequence and outcome"
    // guarantee.
    const uint64_t replays =
        std::min<uint64_t>(opts.replayVerify, opts.schedules);
    for (uint64_t i = 0; i < replays; ++i) {
        ScheduleResult r = runSchedule(i);
        for (std::string &v : r.violations)
            report.violations.push_back(std::move(v));
        if (r.digest != digests[i]) {
            report.violations.push_back(
                "schedule " + std::to_string(i) + " (seed " +
                std::to_string(scheduleSeedFor(opts.seed, i)) +
                ") is not replayable: digest " +
                json::hex64Token(digests[i]) + " then " +
                json::hex64Token(r.digest));
        } else {
            ++report.replaysVerified;
        }
    }
    return report;
}

} // namespace ssim::fault
