/**
 * @file
 * Discrete empirical distributions with CDF sampling.
 *
 * The statistical profile stores many small distributions (dependency
 * distances per operand, node occurrences, transition probabilities).
 * DiscreteDistribution is a sparse counter map over small integer
 * domains with O(n) cumulative sampling after a one-time freeze.
 */

#ifndef SSIM_UTIL_DISTRIBUTION_HH
#define SSIM_UTIL_DISTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "random.hh"

namespace ssim
{

/**
 * Sparse counted distribution over non-negative integer values.
 *
 * Accumulate with record(); sample with sample() which lazily builds a
 * cumulative table. Recording after sampling invalidates and rebuilds
 * the table on the next sample.
 */
class DiscreteDistribution
{
  public:
    /** Add one observation of @p value (optionally weighted). */
    void record(uint32_t value, uint64_t weight = 1);

    /** Total number of recorded observations. */
    uint64_t totalCount() const { return total_; }

    /** True if no observations were recorded. */
    bool empty() const { return total_ == 0; }

    /** Number of distinct values observed. */
    size_t distinctValues() const { return values_.size(); }

    /** Count recorded for a specific value (0 if absent). */
    uint64_t countOf(uint32_t value) const;

    /** Probability of a specific value. */
    double probabilityOf(uint32_t value) const;

    /** Mean of the distribution. */
    double mean() const;

    /**
     * Draw a value according to the empirical probabilities.
     * Must not be called on an empty distribution.
     */
    uint32_t sample(Rng &rng) const;

    /** Visit (value, count) pairs in ascending value order. */
    const std::vector<std::pair<uint32_t, uint64_t>> &entries() const;

  private:
    void freeze() const;

    // (value, count), kept sorted by value once frozen.
    mutable std::vector<std::pair<uint32_t, uint64_t>> values_;
    mutable std::vector<uint64_t> cumulative_;
    mutable bool frozen_ = false;
    uint64_t total_ = 0;
};

/**
 * Cumulative alias-free sampler over externally-stored weights.
 *
 * Used for picking SFG nodes by occurrence and outgoing edges by
 * transition probability where the weights live in the graph itself.
 */
class WeightedPicker
{
  public:
    /** Rebuild from a weight vector; zero weights are legal. */
    void build(const std::vector<uint64_t> &weights);

    /** Total weight (0 means nothing can be drawn). */
    uint64_t totalWeight() const { return total_; }

    /**
     * Draw an index with probability weight[i]/total.
     * Must not be called when totalWeight() is zero.
     */
    size_t pick(Rng &rng) const;

  private:
    std::vector<uint64_t> cumulative_;
    uint64_t total_ = 0;
};

} // namespace ssim

#endif // SSIM_UTIL_DISTRIBUTION_HH
