/**
 * @file
 * Discrete empirical distributions and O(1)/O(log n) samplers.
 *
 * The statistical profile stores many small distributions (dependency
 * distances per operand, node occurrences, transition probabilities).
 * Three samplers back them:
 *
 *  - DiscreteDistribution: a sparse counter map over small integer
 *    domains. Recording keeps the (value, count) pairs sorted so
 *    lookups are O(log n); a one-time freeze builds a Walker/Vose
 *    alias table so sampling is O(1).
 *  - AliasTable / WeightedPicker: O(1) index sampling over a fixed
 *    weight vector (SFG edge transitions). The construction uses
 *    exact integer arithmetic, so sampling is bit-reproducible across
 *    platforms and exactly proportional to the weights.
 *  - FenwickSampler: weighted index sampling over *mutable* weights
 *    (SFG start-node occurrences, which the generation walk
 *    decrements). Updates and draws are O(log n) instead of the
 *    O(n) rebuild a cumulative table would need.
 */

#ifndef SSIM_UTIL_DISTRIBUTION_HH
#define SSIM_UTIL_DISTRIBUTION_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "random.hh"

namespace ssim
{

/**
 * Walker/Vose alias table: O(1) weighted index sampling after an O(n)
 * build. Construction is exact — residual masses are integer multiples
 * of the weights, so P(sample() == i) is exactly weight[i]/total with
 * no floating-point rounding, and the table is a pure function of the
 * weight vector (deterministic across platforms).
 *
 * Each draw consumes exactly two Rng values (bucket, threshold).
 */
class AliasTable
{
  public:
    /** Rebuild from a weight vector; zero weights are legal. */
    void build(const std::vector<uint64_t> &weights);

    /** Total weight (0 means nothing can be drawn). */
    uint64_t totalWeight() const { return total_; }

    /** Number of entries. */
    size_t size() const { return prob_.size(); }

    /**
     * Draw an index with probability weight[i]/total in O(1).
     * Must not be called when totalWeight() is zero.
     */
    size_t sample(Rng &rng) const;

  private:
    std::vector<uint64_t> prob_;    ///< self threshold in [0, total_]
    std::vector<uint32_t> alias_;   ///< redirect target
    uint64_t total_ = 0;
};

/**
 * Sparse counted distribution over non-negative integer values.
 *
 * Accumulate with record(); sample with sample() which lazily builds
 * an alias table (O(1) per draw). Recording after sampling invalidates
 * and rebuilds the table on the next sample.
 */
class DiscreteDistribution
{
  public:
    /** Add one observation of @p value (optionally weighted). */
    void record(uint32_t value, uint64_t weight = 1);

    /** Total number of recorded observations. */
    uint64_t totalCount() const { return total_; }

    /** True if no observations were recorded. */
    bool empty() const { return total_ == 0; }

    /** Number of distinct values observed. */
    size_t distinctValues() const { return values_.size(); }

    /** Count recorded for a specific value (0 if absent). */
    uint64_t countOf(uint32_t value) const;

    /** Probability of a specific value. */
    double probabilityOf(uint32_t value) const;

    /** Mean of the distribution. */
    double mean() const;

    /**
     * Draw a value according to the empirical probabilities in O(1).
     * Must not be called on an empty distribution.
     */
    uint32_t sample(Rng &rng) const;

    /**
     * Build the sampling table now instead of on the first sample().
     * The generator calls this at reduced-graph build time so the
     * walk itself never pays a freeze.
     */
    void prepare() const;

    /** Visit (value, count) pairs in ascending value order. */
    const std::vector<std::pair<uint32_t, uint64_t>> &entries() const;

  private:
    void freeze() const;

    // (value, count), kept sorted by value at all times.
    std::vector<std::pair<uint32_t, uint64_t>> values_;
    mutable AliasTable alias_;
    mutable bool frozen_ = false;
    size_t lastIdx_ = 0;      ///< burst cache: last touched entry
    uint64_t total_ = 0;
};

/**
 * O(1) sampler over externally-stored weights (alias-table backed).
 *
 * Used for picking SFG edges by transition probability where the
 * weights live in the graph itself.
 */
class WeightedPicker
{
  public:
    /** Rebuild from a weight vector; zero weights are legal. */
    void build(const std::vector<uint64_t> &weights);

    /** Total weight (0 means nothing can be drawn). */
    uint64_t totalWeight() const { return table_.totalWeight(); }

    /**
     * Draw an index with probability weight[i]/total in O(1).
     * Must not be called when totalWeight() is zero.
     */
    size_t pick(Rng &rng) const;

  private:
    AliasTable table_;
};

/**
 * Fenwick-tree weighted sampler over mutable weights: pick() draws an
 * index with probability weight[i]/total in O(log n), and add()
 * adjusts one weight in O(log n) — no rebuild. This is what makes the
 * generation walk's start-node restarts cheap: the walk decrements an
 * occurrence budget on every visited node, and a cumulative-table
 * picker would need an O(n) rebuild per restart.
 *
 * pick() consumes exactly one Rng value and selects the same index a
 * cumulative lower-bound search over the current weights would.
 */
class FenwickSampler
{
  public:
    /** Rebuild from a weight vector; zero weights are legal. */
    void build(const std::vector<uint64_t> &weights);

    /** Total remaining weight. */
    uint64_t totalWeight() const { return total_; }

    /** Current weight of index @p i. */
    uint64_t weightOf(size_t i) const { return weights_[i]; }

    /**
     * Add @p delta to index @p i's weight (negative to decrement).
     * Clamps at zero rather than underflowing.
     */
    void add(size_t i, int64_t delta);

    /**
     * Draw an index with probability weight[i]/total in O(log n).
     * Must not be called when totalWeight() is zero.
     */
    size_t pick(Rng &rng) const;

  private:
    std::vector<uint64_t> tree_;      ///< 1-based Fenwick sums
    std::vector<uint64_t> weights_;   ///< point weights (O(1) reads)
    uint64_t total_ = 0;
    size_t topBit_ = 0;               ///< highest power of two <= size
};

} // namespace ssim

#endif // SSIM_UTIL_DISTRIBUTION_HH
