/**
 * @file
 * Append-only JSONL run journal and atomic file-replacement helpers.
 *
 * A long design-space sweep must survive the process dying at any
 * instant — power loss, OOM kill, SIGKILL, a crashing design point —
 * without losing the work already done. Two primitives provide that:
 *
 *  - atomicWriteFile(): write to a `.tmp` sibling, flush, fsync the
 *    temporary AND its parent directory, and rename(2) over the
 *    destination. A reader never observes a half-written file; a
 *    crash — including power loss, which discards unsynced page
 *    cache — leaves either the old file or the new one (plus at
 *    worst a stale `.tmp`). Setting SSIM_FSYNC_FAIL=1 makes every
 *    fsync report EIO, the fault hook the durability tests use to
 *    prove the destination survives a failed replacement.
 *
 *  - Journal: an append-only file of one-line JSON records, each
 *    appended with a single O_APPEND write(2) so a record is either
 *    wholly present or wholly absent. A crash can truncate only the
 *    final line; Journal::load() discards a malformed final line and
 *    skips (with a counted warning) corrupt interior lines — the
 *    signature of a torn write from a worker that died mid-append —
 *    returning every intact record. Journal::checkpoint() compacts a
 *    journal through atomicWriteFile(), which is how resume drops
 *    crash artifacts before appending new records.
 *
 * The record schema is the sweep engine's (see experiments/sweep.hh
 * and DESIGN.md §7): a `sweep` header line identifying the sweep,
 * then `start`/`done` lines per point attempt. The parser is a
 * strict, minimal JSON reader for exactly this shape — a flat object
 * with one optional nested `metrics` object of numbers — and raises
 * typed ssim::Error on anything else.
 */

#ifndef SSIM_UTIL_JOURNAL_HH
#define SSIM_UTIL_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "error.hh"

namespace ssim::util
{

/**
 * FNV-1a-style 64-bit hash (also the profile checksum function).
 * The offset basis is the repo's historical constant, not the
 * standard FNV basis — changing it would make every profile file
 * already on disk fail its checksum, so it stays.
 */
uint64_t fnv1a64(const std::string &bytes);

/**
 * Write a file atomically and durably: @p writer streams the content
 * into `path + ".tmp"`, which is fsynced and then renamed over
 * @p path, after which the parent directory is fsynced so the rename
 * itself survives power loss. On any failure (including an fsync
 * failure, injectable via SSIM_FSYNC_FAIL=1) the temporary is removed
 * and the destination is untouched.
 */
Expected<void> atomicWriteFile(
    const std::string &path,
    const std::function<void(std::ostream &)> &writer);

/** One named metric of a finished design point. */
struct JournalMetric
{
    std::string name;
    double value = 0.0;
};

/**
 * One journal line. Three events share the struct:
 *
 *  - "sweep": header — formatVersion, sweepHash, pointCount,
 *    sweepSeed;
 *  - "start": a point attempt began — point, attempt, configHash,
 *    seed;
 *  - "done": a point attempt settled — the start fields plus status
 *    ("ok" | "error" | "timeout" | "crashed"), wallSeconds, metrics,
 *    and (for failures) category/message.
 */
struct JournalRecord
{
    std::string event;

    // "sweep" header fields.
    uint64_t formatVersion = 1;
    uint64_t sweepHash = 0;
    uint64_t pointCount = 0;
    uint64_t sweepSeed = 0;

    /**
     * Provenance of the sweep's inputs, stamped into the header when
     * known (0 = unknown, field omitted): the canonical digest of the
     * source statistical profile and the hash of the base
     * configuration the grid was expanded from. `ssim train` refuses
     * to pool journals whose profile digests differ — rows from
     * different programs would silently fit garbage.
     */
    uint64_t profileChecksum = 0;
    uint64_t baseConfigHash = 0;

    // Per-point fields ("start" and "done").
    uint64_t point = 0;
    uint32_t attempt = 0;
    uint64_t configHash = 0;
    uint64_t seed = 0;

    // "done" fields.
    std::string status;
    std::string category;     ///< typed-error category name, "" if none
    std::string message;
    double wallSeconds = 0.0;

    /**
     * Process peak RSS in KiB when the attempt settled; 0 when the
     * platform has no probe (the field is then omitted from the JSON
     * line). Like wallSeconds this is an *observation*, not a result:
     * resume determinism applies to `metrics`, never to these.
     */
    uint64_t peakRssKb = 0;
    std::vector<JournalMetric> metrics;

    /**
     * Named numeric features of the record, rendered as a nested
     * `features` object when non-empty. On a "sweep" header these are
     * the source profile's feature statistics; on a "done" record they
     * are the point's configuration features — together one training
     * row for the surrogate predictor (src/proxy). Purely additive:
     * records without the object parse exactly as before.
     */
    std::vector<JournalMetric> features;

    /** Render as a single JSON line (no trailing newline). */
    std::string toJson() const;

    /**
     * Parse one JSON line. @p file / @p line provide error context.
     * @throws nothing; malformed input comes back as a failed
     *         Expected carrying ParseError.
     */
    static Expected<JournalRecord> parseJson(const std::string &text,
                                             const std::string &file,
                                             uint64_t line);
};

/**
 * Append-only journal writer. Each append is one write(2) on an
 * O_APPEND descriptor, so concurrent appenders (or a crash) never
 * interleave or tear a record. Not internally synchronized: callers
 * running multiple threads serialize appends themselves.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal() { close(); }
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for appending, creating it if absent.
     * @param truncate start fresh instead of appending.
     */
    Expected<void> open(const std::string &path, bool truncate = false);

    /** Append one record as a single '\n'-terminated write. */
    Expected<void> append(const JournalRecord &record);

    /** fdatasync the journal (called before a deliberate crash/exit). */
    Expected<void> sync();

    void close();
    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /**
     * Read every intact record of @p path. A final line that is
     * truncated or malformed — the signature a crash leaves — is
     * discarded silently; a malformed line anywhere *before* the
     * final one (a torn write from a worker that died mid-append) is
     * skipped with a warn()-level diagnostic and counted into
     * @p skippedCorrupt when the caller passes it, so a resume
     * survives the corruption instead of abandoning the journal.
     * A missing file fails with IoError.
     */
    static Expected<std::vector<JournalRecord>> load(
        const std::string &path,
        uint64_t *skippedCorrupt = nullptr);

    /**
     * Rewrite @p path to contain exactly @p records, via
     * atomicWriteFile. Used on resume to drop partial-line crash
     * artifacts and fold in synthesized records before appending.
     */
    static Expected<void> checkpoint(
        const std::string &path,
        const std::vector<JournalRecord> &records);

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace ssim::util

#endif // SSIM_UTIL_JOURNAL_HH
