/**
 * @file
 * Per-key build-once cache with build latches.
 *
 * The naive "one mutex around a map, held across the build" cache has
 * a concurrency bug this type exists to fix: two threads asking for
 * *different* keys serialize behind each other's expensive builds.
 * KeyedOnceCache holds its mutex only for map bookkeeping; the build
 * itself runs outside the lock behind a per-key latch
 * (std::shared_future), so
 *
 *  - concurrent requests for the same key run the build exactly once
 *    and everyone else blocks on that key's latch;
 *  - requests for distinct keys build fully in parallel;
 *  - a build that throws wakes its waiters with the exception and
 *    removes the entry, so a later request retries instead of caching
 *    the failure forever.
 *
 * Values are immutable once published (shared_ptr<const V>), which is
 * what makes handing the same object to many threads sound. An
 * optional capacity bounds the cache with LRU eviction over
 * *completed* entries (in-flight builds are never evicted).
 */

#ifndef SSIM_UTIL_KEYED_ONCE_HH
#define SSIM_UTIL_KEYED_ONCE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace ssim::util
{

template <typename K, typename V>
class KeyedOnceCache
{
  public:
    using Ptr = std::shared_ptr<const V>;

    /** @param capacity max completed entries kept; 0 = unbounded. */
    explicit KeyedOnceCache(size_t capacity = 0) : capacity_(capacity)
    {
    }

    /**
     * Return the value for @p key, running @p build (a callable
     * returning Ptr) at most once per cached lifetime of the key.
     * Blocks only when another thread is already building this key.
     * A wait on an in-flight build counts as a hit — the work was
     * shared. @p hitOut (optional) reports hit/miss for this call.
     */
    template <typename BuildFn>
    Ptr
    get(const K &key, BuildFn &&build, bool *hitOut = nullptr)
    {
        std::promise<Ptr> promise;
        std::shared_future<Ptr> future;
        uint64_t id = 0;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(key);
            if (it != map_.end()) {
                ++hits_;
                it->second.lastUse = ++useClock_;
                future = it->second.future;
            } else {
                ++misses_;
                builder = true;
                Entry e;
                e.id = id = ++idClock_;
                e.lastUse = ++useClock_;
                future = e.future = promise.get_future().share();
                map_.emplace(key, std::move(e));
            }
        }
        if (hitOut)
            *hitOut = !builder;
        if (!builder)
            return future.get();

        try {
            Ptr value = build();
            promise.set_value(value);
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(key);
            if (it != map_.end() && it->second.id == id)
                it->second.ready = true;
            evictLocked();
            return value;
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(key);
            // Guard on id: clear() may have dropped the failed entry
            // and a fresh build may already occupy the key.
            if (it != map_.end() && it->second.id == id)
                map_.erase(it);
            throw;
        }
    }

    uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return hits_;
    }

    uint64_t
    misses() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return misses_;
    }

    uint64_t
    evictions() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return evictions_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return map_.size();
    }

    /** Drop all entries (counters are kept; in-flight builds finish). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();
    }

    /** Change the completed-entry bound; 0 = unbounded. */
    void
    setCapacity(size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mu_);
        capacity_ = capacity;
        evictLocked();
    }

  private:
    struct Entry
    {
        std::shared_future<Ptr> future;
        uint64_t id = 0;
        uint64_t lastUse = 0;
        bool ready = false;
    };

    void
    evictLocked()
    {
        if (capacity_ == 0)
            return;
        while (true) {
            size_t readyCount = 0;
            auto victim = map_.end();
            for (auto it = map_.begin(); it != map_.end(); ++it) {
                if (!it->second.ready)
                    continue;
                ++readyCount;
                if (victim == map_.end() ||
                    it->second.lastUse < victim->second.lastUse) {
                    victim = it;
                }
            }
            if (readyCount <= capacity_ || victim == map_.end())
                return;
            map_.erase(victim);
            ++evictions_;
        }
    }

    mutable std::mutex mu_;
    std::map<K, Entry> map_;
    size_t capacity_;
    uint64_t useClock_ = 0;
    uint64_t idClock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace ssim::util

#endif // SSIM_UTIL_KEYED_ONCE_HH
