/**
 * @file
 * Minimal ASCII table printer for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of its paper exhibit
 * through this class so all outputs share one layout.
 */

#ifndef SSIM_UTIL_TABLE_HH
#define SSIM_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ssim
{

/** Column-aligned ASCII table. */
class TextTable
{
  public:
    /** Set header labels (also fixes the column count). */
    void setHeader(std::vector<std::string> labels);

    /** Append a row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a value as a percentage, e.g. 6.6%. */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace ssim

#endif // SSIM_UTIL_TABLE_HH
