#include "process.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ssim
{

namespace
{

/**
 * Scan /proc/self/status for a "Vm...: <n> kB" line. Returns 0 when
 * the file or the key is missing (non-Linux).
 */
uint64_t
procStatusKb(const char *key)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    const size_t keyLen = std::strlen(key);
    char line[256];
    uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, key, keyLen) != 0 ||
            line[keyLen] != ':') {
            continue;
        }
        unsigned long long v = 0;
        if (std::sscanf(line + keyLen + 1, "%llu", &v) == 1)
            kb = v;
        break;
    }
    std::fclose(f);
    return kb;
}

} // namespace

uint64_t
peakRssKb()
{
    if (const uint64_t kb = procStatusKb("VmHWM"))
        return kb;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
        return static_cast<uint64_t>(ru.ru_maxrss) / 1024;  // bytes
#else
        return static_cast<uint64_t>(ru.ru_maxrss);  // already KiB
#endif
    }
#endif
    return 0;
}

uint64_t
currentRssKb()
{
    if (const uint64_t kb = procStatusKb("VmRSS"))
        return kb;
    // No portable fallback for the instantaneous value; peak is the
    // best available approximation.
    return peakRssKb();
}

} // namespace ssim
