#include "journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "json_writer.hh"

namespace ssim::util
{

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

Expected<void>
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &writer)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            return Error(ErrorCategory::IoError,
                         "cannot open for writing", {tmp, 0});
        }
        writer(os);
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Error(ErrorCategory::IoError, "write error",
                         {tmp, 0});
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return Error(ErrorCategory::IoError,
                     std::string("rename failed: ") +
                     std::strerror(err), {path, 0});
    }
    return {};
}

namespace
{

// Rendering (escapes, %.17g doubles, hex-string hashes) lives in
// util/json_writer so the stats/trace exporters share the exact byte
// format; the %.17g round trip is what makes a resumed journal
// byte-identical to an uninterrupted one.
using json::appendDouble;
using json::appendEscaped;
using json::appendField;
using json::appendHex64;
using json::appendU64;

/** Minimal JSON scanner for one flat record line. */
class LineParser
{
  public:
    LineParser(const std::string &text, const std::string &file,
               uint64_t line)
        : text_(text), file_(file), line_(line)
    {}

    Error
    fail(const std::string &msg) const
    {
        return Error(ErrorCategory::ParseError,
                     "journal record: " + msg, {file_, line_});
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    /** Parse a quoted string with escape handling. */
    std::string
    parseString()
    {
        if (!consume('"'))
            throw fail("expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    throw fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        throw fail("bad \\u escape digit");
                }
                // Journal writers only escape control bytes; anything
                // outside Latin-1 is replaced, not round-tripped.
                out += code < 0x100 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                throw fail(std::string("unknown escape '\\") + esc +
                           "'");
            }
        }
        throw fail("unterminated string");
    }

    /** Raw numeric token (sign, digits, dot, exponent). */
    std::string
    parseNumberToken()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            throw fail("expected a number");
        return text_.substr(start, pos_ - start);
    }

    uint64_t
    parseU64()
    {
        const std::string tok = parseNumberToken();
        uint64_t v = 0;
        const auto [p, ec] = std::from_chars(
            tok.data(), tok.data() + tok.size(), v, 10);
        if (ec != std::errc() || p != tok.data() + tok.size())
            throw fail("expected an unsigned integer, got '" + tok +
                       "'");
        return v;
    }

    uint64_t
    parseHex64String()
    {
        const std::string tok = parseString();
        uint64_t v = 0;
        const auto [p, ec] = std::from_chars(
            tok.data(), tok.data() + tok.size(), v, 16);
        if (tok.empty() || tok.size() > 16 || ec != std::errc() ||
            p != tok.data() + tok.size())
            throw fail("expected a hex hash, got '" + tok + "'");
        return v;
    }

    double
    parseDouble()
    {
        const std::string tok = parseNumberToken();
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || errno == ERANGE)
            throw fail("expected a number, got '" + tok + "'");
        return v;
    }

  private:
    const std::string &text_;
    std::string file_;
    uint64_t line_;
    size_t pos_ = 0;
};

} // namespace

std::string
JournalRecord::toJson() const
{
    std::string out = "{";
    appendField(out, "event", event);
    if (event == "sweep") {
        appendU64(out, "version", formatVersion);
        appendHex64(out, "sweep", sweepHash);
        appendU64(out, "points", pointCount);
        appendU64(out, "seed", sweepSeed);
        out += '}';
        return out;
    }
    appendU64(out, "point", point);
    appendU64(out, "attempt", attempt);
    appendHex64(out, "config", configHash);
    appendU64(out, "seed", seed);
    if (event == "done") {
        appendField(out, "status", status);
        if (!category.empty())
            appendField(out, "category", category);
        if (!message.empty())
            appendField(out, "message", message);
        appendDouble(out, "wall_s", wallSeconds);
        if (peakRssKb != 0)
            appendU64(out, "peak_rss_kb", peakRssKb);
        out += ",\"metrics\":{";
        for (size_t i = 0; i < metrics.size(); ++i) {
            if (i > 0)
                out += ',';
            appendEscaped(out, metrics[i].name);
            out += ':';
            out += json::doubleToken(metrics[i].value);
        }
        out += '}';
    }
    out += '}';
    return out;
}

Expected<JournalRecord>
JournalRecord::parseJson(const std::string &text,
                         const std::string &file, uint64_t line)
{
    return tryInvoke([&]() -> JournalRecord {
        LineParser p(text, file, line);
        JournalRecord rec;
        if (!p.consume('{'))
            throw p.fail("expected '{'");
        bool first = true;
        while (!p.consume('}')) {
            if (!first && !p.consume(','))
                throw p.fail("expected ',' between fields");
            first = false;
            const std::string key = p.parseString();
            if (!p.consume(':'))
                throw p.fail("expected ':' after key '" + key + "'");
            if (key == "event")
                rec.event = p.parseString();
            else if (key == "version")
                rec.formatVersion = p.parseU64();
            else if (key == "sweep")
                rec.sweepHash = p.parseHex64String();
            else if (key == "points")
                rec.pointCount = p.parseU64();
            else if (key == "point")
                rec.point = p.parseU64();
            else if (key == "attempt")
                rec.attempt = static_cast<uint32_t>(p.parseU64());
            else if (key == "config")
                rec.configHash = p.parseHex64String();
            else if (key == "seed")
                rec.seed = p.parseU64();
            else if (key == "status")
                rec.status = p.parseString();
            else if (key == "category")
                rec.category = p.parseString();
            else if (key == "message")
                rec.message = p.parseString();
            else if (key == "wall_s")
                rec.wallSeconds = p.parseDouble();
            else if (key == "peak_rss_kb")
                rec.peakRssKb = p.parseU64();
            else if (key == "metrics") {
                if (!p.consume('{'))
                    throw p.fail("metrics must be an object");
                bool mFirst = true;
                while (!p.consume('}')) {
                    if (!mFirst && !p.consume(','))
                        throw p.fail("expected ',' in metrics");
                    mFirst = false;
                    JournalMetric m;
                    m.name = p.parseString();
                    if (!p.consume(':'))
                        throw p.fail("expected ':' in metrics");
                    m.value = p.parseDouble();
                    rec.metrics.push_back(std::move(m));
                }
            } else {
                throw p.fail("unknown field '" + key + "'");
            }
        }
        if (!p.atEnd())
            throw p.fail("trailing characters after record");
        if (rec.event != "sweep" && rec.event != "start" &&
            rec.event != "done")
            throw p.fail("unknown event '" + rec.event + "'");
        // The "sweep" header's "seed" key is the sweep seed.
        if (rec.event == "sweep") {
            rec.sweepSeed = rec.seed;
            rec.seed = 0;
        }
        return rec;
    });
}

Expected<void>
Journal::open(const std::string &path, bool truncate)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        return Error(ErrorCategory::IoError,
                     std::string("cannot open journal: ") +
                     std::strerror(errno), {path, 0});
    }
    path_ = path;
    return {};
}

Expected<void>
Journal::append(const JournalRecord &record)
{
    if (fd_ < 0)
        return Error(ErrorCategory::Internal,
                     "journal append on a closed journal");
    const std::string line = record.toJson() + '\n';
    // One write(2) per record: O_APPEND makes the record all-or-
    // nothing with respect to concurrent appenders; a crash can only
    // truncate the final line, which load() tolerates.
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + off,
                                  line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Error(ErrorCategory::IoError,
                         std::string("journal write failed: ") +
                         std::strerror(errno), {path_, 0});
        }
        off += static_cast<size_t>(n);
    }
    return {};
}

Expected<void>
Journal::sync()
{
    if (fd_ >= 0 && ::fsync(fd_) != 0) {
        return Error(ErrorCategory::IoError,
                     std::string("journal fsync failed: ") +
                     std::strerror(errno), {path_, 0});
    }
    return {};
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Expected<std::vector<JournalRecord>>
Journal::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return Error(ErrorCategory::IoError,
                     "cannot open journal for reading", {path, 0});
    }
    std::vector<JournalRecord> records;
    std::string line;
    uint64_t lineNo = 0;
    // Track one pending parse failure: if it turns out to be the
    // final non-blank line it is a crash artifact and is dropped; if
    // any intact record follows it, the file is corrupt.
    bool pendingBad = false;
    Error pendingError(ErrorCategory::ParseError, "");
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Expected<JournalRecord> rec =
            JournalRecord::parseJson(line, path, lineNo);
        if (!rec) {
            if (pendingBad)
                return pendingError;
            pendingBad = true;
            pendingError = Error(ErrorCategory::CorruptData,
                                 rec.error().message(),
                                 {path, lineNo});
            continue;
        }
        if (pendingBad)
            return pendingError;
        records.push_back(std::move(rec.value()));
    }
    return records;
}

Expected<void>
Journal::checkpoint(const std::string &path,
                    const std::vector<JournalRecord> &records)
{
    return atomicWriteFile(path, [&](std::ostream &os) {
        for (const JournalRecord &rec : records)
            os << rec.toJson() << '\n';
    });
}

} // namespace ssim::util
