#include "journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fault/fault.hh"
#include "json_reader.hh"
#include "json_writer.hh"
#include "logging.hh"

namespace ssim::util
{

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

namespace
{

/**
 * fsync @p fd through the "journal.fsync" fault site (which also
 * speaks the legacy per-call SSIM_FSYNC_FAIL hook). Sets errno on
 * failure.
 */
int
fsyncChecked(int fd)
{
    if (const fault::Outcome out = fault::point("journal.fsync")) {
        if (out.action == fault::Action::FailErrno) {
            errno = out.err;
            return -1;
        }
        fault::sleepFor(out);
    }
    return ::fsync(fd);
}

/** fsync an already-written file by path. */
Expected<void>
fsyncPath(const std::string &path, int openFlags)
{
    const int fd = ::open(path.c_str(), openFlags);
    if (fd < 0) {
        return Error(ErrorCategory::IoError,
                     std::string("cannot open for fsync: ") +
                     std::strerror(errno), {path, 0});
    }
    const int rc = fsyncChecked(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
        return Error(ErrorCategory::IoError,
                     std::string("fsync failed: ") +
                     std::strerror(err), {path, 0});
    }
    return {};
}

/** The directory holding @p path ("." when it has no separator). */
std::string
parentDirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

Expected<void>
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &writer)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            return Error(ErrorCategory::IoError,
                         "cannot open for writing", {tmp, 0});
        }
        writer(os);
        os.flush();
        if (!os) {
            std::remove(tmp.c_str());
            return Error(ErrorCategory::IoError, "write error",
                         {tmp, 0});
        }
    }
    // Durability, not just atomicity: sync the temporary's bytes
    // before the rename (or a power cut can publish a zero-length
    // file) and the parent directory after it (or the rename itself
    // can be lost). A failed sync aborts with the destination
    // untouched.
    if (Expected<void> synced = fsyncPath(tmp, O_WRONLY); !synced) {
        std::remove(tmp.c_str());
        return synced.error();
    }
    if (const fault::Outcome out = fault::point("journal.rename");
        out.action == fault::Action::FailErrno) {
        std::remove(tmp.c_str());
        return Error(ErrorCategory::IoError,
                     std::string("rename failed: ") +
                     std::strerror(out.err), {path, 0});
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return Error(ErrorCategory::IoError,
                     std::string("rename failed: ") +
                     std::strerror(err), {path, 0});
    }
    return fsyncPath(parentDirOf(path), O_RDONLY | O_DIRECTORY);
}

namespace
{

// Rendering (escapes, %.17g doubles, hex-string hashes) lives in
// util/json_writer so the stats/trace exporters share the exact byte
// format; the %.17g round trip is what makes a resumed journal
// byte-identical to an uninterrupted one. Scanning lives in
// util/json_reader so the serve request protocol reads the same
// dialect it writes.
using json::appendDouble;
using json::appendEscaped;
using json::appendField;
using json::appendHex64;
using json::appendU64;
using json::LineScanner;

} // namespace

namespace
{

/** Append `"key":{"name":value,...}` (the metrics/features shape). */
void
appendMetricObject(std::string &out, const char *key,
                   const std::vector<JournalMetric> &items)
{
    out += ",\"";
    out += key;
    out += "\":{";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ',';
        appendEscaped(out, items[i].name);
        out += ':';
        out += json::doubleToken(items[i].value);
    }
    out += '}';
}

} // namespace

std::string
JournalRecord::toJson() const
{
    std::string out = "{";
    appendField(out, "event", event);
    if (event == "sweep") {
        appendU64(out, "version", formatVersion);
        appendHex64(out, "sweep", sweepHash);
        appendU64(out, "points", pointCount);
        appendU64(out, "seed", sweepSeed);
        if (profileChecksum != 0)
            appendHex64(out, "profile_checksum", profileChecksum);
        if (baseConfigHash != 0)
            appendHex64(out, "base_config", baseConfigHash);
        if (!features.empty())
            appendMetricObject(out, "features", features);
        out += '}';
        return out;
    }
    appendU64(out, "point", point);
    appendU64(out, "attempt", attempt);
    appendHex64(out, "config", configHash);
    appendU64(out, "seed", seed);
    if (event == "done") {
        appendField(out, "status", status);
        if (!category.empty())
            appendField(out, "category", category);
        if (!message.empty())
            appendField(out, "message", message);
        appendDouble(out, "wall_s", wallSeconds);
        if (peakRssKb != 0)
            appendU64(out, "peak_rss_kb", peakRssKb);
        appendMetricObject(out, "metrics", metrics);
        if (!features.empty())
            appendMetricObject(out, "features", features);
    }
    out += '}';
    return out;
}

Expected<JournalRecord>
JournalRecord::parseJson(const std::string &text,
                         const std::string &file, uint64_t line)
{
    return tryInvoke([&]() -> JournalRecord {
        LineScanner p(text, file, line);
        JournalRecord rec;
        const auto parseMetricObject =
            [&p](const char *what, std::vector<JournalMetric> &into) {
                if (!p.consume('{'))
                    throw p.fail(std::string(what) +
                                 " must be an object");
                bool mFirst = true;
                while (!p.consume('}')) {
                    if (!mFirst && !p.consume(','))
                        throw p.fail(std::string("expected ',' in ") +
                                     what);
                    mFirst = false;
                    JournalMetric m;
                    m.name = p.parseString();
                    if (!p.consume(':'))
                        throw p.fail(std::string("expected ':' in ") +
                                     what);
                    m.value = p.parseDouble();
                    into.push_back(std::move(m));
                }
            };
        if (!p.consume('{'))
            throw p.fail("expected '{'");
        bool first = true;
        while (!p.consume('}')) {
            if (!first && !p.consume(','))
                throw p.fail("expected ',' between fields");
            first = false;
            const std::string key = p.parseString();
            if (!p.consume(':'))
                throw p.fail("expected ':' after key '" + key + "'");
            if (key == "event")
                rec.event = p.parseString();
            else if (key == "version")
                rec.formatVersion = p.parseU64();
            else if (key == "sweep")
                rec.sweepHash = p.parseHex64String();
            else if (key == "points")
                rec.pointCount = p.parseU64();
            else if (key == "point")
                rec.point = p.parseU64();
            else if (key == "attempt")
                rec.attempt = static_cast<uint32_t>(p.parseU64());
            else if (key == "config")
                rec.configHash = p.parseHex64String();
            else if (key == "seed")
                rec.seed = p.parseU64();
            else if (key == "status")
                rec.status = p.parseString();
            else if (key == "category")
                rec.category = p.parseString();
            else if (key == "message")
                rec.message = p.parseString();
            else if (key == "wall_s")
                rec.wallSeconds = p.parseDouble();
            else if (key == "peak_rss_kb")
                rec.peakRssKb = p.parseU64();
            else if (key == "profile_checksum")
                rec.profileChecksum = p.parseHex64String();
            else if (key == "base_config")
                rec.baseConfigHash = p.parseHex64String();
            else if (key == "metrics")
                parseMetricObject("metrics", rec.metrics);
            else if (key == "features")
                parseMetricObject("features", rec.features);
            else {
                throw p.fail("unknown field '" + key + "'");
            }
        }
        if (!p.atEnd())
            throw p.fail("trailing characters after record");
        if (rec.event != "sweep" && rec.event != "start" &&
            rec.event != "done")
            throw p.fail("unknown event '" + rec.event + "'");
        // The "sweep" header's "seed" key is the sweep seed.
        if (rec.event == "sweep") {
            rec.sweepSeed = rec.seed;
            rec.seed = 0;
        }
        return rec;
    });
}

Expected<void>
Journal::open(const std::string &path, bool truncate)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        return Error(ErrorCategory::IoError,
                     std::string("cannot open journal: ") +
                     std::strerror(errno), {path, 0});
    }
    path_ = path;
    return {};
}

Expected<void>
Journal::append(const JournalRecord &record)
{
    if (fd_ < 0)
        return Error(ErrorCategory::Internal,
                     "journal append on a closed journal");
    const std::string line = record.toJson() + '\n';
    // Fault site "journal.append": `fail` refuses the record outright
    // (a full disk before any byte lands); `torn` writes a prefix and
    // then fails — the torn-line case load() must tolerate; `short`
    // caps each write(2) so the retry loop below has to finish the
    // record in pieces.
    size_t cap = line.size();
    const fault::Outcome out = fault::point("journal.append");
    if (out.action == fault::Action::FailErrno) {
        return Error(ErrorCategory::IoError,
                     std::string("journal write failed: ") +
                     std::strerror(out.err), {path_, 0});
    }
    if (out.action == fault::Action::ShortIo && out.bytes > 0)
        cap = out.bytes;
    size_t tornBudget = line.size();
    if (out.action == fault::Action::TornIo)
        tornBudget = std::min<size_t>(out.bytes, line.size());
    // One write(2) per record: O_APPEND makes the record all-or-
    // nothing with respect to concurrent appenders; a crash can only
    // truncate the final line, which load() tolerates.
    size_t off = 0;
    while (off < line.size()) {
        if (out.action == fault::Action::TornIo && off >= tornBudget) {
            return Error(ErrorCategory::IoError,
                         std::string("journal write failed: ") +
                         std::strerror(out.err), {path_, 0});
        }
        size_t chunk = std::min(cap, line.size() - off);
        if (out.action == fault::Action::TornIo)
            chunk = std::min(chunk, tornBudget - off);
        const ssize_t n = ::write(fd_, line.data() + off, chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Error(ErrorCategory::IoError,
                         std::string("journal write failed: ") +
                         std::strerror(errno), {path_, 0});
        }
        off += static_cast<size_t>(n);
    }
    return {};
}

Expected<void>
Journal::sync()
{
    // Distinct from "journal.fsync" (the atomicWriteFile durability
    // syncs): this is the appender's own record sync, and only an
    // installed plan arms it — the legacy SSIM_FSYNC_FAIL hook never
    // reached here.
    if (const fault::Outcome out = fault::point("journal.sync");
        out.action == fault::Action::FailErrno) {
        return Error(ErrorCategory::IoError,
                     std::string("journal fsync failed: ") +
                     std::strerror(out.err), {path_, 0});
    }
    if (fd_ >= 0 && ::fsync(fd_) != 0) {
        return Error(ErrorCategory::IoError,
                     std::string("journal fsync failed: ") +
                     std::strerror(errno), {path_, 0});
    }
    return {};
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Expected<std::vector<JournalRecord>>
Journal::load(const std::string &path, uint64_t *skippedCorrupt)
{
    std::ifstream is(path);
    if (!is) {
        return Error(ErrorCategory::IoError,
                     "cannot open journal for reading", {path, 0});
    }
    std::vector<JournalRecord> records;
    std::string line;
    uint64_t lineNo = 0;
    // Two flavours of bad line, two policies. The *final* line being
    // malformed is the signature of a clean crash mid-append and is
    // dropped silently. A malformed line with intact records after it
    // is a torn write from a worker that died inside write(2) (or
    // random bit rot); losing one attempt record is recoverable —
    // resume synthesizes a `crashed` outcome — so it is skipped with
    // a counted warning instead of abandoning the whole journal.
    bool pendingBad = false;
    uint64_t pendingLine = 0;
    uint64_t skipped = 0;
    uint64_t lastSkippedLine = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Expected<JournalRecord> rec =
            JournalRecord::parseJson(line, path, lineNo);
        if (!rec) {
            if (pendingBad) {
                ++skipped;
                lastSkippedLine = pendingLine;
            }
            pendingBad = true;
            pendingLine = lineNo;
            continue;
        }
        if (pendingBad) {
            ++skipped;
            lastSkippedLine = pendingLine;
            pendingBad = false;
        }
        records.push_back(std::move(rec.value()));
    }
    if (skipped > 0) {
        warn("journal " + path + ": skipped " +
             std::to_string(skipped) +
             " corrupt interior line(s), last at line " +
             std::to_string(lastSkippedLine));
    }
    if (skippedCorrupt)
        *skippedCorrupt = skipped;
    return records;
}

Expected<void>
Journal::checkpoint(const std::string &path,
                    const std::vector<JournalRecord> &records)
{
    return atomicWriteFile(path, [&](std::ostream &os) {
        for (const JournalRecord &rec : records)
            os << rec.toJson() << '\n';
    });
}

} // namespace ssim::util
