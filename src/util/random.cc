#include "random.hh"

#include <cmath>

namespace ssim
{

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedGaussian_(0.0), haveCachedGaussian_(false)
{
    uint64_t x = seed;
    for (auto &s : s_) {
        s = splitmix64(x);
        x += 0x9e3779b97f4a7c15ULL;
    }
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return (next64() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        return 0;
    // 128-bit multiply-shift scaling; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next64()) * bound) >> 64);
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo + 1)));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (haveCachedGaussian_) {
        haveCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    haveCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace ssim
