/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs);
 * fatal() is for user errors (bad configuration, invalid arguments).
 * warn()/inform() report conditions without stopping the simulation —
 * and are filtered by a process-wide verbosity level, because a sweep
 * over ~2000 design points that warns once per bad point otherwise
 * buries its own summary. The level comes from SSIM_LOG_LEVEL
 * (error|warn|info, default info) and can be overridden
 * programmatically (the CLI's --quiet maps to LogLevel::Error).
 * panic() and fatal() always print: silencing a process's dying words
 * is never the right default.
 *
 * All messages flow through one mutex-guarded sink (logMessage), so
 * concurrent warn()s from sweep or serve worker threads emit whole
 * lines, never interleaved fragments.
 */

#ifndef SSIM_UTIL_LOGGING_HH
#define SSIM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ssim
{

/** Verbosity: messages at or above the level are printed. */
enum class LogLevel : uint8_t
{
    Error,   ///< only panic/fatal (warn and inform suppressed)
    Warn,    ///< + warn
    Info,    ///< + inform (the default)
};

/**
 * The active level: the last setLogLevel() value, else SSIM_LOG_LEVEL
 * from the environment (unknown values fall back to Info).
 */
LogLevel logLevel();

/** Override the level for this process (e.g. the CLI's --quiet). */
void setLogLevel(LogLevel level);

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e., a simulator bug; never for user errors.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error message. Call when the simulation cannot continue
 * because of a user-level error (bad configuration, invalid argument).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious-but-survivable condition (LogLevel::Warn). */
void warn(const std::string &msg);

/** Report normal operating status (LogLevel::Info). */
void inform(const std::string &msg);

/** Panic unless the condition holds. */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/**
 * Literal-message overload: resolves ahead of the std::string one for
 * string literals, so callers on hot paths do not construct (and, past
 * the SSO limit, heap-allocate) a std::string per call just to have a
 * message ready for a panic that never fires.
 */
inline void
panicIf(bool condition, const char *msg)
{
    if (condition) [[unlikely]]
        panic(msg);
}

/** Fatal unless the condition holds. */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace ssim

#endif // SSIM_UTIL_LOGGING_HH
