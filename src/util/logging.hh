/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs);
 * fatal() is for user errors (bad configuration, invalid arguments).
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef SSIM_UTIL_LOGGING_HH
#define SSIM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ssim
{

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e., a simulator bug; never for user errors.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error message. Call when the simulation cannot continue
 * because of a user-level error (bad configuration, invalid argument).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/** Panic unless the condition holds. */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Fatal unless the condition holds. */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace ssim

#endif // SSIM_UTIL_LOGGING_HH
