/**
 * @file
 * Minimal JSON line scanner shared by every one-line-JSON reader in
 * the tree: the sweep journal (util/journal) and the serve request
 * protocol (serve/protocol).
 *
 * This is deliberately not a general JSON parser. Both consumers read
 * flat objects of known keys (with at most one level of nesting for a
 * metrics/config sub-object), one record per line, and want typed
 * ssim::Error diagnostics naming the offending input — not a DOM. The
 * scanner therefore exposes token-level operations (consume a
 * punctuation character, parse a string / number / bool) and leaves
 * the object shape to the caller, which keeps each record parser a
 * short, auditable loop.
 *
 * Failure reporting: scanning methods throw ssim::Error (ParseError)
 * carrying the file/line context given at construction; callers wrap
 * the whole parse in tryInvoke() to surface it as a failed Expected.
 */

#ifndef SSIM_UTIL_JSON_READER_HH
#define SSIM_UTIL_JSON_READER_HH

#include <cstdint>
#include <string>

#include "error.hh"

namespace ssim::util::json
{

class LineScanner
{
  public:
    /**
     * Scan @p text. @p file / @p line are diagnostic context only
     * (the journal passes its path and line number; serve passes
     * "<request>").
     */
    LineScanner(const std::string &text, const std::string &file,
                uint64_t line);

    /** A ParseError at this scanner's input context. */
    Error fail(const std::string &msg) const;

    void skipSpace();

    /** Consume @p c (after space); false if the next char differs. */
    bool consume(char c);

    /** True when only trailing whitespace remains. */
    bool atEnd();

    /** Parse a quoted string with escape handling. */
    std::string parseString();

    /** Raw numeric token (sign, digits, dot, exponent). */
    std::string parseNumberToken();

    uint64_t parseU64();

    /** A quoted 16-digit-max hex string (lossless uint64 hashes). */
    uint64_t parseHex64String();

    double parseDouble();

    /** `true` or `false`. */
    bool parseBool();

    /**
     * Current scan offset into the line. Lets a caller that needs a
     * raw sub-span (the model loader checksums its payload bytes
     * exactly as written) mark the start of a value, skip it, and
     * slice the original text.
     */
    size_t pos() const { return pos_; }

  private:
    const std::string &text_;
    std::string file_;
    uint64_t line_;
    size_t pos_ = 0;
};

} // namespace ssim::util::json

#endif // SSIM_UTIL_JSON_READER_HH
