#include "drain.hh"

#include <atomic>

namespace ssim::util
{

namespace
{

std::atomic<bool> drainFlag{false};

extern "C" void
drainSignalHandler(int)
{
    // Only an async-signal-safe store: engines poll the flag.
    drainFlag.store(true);
}

} // namespace

void
requestDrain()
{
    drainFlag.store(true);
}

bool
drainRequested()
{
    return drainFlag.load();
}

void
clearDrainRequest()
{
    drainFlag.store(false);
}

ScopedDrainHandlers::ScopedDrainHandlers(bool enable)
    : enabled_(enable)
{
    if (!enabled_)
        return;
    struct sigaction sa = {};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, &oldInt_);
    sigaction(SIGTERM, &sa, &oldTerm_);
}

ScopedDrainHandlers::~ScopedDrainHandlers()
{
    if (!enabled_)
        return;
    sigaction(SIGINT, &oldInt_, nullptr);
    sigaction(SIGTERM, &oldTerm_, nullptr);
}

} // namespace ssim::util
