#include "json_writer.hh"

#include <cstdio>

namespace ssim::util::json
{

namespace
{

constexpr char HexDigits[] = "0123456789abcdef";

} // namespace

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                out += "\\u00";
                out += HexDigits[(c >> 4) & 0xf];
                out += HexDigits[c & 0xf];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendComma(std::string &out)
{
    if (!out.empty() && out.back() != '{' && out.back() != '[')
        out += ',';
}

void
appendKey(std::string &out, const char *key)
{
    appendComma(out);
    out += '"';
    out += key;
    out += "\":";
}

void
appendField(std::string &out, const char *key, const std::string &value)
{
    appendKey(out, key);
    appendEscaped(out, value);
}

void
appendU64(std::string &out, const char *key, uint64_t value)
{
    appendKey(out, key);
    out += std::to_string(value);
}

void
appendHex64(std::string &out, const char *key, uint64_t value)
{
    appendField(out, key, hex64Token(value));
}

void
appendDouble(std::string &out, const char *key, double value)
{
    appendKey(out, key);
    out += doubleToken(value);
}

void
appendBool(std::string &out, const char *key, bool value)
{
    appendKey(out, key);
    out += value ? "true" : "false";
}

std::string
doubleToken(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
hex64Token(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace ssim::util::json
