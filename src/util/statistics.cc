#include "statistics.hh"

#include <algorithm>

namespace ssim
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
RunningStats::cov() const
{
    const double m = mean();
    if (m == 0.0)
        return 0.0;
    return stddev() / m;
}

double
absoluteError(double predicted, double reference)
{
    if (reference == 0.0)
        return 0.0;
    return std::abs(predicted - reference) / std::abs(reference);
}

double
relativeError(double predictedA, double predictedB,
              double referenceA, double referenceB)
{
    if (predictedA == 0.0 || referenceA == 0.0 || referenceB == 0.0)
        return 0.0;
    const double predictedTrend = predictedB / predictedA;
    const double referenceTrend = referenceB / referenceA;
    return std::abs(predictedTrend - referenceTrend) /
        std::abs(referenceTrend);
}

double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

} // namespace ssim
