#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ssim
{

namespace
{

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("SSIM_LOG_LEVEL");
    if (!env)
        return LogLevel::Info;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    // An unknown value must not silently mute the process.
    return LogLevel::Info;
}

std::atomic<int> &
levelSlot()
{
    // -1 = not yet resolved; resolved lazily so setLogLevel() works
    // before or after the first log call.
    static std::atomic<int> slot{-1};
    return slot;
}

} // namespace

LogLevel
logLevel()
{
    int v = levelSlot().load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(levelFromEnv());
        levelSlot().store(v, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
setLogLevel(LogLevel level)
{
    levelSlot().store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

void
logMessage(const char *prefix, const std::string &msg)
{
    // One pre-rendered buffer, one fwrite, one mutex: concurrent
    // warn()s from sweep/serve worker threads used to interleave
    // mid-line through stdio's per-%-conversion locking. The sink is
    // the single funnel every non-fatal message passes through.
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 3);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    static std::mutex sinkMutex;
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        logMessage("info", msg);
}

} // namespace ssim
