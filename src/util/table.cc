#include "table.hh"

#include <algorithm>
#include <cstdio>

namespace ssim
{

void
TextTable::setHeader(std::vector<std::string> labels)
{
    header_ = std::move(labels);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    const size_t ncols = std::max(header_.size(), [&] {
        size_t n = 0;
        for (const auto &r : rows_)
            n = std::max(n, r.size());
        return n;
    }());

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << cell;
            if (i + 1 < ncols)
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += widths[i] + (i + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "=== " << title << " ===" << '\n';
}

} // namespace ssim
