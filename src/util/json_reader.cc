#include "json_reader.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace ssim::util::json
{

LineScanner::LineScanner(const std::string &text,
                         const std::string &file, uint64_t line)
    : text_(text), file_(file), line_(line)
{}

Error
LineScanner::fail(const std::string &msg) const
{
    return Error(ErrorCategory::ParseError, msg, {file_, line_});
}

void
LineScanner::skipSpace()
{
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t'))
        ++pos_;
}

bool
LineScanner::consume(char c)
{
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
        ++pos_;
        return true;
    }
    return false;
}

bool
LineScanner::atEnd()
{
    skipSpace();
    return pos_ >= text_.size();
}

std::string
LineScanner::parseString()
{
    if (!consume('"'))
        throw fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
        const char c = text_[pos_++];
        if (c == '"')
            return out;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (pos_ >= text_.size())
            break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
                throw fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
                const char h = text_[pos_++];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    throw fail("bad \\u escape digit");
            }
            // Our writers only escape control bytes; anything outside
            // Latin-1 is replaced, not round-tripped.
            out += code < 0x100 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            throw fail(std::string("unknown escape '\\") + esc + "'");
        }
    }
    throw fail("unterminated string");
}

std::string
LineScanner::parseNumberToken()
{
    skipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E'))
        ++pos_;
    if (pos_ == start)
        throw fail("expected a number");
    return text_.substr(start, pos_ - start);
}

uint64_t
LineScanner::parseU64()
{
    const std::string tok = parseNumberToken();
    uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 10);
    if (ec != std::errc() || p != tok.data() + tok.size())
        throw fail("expected an unsigned integer, got '" + tok + "'");
    return v;
}

uint64_t
LineScanner::parseHex64String()
{
    const std::string tok = parseString();
    uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), v, 16);
    if (tok.empty() || tok.size() > 16 || ec != std::errc() ||
        p != tok.data() + tok.size())
        throw fail("expected a hex hash, got '" + tok + "'");
    return v;
}

double
LineScanner::parseDouble()
{
    const std::string tok = parseNumberToken();
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || errno == ERANGE)
        throw fail("expected a number, got '" + tok + "'");
    return v;
}

bool
LineScanner::parseBool()
{
    skipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
        pos_ += 4;
        return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
        pos_ += 5;
        return false;
    }
    throw fail("expected true or false");
}

} // namespace ssim::util::json
