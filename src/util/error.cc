#include "error.hh"

namespace ssim
{

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidArgument: return "invalid-argument";
      case ErrorCategory::InvalidConfig: return "invalid-config";
      case ErrorCategory::ParseError: return "parse-error";
      case ErrorCategory::CorruptData: return "corrupt-data";
      case ErrorCategory::VersionMismatch: return "version-mismatch";
      case ErrorCategory::IoError: return "io-error";
      case ErrorCategory::UnknownWorkload: return "unknown-workload";
      case ErrorCategory::Overloaded: return "overloaded";
      case ErrorCategory::DeadlineExceeded: return "deadline-exceeded";
      case ErrorCategory::WorkerCrashed: return "worker-crashed";
      case ErrorCategory::ShuttingDown: return "shutting-down";
      case ErrorCategory::Internal: return "internal-error";
    }
    return "error";
}

int
exitCodeFor(ErrorCategory category)
{
    // 0 = success, 1 = legacy fatal(), 2 = usage error; typed
    // categories start at 3 so scripts can tell failure modes apart.
    switch (category) {
      case ErrorCategory::InvalidArgument: return 2;
      case ErrorCategory::InvalidConfig: return 3;
      case ErrorCategory::ParseError: return 4;
      case ErrorCategory::CorruptData: return 5;
      case ErrorCategory::VersionMismatch: return 6;
      case ErrorCategory::IoError: return 7;
      case ErrorCategory::UnknownWorkload: return 8;
      case ErrorCategory::Internal: return 9;
      // 10 is the interrupted-but-resumable drain exit shared by the
      // sweep engine and `ssim serve`; the service categories follow.
      case ErrorCategory::Overloaded: return 11;
      case ErrorCategory::DeadlineExceeded: return 12;
      case ErrorCategory::WorkerCrashed: return 13;
      case ErrorCategory::ShuttingDown: return 14;
    }
    return 1;
}

} // namespace ssim
