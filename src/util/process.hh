/**
 * @file
 * Process self-inspection helpers: resident-set-size probes used by
 * the sweep engine to record per-point memory footprints (the
 * streaming generation path is O(1) in trace length, and the journal
 * is where that claim is checked against reality).
 */

#ifndef SSIM_UTIL_PROCESS_HH
#define SSIM_UTIL_PROCESS_HH

#include <cstdint>

namespace ssim
{

/**
 * Peak resident set size of this process in KiB (VmHWM), or 0 when
 * the platform exposes no probe. Monotonic over a process lifetime.
 */
uint64_t peakRssKb();

/** Current resident set size in KiB (VmRSS), or 0 if unavailable. */
uint64_t currentRssKb();

} // namespace ssim

#endif // SSIM_UTIL_PROCESS_HH
