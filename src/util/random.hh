/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator take an explicit Rng so
 * that every experiment is reproducible bit-for-bit from its seed.
 * The generator is xoshiro256**, seeded through splitmix64.
 */

#ifndef SSIM_UTIL_RANDOM_HH
#define SSIM_UTIL_RANDOM_HH

#include <cstdint>

namespace ssim
{

/**
 * One splitmix64 step as a pure hash: the finalizer applied to
 * @p x + the golden-ratio increment. Used to expand Rng seeds and to
 * derive independent per-point seeds in sweeps — hashing (sweep seed,
 * point index) gives every design point a seed that depends only on
 * its index, never on how many points ran before it, which is what
 * makes a resumed sweep bit-identical to an uninterrupted one.
 */
uint64_t splitmix64(uint64_t x);

/**
 * xoshiro256** pseudo-random generator.
 *
 * Small, fast, and with well-understood statistical quality; more than
 * adequate for Monte Carlo synthetic trace generation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli draw with success probability p. */
    bool chance(double p);

    /** Standard normal variate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

  private:
    uint64_t s_[4];
    double cachedGaussian_;
    bool haveCachedGaussian_;
};

} // namespace ssim

#endif // SSIM_UTIL_RANDOM_HH
