/**
 * @file
 * Process-wide graceful-drain request flag and the SIGINT/SIGTERM
 * handlers that set it.
 *
 * Both long-running engines — the design-space sweep
 * (experiments/sweep) and the prediction service (serve/server) —
 * share one drain discipline: a signal (or a programmatic request)
 * raises a single atomic flag, no new work is admitted, in-flight
 * work finishes within a budget, and the process exits with the
 * documented resumable code (10). The flag lives here so that the two
 * engines cannot disagree about what "stop" means, and so that the
 * handler itself stays trivially async-signal-safe: one relaxed
 * atomic store, nothing else.
 */

#ifndef SSIM_UTIL_DRAIN_HH
#define SSIM_UTIL_DRAIN_HH

#include <csignal>

namespace ssim::util
{

/** Ask the running engine(s) to drain. Async-signal-safe. */
void requestDrain();

/** True once a drain has been requested and not yet cleared. */
bool drainRequested();

/** Reset the flag (engines call this when a run starts). */
void clearDrainRequest();

/**
 * Install SIGINT/SIGTERM handlers that call requestDrain() for the
 * lifetime of this object; the previous handlers are restored on
 * destruction. Constructing with enable=false is a no-op, so callers
 * can make signal handling a plain option.
 */
class ScopedDrainHandlers
{
  public:
    explicit ScopedDrainHandlers(bool enable);
    ~ScopedDrainHandlers();
    ScopedDrainHandlers(const ScopedDrainHandlers &) = delete;
    ScopedDrainHandlers &operator=(const ScopedDrainHandlers &) =
        delete;

  private:
    bool enabled_;
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
};

} // namespace ssim::util

#endif // SSIM_UTIL_DRAIN_HH
