/**
 * @file
 * Minimal JSON emission helpers shared by every machine-readable
 * artifact the simulator writes: the sweep journal (util/journal),
 * the --stats-json exporter, the Chrome trace exporter, and the sweep
 * heartbeat (src/obs).
 *
 * The helpers append to a plain std::string and never insert
 * whitespace, so the output of a given call sequence is byte-stable —
 * the property the journal's crash/resume determinism and the
 * --stats-json golden tests both rely on. A comma is inserted
 * automatically unless the previous character opened an object or
 * array, which keeps call sites free of first-element bookkeeping.
 *
 * Doubles are rendered with %.17g so that a value survives a write ->
 * parse round trip bit-exactly; 64-bit hashes are rendered as 16-digit
 * hex strings because a uint64 does not survive a double-typed JSON
 * reader.
 */

#ifndef SSIM_UTIL_JSON_WRITER_HH
#define SSIM_UTIL_JSON_WRITER_HH

#include <cstdint>
#include <string>

namespace ssim::util::json
{

/** Append @p s as a quoted JSON string with escapes. */
void appendEscaped(std::string &out, const std::string &s);

/** Append `,` unless @p out just opened an object or array. */
void appendComma(std::string &out);

/** Append `"key":` (with the separating comma when needed). */
void appendKey(std::string &out, const char *key);

/** Append `"key":"value"`. */
void appendField(std::string &out, const char *key,
                 const std::string &value);

/** Append `"key":<unsigned integer>`. */
void appendU64(std::string &out, const char *key, uint64_t value);

/** Append `"key":"<016x hex>"` (lossless uint64 for hashes). */
void appendHex64(std::string &out, const char *key, uint64_t value);

/** Append `"key":<%.17g double>` (bit-exact round trip). */
void appendDouble(std::string &out, const char *key, double value);

/** Append `"key":true|false`. */
void appendBool(std::string &out, const char *key, bool value);

/** Render a double alone (no key) with the same %.17g contract. */
std::string doubleToken(double value);

/** Render a uint64 hash as the 16-digit hex string form. */
std::string hex64Token(uint64_t value);

} // namespace ssim::util::json

#endif // SSIM_UTIL_JSON_WRITER_HH
