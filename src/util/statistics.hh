/**
 * @file
 * Summary statistics used throughout the evaluation harness:
 * running mean/stddev, coefficient of variation, and the error
 * metrics defined in the paper (absolute error AE, relative error RE).
 */

#ifndef SSIM_UTIL_STATISTICS_HH
#define SSIM_UTIL_STATISTICS_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace ssim
{

/** Welford running mean / variance accumulator. */
class RunningStats
{
  public:
    /** Add a sample. */
    void add(double x);

    /** Number of samples. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample standard deviation (0 for n < 2). */
    double stddev() const;

    /** Coefficient of variation: stddev / mean. */
    double cov() const;

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Absolute prediction error of the paper (section 4.2):
 * AE = |M_ss - M_eds| / M_eds.
 */
double absoluteError(double predicted, double reference);

/**
 * Relative prediction error of the paper (section 4.5) for a move from
 * design point A to design point B:
 * RE = |(B_ss/A_ss) - (B_eds/A_eds)| / (B_eds/A_eds).
 */
double relativeError(double predictedA, double predictedB,
                     double referenceA, double referenceB);

/** Arithmetic mean of a vector (0 when empty). */
double meanOf(const std::vector<double> &xs);

} // namespace ssim

#endif // SSIM_UTIL_STATISTICS_HH
