/**
 * @file
 * Typed, recoverable error reporting for the library layer.
 *
 * The logging helpers (fatal(), panic()) terminate the process and are
 * therefore a *policy* decision that belongs to executables, not to
 * library code: a design-space sweep that has amortized one expensive
 * profiling pass over hundreds of configurations must be able to skip
 * a single bad configuration or a corrupted profile file and keep
 * going. Library code reports failures as ssim::Error — an exception
 * carrying a machine-checkable category plus human-oriented context
 * (file and line number of an offending profile line, the knob name of
 * an out-of-range configuration value) — or as Expected<T> for callers
 * that prefer branching to unwinding. Converting an Error to a process
 * exit code happens exactly once, in the CLI front end.
 */

#ifndef SSIM_UTIL_ERROR_HH
#define SSIM_UTIL_ERROR_HH

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace ssim
{

/**
 * Broad failure classes; each maps to a distinct CLI exit code.
 * The last four are service-lifecycle categories spoken by the
 * `ssim serve` wire protocol (a request can be shed, time out, lose
 * its worker, or arrive while the daemon drains); they are ordinary
 * typed errors so a client can branch on the category name exactly
 * like a sweep branches on a journal record's category.
 *
 * Internal stays the last enumerator: code that iterates the
 * categories by value (journal replay, exhaustiveness tests) treats
 * it as the upper bound.
 */
enum class ErrorCategory : uint8_t
{
    InvalidArgument,   ///< bad CLI/API argument (unknown flag, bad number)
    InvalidConfig,     ///< CoreConfig / options failed validation
    ParseError,        ///< profile text is syntactically malformed
    CorruptData,       ///< checksum/semantic integrity check failed
    VersionMismatch,   ///< profile written by an incompatible version
    IoError,           ///< file cannot be opened / read / written
    UnknownWorkload,   ///< workload name not in the registry
    Overloaded,        ///< admission queue full; retry after a backoff
    DeadlineExceeded,  ///< request missed its deadline; worker recycled
    WorkerCrashed,     ///< worker died mid-request; worker restarted
    ShuttingDown,      ///< service draining; request not admitted
    Internal,          ///< invariant violation reported as an error
};

/** Short stable name for a category ("parse-error", "io-error", ...). */
const char *errorCategoryName(ErrorCategory category);

/**
 * Process exit code for a category (CLI policy; documented in the
 * ssim usage text). 0 is success and 2 is reserved for usage errors.
 */
int exitCodeFor(ErrorCategory category);

/**
 * A recoverable library error: category + message + source context.
 *
 * Context identifies *which input* failed, not which C++ source line
 * raised it: for profile parsing it is the profile path (or
 * "<stream>") and the 1-based line number of the offending line.
 */
/** Location of the input that caused an Error, when known. */
struct ErrorContext
{
    std::string file;     ///< input file path, empty if unknown
    uint64_t line = 0;    ///< 1-based line number, 0 if unknown
};

class Error : public std::exception
{
  public:
    using Context = ErrorContext;

    Error(ErrorCategory category, std::string message,
          Context context = Context())
        : category_(category), message_(std::move(message)),
          context_(std::move(context))
    {
        what_ = std::string(errorCategoryName(category_)) + ": ";
        if (!context_.file.empty()) {
            what_ += context_.file;
            if (context_.line > 0)
                what_ += ':' + std::to_string(context_.line);
            what_ += ": ";
        }
        what_ += message_;
    }

    ErrorCategory category() const { return category_; }
    const std::string &message() const { return message_; }
    const Context &context() const { return context_; }

    /** Full "category: file:line: message" rendering. */
    const char *what() const noexcept override { return what_.c_str(); }

  private:
    ErrorCategory category_;
    std::string message_;
    Context context_;
    std::string what_;
};

/**
 * Minimal Expected: either a T or an Error. For call sites that want
 * to branch on failure (a sweep skipping one bad configuration)
 * instead of unwinding.
 *
 * @code
 *   Expected<Profile> p = tryLoadProfileFile(path);
 *   if (!p) { warn(p.error().what()); continue; }
 *   use(p.value());
 * @endcode
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}          // NOLINT
    Expected(Error error) : error_(std::move(error)) {}      // NOLINT

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The value; only valid when ok(). */
    T &value() { return *value_; }
    const T &value() const { return *value_; }

    /** The error; only valid when !ok(). */
    const Error &error() const { return *error_; }

    /** Value on success, @p fallback on failure. */
    T value_or(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    std::optional<T> value_;
    std::optional<Error> error_;
};

/** Expected<void>: success or an Error. */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : error_(std::move(error)) {}      // NOLINT

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }
    const Error &error() const { return *error_; }

  private:
    std::optional<Error> error_;
};

/**
 * Run @p fn, converting a thrown ssim::Error into a failed Expected.
 * Other exception types propagate: they indicate bugs, not inputs.
 */
template <typename F>
auto
tryInvoke(F &&fn) -> Expected<decltype(fn())>
{
    try {
        if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
            return {};
        } else {
            return fn();
        }
    } catch (const Error &e) {
        return e;
    }
}

} // namespace ssim

#endif // SSIM_UTIL_ERROR_HH
