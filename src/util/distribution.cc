#include "distribution.hh"

#include <algorithm>

#include "logging.hh"

namespace ssim
{

void
DiscreteDistribution::record(uint32_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    frozen_ = false;
    total_ += weight;
    // Common case: repeated values arrive in bursts; check the last
    // entry before searching.
    if (!values_.empty() && values_.back().first == value) {
        values_.back().second += weight;
        return;
    }
    for (auto &kv : values_) {
        if (kv.first == value) {
            kv.second += weight;
            return;
        }
    }
    values_.emplace_back(value, weight);
}

uint64_t
DiscreteDistribution::countOf(uint32_t value) const
{
    for (const auto &kv : values_)
        if (kv.first == value)
            return kv.second;
    return 0;
}

double
DiscreteDistribution::probabilityOf(uint32_t value) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(countOf(value)) /
        static_cast<double>(total_);
}

double
DiscreteDistribution::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &kv : values_)
        acc += static_cast<double>(kv.first) *
            static_cast<double>(kv.second);
    return acc / static_cast<double>(total_);
}

void
DiscreteDistribution::freeze() const
{
    std::sort(values_.begin(), values_.end());
    cumulative_.resize(values_.size());
    uint64_t acc = 0;
    for (size_t i = 0; i < values_.size(); ++i) {
        acc += values_[i].second;
        cumulative_[i] = acc;
    }
    frozen_ = true;
}

uint32_t
DiscreteDistribution::sample(Rng &rng) const
{
    panicIf(total_ == 0, "sampling an empty DiscreteDistribution");
    if (!frozen_)
        freeze();
    const uint64_t target = rng.below(total_) + 1;
    const auto it = std::lower_bound(cumulative_.begin(),
                                     cumulative_.end(), target);
    return values_[static_cast<size_t>(
        it - cumulative_.begin())].first;
}

const std::vector<std::pair<uint32_t, uint64_t>> &
DiscreteDistribution::entries() const
{
    if (!frozen_)
        freeze();
    return values_;
}

void
WeightedPicker::build(const std::vector<uint64_t> &weights)
{
    cumulative_.resize(weights.size());
    uint64_t acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cumulative_[i] = acc;
    }
    total_ = acc;
}

size_t
WeightedPicker::pick(Rng &rng) const
{
    panicIf(total_ == 0, "picking from an all-zero WeightedPicker");
    const uint64_t target = rng.below(total_) + 1;
    const auto it = std::lower_bound(cumulative_.begin(),
                                     cumulative_.end(), target);
    return static_cast<size_t>(it - cumulative_.begin());
}

} // namespace ssim
