#include "distribution.hh"

#include <algorithm>

#include "logging.hh"

namespace ssim
{

// --- AliasTable ----------------------------------------------------

void
AliasTable::build(const std::vector<uint64_t> &weights)
{
    const size_t n = weights.size();
    prob_.assign(n, 0);
    alias_.assign(n, 0);
    total_ = 0;
    for (uint64_t w : weights)
        total_ += w;
    if (total_ == 0)
        return;

    // Exact integer Vose: bucket capacity is W (the total); entry i's
    // residual mass starts at w_i * n (128-bit, so W * n cannot
    // overflow). Every pairing step moves an exact amount of mass, so
    // when one worklist drains the other holds entries with residual
    // exactly W — no epsilon fixups, no platform-dependent rounding.
    using u128 = unsigned __int128;
    const u128 cap = total_;
    std::vector<u128> mass(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        mass[i] = static_cast<u128>(weights[i]) * n;
        if (mass[i] < cap)
            small.push_back(static_cast<uint32_t>(i));
        else
            large.push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        const uint32_t s = small.back();
        small.pop_back();
        const uint32_t l = large.back();
        large.pop_back();
        prob_[s] = static_cast<uint64_t>(mass[s]);  // < cap, fits
        alias_[s] = l;
        mass[l] -= cap - mass[s];
        if (mass[l] < cap)
            small.push_back(l);
        else
            large.push_back(l);
    }
    // Leftovers carry residual exactly == cap: full self-probability.
    for (uint32_t l : large) {
        prob_[l] = total_;
        alias_[l] = l;
    }
    for (uint32_t s : small) {
        prob_[s] = total_;
        alias_[s] = s;
    }
}

size_t
AliasTable::sample(Rng &rng) const
{
    panicIf(total_ == 0, "sampling an all-zero AliasTable");
    const size_t j = static_cast<size_t>(rng.below(prob_.size()));
    const uint64_t r = rng.below(total_);
    return r < prob_[j] ? j : alias_[j];
}

// --- DiscreteDistribution ------------------------------------------

void
DiscreteDistribution::record(uint32_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    frozen_ = false;
    total_ += weight;
    // Common case: repeated values arrive in bursts; check the last
    // touched entry before searching.
    if (!values_.empty() && values_[lastIdx_].first == value) {
        values_[lastIdx_].second += weight;
        return;
    }
    const auto it = std::lower_bound(
        values_.begin(), values_.end(), value,
        [](const std::pair<uint32_t, uint64_t> &kv, uint32_t v) {
            return kv.first < v;
        });
    lastIdx_ = static_cast<size_t>(it - values_.begin());
    if (it != values_.end() && it->first == value) {
        it->second += weight;
        return;
    }
    values_.insert(it, {value, weight});
}

uint64_t
DiscreteDistribution::countOf(uint32_t value) const
{
    const auto it = std::lower_bound(
        values_.begin(), values_.end(), value,
        [](const std::pair<uint32_t, uint64_t> &kv, uint32_t v) {
            return kv.first < v;
        });
    if (it != values_.end() && it->first == value)
        return it->second;
    return 0;
}

double
DiscreteDistribution::probabilityOf(uint32_t value) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(countOf(value)) /
        static_cast<double>(total_);
}

double
DiscreteDistribution::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &kv : values_)
        acc += static_cast<double>(kv.first) *
            static_cast<double>(kv.second);
    return acc / static_cast<double>(total_);
}

void
DiscreteDistribution::freeze() const
{
    // values_ is kept sorted by record(); only the sampler needs
    // (re)building.
    std::vector<uint64_t> weights;
    weights.reserve(values_.size());
    for (const auto &kv : values_)
        weights.push_back(kv.second);
    alias_.build(weights);
    frozen_ = true;
}

void
DiscreteDistribution::prepare() const
{
    if (!frozen_)
        freeze();
}

uint32_t
DiscreteDistribution::sample(Rng &rng) const
{
    panicIf(total_ == 0, "sampling an empty DiscreteDistribution");
    if (!frozen_)
        freeze();
    return values_[alias_.sample(rng)].first;
}

const std::vector<std::pair<uint32_t, uint64_t>> &
DiscreteDistribution::entries() const
{
    return values_;
}

// --- WeightedPicker ------------------------------------------------

void
WeightedPicker::build(const std::vector<uint64_t> &weights)
{
    table_.build(weights);
}

size_t
WeightedPicker::pick(Rng &rng) const
{
    panicIf(table_.totalWeight() == 0,
            "picking from an all-zero WeightedPicker");
    return table_.sample(rng);
}

// --- FenwickSampler ------------------------------------------------

void
FenwickSampler::build(const std::vector<uint64_t> &weights)
{
    const size_t n = weights.size();
    weights_ = weights;
    tree_.assign(n + 1, 0);
    total_ = 0;
    topBit_ = 0;
    for (size_t b = 1; b <= n; b <<= 1)
        topBit_ = b;
    // O(n) construction: push each node's partial sum to its parent.
    for (size_t i = 1; i <= n; ++i) {
        tree_[i] += weights[i - 1];
        const size_t parent = i + (i & (~i + 1));
        if (parent <= n)
            tree_[parent] += tree_[i];
    }
    for (uint64_t w : weights)
        total_ += w;
}

void
FenwickSampler::add(size_t i, int64_t delta)
{
    if (delta < 0) {
        const uint64_t dec = static_cast<uint64_t>(-delta);
        const uint64_t applied =
            dec < weights_[i] ? dec : weights_[i];
        weights_[i] -= applied;
        total_ -= applied;
        for (size_t k = i + 1; k < tree_.size(); k += k & (~k + 1))
            tree_[k] -= applied;
    } else {
        weights_[i] += static_cast<uint64_t>(delta);
        total_ += static_cast<uint64_t>(delta);
        for (size_t k = i + 1; k < tree_.size(); k += k & (~k + 1))
            tree_[k] += static_cast<uint64_t>(delta);
    }
}

size_t
FenwickSampler::pick(Rng &rng) const
{
    panicIf(total_ == 0, "picking from a drained FenwickSampler");
    // Smallest index whose prefix sum >= target: identical selection
    // to a lower_bound over the cumulative weights, in O(log n).
    uint64_t rem = rng.below(total_) + 1;
    size_t idx = 0;
    const size_t n = weights_.size();
    for (size_t step = topBit_; step != 0; step >>= 1) {
        const size_t next = idx + step;
        if (next <= n && tree_[next] < rem) {
            idx = next;
            rem -= tree_[next];
        }
    }
    return idx;   // idx entries have prefix < target -> 0-based index
}

} // namespace ssim
