/**
 * @file
 * Wattch-style architectural power model (cf. Brooks et al., ISCA
 * 2000), as used by the paper to estimate energy per cycle (EPC).
 *
 * Each microarchitectural unit gets a maximum power budget derived
 * from its configured size/width through capacitance-like scaling
 * rules calibrated to a 0.18 um, 1.2 GHz design (the paper's
 * technology point). Conditional clocking follows Wattch's most
 * aggressive "cc3" style: a unit that is unused in a cycle consumes
 * 10% of its maximum power; a unit used for a fraction x of its ports
 * consumes x of its maximum power.
 *
 * The model is driven purely by the per-unit activity counts the core
 * collects (SimStats), so execution-driven and synthetic-trace
 * simulation are scored by exactly the same rules — the arrangement
 * the paper uses when it bolts Wattch onto both simulators.
 */

#ifndef SSIM_POWER_POWER_MODEL_HH
#define SSIM_POWER_POWER_MODEL_HH

#include <array>

#include "cpu/config.hh"
#include "cpu/pipeline/sim_stats.hh"

namespace ssim::power
{

/** Fraction of max power an idle, clock-gated unit still burns. */
constexpr double IdleFactor = 0.10;

/** Average power broken down by unit. */
struct PowerReport
{
    std::array<double, cpu::NumPowerUnits> unitAvg{};  ///< Watts
    double clockAvg = 0.0;
    double total = 0.0;      ///< EPC: average Watts over the run

    /** Convenience accessor. */
    double of(cpu::PowerUnit u) const
    {
        return unitAvg[static_cast<int>(u)];
    }

    /** Fetch unit power as reported in Table 4 (I-cache + bpred). */
    double fetchUnit() const
    {
        return of(cpu::PowerUnit::ICache) + of(cpu::PowerUnit::ITlb) +
            of(cpu::PowerUnit::Bpred);
    }
};

/** Per-configuration power model. */
class PowerModel
{
  public:
    explicit PowerModel(const cpu::CoreConfig &cfg);

    /** Maximum power budget of a unit (Watts). */
    double maxPowerOf(cpu::PowerUnit u) const
    {
        return maxPower_[static_cast<int>(u)];
    }

    /** Ports assumed for utilisation scaling of a unit. */
    double portsOf(cpu::PowerUnit u) const
    {
        return ports_[static_cast<int>(u)];
    }

    /** Peak power of the whole core (including clock). */
    double peakPower() const;

    /** Apply cc3 gating to the recorded activity. */
    PowerReport evaluate(const cpu::SimStats &stats) const;

    /** Energy-delay product: EPC * CPI^2 = EPC / IPC^2 (section 4.2.3). */
    static double energyDelayProduct(double epc, double ipc);

  private:
    std::array<double, cpu::NumPowerUnits> maxPower_{};
    std::array<double, cpu::NumPowerUnits> ports_{};
    double clockMax_ = 0.0;
    double issueWidth_ = 8.0;
};

} // namespace ssim::power

#endif // SSIM_POWER_POWER_MODEL_HH
