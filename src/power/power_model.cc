#include "power_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ssim::power
{

using cpu::PowerUnit;

namespace
{

/** Square-root array scaling against a reference design point. */
double
arrayScale(double value, double reference, double exponent = 0.5)
{
    if (reference <= 0.0)
        return 1.0;
    return std::pow(value / reference, exponent);
}

} // namespace

PowerModel::PowerModel(const cpu::CoreConfig &cfg)
{
    auto set = [this](PowerUnit u, double maxW, double ports) {
        maxPower_[static_cast<int>(u)] = maxW;
        ports_[static_cast<int>(u)] = std::max(1.0, ports);
    };

    const double width8 = cfg.decodeWidth / 8.0;
    const double issue8 = cfg.issueWidth / 8.0;
    const double commit8 = cfg.commitWidth / 8.0;

    // Front end.
    const double bpredBits =
        2.0 * (cfg.bpred.bimodalEntries + cfg.bpred.l2Entries +
               cfg.bpred.chooserEntries) +
        static_cast<double>(cfg.bpred.l1Entries) * cfg.bpred.historyBits;
    set(PowerUnit::Bpred,
        1.6 * arrayScale(bpredBits, 2.0 * 24576 + 8192.0 * 13) +
        0.5 * arrayScale(cfg.bpred.btbEntries, 512),
        4.0);
    set(PowerUnit::ICache,
        3.0 * arrayScale(cfg.il1.sizeBytes, 8 * 1024) *
        arrayScale(cfg.il1.lineBytes, 32, 0.25),
        cfg.fetchSpeed);
    set(PowerUnit::ITlb, 0.3 * arrayScale(cfg.itlb.entries, 32),
        cfg.fetchSpeed);

    // Dispatch / window / register state.
    set(PowerUnit::Rename, 1.8 * std::pow(width8, 1.5),
        cfg.decodeWidth);
    set(PowerUnit::IssueSel,
        2.5 * issue8 * arrayScale(cfg.ruuSize, 128), cfg.issueWidth);
    set(PowerUnit::Ruu,
        7.0 * std::pow(cfg.ruuSize / 128.0, 0.8) *
        std::pow(issue8, 0.5),
        2.0 * cfg.issueWidth);
    set(PowerUnit::Lsq,
        2.0 * std::pow(cfg.lsqSize / 32.0, 0.8) *
        std::pow(cfg.fu.ldStCount / 4.0, 0.5),
        cfg.fu.ldStCount);
    set(PowerUnit::RegFile, 4.0 * commit8, cfg.commitWidth);

    // Execution units.
    set(PowerUnit::IntAlu, 0.8 * cfg.fu.intAluCount,
        cfg.fu.intAluCount);
    set(PowerUnit::IntMult, 1.2 * cfg.fu.intMultCount,
        cfg.fu.intMultCount);
    set(PowerUnit::FpAlu, 1.5 * cfg.fu.fpAluCount, cfg.fu.fpAluCount);
    set(PowerUnit::FpMult, 2.0 * cfg.fu.fpMultCount,
        cfg.fu.fpMultCount);

    // Data memory.
    set(PowerUnit::DCache,
        5.0 * arrayScale(cfg.dl1.sizeBytes, 16 * 1024) *
        arrayScale(cfg.fu.ldStCount, 4),
        cfg.fu.ldStCount);
    set(PowerUnit::DTlb, 0.3 * arrayScale(cfg.dtlb.entries, 32),
        cfg.fu.ldStCount);
    set(PowerUnit::L2, 4.0 * arrayScale(cfg.l2.sizeBytes, 1024 * 1024),
        1.0);
    set(PowerUnit::ResultBus, 2.5 * issue8, cfg.issueWidth);

    issueWidth_ = cfg.issueWidth;

    // Clock tree: proportional to the capacitance of everything else.
    double sum = 0.0;
    for (double p : maxPower_)
        sum += p;
    clockMax_ = 0.45 * sum;
}

double
PowerModel::peakPower() const
{
    double sum = clockMax_;
    for (double p : maxPower_)
        sum += p;
    return sum;
}

PowerReport
PowerModel::evaluate(const cpu::SimStats &stats) const
{
    PowerReport rep;
    if (stats.cycles == 0)
        return rep;
    const double cycles = static_cast<double>(stats.cycles);

    double sum = 0.0;
    for (int i = 0; i < cpu::NumPowerUnits; ++i) {
        const double accesses =
            static_cast<double>(stats.unitAccesses[i]);
        const double activeCycles = std::min(
            static_cast<double>(stats.unitActiveCycles[i]), cycles);
        const double idleCycles = cycles - activeCycles;
        // Active cycles: linear in port utilisation; idle cycles: 10%.
        const double utilisation =
            std::min(accesses / (ports_[i] * cycles), 1.0);
        const double avg = maxPower_[i] *
            (utilisation + IdleFactor * idleCycles / cycles);
        rep.unitAvg[i] = avg;
        sum += avg;
    }

    // Clock: base 60% plus 40% scaled with machine activity.
    const double pipelineUtil = std::min(1.0,
        static_cast<double>(stats.issued) / cycles / issueWidth_);
    rep.clockAvg = clockMax_ * (0.6 + 0.4 * pipelineUtil);
    sum += rep.clockAvg;

    rep.total = sum;
    return rep;
}

double
PowerModel::energyDelayProduct(double epc, double ipc)
{
    if (ipc <= 0.0)
        return 0.0;
    return epc / (ipc * ipc);
}

} // namespace ssim::power
