#include "ensemble.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "obs/metrics.hh"
#include "sts_frontend.hh"

namespace ssim::core
{

namespace
{

/** Run one ensemble member on the calling thread. */
Expected<SimResult>
runOne(const EnsembleJob &job)
{
    return tryInvoke([&] {
        if (!job.model) {
            throw Error(ErrorCategory::InvalidConfig,
                        "runEnsemble: job has a null GenModel");
        }
        StreamingGenerator gen(job.model, job.seed,
                               requiredStreamLookback(job.cfg));
        // No ObsSink: per-task registry publication from worker
        // threads would race on metric names; callers publish
        // ensemble-level counters via publishEnsembleStats instead.
        return simulateSyntheticStream(gen, job.cfg, nullptr);
    });
}

} // namespace

std::vector<Expected<SimResult>>
runEnsembleExpected(const std::vector<EnsembleJob> &jobs,
                    const EnsembleOptions &opts, EnsembleStats *stats)
{
    const size_t n = jobs.size();
    unsigned threads = opts.jobs != 0
        ? opts.jobs
        : std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(
        std::min<size_t>(threads, std::max<size_t>(1, n)));

    if (stats) {
        stats->threads = threads;
        stats->tasks = n;
        // Every task is enqueued before the first dequeue, so the
        // backlog high-water mark is the ensemble size (deterministic
        // by construction — no timing in the number).
        stats->queuePeak = n;
    }

    // Slot per task, filled by whichever worker claims the index:
    // merge order is task order, independent of completion order.
    std::vector<Expected<SimResult>> results;
    results.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        results.emplace_back(
            Error(ErrorCategory::Internal, "ensemble task not run"));
    }
    if (n == 0)
        return results;

    std::atomic<size_t> next{0};
    // Non-ssim exceptions are bugs and must not escape a worker
    // thread (std::terminate); capture and rethrow the first one in
    // task order on the calling thread.
    std::vector<std::exception_ptr> fatal(n);

    const auto worker = [&] {
        while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                results[i] = runOne(jobs[i]);
            } catch (...) {
                fatal[i] = std::current_exception();
            }
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &e : fatal) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

std::vector<SimResult>
runEnsemble(const std::vector<EnsembleJob> &jobs,
            const EnsembleOptions &opts, EnsembleStats *stats)
{
    std::vector<Expected<SimResult>> expected =
        runEnsembleExpected(jobs, opts, stats);
    std::vector<SimResult> results;
    results.reserve(expected.size());
    for (Expected<SimResult> &e : expected) {
        if (!e.ok())
            throw Error(e.error());
        results.push_back(std::move(e.value()));
    }
    return results;
}

std::vector<SimResult>
runSeedEnsemble(const std::shared_ptr<const GenModel> &model,
                const cpu::CoreConfig &cfg,
                const std::vector<uint64_t> &seeds,
                const EnsembleOptions &opts, EnsembleStats *stats)
{
    std::vector<EnsembleJob> jobs;
    jobs.reserve(seeds.size());
    for (uint64_t seed : seeds)
        jobs.push_back({model, cfg, seed});
    return runEnsemble(jobs, opts, stats);
}

void
publishEnsembleStats(obs::Registry &registry, const std::string &prefix,
                     const EnsembleStats &stats)
{
    registry.counter(prefix + ".threads").set(stats.threads);
    registry.counter(prefix + ".tasks").set(stats.tasks);
    registry.counter(prefix + ".queue_peak").set(stats.queuePeak);
}

} // namespace ssim::core
